// Concurrent read-path throughput: qps vs thread count over one shared
// read-only TReX handle (OpenMode::kReadShared) on the synthetic
// Wikipedia collection. A fixed query stream is pushed through the
// thread-pool QueryExecutor at 1, 2, 4 and 8 workers; every top-k list
// is checked byte-identical against the single-threaded baseline, so
// the speedup numbers only count if concurrency changed nothing about
// the answers. A final overload row pushes the stream through a
// bounded-admission executor and reports goodput (OK-only qps) and
// shed rate next to the raw number; all three land in the bench
// metrics JSON as bench.throughput.* gauges.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/clock.h"
#include "trex/query_executor.h"

namespace trex {
namespace bench {
namespace {

// Serializes a top-k list exactly (scores as raw float bits, not
// formatted decimals) so "byte-identical" means just that.
std::string AnswerBytes(const QueryAnswer& answer) {
  std::string bytes;
  for (const ScoredElement& e : answer.result.elements) {
    uint32_t score_bits;
    static_assert(sizeof(score_bits) == sizeof(e.score), "float width");
    std::memcpy(&score_bits, &e.score, sizeof(score_bits));
    bytes += std::to_string(e.element.sid) + "/" +
             std::to_string(e.element.docid) + "/" +
             std::to_string(e.element.endpos) + "/" +
             std::to_string(e.element.length) + "/" +
             std::to_string(score_bits) + ";";
  }
  return bytes;
}

int Run() {
  // Ensure the Wiki index exists, then reopen it read-shared: the
  // handle under test is the one N threads are allowed to share.
  OpenBenchIndex("Wiki").reset();
  TrexOptions options;
  options.index.aliases = WikiAliasMap();
  auto opened =
      TReX::Open(BenchDataDir() + "/Wiki", options, OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> trex = std::move(opened).value();

  std::vector<const BenchQuery*> wiki_queries;
  for (const BenchQuery& q : Table1Queries()) {
    if (std::string(q.collection) == "Wiki") wiki_queries.push_back(&q);
  }
  const size_t k = 10;
  const size_t total_jobs = BenchScaleDocs("TREX_BENCH_THROUGHPUT_JOBS", 96);

  // Warm the buffer pool once so every configuration measures the same
  // (cached) read path rather than first-touch disk I/O.
  for (const BenchQuery* q : wiki_queries) {
    TREX_CHECK_OK(trex->Query(q->nexi, k).status());
  }

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("Throughput: qps vs threads, shared read-only handle (Wiki)\n");
  std::printf("%zu jobs over %zu distinct queries, k = %zu, %u core(s)\n\n",
              total_jobs, wiki_queries.size(), k, cores);
  if (cores < 2) {
    std::printf("note: single-core host — speedup is bounded at ~1x; the "
                "interesting signal here is that concurrency costs nothing "
                "and answers stay byte-identical\n\n");
  }
  std::printf("%8s %10s %10s %10s %12s\n", "threads", "wall(s)", "qps",
              "speedup", "answers");

  std::vector<std::string> baseline;  // Per-job bytes at threads = 1.
  double qps1 = 0.0, qps4 = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    std::vector<std::string> answers(total_jobs);
    size_t answer_elements = 0;
    size_t ok_jobs = 0;
    size_t shed_jobs = 0;
    double wall = TimeRuns([&]() {
      QueryExecutor executor(trex.get(), threads);
      std::vector<std::future<Result<QueryAnswer>>> futures;
      futures.reserve(total_jobs);
      Stopwatch watch;
      for (size_t i = 0; i < total_jobs; ++i) {
        futures.push_back(
            executor.Submit(wiki_queries[i % wiki_queries.size()]->nexi, k));
      }
      answer_elements = 0;
      ok_jobs = shed_jobs = 0;
      for (size_t i = 0; i < total_jobs; ++i) {
        Result<QueryAnswer> answer = futures[i].get();
        // The executor here is unbounded, so nothing may be shed and
        // every answer must be OK — but count like the overload row
        // below so the reported goodput is computed the same way.
        TREX_CHECK_OK(answer.status());
        ++ok_jobs;
        answers[i] = AnswerBytes(answer.value());
        answer_elements += answer.value().result.elements.size();
      }
      return watch.ElapsedSeconds();
    });

    if (baseline.empty()) {
      baseline = answers;
    } else {
      for (size_t i = 0; i < total_jobs; ++i) {
        if (answers[i] != baseline[i]) {
          std::fprintf(stderr,
                       "FATAL: job %zu at %zu threads diverged from the "
                       "single-threaded baseline\n",
                       i, threads);
          return 1;
        }
      }
    }

    double qps = static_cast<double>(total_jobs) / wall;
    double goodput = static_cast<double>(ok_jobs) / wall;
    double shed_rate =
        static_cast<double>(shed_jobs) / static_cast<double>(total_jobs);
    if (threads == 1) qps1 = qps;
    if (threads == 4) qps4 = qps;
    std::printf("%8zu %10.3f %10.1f %9.2fx %12zu\n", threads, wall, qps,
                qps1 > 0 ? qps / qps1 : 0.0, answer_elements);
    const std::string t = std::to_string(threads);
    obs::Default()
        .GetGauge("bench.throughput.qps_x100.t" + t)
        ->Set(static_cast<int64_t>(qps * 100));
    obs::Default()
        .GetGauge("bench.throughput.goodput_qps_x100.t" + t)
        ->Set(static_cast<int64_t>(goodput * 100));
    obs::Default()
        .GetGauge("bench.throughput.shed_rate_x10000.t" + t)
        ->Set(static_cast<int64_t>(shed_rate * 10000));
  }

  double scaling = qps1 > 0 ? qps4 / qps1 : 0.0;
  std::printf("\n1 -> 4 thread scaling: %.2fx (all top-k lists "
              "byte-identical across thread counts)\n",
              scaling);
  obs::Default()
      .GetGauge("bench.throughput.scaling_1_to_4_x100")
      ->Set(static_cast<int64_t>(scaling * 100));

  // Overload scenario: the same stream against a deliberately bounded
  // executor. Raw qps counts every resolved future (shed ones resolve
  // ~instantly, inflating it); goodput counts only OK answers — the
  // honest number for a saturated server — and shed_rate says how much
  // admission control turned away.
  {
    const size_t threads = cores >= 2 ? 2 : 1;
    QueryExecutorOptions bounds;
    bounds.max_queue_depth = 4;
    QueryExecutor executor(trex.get(), threads, bounds);
    std::vector<std::future<Result<QueryAnswer>>> futures;
    futures.reserve(total_jobs);
    Stopwatch watch;
    for (size_t i = 0; i < total_jobs; ++i) {
      futures.push_back(
          executor.Submit(wiki_queries[i % wiki_queries.size()]->nexi, k));
    }
    size_t ok_jobs = 0, shed_jobs = 0;
    for (auto& f : futures) {
      Result<QueryAnswer> answer = f.get();
      if (answer.ok()) {
        ++ok_jobs;
      } else if (answer.status().IsOverloaded()) {
        ++shed_jobs;
      } else {
        TREX_CHECK_OK(answer.status());  // Anything else is a bench bug.
      }
    }
    double wall = watch.ElapsedSeconds();
    double qps = static_cast<double>(total_jobs) / wall;
    double goodput = static_cast<double>(ok_jobs) / wall;
    double shed_rate =
        static_cast<double>(shed_jobs) / static_cast<double>(total_jobs);
    std::printf("\noverload (queue depth 4, %zu threads): raw qps %.1f, "
                "goodput %.1f qps, shed %zu/%zu (%.1f%%)\n",
                threads, qps, goodput, shed_jobs, total_jobs,
                shed_rate * 100.0);
    obs::Default()
        .GetGauge("bench.throughput.overload.qps_x100")
        ->Set(static_cast<int64_t>(qps * 100));
    obs::Default()
        .GetGauge("bench.throughput.overload.goodput_qps_x100")
        ->Set(static_cast<int64_t>(goodput * 100));
    obs::Default()
        .GetGauge("bench.throughput.overload.shed_rate_x10000")
        ->Set(static_cast<int64_t>(shed_rate * 10000));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main() {
  int rc = trex::bench::Run();
  trex::bench::WriteBenchMetrics("bench_throughput");
  return rc;
}
