// Reproduces the §2.1 summary-size comparison: "For the IEEE collection,
// the complete incoming summary with no aliases has 11563 nodes. For the
// tags summary, the number of nodes is 185. The total size of the alias
// incoming summary is 7860. The alias tag summary has 145 nodes."
//
// The absolute counts depend on the collection; the *ordering*
// (incoming > alias incoming >> tag > alias tag) and the
// ancestor-disjointness of the alias incoming summary are the
// reproduced facts.
#include <cstdio>

#include "bench/harness.h"
#include "summary/builder.h"

namespace trex {
namespace bench {
namespace {

void Report(const char* collection, const DocumentGenerator& gen,
            const AliasMap& aliases) {
  struct Config {
    const char* name;
    SummaryKind kind;
    const AliasMap* aliases;
  };
  const Config configs[] = {
      {"incoming", SummaryKind::kIncoming, nullptr},
      {"alias incoming", SummaryKind::kIncoming, &aliases},
      {"tag", SummaryKind::kTag, nullptr},
      {"alias tag", SummaryKind::kTag, &aliases},
  };
  std::printf("%s collection (%zu documents):\n", collection,
              gen.num_documents());
  std::printf("  %-16s %10s %12s %22s\n", "summary", "nodes", "elements",
              "ancestor-violations");
  for (const Config& c : configs) {
    SummaryBuilder builder(c.kind, c.aliases);
    for (size_t d = 0; d < gen.num_documents(); ++d) {
      TREX_CHECK_OK(builder.AddDocument(gen.Generate(static_cast<DocId>(d))));
    }
    Summary summary = builder.Take();
    std::printf("  %-16s %10zu %12llu %22llu\n", c.name,
                summary.num_label_nodes(),
                static_cast<unsigned long long>(summary.total_extent_size()),
                static_cast<unsigned long long>(
                    summary.ancestor_violations()));
  }
  std::printf("\n");
}

int Run() {
  std::printf("Section 2.1: structural summary sizes\n\n");
  IeeeGeneratorOptions ieee_options;
  ieee_options.num_documents = BenchScaleDocs("TREX_BENCH_IEEE_DOCS", 12000);
  IeeeGenerator ieee(ieee_options);
  AliasMap ieee_aliases = IeeeAliasMap();
  Report("IEEE-like", ieee, ieee_aliases);

  WikiGeneratorOptions wiki_options;
  wiki_options.num_documents = BenchScaleDocs("TREX_BENCH_WIKI_DOCS", 12000);
  WikiGenerator wiki(wiki_options);
  AliasMap wiki_aliases = WikiAliasMap();
  Report("Wikipedia-like", wiki, wiki_aliases);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main() {
  int rc = trex::bench::Run();
  trex::bench::WriteBenchMetrics("bench_summary_sizes");
  return rc;
}
