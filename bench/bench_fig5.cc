// Reproduces Figure 5: evaluation times for Query 260 (left) and
// Query 270 (right).
//
// Expected shapes (paper): Q260 — TA best only for very small k, Merge
// much faster for larger k, ITA grows with k. Q270 — TA expensive at
// mid-range k, cheap once k approaches the full answer count.
#include "bench/figure_common.h"

int main() {
  using namespace trex::bench;
  auto ieee = OpenBenchIndex("IEEE");
  std::printf("Figure 5: evaluation times for Query 260 and Query 270\n\n");
  for (const BenchQuery& q : Table1Queries()) {
    if (std::string(q.id) == "260" || std::string(q.id) == "270") {
      RunFigureForQuery(ieee.get(), q);
    }
  }
  WriteBenchMetrics("bench_fig5");
  return 0;
}
