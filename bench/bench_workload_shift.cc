// bench_workload_shift: how fast does the self-managing loop chase a
// moving workload?
//
// The bench serves two disjoint query sets against one index with the
// online advisor enabled (manual ticks, so the phases are
// deterministic):
//
//   a_cold     workload A on the bare index (ERA everywhere);
//   a_adapted  workload A again after one advisor tick;
//   b_cold     workload B right after the shift — the catalog still
//              holds A's lists, so B pays cold-path prices;
//   b_adapted  workload B after two more ticks (hysteresis may defer
//              the drop of A's now-cold lists to the second one).
//
// Per phase it reports wall time, qps and the summed per-query
// resource vector; per tick the advisor's own report (lists added and
// dropped, catalog bytes vs budget). The JSON document
// (BENCH_workload_shift.json, schema workload_shift/v1) is consumed by
// scripts/bench_compare.py --shift-report, which renders it as a
// NON-GATING report: adaptation speed is workload- and machine-
// dependent, so this bench informs rather than fails CI.
//
// With --scenario=NAME (a shifting_topic entry of the workload zoo,
// e.g. skew_shift or neardup_shift) the bench swaps the IEEE pair for
// the scenario's corpus and topic pools: workload A is the stream's
// pre-changepoint pool, workload B its post-changepoint pool, so the
// measured shift is exactly the one the zoo stream would serve.
//
// Knobs (environment, all optional):
//   TREX_BENCH_DATA        index/cache directory
//   TREX_BENCH_SHIFT_DOCS  corpus size at first build     (default 400;
//                          0 = zoo default in scenario mode)
//   TREX_BENCH_SHIFT_REPS  serves per query per phase     (default 8)
// Flags:
//   --out=PATH       output JSON (default BENCH_workload_shift.json, or
//                    BENCH_workload_shift_<name>.json in scenario mode)
//   --scenario=NAME  drive a zoo shifting-topic scenario instead
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/decision_log.h"
#include "bench/harness.h"
#include "common/clock.h"
#include "corpus/workload_zoo.h"
#include "obs/resource.h"
#include "retrieval/materializer.h"

namespace trex {
namespace bench {
namespace {

constexpr int kSchemaVersion = 1;
constexpr size_t kTopK = 10;

// Two disjoint IEEE workloads (Table 1 queries the shift alternates
// between). Scenario mode replaces these with a zoo stream's topic
// pools.
std::vector<ZooQuery> WorkloadA() {
  return {
      {"//article[about(., ontologies)]//sec[about(., ontologies case "
       "study)]",
       kTopK},
      {"//article//sec[about(., introduction information retrieval)]",
       kTopK},
  };
}

std::vector<ZooQuery> WorkloadB() {
  return {
      {"//sec[about(., code signing verification)]", kTopK},
      {"//article[about(.//bdy, synthesizers) and about(.//bdy, music)]",
       kTopK},
  };
}

struct PhaseResult {
  std::string name;       // "a_cold" | "a_adapted" | "b_cold" | ...
  size_t queries = 0;     // Serves in the phase.
  double wall_s = 0.0;
  double qps = 0.0;
  obs::ResourceUsage totals;
};

struct TickResult {
  std::string after_phase;
  AdvisorTickReport report;
};

// Serves every query in `workload` `reps` times through the recording
// facade path and sums the per-answer resource vectors.
PhaseResult ServePhase(TReX* trex, const char* name,
                       const std::vector<ZooQuery>& workload, size_t reps) {
  PhaseResult phase;
  phase.name = name;
  Stopwatch watch;
  for (size_t r = 0; r < reps; ++r) {
    for (const ZooQuery& q : workload) {
      auto answer = trex->Query(q.nexi, q.k);
      TREX_CHECK_OK(answer.status());
      const obs::ResourceUsage& u = answer.value().resources;
      phase.totals.pages_fetched += u.pages_fetched;
      phase.totals.pages_faulted += u.pages_faulted;
      phase.totals.bytes_read += u.bytes_read;
      phase.totals.bytes_decoded += u.bytes_decoded;
      phase.totals.list_fragments += u.list_fragments;
      phase.totals.blocks_decoded += u.blocks_decoded;
      phase.totals.blocks_skipped += u.blocks_skipped;
      phase.totals.postings_scanned += u.postings_scanned;
      phase.totals.sorted_accesses += u.sorted_accesses;
      phase.totals.random_accesses += u.random_accesses;
      phase.totals.elements_scanned += u.elements_scanned;
      phase.totals.heap_operations += u.heap_operations;
      phase.totals.cpu_nanos += u.cpu_nanos;
      ++phase.queries;
    }
  }
  phase.wall_s = watch.ElapsedSeconds();
  phase.qps = static_cast<double>(phase.queries) / phase.wall_s;
  std::printf("%-10s %4zu queries %8.3fs %8.1f qps  %8" PRIu64 " pages\n",
              phase.name.c_str(), phase.queries, phase.wall_s, phase.qps,
              phase.totals.pages_fetched);
  return phase;
}

TickResult Tick(TReX* trex, const char* after_phase) {
  TickResult tick;
  tick.after_phase = after_phase;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&tick.report));
  std::printf("  tick %" PRIu64 ": +%zu/-%zu lists (%zu deferred), "
              "%" PRIu64 "/%" PRIu64 " bytes\n",
              tick.report.tick, tick.report.lists_materialized,
              tick.report.lists_dropped, tick.report.drops_deferred,
              tick.report.bytes_materialized, tick.report.bytes_budget);
  return tick;
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendPhase(std::string* out, const PhaseResult& p) {
  out->append("{\"name\":\"");
  out->append(p.name);
  out->append("\",\"queries\":");
  AppendU64(out, p.queries);
  out->append(",\"wall_s\":");
  AppendDouble(out, p.wall_s);
  out->append(",\"qps\":");
  AppendDouble(out, p.qps);
  out->append(",\"resources\":");
  p.totals.AppendJson(out);
  out->push_back('}');
}

void AppendTick(std::string* out, const TickResult& t) {
  out->append("{\"after_phase\":\"");
  out->append(t.after_phase);
  out->append("\",\"tick\":");
  AppendU64(out, t.report.tick);
  out->append(",\"planned\":");
  out->append(t.report.planned ? "true" : "false");
  out->append(",\"applied\":");
  out->append(t.report.applied ? "true" : "false");
  out->append(",\"workload_queries\":");
  AppendU64(out, t.report.workload_queries);
  out->append(",\"lists_materialized\":");
  AppendU64(out, t.report.lists_materialized);
  out->append(",\"lists_dropped\":");
  AppendU64(out, t.report.lists_dropped);
  out->append(",\"drops_deferred\":");
  AppendU64(out, t.report.drops_deferred);
  out->append(",\"bytes_materialized\":");
  AppendU64(out, t.report.bytes_materialized);
  out->append(",\"bytes_budget\":");
  AppendU64(out, t.report.bytes_budget);
  out->append(",\"planned_saving_s\":");
  AppendDouble(out, t.report.planned_saving);
  out->push_back('}');
}

int Run(std::string out_path, const std::string& scenario_name) {
  const size_t reps = BenchScaleDocs("TREX_BENCH_SHIFT_REPS", 8);

  // Resolve the workload pair: Table 1 by default, a zoo shifting-topic
  // scenario's pre-/post-changepoint pools with --scenario.
  const ScenarioSpec* spec = nullptr;
  std::vector<ZooQuery> workload_a = WorkloadA();
  std::vector<ZooQuery> workload_b = WorkloadB();
  std::string collection = "IEEE";
  if (!scenario_name.empty()) {
    spec = FindScenario(scenario_name);
    if (spec == nullptr || spec->stream != "shifting_topic") {
      std::fprintf(stderr,
                   "--scenario wants a shifting_topic zoo entry; have:\n");
      for (const ScenarioSpec& s : ScenarioTable()) {
        if (s.stream == "shifting_topic") {
          std::fprintf(stderr, "  %s\n", s.name.c_str());
        }
      }
      return 2;
    }
    std::unique_ptr<QueryStream> stream = spec->make_stream(/*seed=*/777);
    auto* shift = dynamic_cast<ShiftingTopicStream*>(stream.get());
    if (shift == nullptr) {
      std::fprintf(stderr, "scenario %s stream is not a ShiftingTopicStream\n",
                   spec->name.c_str());
      return 2;
    }
    workload_a = shift->topic_a();
    workload_b = shift->topic_b();
    collection = spec->corpus;
  }
  if (out_path.empty()) {
    out_path = scenario_name.empty()
                   ? "BENCH_workload_shift.json"
                   : "BENCH_workload_shift_" + scenario_name + ".json";
  }

  // A dedicated (small) index: the shift bench mutates its catalog, so
  // it must not share the suite's read-mostly caches.
  std::string dir = BenchDataDir() + (spec == nullptr
                                          ? std::string("/ShiftIEEE")
                                          : "/shift_" + spec->name);
  TrexOptions options;
  if (spec == nullptr) options.index.aliases = IeeeAliasMap();
  std::unique_ptr<TReX> trex;
  if (Env::FileExists(dir + "/manifest.txt")) {
    auto opened = TReX::Open(dir, options);
    TREX_CHECK_OK(opened.status());
    trex = std::move(opened).value();
  } else {
    std::fprintf(stderr, "[bench] building shift index in %s ...\n",
                 dir.c_str());
    auto built = [&]() -> Result<std::unique_ptr<TReX>> {
      if (spec == nullptr) {
        IeeeGeneratorOptions gen_options;
        gen_options.num_documents =
            BenchScaleDocs("TREX_BENCH_SHIFT_DOCS", 400);
        IeeeGenerator gen(gen_options);
        return TReX::Build(dir, gen, options);
      }
      std::unique_ptr<DocumentGenerator> gen = spec->make_corpus(
          BenchScaleDocs("TREX_BENCH_SHIFT_DOCS", 0));
      return TReX::Build(dir, *gen, options);
    }();
    TREX_CHECK_OK(built.status());
    trex = std::move(built).value();
    TREX_CHECK_OK(trex->index()->Flush());
  }

  // Start every run from a bare catalog so reruns over a cached index
  // measure the same adaptation path.
  {
    std::vector<ListUnit> all_units;
    {
      auto snapshot = trex->index()->ReaderLock();
      auto entries = trex->index()->catalog()->List();
      TREX_CHECK_OK(entries.status());
      for (const CatalogEntry& e : entries.value()) {
        all_units.push_back(ListUnit{e.kind, e.term, e.sid});
      }
    }
    if (!all_units.empty()) {
      TREX_CHECK_OK(DropUnits(trex->index(), all_units));
      TREX_CHECK_OK(trex->index()->Flush());
    }
  }
  // Fresh decision audit for this run, so the replay self-check below
  // folds exactly this run's applies over the (now empty) catalog.
  std::remove(AuditLogPath(trex->index()->dir()).c_str());

  // Manual ticks; one-tick hysteresis so the b_adapted phase shows the
  // drop of A's lists within the advertised two ticks.
  TReX::SelfManagementOptions sm;
  sm.loop.min_list_age_ticks = 1;
  sm.start_background = false;
  sm.load_persisted = false;
  TREX_CHECK_OK(trex->EnableSelfManagement(std::move(sm)));

  std::vector<PhaseResult> phases;
  std::vector<TickResult> ticks;

  phases.push_back(ServePhase(trex.get(), "a_cold", workload_a, reps));
  ticks.push_back(Tick(trex.get(), "a_cold"));
  phases.push_back(ServePhase(trex.get(), "a_adapted", workload_a, reps));

  // The shift: drown A's sketch weight under B before re-planning.
  trex->workload_recorder()->Clear();
  phases.push_back(ServePhase(trex.get(), "b_cold", workload_b, reps));
  ticks.push_back(Tick(trex.get(), "b_cold"));
  ticks.push_back(Tick(trex.get(), "b_cold"));
  phases.push_back(ServePhase(trex.get(), "b_adapted", workload_b, reps));

  // Audit self-check: every advisor apply this run must be
  // reconstructible from the decision log alone — folding its records
  // over the empty starting catalog has to reproduce the live catalog.
  {
    std::ifstream in(AuditLogPath(trex->index()->dir()));
    std::ostringstream text;
    text << in.rdbuf();
    auto replay = ReplayAuditLog(text.str());
    TREX_CHECK_OK(replay.status());
    std::set<ListUnit> live;
    {
      auto snapshot = trex->index()->ReaderLock();
      auto entries = trex->index()->catalog()->List();
      TREX_CHECK_OK(entries.status());
      for (const CatalogEntry& e : entries.value()) {
        live.insert(ListUnit{e.kind, e.term, e.sid});
      }
    }
    if (replay.value().catalog != live) {
      std::fprintf(stderr,
                   "[bench_workload_shift] advisor_decisions.jsonl replay "
                   "diverges from the live catalog (%zu vs %zu lists)\n",
                   replay.value().catalog.size(), live.size());
      return 1;
    }
    std::printf("  audit: %zu applies replayed, %zu lists match\n",
                replay.value().applies, live.size());
  }

  TREX_CHECK_OK(trex->DisableSelfManagement());

  std::string json = "{\"schema_version\":";
  AppendU64(&json, kSchemaVersion);
  json.append(",\"bench\":\"workload_shift\",");
  if (spec != nullptr) {
    json.append("\"scenario\":\"");
    json.append(spec->name);
    json.append("\",");
  }
  json.append("\"git_sha\":\"");
  json.append(BenchGitSha());
  json.append("\",\"collection\":\"");
  json.append(collection);
  json.append("\",\"k\":");
  AppendU64(&json, kTopK);
  json.append(",\"reps_per_query\":");
  AppendU64(&json, reps);
  json.append(",\"phases\":[");
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendPhase(&json, phases[i]);
  }
  json.append("],\"ticks\":[");
  for (size_t i = 0; i < ticks.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendTick(&json, ticks[i]);
  }
  json.append("]}\n");

  Status s = Env::WriteStringToFile(out_path, json);
  if (!s.ok()) {
    std::fprintf(stderr, "[bench_workload_shift] cannot write %s: %s\n",
                 out_path.c_str(), s.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu phases, %zu ticks -> %s\n", phases.size(),
              ticks.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main(int argc, char** argv) {
  std::string out_path;
  std::string scenario;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      scenario = arg + 11;
    } else {
      std::fprintf(stderr,
                   "usage: bench_workload_shift [--out=PATH] "
                   "[--scenario=NAME]\n");
      return 2;
    }
  }
  int rc = trex::bench::Run(out_path, scenario);
  trex::bench::WriteBenchMetrics(scenario.empty()
                                     ? "bench_workload_shift"
                                     : "bench_workload_shift_" + scenario);
  return rc;
}
