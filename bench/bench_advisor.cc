// §4 ablation benches (the paper describes the self-manager but reports
// no advisor measurements; these quantify its behaviour):
//   (a) weighted workload saving as a function of the disk budget d, for
//       the greedy 2-approximation vs the exact ILP vs no indexes;
//   (b) greedy quality vs brute-force optimum and solver running times
//       on random instances (Theorem 4.2 in practice).
#include <cstdio>

#include "advisor/advisor.h"
#include "bench/harness.h"
#include "common/clock.h"
#include "common/rng.h"

namespace trex {
namespace bench {
namespace {

void BudgetSweep() {
  auto trex = OpenBenchIndex("IEEE");
  Workload workload;
  // The five IEEE Table 1 queries with a skewed frequency profile.
  workload.Add(Table1Queries()[0].nexi, 0.35, 10);   // Q202
  workload.Add(Table1Queries()[1].nexi, 0.25, 10);   // Q203
  workload.Add(Table1Queries()[2].nexi, 0.20, 100);  // Q233
  workload.Add(Table1Queries()[3].nexi, 0.15, 10);   // Q260
  workload.Add(Table1Queries()[4].nexi, 0.05, 1000); // Q270
  TREX_CHECK_OK(workload.Validate());
  TREX_CHECK_OK(workload.Prepare(trex->index()));

  std::printf(
      "(a) Weighted saving vs disk budget d (measured costs, per query "
      "evaluation)\n");
  std::printf("  %-12s %16s %16s %18s %18s\n", "budget", "greedy-saving(s)",
              "ilp-saving(s)", "greedy-bytes", "ilp-bytes");
  // Measure the instance ONCE (costs and sizes), then sweep the budget
  // against the same instance so both solvers see identical numbers.
  SelectionInstance instance;
  {
    SelfManagerOptions options;
    options.costs = SelfManagerOptions::Costs::kMeasured;
    SelfManager manager(trex->index(), options);
    SelectionResult ignored;
    TREX_CHECK_OK(manager.Plan(workload, &instance, &ignored));
  }
  for (uint64_t budget :
       {64ull << 10, 256ull << 10, 1ull << 20, 4ull << 20, 16ull << 20,
        256ull << 20}) {
    instance.disk_budget = budget;
    SelectionResult greedy = SolveGreedy(instance);
    SelectionResult ilp = SolveIlp(instance);
    std::printf("  %-12llu %16.4f %16.4f %18llu %18llu\n",
                static_cast<unsigned long long>(budget), greedy.total_saving,
                ilp.total_saving,
                static_cast<unsigned long long>(greedy.total_size),
                static_cast<unsigned long long>(ilp.total_size));
  }
  std::printf("\n");
}

SelectionInstance RandomInstance(Rng* rng, size_t n) {
  SelectionInstance instance;
  double total = 0;
  std::vector<double> freqs;
  for (size_t i = 0; i < n; ++i) {
    freqs.push_back(0.1 + rng->NextDouble());
    total += freqs.back();
  }
  for (size_t i = 0; i < n; ++i) {
    SelectionQuery q;
    q.frequency = freqs[i] / total;
    q.merge_saving = rng->NextDouble() * 100;
    q.ta_saving = rng->NextDouble() * 100;
    q.s_erpl = 1 + rng->Uniform(1000);
    q.s_rpl = 1 + rng->Uniform(1000);
    instance.queries.push_back(q);
  }
  instance.disk_budget = 1 + rng->Uniform(3000);
  return instance;
}

void SolverQuality() {
  std::printf(
      "(b) Greedy vs exact on random instances (Theorem 4.2 bound: "
      "optimal <= 2 x greedy)\n");
  std::printf("  %-10s %14s %14s %14s %14s\n", "queries", "avg-ratio",
              "worst-ratio", "greedy-us", "ilp-us");
  Rng rng(2024);
  for (size_t n : {4, 8, 12, 16, 24}) {
    double worst_ratio = 1.0, ratio_sum = 0.0;
    double greedy_us = 0, ilp_us = 0;
    const int kTrials = 50;
    for (int t = 0; t < kTrials; ++t) {
      SelectionInstance instance = RandomInstance(&rng, n);
      Stopwatch w1;
      SelectionResult greedy = SolveGreedy(instance);
      greedy_us += w1.ElapsedSeconds() * 1e6;
      Stopwatch w2;
      SelectionResult exact = SolveIlp(instance);
      ilp_us += w2.ElapsedSeconds() * 1e6;
      double ratio = greedy.total_saving > 0
                         ? exact.total_saving / greedy.total_saving
                         : 1.0;
      ratio_sum += ratio;
      worst_ratio = std::max(worst_ratio, ratio);
    }
    std::printf("  %-10zu %14.4f %14.4f %14.1f %14.1f\n", n,
                ratio_sum / kTrials, worst_ratio, greedy_us / kTrials,
                ilp_us / kTrials);
  }
  std::printf("\n");
}

int Run() {
  std::printf("Section 4 ablation: self-managing index selection\n\n");
  BudgetSweep();
  SolverQuality();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main() {
  int rc = trex::bench::Run();
  trex::bench::WriteBenchMetrics("bench_advisor");
  return rc;
}
