// Shared runner for the Figure 4-6 reproductions: for one Table 1 query,
// measure ERA (all answers), Merge (all answers), and TA / ITA as a
// function of k — the exact series the paper plots.
#ifndef TREX_BENCH_FIGURE_COMMON_H_
#define TREX_BENCH_FIGURE_COMMON_H_

#include <cstdio>

#include "bench/harness.h"
#include "retrieval/era.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {
namespace bench {

inline void RunFigureForQuery(TReX* trex, const BenchQuery& query) {
  Index* index = trex->index();
  auto translated = TranslateNexi(query.nexi, index->summary(),
                                  &index->aliases(), index->tokenizer());
  TREX_CHECK_OK(translated.status());
  const TranslatedClause& clause = translated.value().flattened;

  // The redundant indexes for this query (§4 would normally decide this;
  // the figures assume both exist).
  MaterializeStats mat;
  TREX_CHECK_OK(MaterializeForClause(index, clause, true, true, &mat));

  std::printf("== Query %s (%s): %s\n", query.id, query.collection,
              query.nexi);
  uint64_t list_bytes = 0;
  {
    auto entries = index->catalog()->List();
    TREX_CHECK_OK(entries.status());
    for (const CatalogEntry& e : entries.value()) {
      for (const ListUnit& u : UnitsForClause(clause, true, true)) {
        if (u.kind == e.kind && u.term == e.term && u.sid == e.sid) {
          list_bytes += e.size_bytes;
        }
      }
    }
  }
  std::printf("   translation: %zu sids, %zu terms; %zu redundant lists"
              " (%llu bytes)\n",
              clause.sids.size(), clause.terms.size(),
              mat.lists_written + mat.lists_skipped,
              static_cast<unsigned long long>(list_bytes));

  Era era(index);
  RetrievalResult result;
  double t_era = TimeRuns([&]() {
    TREX_CHECK_OK(era.Evaluate(clause, &result));
    return result.metrics.wall_seconds;
  });
  size_t num_answers = result.elements.size();

  Merge merge(index);
  double t_merge = TimeRuns([&]() {
    TREX_CHECK_OK(merge.Evaluate(clause, &result));
    return result.metrics.wall_seconds;
  });

  std::printf("   ERA   (all %zu answers): %10.4f s\n", num_answers, t_era);
  std::printf("   Merge (all %zu answers): %10.4f s\n", num_answers,
              t_merge);
  std::printf("   %-9s %12s %12s %14s %12s\n", "k", "TA(s)", "ITA(s)",
              "sorted-acc", "heap-ops");

  Ta ta(index);
  // k sweep: log-spaced from 1 to beyond the full answer count (the
  // paper sweeps 1..30000 and beyond).
  std::vector<size_t> ks = {1,    5,    10,    50,    100,
                            500,  1000, 5000,  10000, 30000};
  ks.push_back(num_answers > 0 ? num_answers : 1);
  for (size_t k : ks) {
    if (k > num_answers && k != ks.back()) continue;
    // TA and ITA come from the same runs (one measurement, two clocks);
    // the reported pair is the run with the median wall time.
    std::vector<RetrievalMetrics> metrics;
    TimeRuns([&]() {
      TREX_CHECK_OK(ta.Evaluate(clause, k, &result));
      metrics.push_back(result.metrics);
      return result.metrics.wall_seconds;
    });
    std::sort(metrics.begin(), metrics.end(),
              [](const RetrievalMetrics& a, const RetrievalMetrics& b) {
                return a.wall_seconds < b.wall_seconds;
              });
    const RetrievalMetrics& median = metrics[metrics.size() / 2];
    double t_ta = median.wall_seconds;
    double t_ita = median.ideal_seconds;
    uint64_t accesses = median.sorted_accesses;
    uint64_t heap_ops = median.heap_operations;
    std::printf("   %-9zu %12.4f %12.4f %14llu %12llu%s\n", k, t_ta, t_ita,
                static_cast<unsigned long long>(accesses),
                static_cast<unsigned long long>(heap_ops),
                k == ks.back() ? "  (= all answers)" : "");
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace trex

#endif  // TREX_BENCH_FIGURE_COMMON_H_
