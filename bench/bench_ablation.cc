// Design-choice ablations (ours) for the components DESIGN.md calls out:
//   (a) buffer-pool capacity vs ERA time — the storage engine's cache is
//       what stands in for BerkeleyDB's; ERA's sequential scans should be
//       insensitive, extent seeks benefit from caching;
//   (b) summary choice vs translation — how the sid sets of the Table 1
//       queries differ between the alias incoming summary (the paper's
//       choice) and the no-alias incoming summary;
//   (c) estimated vs measured advisor costs — does the analytic model
//       order the methods the same way the measurements do?
#include <cstdio>
#include <filesystem>

#include "advisor/cost_model.h"
#include "bench/harness.h"
#include "retrieval/era.h"
#include "retrieval/materializer.h"
#include "summary/builder.h"

namespace trex {
namespace bench {
namespace {

void BufferPoolAblation() {
  std::printf("(a) buffer-pool capacity vs ERA time (Q202)\n");
  std::printf("  %-14s %12s %14s %14s\n", "cache-pages", "ERA(s)",
              "page-reads", "page-accesses");
  for (size_t cache_pages : {16, 64, 256, 1024, 4096}) {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    options.index.cache_pages = cache_pages;
    auto trex = TReX::Open(BenchDataDir() + "/IEEE", options);
    TREX_CHECK_OK(trex.status());
    Index* index = trex.value()->index();
    auto translated =
        TranslateNexi(Table1Queries()[0].nexi, index->summary(),
                      &index->aliases(), index->tokenizer());
    TREX_CHECK_OK(translated.status());
    const TranslatedClause& clause = translated.value().flattened;

    Era era(index);
    RetrievalResult result;
    index->elements()->table()->tree()->buffer_pool()->ResetCounters();
    index->postings()->postings_table()->tree()->buffer_pool()
        ->ResetCounters();
    double t = TimeRuns([&]() {
      TREX_CHECK_OK(era.Evaluate(clause, &result));
      return result.metrics.wall_seconds;
    });
    uint64_t reads =
        index->elements()->table()->tree()->buffer_pool()->page_reads() +
        index->postings()->postings_table()->tree()->buffer_pool()
            ->page_reads();
    uint64_t accesses =
        index->elements()->table()->tree()->buffer_pool()->page_accesses() +
        index->postings()->postings_table()->tree()->buffer_pool()
            ->page_accesses();
    std::printf("  %-14zu %12.4f %14llu %14llu\n", cache_pages, t,
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(accesses));
  }
  std::printf("\n");
}

void SummaryAblation() {
  std::printf(
      "(b) summary choice vs query translation (#sids per Table 1 IEEE "
      "query)\n");
  size_t docs = BenchScaleDocs("TREX_BENCH_IEEE_DOCS", 12000);
  // Build both summaries once over the generator (no index needed).
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = std::min<size_t>(docs, 2000);
  IeeeGenerator gen(gen_options);
  AliasMap aliases = IeeeAliasMap();
  SummaryBuilder aliased_builder(SummaryKind::kIncoming, &aliases);
  SummaryBuilder plain_builder(SummaryKind::kIncoming, nullptr);
  for (size_t d = 0; d < gen.num_documents(); ++d) {
    std::string doc = gen.Generate(static_cast<DocId>(d));
    TREX_CHECK_OK(aliased_builder.AddDocument(doc));
    TREX_CHECK_OK(plain_builder.AddDocument(doc));
  }
  Summary aliased = aliased_builder.Take();
  Summary plain = plain_builder.Take();
  Tokenizer tokenizer;
  std::printf("  %-6s %18s %18s\n", "query", "alias-incoming", "incoming");
  for (const BenchQuery& q : Table1Queries()) {
    if (std::string(q.collection) != "IEEE") continue;
    auto ta = TranslateNexi(q.nexi, aliased, &aliases, tokenizer);
    auto tp = TranslateNexi(q.nexi, plain, nullptr, tokenizer);
    TREX_CHECK_OK(ta.status());
    TREX_CHECK_OK(tp.status());
    std::printf("  %-6s %18zu %18zu\n", q.id,
                ta.value().flattened.sids.size(),
                tp.value().flattened.sids.size());
  }
  std::printf(
      "  (the alias summary folds synonymous section tags into one sid;\n"
      "   without aliases each synonym path is a separate sid, §2.1)\n\n");
}

void CostModelAblation() {
  std::printf("(c) estimated vs measured per-query costs\n");
  auto trex = OpenBenchIndex("IEEE");
  std::printf("  %-6s %12s %12s %12s | %12s %12s %12s\n", "query",
              "est-ERA", "est-Merge", "est-TA", "meas-ERA", "meas-Merge",
              "meas-TA");
  for (const BenchQuery& q : Table1Queries()) {
    if (std::string(q.collection) != "IEEE") continue;
    Index* index = trex->index();
    auto translated = TranslateNexi(q.nexi, index->summary(),
                                    &index->aliases(), index->tokenizer());
    TREX_CHECK_OK(translated.status());
    const TranslatedClause& clause = translated.value().flattened;
    auto est = CostModel::Estimate(index, clause, 10);
    TREX_CHECK_OK(est.status());
    auto meas = CostModel::Measure(index, clause, 10);
    TREX_CHECK_OK(meas.status());
    std::printf("  %-6s %12.4f %12.4f %12.4f | %12.4f %12.4f %12.4f\n",
                q.id, est.value().t_era, est.value().t_merge,
                est.value().t_ta, meas.value().t_era, meas.value().t_merge,
                meas.value().t_ta);
  }
  std::printf("\n");
}

int Run() {
  std::printf("Design-choice ablations\n\n");
  // Ensure the shared bench index exists before the pool ablation opens
  // it with varying cache sizes.
  OpenBenchIndex("IEEE");
  BufferPoolAblation();
  SummaryAblation();
  CostModelAblation();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main() {
  int rc = trex::bench::Run();
  trex::bench::WriteBenchMetrics("bench_ablation");
  return rc;
}
