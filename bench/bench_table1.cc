// Reproduces Table 1: "NEXI queries we experimented with, the size of
// their translation and the size of the result" — query id, NEXI
// expression, collection, #sids, #terms, #answers.
#include <cstdio>

#include "bench/harness.h"

namespace trex {
namespace bench {
namespace {

int Run() {
  auto ieee = OpenBenchIndex("IEEE");
  auto wiki = OpenBenchIndex("Wiki");

  std::printf("Table 1: query translation and result sizes\n");
  std::printf("%-5s %-11s %6s %7s %9s  %s\n", "ID", "Collection", "#sids",
              "#terms", "#answers", "NEXI");
  for (const BenchQuery& q : Table1Queries()) {
    TReX* trex = q.collection == std::string("Wiki") ? wiki.get()
                                                     : ieee.get();
    auto answer = trex->QueryWith(RetrievalMethod::kEra, q.nexi, 0);
    TREX_CHECK_OK(answer.status());
    std::printf("%-5s %-11s %6zu %7zu %9zu  %s\n", q.id, q.collection,
                answer.value().translation.flattened.sids.size(),
                answer.value().translation.flattened.terms.size(),
                answer.value().result.elements.size(), q.nexi);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main() {
  int rc = trex::bench::Run();
  trex::bench::WriteBenchMetrics("bench_table1");
  return rc;
}
