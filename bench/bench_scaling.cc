// Scaling ablation (ours): how index construction and the three
// retrieval methods scale with corpus size. The paper's conclusion —
// no single strategy dominates — should hold at every scale; this bench
// shows the gaps widening as lists grow.
#include <cstdio>
#include <filesystem>

#include "bench/harness.h"
#include "common/clock.h"
#include "retrieval/era.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {
namespace bench {
namespace {

int Run() {
  std::printf("Scaling: build + method times vs corpus size (IEEE-like)\n");
  std::printf("query: %s (k = 10)\n\n", Table1Queries()[0].nexi);
  std::printf("%8s %10s %10s %12s %10s %10s %10s %10s\n", "docs",
              "elements", "build(s)", "idx-bytes", "ERA(s)", "Merge(s)",
              "TA(s)", "answers");

  for (size_t docs : {500, 1000, 2000, 4000, 8000}) {
    std::string dir = BenchDataDir() + "/scaling_" + std::to_string(docs);
    std::filesystem::remove_all(dir);
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = docs;
    IeeeGenerator gen(gen_options);

    Stopwatch build_watch;
    auto built = TReX::Build(dir, gen, options);
    TREX_CHECK_OK(built.status());
    double build_s = build_watch.ElapsedSeconds();
    auto trex = std::move(built).value();
    Index* index = trex->index();

    auto translated =
        TranslateNexi(Table1Queries()[0].nexi, index->summary(),
                      &index->aliases(), index->tokenizer());
    TREX_CHECK_OK(translated.status());
    const TranslatedClause& clause = translated.value().flattened;
    MaterializeStats mat;
    TREX_CHECK_OK(MaterializeForClause(index, clause, true, true, &mat));

    RetrievalResult result;
    Era era(index);
    double t_era = TimeRuns([&]() {
      TREX_CHECK_OK(era.Evaluate(clause, &result));
      return result.metrics.wall_seconds;
    });
    size_t answers = result.elements.size();
    Merge merge(index);
    double t_merge = TimeRuns([&]() {
      TREX_CHECK_OK(merge.Evaluate(clause, &result));
      return result.metrics.wall_seconds;
    });
    Ta ta(index);
    double t_ta = TimeRuns([&]() {
      TREX_CHECK_OK(ta.Evaluate(clause, 10, &result));
      return result.metrics.wall_seconds;
    });

    uint64_t index_bytes = index->elements()->SizeBytes() +
                           index->postings()->SizeBytes();
    std::printf("%8zu %10llu %10.2f %12llu %10.4f %10.4f %10.4f %10zu\n",
                docs,
                static_cast<unsigned long long>(index->stats().num_elements),
                build_s, static_cast<unsigned long long>(index_bytes),
                t_era, t_merge, t_ta, answers);
    trex.reset();
    std::filesystem::remove_all(dir);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main() {
  int rc = trex::bench::Run();
  trex::bench::WriteBenchMetrics("bench_scaling");
  return rc;
}
