// Micro-benchmarks (google-benchmark) for the substrate components: the
// storage engine, codecs, tokenizer/stemmer, and the instrumented heap.
// These calibrate the advisor's analytic cost model constants.
#include <filesystem>

#include "benchmark/benchmark.h"
#include "common/coding.h"
#include "common/rng.h"
#include "retrieval/heap.h"
#include "index/posting_lists.h"
#include "index/rpl.h"
#include "storage/bptree.h"
#include "corpus/vocabulary.h"
#include "text/porter_stemmer.h"
#include "trex/trex.h"
#include "text/tokenizer.h"

namespace trex {
namespace {

std::string TempTreePath(const std::string& name) {
  std::string dir = std::filesystem::temp_directory_path() / "trex_micro";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/" + name;
  std::filesystem::remove(path);
  return path;
}

void BM_BPTreePut(benchmark::State& state) {
  auto tree = BPTree::Open(TempTreePath("put"), 2048);
  TREX_CHECK_OK(tree.status());
  Rng rng(1);
  std::string value(64, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key;
    PutBigEndian64(&key, rng.Next());
    PutBigEndian64(&key, i++);
    TREX_CHECK_OK(tree.value()->Put(key, value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPTreePut);

void BM_BPTreeGet(benchmark::State& state) {
  auto tree = BPTree::Open(TempTreePath("get"), 2048);
  TREX_CHECK_OK(tree.status());
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    std::string key;
    PutBigEndian64(&key, static_cast<uint64_t>(i) * 7919);
    TREX_CHECK_OK(tree.value()->Put(key, "value"));
  }
  Rng rng(2);
  std::string value;
  for (auto _ : state) {
    std::string key;
    PutBigEndian64(&key, rng.Uniform(kN) * 7919);
    TREX_CHECK_OK(tree.value()->Get(key, &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPTreeGet);

void BM_BPTreeSeekScan(benchmark::State& state) {
  auto tree = BPTree::Open(TempTreePath("scan"), 2048);
  TREX_CHECK_OK(tree.status());
  const int kN = 100000;
  {
    BPTree::BulkLoader loader(tree.value().get());
    for (int i = 0; i < kN; ++i) {
      std::string key;
      PutBigEndian64(&key, static_cast<uint64_t>(i));
      TREX_CHECK_OK(loader.Add(key, "value"));
    }
    TREX_CHECK_OK(loader.Finish());
  }
  Rng rng(3);
  const int kScanLen = 64;
  for (auto _ : state) {
    std::string key;
    PutBigEndian64(&key, rng.Uniform(kN - kScanLen));
    BPTree::Iterator it(tree.value().get());
    TREX_CHECK_OK(it.Seek(key));
    for (int i = 0; i < kScanLen && it.Valid(); ++i) {
      benchmark::DoNotOptimize(it.value().data());
      TREX_CHECK_OK(it.Next());
    }
  }
  state.SetItemsProcessed(state.iterations() * kScanLen);
}
BENCHMARK(BM_BPTreeSeekScan);

void BM_BPTreeBulkLoad(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string path = TempTreePath("bulk");
    auto tree = BPTree::Open(path, 2048);
    TREX_CHECK_OK(tree.status());
    state.ResumeTiming();
    BPTree::BulkLoader loader(tree.value().get());
    for (int i = 0; i < 50000; ++i) {
      std::string key;
      PutBigEndian64(&key, static_cast<uint64_t>(i));
      TREX_CHECK_OK(loader.Add(key, "value"));
    }
    TREX_CHECK_OK(loader.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_BPTreeBulkLoad)->Unit(benchmark::kMillisecond);

void BM_VarintRoundTrip(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> rng.Uniform(56);
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out = 0, sum = 0;
    while (GetVarint64(&in, &out)) sum += out;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintRoundTrip);

void BM_PorterStem(benchmark::State& state) {
  std::vector<std::string> words = {
      "ontologies",    "evaluation", "retrieval",     "generalizations",
      "conditionally", "databases",  "effectiveness", "summarization"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PorterStem(words[i++ % words.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PorterStem);

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tok;
  std::string text;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    text += "retrieval systems evaluate the effectiveness of structural ";
  }
  std::vector<TokenOccurrence> out;
  for (auto _ : state) {
    out.clear();
    tok.Tokenize(text, 0, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_Tokenize);

void BM_InstrumentedHeapPushPop(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    InstrumentedHeap<uint64_t> heap;
    for (int i = 0; i < 1024; ++i) heap.Push(rng.Next());
    while (!heap.empty()) benchmark::DoNotOptimize(heap.Pop());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_InstrumentedHeapPushPop);


void BM_PostingIteration(benchmark::State& state) {
  std::string dir =
      std::filesystem::temp_directory_path() / "trex_micro_postings";
  std::filesystem::remove_all(dir);
  auto lists = PostingLists::Open(dir);
  TREX_CHECK_OK(lists.status());
  {
    std::vector<Position> positions;
    for (uint32_t d = 0; d < 100; ++d) {
      for (uint64_t o = 0; o < 1000; ++o) {
        positions.push_back(Position{d, o * 7});
      }
    }
    PostingLists::Loader loader(lists.value().get());
    TREX_CHECK_OK(loader.AddTerm("term", positions));
    TREX_CHECK_OK(loader.Finish());
  }
  for (auto _ : state) {
    PostingLists::PositionIterator it(lists.value().get(), "term");
    uint64_t sum = 0;
    while (!it.AtEnd()) {
      auto p = it.NextPosition();
      TREX_CHECK_OK(p.status());
      sum += p.value().offset;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PostingIteration);

void BM_RplIteration(benchmark::State& state) {
  std::string dir =
      std::filesystem::temp_directory_path() / "trex_micro_rpl";
  std::filesystem::remove_all(dir);
  auto store = RplStore::Open(dir);
  TREX_CHECK_OK(store.status());
  {
    Rng rng(9);
    std::vector<ScoredEntry> entries;
    for (int i = 0; i < 50000; ++i) {
      ScoredEntry e;
      e.docid = static_cast<DocId>(rng.Uniform(1000));
      e.endpos = static_cast<uint64_t>(i) * 13;
      e.length = 40;
      e.score = static_cast<float>(rng.NextDouble() * 10);
      entries.push_back(e);
    }
    uint64_t bytes = 0;
    TREX_CHECK_OK(store.value()->WriteList("term", 1, entries, &bytes));
    TREX_CHECK_OK(store.value()->Flush());
  }
  for (auto _ : state) {
    RplStore::Iterator it(store.value().get(), "term", 1);
    TREX_CHECK_OK(it.Init());
    double sum = 0;
    while (it.Valid()) {
      sum += it.entry().score;
      TREX_CHECK_OK(it.Next());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_RplIteration);


void BM_IncrementalAddDocument(benchmark::State& state) {
  std::string dir =
      std::filesystem::temp_directory_path() / "trex_micro_updater";
  std::filesystem::remove_all(dir);
  std::vector<std::string> seed_docs = {
      "<doc><sec><p>alpha beta gamma delta</p></sec></doc>"};
  auto trex = TReX::BuildFromDocuments(dir.c_str(), seed_docs, TrexOptions{});
  TREX_CHECK_OK(trex.status());
  Rng rng(12);
  for (auto _ : state) {
    std::string doc = "<doc><sec><p>";
    for (int i = 0; i < 60; ++i) {
      doc += Vocabulary::WordForRank(rng.Uniform(2000));
      doc.push_back(' ');
    }
    doc += "</p></sec></doc>";
    auto r = trex.value()->AddDocument(doc);
    TREX_CHECK_OK(r.status());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalAddDocument)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trex

BENCHMARK_MAIN();
