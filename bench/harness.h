// Shared infrastructure for the experiment benches (§5).
//
// Provides:
//  * lazily built, cached bench indexes for the IEEE-like and
//    Wikipedia-like collections (rebuilt only when absent);
//  * the seven Table 1 queries adapted verbatim from the paper;
//  * the paper's timing protocol: "we conducted five separate runs ...
//    The best and worst times were ignored and the reported runtime is
//    the average of the remaining three" (run count configurable via
//    TREX_BENCH_RUNS; default 3 -> median, a cheaper variant for CI).
#ifndef TREX_BENCH_HARNESS_H_
#define TREX_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/clock.h"
#include "corpus/ieee_generator.h"
#include "corpus/wiki_generator.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "trex/trex.h"

namespace trex {
namespace bench {

struct BenchQuery {
  const char* id;         // INEX query id from Table 1.
  const char* nexi;       // NEXI expression (paper's, verbatim).
  const char* collection; // "IEEE" or "Wiki".
};

// The seven queries of Table 1.
inline const std::vector<BenchQuery>& Table1Queries() {
  static const std::vector<BenchQuery> kQueries = {
      {"202",
       "//article[about(., ontologies)]//sec[about(., ontologies case "
       "study)]",
       "IEEE"},
      {"203", "//sec[about(., code signing verification)]", "IEEE"},
      {"233",
       "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]",
       "IEEE"},
      {"260", "//bdy//*[about(., model checking state space explosion)]",
       "IEEE"},
      {"270", "//article//sec[about(., introduction information retrieval)]",
       "IEEE"},
      {"290", "//article[about(., \"genetic algorithm\")]", "Wiki"},
      {"292",
       "//article//figure[about(., Renaissance painting Italian Flemish "
       "-French -German)]",
       "Wiki"},
  };
  return kQueries;
}

inline size_t BenchScaleDocs(const char* env, size_t dflt) {
  const char* v = std::getenv(env);
  return v != nullptr ? static_cast<size_t>(std::atoll(v)) : dflt;
}

inline std::string BenchDataDir() {
  const char* v = std::getenv("TREX_BENCH_DATA");
  return v != nullptr ? v : "trex_bench_data";
}

// Opens (building if needed) the bench index for one collection.
inline std::unique_ptr<TReX> OpenBenchIndex(const std::string& collection) {
  std::string dir = BenchDataDir() + "/" + collection;
  TrexOptions options;
  options.index.aliases =
      collection == "Wiki" ? WikiAliasMap() : IeeeAliasMap();
  if (Env::FileExists(dir + "/manifest.txt")) {
    auto trex = TReX::Open(dir, options);
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }
  std::fprintf(stderr, "[bench] building %s index in %s ...\n",
               collection.c_str(), dir.c_str());
  std::unique_ptr<TReX> trex;
  if (collection == "Wiki") {
    WikiGeneratorOptions gen_options;
    gen_options.num_documents = BenchScaleDocs("TREX_BENCH_WIKI_DOCS", 12000);
    WikiGenerator gen(gen_options);
    auto built = TReX::Build(dir, gen, options);
    TREX_CHECK_OK(built.status());
    trex = std::move(built).value();
  } else {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = BenchScaleDocs("TREX_BENCH_IEEE_DOCS", 12000);
    IeeeGenerator gen(gen_options);
    auto built = TReX::Build(dir, gen, options);
    TREX_CHECK_OK(built.status());
    trex = std::move(built).value();
  }
  TREX_CHECK_OK(trex->index()->Flush());
  std::fprintf(stderr, "[bench] %s index ready (%llu docs, %llu elements)\n",
               collection.c_str(),
               static_cast<unsigned long long>(
                   trex->index()->stats().num_documents),
               static_cast<unsigned long long>(
                   trex->index()->stats().num_elements));
  return trex;
}

// Applies the paper's protocol to a vector of per-run measurements:
// drop best and worst and average the rest at >= 5 runs, median below.
inline double ReduceRuns(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t runs = values.size();
  if (runs >= 5) {
    double sum = 0;
    for (size_t i = 1; i < runs - 1; ++i) sum += values[i];
    return sum / static_cast<double>(runs - 2);
  }
  return values[runs / 2];
}

inline int BenchRunCount(int default_runs) {
  const char* env = std::getenv("TREX_BENCH_RUNS");
  int runs = env != nullptr ? std::atoi(env) : default_runs;
  return runs < 1 ? 1 : runs;
}

// Paper timing protocol. Returns seconds.
inline double TimeRuns(const std::function<double()>& run_once) {
  const int runs = BenchRunCount(3);
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) times.push_back(run_once());
  return ReduceRuns(std::move(times));
}

// One timed measurement with the clocks the old TimeRuns lacked: the
// harness' own steady-clock wall time (run_once no longer self-reports,
// so every bench measures with the same monotonic clock) plus the
// process' rusage deltas — user/system CPU seconds and peak RSS — and
// the *calling thread's* CPU delta (CLOCK_THREAD_CPUTIME_ID). The
// process-wide user/sys numbers over-attribute sibling-thread work on
// a multi-bench binary (a background snapshotter or advisor tick
// charges the scenario that happened to be timing); thread_cpu_seconds
// is immune to that, though it equally misses work the bench fans out
// to its own worker threads — report both, diff to taste.
struct BenchRunStats {
  double seconds = 0.0;            // Steady-clock wall, protocol-reduced.
  double user_seconds = 0.0;       // rusage user CPU, protocol-reduced.
  double sys_seconds = 0.0;        // rusage system CPU, protocol-reduced.
  double thread_cpu_seconds = 0.0; // Caller-thread CPU, protocol-reduced.
  uint64_t max_rss_kb = 0;         // Peak RSS after the runs (monotone).
};

inline BenchRunStats TimeRunsDetailed(const std::function<void()>& run_once,
                                      int default_runs = 3) {
  const int runs = BenchRunCount(default_runs);
  std::vector<double> wall, user, sys, thread_cpu;
  wall.reserve(runs);
  user.reserve(runs);
  sys.reserve(runs);
  thread_cpu.reserve(runs);
  BenchRunStats stats;
  for (int i = 0; i < runs; ++i) {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage before {};
    getrusage(RUSAGE_SELF, &before);
#endif
    const int64_t thread_before = ThreadCpuNanos();
    Stopwatch watch;
    run_once();
    wall.push_back(watch.ElapsedSeconds());
    thread_cpu.push_back(
        static_cast<double>(ThreadCpuNanos() - thread_before) * 1e-9);
#if defined(__unix__) || defined(__APPLE__)
    struct rusage after {};
    getrusage(RUSAGE_SELF, &after);
    auto tv_seconds = [](const timeval& a, const timeval& b) {
      return static_cast<double>(b.tv_sec - a.tv_sec) +
             static_cast<double>(b.tv_usec - a.tv_usec) * 1e-6;
    };
    user.push_back(tv_seconds(before.ru_utime, after.ru_utime));
    sys.push_back(tv_seconds(before.ru_stime, after.ru_stime));
    stats.max_rss_kb = static_cast<uint64_t>(after.ru_maxrss);
#else
    user.push_back(0.0);
    sys.push_back(0.0);
#endif
  }
  stats.seconds = ReduceRuns(std::move(wall));
  stats.user_seconds = ReduceRuns(std::move(user));
  stats.sys_seconds = ReduceRuns(std::move(sys));
  stats.thread_cpu_seconds = ReduceRuns(std::move(thread_cpu));
  return stats;
}

// Best-effort current commit id for stamping bench artifacts:
// TREX_GIT_SHA wins (CI sets it), else .git/HEAD is followed one level.
inline std::string BenchGitSha() {
  const char* env = std::getenv("TREX_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  auto trim = [](std::string s) {
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                          s.back() == ' ')) {
      s.pop_back();
    }
    return s;
  };
  auto head = Env::ReadFileToString(".git/HEAD");
  if (!head.ok()) return "unknown";
  std::string contents = trim(std::move(head).value());
  if (contents.rfind("ref: ", 0) == 0) {
    auto ref = Env::ReadFileToString(".git/" + contents.substr(5));
    if (!ref.ok()) return "unknown";
    return trim(std::move(ref).value());
  }
  return contents.empty() ? "unknown" : contents;
}

// Dumps the cumulative metrics registry to <bench>_metrics.json in the
// bench data dir, so figure scripts can correlate reported times with
// the I/O and algorithm counters behind them. Call once, at exit.
inline void WriteBenchMetrics(const std::string& bench_name) {
  std::string path = BenchDataDir() + "/" + bench_name + "_metrics.json";
  Status s = Env::CreateDir(BenchDataDir());
  if (s.ok()) {
    s = Env::WriteStringToFile(path,
                               obs::Default().Snapshot().ToJson() + "\n");
  }
  if (!s.ok()) {
    std::fprintf(stderr, "[bench] cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "[bench] metrics written to %s\n", path.c_str());
}

}  // namespace bench
}  // namespace trex

#endif  // TREX_BENCH_HARNESS_H_
