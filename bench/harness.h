// Shared infrastructure for the experiment benches (§5).
//
// Provides:
//  * lazily built, cached bench indexes for the IEEE-like and
//    Wikipedia-like collections (rebuilt only when absent);
//  * the seven Table 1 queries adapted verbatim from the paper;
//  * the paper's timing protocol: "we conducted five separate runs ...
//    The best and worst times were ignored and the reported runtime is
//    the average of the remaining three" (run count configurable via
//    TREX_BENCH_RUNS; default 3 -> median, a cheaper variant for CI).
#ifndef TREX_BENCH_HARNESS_H_
#define TREX_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "corpus/ieee_generator.h"
#include "corpus/wiki_generator.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "trex/trex.h"

namespace trex {
namespace bench {

struct BenchQuery {
  const char* id;         // INEX query id from Table 1.
  const char* nexi;       // NEXI expression (paper's, verbatim).
  const char* collection; // "IEEE" or "Wiki".
};

// The seven queries of Table 1.
inline const std::vector<BenchQuery>& Table1Queries() {
  static const std::vector<BenchQuery> kQueries = {
      {"202",
       "//article[about(., ontologies)]//sec[about(., ontologies case "
       "study)]",
       "IEEE"},
      {"203", "//sec[about(., code signing verification)]", "IEEE"},
      {"233",
       "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]",
       "IEEE"},
      {"260", "//bdy//*[about(., model checking state space explosion)]",
       "IEEE"},
      {"270", "//article//sec[about(., introduction information retrieval)]",
       "IEEE"},
      {"290", "//article[about(., \"genetic algorithm\")]", "Wiki"},
      {"292",
       "//article//figure[about(., Renaissance painting Italian Flemish "
       "-French -German)]",
       "Wiki"},
  };
  return kQueries;
}

inline size_t BenchScaleDocs(const char* env, size_t dflt) {
  const char* v = std::getenv(env);
  return v != nullptr ? static_cast<size_t>(std::atoll(v)) : dflt;
}

inline std::string BenchDataDir() {
  const char* v = std::getenv("TREX_BENCH_DATA");
  return v != nullptr ? v : "trex_bench_data";
}

// Opens (building if needed) the bench index for one collection.
inline std::unique_ptr<TReX> OpenBenchIndex(const std::string& collection) {
  std::string dir = BenchDataDir() + "/" + collection;
  TrexOptions options;
  options.index.aliases =
      collection == "Wiki" ? WikiAliasMap() : IeeeAliasMap();
  if (Env::FileExists(dir + "/manifest.txt")) {
    auto trex = TReX::Open(dir, options);
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }
  std::fprintf(stderr, "[bench] building %s index in %s ...\n",
               collection.c_str(), dir.c_str());
  std::unique_ptr<TReX> trex;
  if (collection == "Wiki") {
    WikiGeneratorOptions gen_options;
    gen_options.num_documents = BenchScaleDocs("TREX_BENCH_WIKI_DOCS", 12000);
    WikiGenerator gen(gen_options);
    auto built = TReX::Build(dir, gen, options);
    TREX_CHECK_OK(built.status());
    trex = std::move(built).value();
  } else {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = BenchScaleDocs("TREX_BENCH_IEEE_DOCS", 12000);
    IeeeGenerator gen(gen_options);
    auto built = TReX::Build(dir, gen, options);
    TREX_CHECK_OK(built.status());
    trex = std::move(built).value();
  }
  TREX_CHECK_OK(trex->index()->Flush());
  std::fprintf(stderr, "[bench] %s index ready (%llu docs, %llu elements)\n",
               collection.c_str(),
               static_cast<unsigned long long>(
                   trex->index()->stats().num_documents),
               static_cast<unsigned long long>(
                   trex->index()->stats().num_elements));
  return trex;
}

// Paper timing protocol. Returns seconds.
inline double TimeRuns(const std::function<double()>& run_once) {
  const char* env = std::getenv("TREX_BENCH_RUNS");
  int runs = env != nullptr ? std::atoi(env) : 3;
  if (runs < 1) runs = 1;
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) times.push_back(run_once());
  std::sort(times.begin(), times.end());
  if (runs >= 5) {
    // Drop best and worst, average the rest (the paper's protocol).
    double sum = 0;
    for (int i = 1; i < runs - 1; ++i) sum += times[i];
    return sum / (runs - 2);
  }
  return times[times.size() / 2];  // Median.
}

// Dumps the cumulative metrics registry to <bench>_metrics.json in the
// bench data dir, so figure scripts can correlate reported times with
// the I/O and algorithm counters behind them. Call once, at exit.
inline void WriteBenchMetrics(const std::string& bench_name) {
  std::string path = BenchDataDir() + "/" + bench_name + "_metrics.json";
  Status s = Env::CreateDir(BenchDataDir());
  if (s.ok()) {
    s = Env::WriteStringToFile(path,
                               obs::Default().Snapshot().ToJson() + "\n");
  }
  if (!s.ok()) {
    std::fprintf(stderr, "[bench] cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "[bench] metrics written to %s\n", path.c_str());
}

}  // namespace bench
}  // namespace trex

#endif  // TREX_BENCH_HARNESS_H_
