// Reproduces Figure 4: evaluation times for Query 202 (left) and
// Query 203 (right) — ERA and Merge totals plus TA/ITA as a function
// of k.
//
// Expected shapes (paper): Q202 — Merge far below TA, TA near ERA,
// ITA well below TA. Q203 — TA well below ERA (~10x), ITA close to
// Merge, TA competitive with Merge at tiny k.
#include "bench/figure_common.h"

int main() {
  using namespace trex::bench;
  auto ieee = OpenBenchIndex("IEEE");
  std::printf("Figure 4: evaluation times for Query 202 and Query 203\n\n");
  for (const BenchQuery& q : Table1Queries()) {
    if (std::string(q.id) == "202" || std::string(q.id) == "203") {
      RunFigureForQuery(ieee.get(), q);
    }
  }
  WriteBenchMetrics("bench_fig4");
  return 0;
}
