// bench_suite: the unified regression-harness driver.
//
// One binary runs the whole workload matrix — retrieval method (ERA,
// TA, Merge, race) × result shaping (vague, strict) × executor thread
// count — over the cached IEEE bench collection and emits a single
// schema-versioned JSON document (BENCH_<name>.json) with, per
// workload: wall time, qps, exact p50/p95/p99 per-query latency (from
// each query's trace root, so queue wait is excluded), rusage, and the
// summed per-query resource vectors (pages, bytes, sorted/random
// accesses, ...). scripts/bench_compare.py diffs two such documents
// and fails on regression past a threshold; scripts/check.sh
// --bench-smoke runs this binary on a tiny corpus and validates the
// output against the schema.
//
// Scenario mode (--scenario=NAME) swaps the IEEE matrix for one entry
// of the corpus/workload zoo (src/corpus/workload_zoo.h): the scenario's
// adversarial corpus is built/cached under scenario_<name>, its query
// stream drawn once into a fixed job sequence (so hot-key skew and
// topic shifts survive into the measured workload), and the sequence is
// served strategy-selected ("auto") across a small thread ladder. The
// emitted document is the same schema with an extra "scenario" key;
// committed per-scenario baselines live in bench/BENCH_baseline_<name>
// .json and are gated by scripts/bench_compare.py --scenarios.
//
// Knobs (environment, all optional):
//   TREX_BENCH_DATA              index/cache directory
//   TREX_BENCH_IEEE_DOCS         corpus size at first build
//   TREX_BENCH_SCENARIO_DOCS     scenario corpus size (0 = zoo default)
//   TREX_BENCH_SUITE_JOBS        queries per workload        (default 32)
//   TREX_BENCH_SUITE_MAX_THREADS cap on the thread ladder    (default 8)
//   TREX_BENCH_RUNS              timing protocol run count   (default 1)
// Flags:
//   --out=PATH        output JSON (default BENCH_suite.json, or
//                     BENCH_scenario_<name>.json in scenario mode)
//   --scenario=NAME   run one zoo scenario instead of the IEEE matrix
//                     (--scenario=list prints the table)
//   --snapshots=PATH  also run a MetricsSnapshotter appending per-250ms
//                     registry deltas to PATH while the suite runs
//   --profile-out=P   sample CPU across the measured workloads and
//                     write collapsed stacks (flamegraph.pl input) to
//                     P; "auto" derives <out minus .json>.collapsed, so
//                     a per-scenario profile lands next to each
//                     BENCH_*.json for bench_compare.py --attribute
//
// TREX_BENCH_HOTSPIN_NS=<n> burns n nanos of thread CPU per completed
// query inside trex_bench_hot_spin() — the deliberate regression the
// profiler attribution self-test (scripts/check.sh --profile) must
// name.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/clock.h"
#include "corpus/workload_zoo.h"
#include "index/block_codec.h"
#include "nexi/translator.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/resource.h"
#include "obs/snapshotter.h"
#include "retrieval/race.h"
#include "trex/query_executor.h"

// The attribution self-test's injected hot function. extern "C" +
// noinline so it survives as its own frame and symbolizes to a stable,
// unmangled name in the collapsed stacks.
extern "C" __attribute__((noinline)) void trex_bench_hot_spin(
    int64_t nanos) {
  const int64_t start = trex::ThreadCpuNanos();
  volatile uint64_t sink = 0;
  while (trex::ThreadCpuNanos() - start < nanos) {
    // Long inner stretch per clock check: samples should land in this
    // function itself, not in clock_gettime, so profile attribution
    // can name it.
    for (uint64_t i = 0; i < 16384; ++i) sink = sink + i * 2654435761ULL;
  }
}

namespace trex {
namespace bench {
namespace {

int64_t HotSpinNanos() {
  static const int64_t nanos = [] {
    const char* v = std::getenv("TREX_BENCH_HOTSPIN_NS");
    return v != nullptr ? std::atoll(v) : 0;
  }();
  return nanos;
}

constexpr int kSchemaVersion = 1;
constexpr size_t kTopK = 10;

struct WorkloadResult {
  std::string name;
  std::string method;   // "era" | "ta" | "merge" | "race".
  std::string shaping;  // "vague" | "strict".
  size_t threads = 0;
  size_t jobs = 0;
  BenchRunStats run;              // Wall + rusage, protocol-reduced.
  double qps = 0.0;
  uint64_t p50 = 0, p95 = 0, p99 = 0;  // Per-query latency, nanos.
  obs::ResourceUsage totals;           // Summed over the jobs.
};

void AccumulateUsage(const obs::ResourceUsage& u, obs::ResourceUsage* into) {
  into->pages_fetched += u.pages_fetched;
  into->pages_faulted += u.pages_faulted;
  into->bytes_read += u.bytes_read;
  into->bytes_decoded += u.bytes_decoded;
  into->list_fragments += u.list_fragments;
  into->blocks_decoded += u.blocks_decoded;
  into->blocks_skipped += u.blocks_skipped;
  into->postings_scanned += u.postings_scanned;
  into->sorted_accesses += u.sorted_accesses;
  into->random_accesses += u.random_accesses;
  into->elements_scanned += u.elements_scanned;
  into->heap_operations += u.heap_operations;
  into->cpu_nanos += u.cpu_nanos;
}

void FillPercentiles(std::vector<uint64_t> latencies, WorkloadResult* w) {
  std::sort(latencies.begin(), latencies.end());
  w->p50 = static_cast<uint64_t>(obs::ExactQuantile(latencies, 0.50));
  w->p95 = static_cast<uint64_t>(obs::ExactQuantile(latencies, 0.95));
  w->p99 = static_cast<uint64_t>(obs::ExactQuantile(latencies, 0.99));
}

// One executor-driven workload: `jobs` queries cycled over the query
// set, forced to `method`, on `threads` workers over `handle`.
WorkloadResult RunExecutorWorkload(TReX* handle, RetrievalMethod method,
                                   const char* method_name,
                                   const char* shaping,
                                   const std::vector<const BenchQuery*>& qs,
                                   size_t threads, size_t jobs) {
  WorkloadResult w;
  w.method = method_name;
  w.shaping = shaping;
  w.threads = threads;
  w.jobs = jobs;
  w.name = std::string(method_name) + "." + shaping + ".t" +
           std::to_string(threads);
  std::vector<uint64_t> latencies;
  w.run = TimeRunsDetailed(
      [&]() {
        latencies.clear();
        latencies.reserve(jobs);
        w.totals = obs::ResourceUsage{};
        QueryExecutor executor(handle, threads);
        std::vector<std::future<Result<QueryAnswer>>> futures;
        futures.reserve(jobs);
        for (size_t i = 0; i < jobs; ++i) {
          futures.push_back(executor.SubmitWith(
              method, qs[i % qs.size()]->nexi, kTopK));
        }
        for (auto& f : futures) {
          Result<QueryAnswer> answer = f.get();
          TREX_CHECK_OK(answer.status());
          const QueryAnswer& a = answer.value();
          latencies.push_back(static_cast<uint64_t>(
              a.trace->root()->duration_nanos));
          AccumulateUsage(a.resources, &w.totals);
          if (HotSpinNanos() > 0) trex_bench_hot_spin(HotSpinNanos());
        }
      },
      /*default_runs=*/1);
  w.qps = static_cast<double>(jobs) / w.run.seconds;
  FillPercentiles(std::move(latencies), &w);
  return w;
}

// The race has no facade path (it is its own evaluator), so this
// workload drives RaceEvaluator directly: `threads` bench threads each
// run their share of the jobs inline, with strict shaping applied by
// hand the way TReX::RunQuery shapes (filter to target sids).
WorkloadResult RunRaceWorkload(TReX* handle, const char* shaping,
                               bool restrict_to_targets,
                               const std::vector<const BenchQuery*>& qs,
                               size_t threads, size_t jobs) {
  WorkloadResult w;
  w.method = "race";
  w.shaping = shaping;
  w.threads = threads;
  w.jobs = jobs;
  w.name = std::string("race.") + shaping + ".t" + std::to_string(threads);

  // Translate once per distinct query (the race path has no per-query
  // translation cost worth benchmarking here — the contest is the
  // point).
  std::vector<TranslatedQuery> translated;
  translated.reserve(qs.size());
  for (const BenchQuery* q : qs) {
    auto t = TranslateNexi(q->nexi, handle->index()->summary(),
                           &handle->index()->aliases(),
                           handle->index()->tokenizer());
    TREX_CHECK_OK(t.status());
    translated.push_back(std::move(t).value());
  }

  std::vector<uint64_t> latencies;
  w.run = TimeRunsDetailed(
      [&]() {
        latencies.assign(jobs, 0);
        obs::ResourceAccounting accounting;
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (size_t t = 0; t < threads; ++t) {
          pool.emplace_back([&, t]() {
            obs::ProfilerThreadScope profiler_scope("bench.race.driver");
            obs::ResourceScope scope(&accounting);
            RaceEvaluator race(handle->index());
            for (size_t i = t; i < jobs; i += threads) {
              const TranslatedQuery& q = translated[i % qs.size()];
              Stopwatch watch;
              RaceOutcome outcome;
              // Strict shaping needs the unrestricted result first (and
              // TA treats k as a hard stop, so "all" is SIZE_MAX, as in
              // Evaluator::RunMethod).
              TREX_CHECK_OK(race.Evaluate(
                  q.flattened, restrict_to_targets ? SIZE_MAX : kTopK,
                  &outcome));
              if (restrict_to_targets) {
                auto& elems = outcome.result.elements;
                elems.erase(
                    std::remove_if(elems.begin(), elems.end(),
                                   [&](const ScoredElement& e) {
                                     return !std::binary_search(
                                         q.target_sids.begin(),
                                         q.target_sids.end(),
                                         e.element.sid);
                                   }),
                    elems.end());
                if (elems.size() > kTopK) elems.resize(kTopK);
              }
              latencies[i] = static_cast<uint64_t>(watch.ElapsedNanos());
            }
          });
        }
        for (std::thread& t : pool) t.join();
        w.totals = accounting.Usage();
      },
      /*default_runs=*/1);
  w.qps = static_cast<double>(jobs) / w.run.seconds;
  FillPercentiles(std::move(latencies), &w);
  return w;
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendRusage(std::string* out, const BenchRunStats& run) {
  out->append("{\"user_s\":");
  AppendDouble(out, run.user_seconds);
  out->append(",\"sys_s\":");
  AppendDouble(out, run.sys_seconds);
  out->append(",\"thread_cpu_s\":");
  AppendDouble(out, run.thread_cpu_seconds);
  out->append(",\"max_rss_kb\":");
  AppendU64(out, run.max_rss_kb);
  out->push_back('}');
}

// Top-level "codec" summary: which list codec the index runs, plus the
// process-wide index.codec.* counters. bytes_raw / bytes_encoded give
// the compression ratio; both are 0 when the index was opened from a
// cached data dir (no in-process writes), so consumers must tolerate a
// ratio of 0.
void AppendCodecSummary(std::string* json, TReX* handle) {
  obs::MetricsSnapshot snap = obs::Default().Snapshot();
  const uint64_t bytes_encoded = snap.counter("index.codec.bytes_encoded");
  const uint64_t bytes_raw = snap.counter("index.codec.bytes_raw");
  json->append(",\"codec\":{\"list_codec\":\"");
  json->append(ListCodecName(handle->index()->list_codec()));
  json->append("\",\"blocks_written\":");
  AppendU64(json, snap.counter("index.codec.blocks_written"));
  json->append(",\"bytes_encoded\":");
  AppendU64(json, bytes_encoded);
  json->append(",\"bytes_raw\":");
  AppendU64(json, bytes_raw);
  json->append(",\"compression_ratio\":");
  AppendDouble(json, bytes_raw == 0
                         ? 0.0
                         : static_cast<double>(bytes_encoded) /
                               static_cast<double>(bytes_raw));
  json->append(",\"blocks_decoded\":");
  AppendU64(json, snap.counter("index.codec.blocks_decoded"));
  json->append(",\"blocks_skipped\":");
  AppendU64(json, snap.counter("index.codec.blocks_skipped"));
  json->push_back('}');
}

void AppendWorkload(std::string* out, const WorkloadResult& w) {
  out->append("{\"name\":\"");
  out->append(w.name);
  out->append("\",\"method\":\"");
  out->append(w.method);
  out->append("\",\"shaping\":\"");
  out->append(w.shaping);
  out->append("\",\"threads\":");
  AppendU64(out, w.threads);
  out->append(",\"jobs\":");
  AppendU64(out, w.jobs);
  out->append(",\"wall_s\":");
  AppendDouble(out, w.run.seconds);
  out->append(",\"qps\":");
  AppendDouble(out, w.qps);
  out->append(",\"latency_ns\":{\"p50\":");
  AppendU64(out, w.p50);
  out->append(",\"p95\":");
  AppendU64(out, w.p95);
  out->append(",\"p99\":");
  AppendU64(out, w.p99);
  out->append("},\"rusage\":");
  AppendRusage(out, w.run);
  out->append(",\"resources\":");
  w.totals.AppendJson(out);
  out->push_back('}');
}

// One scenario workload: the stream-ordered job sequence served
// strategy-selected through the executor (per-query k from the stream).
WorkloadResult RunScenarioWorkload(TReX* handle,
                                   const std::vector<ZooQuery>& sequence,
                                   size_t threads) {
  WorkloadResult w;
  w.method = "auto";
  w.shaping = "vague";
  w.threads = threads;
  w.jobs = sequence.size();
  w.name = std::string("auto.vague.t") + std::to_string(threads);
  std::vector<uint64_t> latencies;
  w.run = TimeRunsDetailed(
      [&]() {
        latencies.clear();
        latencies.reserve(sequence.size());
        w.totals = obs::ResourceUsage{};
        QueryExecutor executor(handle, threads);
        std::vector<std::future<Result<QueryAnswer>>> futures;
        futures.reserve(sequence.size());
        for (const ZooQuery& q : sequence) {
          futures.push_back(executor.Submit(q.nexi, q.k));
        }
        for (auto& f : futures) {
          Result<QueryAnswer> answer = f.get();
          TREX_CHECK_OK(answer.status());
          const QueryAnswer& a = answer.value();
          latencies.push_back(static_cast<uint64_t>(
              a.trace->root()->duration_nanos));
          AccumulateUsage(a.resources, &w.totals);
          if (HotSpinNanos() > 0) trex_bench_hot_spin(HotSpinNanos());
        }
      },
      /*default_runs=*/1);
  w.qps = static_cast<double>(w.jobs) / w.run.seconds;
  FillPercentiles(std::move(latencies), &w);
  return w;
}

// "auto" lands the profile next to the JSON document:
// BENCH_scenario_x.json -> BENCH_scenario_x.collapsed.
std::string ResolveProfilePath(const std::string& profile_out,
                               const std::string& out_path) {
  if (profile_out != "auto") return profile_out;
  std::string base = out_path;
  if (base.size() > 5 && base.compare(base.size() - 5, 5, ".json") == 0) {
    base.resize(base.size() - 5);
  }
  return base + ".collapsed";
}

bool StartProfiling(const std::string& profile_path) {
  Status s = obs::Profiler::Default().Start();
  if (!s.ok()) {
    std::fprintf(stderr, "[bench_suite] profiler disabled: %s\n",
                 s.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "[bench_suite] profiling -> %s\n",
               profile_path.c_str());
  return true;
}

void FinishProfiling(const std::string& profile_path) {
  obs::Profiler& profiler = obs::Profiler::Default();
  profiler.Stop();
  const obs::ProfilerStats stats = profiler.stats();
  Status s = profiler.WriteCollapsed(profile_path);
  if (!s.ok()) {
    std::fprintf(stderr, "[bench_suite] cannot write %s: %s\n",
                 profile_path.c_str(), s.ToString().c_str());
    return;
  }
  std::fprintf(stderr,
               "[bench_suite] profile: %" PRIu64 " samples (%" PRIu64
               " dropped) over %" PRIu64 " threads -> %s\n",
               stats.samples, stats.dropped, stats.threads,
               profile_path.c_str());
}

int RunScenario(const std::string& scenario_name, std::string out_path,
                const std::string& snapshots_path,
                const std::string& profile_out) {
  const ScenarioSpec* spec = FindScenario(scenario_name);
  if (spec == nullptr) {
    // `list` is machine-readable (scripts/check.sh --zoo iterates the
    // first column on stdout); the unknown-name error goes to stderr.
    std::FILE* out = scenario_name == "list" ? stdout : stderr;
    std::fprintf(out, "%s", scenario_name == "list"
                                ? ""
                                : "available scenarios:\n");
    for (const ScenarioSpec& s : ScenarioTable()) {
      std::fprintf(out, "  %-18s %s x %s\n", s.name.c_str(),
                   s.corpus.c_str(), s.stream.c_str());
    }
    if (scenario_name == "list") return 0;
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario_name.c_str());
    return 2;
  }
  if (out_path.empty()) {
    out_path = "BENCH_scenario_" + spec->name + ".json";
  }
  const size_t jobs = BenchScaleDocs("TREX_BENCH_SUITE_JOBS", 32);
  const size_t max_threads =
      BenchScaleDocs("TREX_BENCH_SUITE_MAX_THREADS", 8);
  std::vector<size_t> thread_ladder;
  for (size_t t : {1, 2, 4}) {
    if (t <= max_threads) thread_ladder.push_back(t);
  }

  std::unique_ptr<obs::MetricsSnapshotter> snapshotter;
  if (!snapshots_path.empty()) {
    obs::MetricsSnapshotter::Options snap_options;
    snap_options.period_millis = 250;
    snap_options.jsonl_path = snapshots_path;
    snapshotter =
        std::make_unique<obs::MetricsSnapshotter>(std::move(snap_options));
    if (!snapshotter->Start()) {
      std::fprintf(stderr, "[bench_suite] cannot open %s\n",
                   snapshots_path.c_str());
      return 1;
    }
  }

  // Build (or reopen) the scenario's corpus index. No alias map: the
  // adversarial corpora have no synonymous tags.
  const std::string dir = BenchDataDir() + "/scenario_" + spec->name;
  TrexOptions options;
  if (!Env::FileExists(dir + "/manifest.txt")) {
    std::fprintf(stderr, "[bench] building %s corpus in %s ...\n",
                 spec->corpus.c_str(), dir.c_str());
    std::unique_ptr<DocumentGenerator> gen = spec->make_corpus(
        BenchScaleDocs("TREX_BENCH_SCENARIO_DOCS", 0));
    auto built = TReX::Build(dir, *gen, options);
    TREX_CHECK_OK(built.status());
    TREX_CHECK_OK(built.value()->index()->Flush());
  }

  // The job sequence: drawn once (fixed seed), so the measured workload
  // carries the stream's shape — repeats, skew, the topic changepoint.
  std::unique_ptr<QueryStream> stream = spec->make_stream(/*seed=*/777);
  const std::vector<ZooQuery> sequence = stream->Take(jobs);
  std::vector<const ZooQuery*> distinct;
  for (const ZooQuery& q : sequence) {
    bool seen = false;
    for (const ZooQuery* d : distinct) seen = seen || d->nexi == q.nexi;
    if (!seen) distinct.push_back(&q);
  }
  // Materialize RPLs + ERPLs for (a cap of) the distinct queries, as
  // the IEEE matrix does for Table 1; the cap bounds setup cost on the
  // all-distinct streams and is reported so nobody mistakes a partially
  // warmed scenario for full coverage.
  constexpr size_t kMaterializeCap = 16;
  const size_t to_materialize = std::min(distinct.size(), kMaterializeCap);
  if (to_materialize < distinct.size()) {
    std::fprintf(stderr,
                 "[bench] materializing %zu of %zu distinct queries "
                 "(cap %zu); the rest run from base lists\n",
                 to_materialize, distinct.size(), kMaterializeCap);
  }
  {
    auto rw = TReX::Open(dir, options);
    TREX_CHECK_OK(rw.status());
    for (size_t i = 0; i < to_materialize; ++i) {
      MaterializeStats stats;
      TREX_CHECK_OK(rw.value()->MaterializeFor(distinct[i]->nexi,
                                               /*rpls=*/true,
                                               /*erpls=*/true, &stats));
    }
    TREX_CHECK_OK(rw.value()->index()->Flush());
  }
  const uint64_t materializer_fills =
      obs::Default().Snapshot().counter("retrieval.materializer.fills");

  auto opened = TReX::Open(dir, options, OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> handle = std::move(opened).value();
  for (const ZooQuery* q : distinct) {
    TREX_CHECK_OK(handle->Query(q->nexi, q->k).status());
  }

  // Profile only the measured workloads (setup/warmup above would
  // drown the signal). The bench main thread registers so the future-
  // collection loop — and any injected hot spin — is sampled too.
  obs::ProfilerThreadScope profiler_thread("bench.main");
  const std::string profile_path = ResolveProfilePath(profile_out, out_path);
  const bool profiling =
      !profile_path.empty() && StartProfiling(profile_path);

  Stopwatch suite_watch;
  std::vector<WorkloadResult> results;
  for (size_t threads : thread_ladder) {
    results.push_back(
        RunScenarioWorkload(handle.get(), sequence, threads));
    const WorkloadResult& w = results.back();
    std::printf("%-18s %8.3fs %8.1f qps  p50 %8.3fms  p99 %8.3fms\n",
                w.name.c_str(), w.run.seconds, w.qps,
                static_cast<double>(w.p50) * 1e-6,
                static_cast<double>(w.p99) * 1e-6);
  }
  const double suite_seconds = suite_watch.ElapsedSeconds();
  if (profiling) FinishProfiling(profile_path);
  if (snapshotter != nullptr) snapshotter->Stop();

  std::string json = "{\"schema_version\":";
  AppendU64(&json, kSchemaVersion);
  json.append(",\"bench\":\"suite\",\"scenario\":\"");
  json.append(spec->name);
  json.append("\",\"git_sha\":\"");
  json.append(BenchGitSha());
  json.append("\",\"collection\":\"");
  json.append(spec->corpus);
  json.append("\",\"k\":");
  AppendU64(&json, kTopK);
  json.append(",\"runs\":");
  AppendU64(&json, static_cast<uint64_t>(BenchRunCount(1)));
  json.append(",\"jobs_per_workload\":");
  AppendU64(&json, jobs);
  json.append(",\"suite_wall_s\":");
  AppendDouble(&json, suite_seconds);
  json.append(",\"materializer_fills\":");
  AppendU64(&json, materializer_fills);
  AppendCodecSummary(&json, handle.get());
  json.append(",\"workloads\":[");
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendWorkload(&json, results[i]);
  }
  json.append("]}\n");

  Status s = Env::WriteStringToFile(out_path, json);
  if (!s.ok()) {
    std::fprintf(stderr, "[bench_suite] cannot write %s: %s\n",
                 out_path.c_str(), s.ToString().c_str());
    return 1;
  }
  std::printf("\n%s: %zu workloads in %.1fs -> %s\n", spec->name.c_str(),
              results.size(), suite_seconds, out_path.c_str());
  return 0;
}

int Run(const std::string& out_path, const std::string& snapshots_path,
        const std::string& profile_out) {
  const size_t jobs = BenchScaleDocs("TREX_BENCH_SUITE_JOBS", 32);
  const size_t max_threads =
      BenchScaleDocs("TREX_BENCH_SUITE_MAX_THREADS", 8);
  std::vector<size_t> thread_ladder;
  for (size_t t : {1, 2, 4, 8}) {
    if (t <= max_threads) thread_ladder.push_back(t);
  }

  // Optional metrics time series alongside the run.
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter;
  if (!snapshots_path.empty()) {
    obs::MetricsSnapshotter::Options snap_options;
    snap_options.period_millis = 250;
    snap_options.jsonl_path = snapshots_path;
    snapshotter =
        std::make_unique<obs::MetricsSnapshotter>(std::move(snap_options));
    if (!snapshotter->Start()) {
      std::fprintf(stderr, "[bench_suite] cannot open %s\n",
                   snapshots_path.c_str());
      return 1;
    }
  }

  // Setup: build/open the IEEE index, materialize RPLs + ERPLs for the
  // query set (TA, Merge and the race require them), then reopen
  // read-shared for the executor workloads.
  std::vector<const BenchQuery*> queries;
  for (const BenchQuery& q : Table1Queries()) {
    if (std::string(q.collection) == "IEEE") queries.push_back(&q);
  }
  {
    std::unique_ptr<TReX> rw = OpenBenchIndex("IEEE");
    for (const BenchQuery* q : queries) {
      MaterializeStats stats;
      TREX_CHECK_OK(rw->MaterializeFor(q->nexi, /*rpls=*/true,
                                       /*erpls=*/true, &stats));
    }
    TREX_CHECK_OK(rw->index()->Flush());
  }
  const uint64_t materializer_fills =
      obs::Default().Snapshot().counter("retrieval.materializer.fills");

  auto open_shared = [&](bool restrict_to_targets) {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    options.restrict_to_target_sids = restrict_to_targets;
    auto opened = TReX::Open(BenchDataDir() + "/IEEE", options,
                             OpenMode::kReadShared);
    TREX_CHECK_OK(opened.status());
    return std::move(opened).value();
  };
  std::unique_ptr<TReX> vague = open_shared(false);
  std::unique_ptr<TReX> strict = open_shared(true);

  // Warm both handles' caches so the matrix measures the steady state.
  for (const BenchQuery* q : queries) {
    TREX_CHECK_OK(vague->Query(q->nexi, kTopK).status());
    TREX_CHECK_OK(strict->Query(q->nexi, kTopK).status());
  }

  obs::ProfilerThreadScope profiler_thread("bench.main");
  const std::string profile_path = ResolveProfilePath(profile_out, out_path);
  const bool profiling =
      !profile_path.empty() && StartProfiling(profile_path);

  struct MethodSpec {
    RetrievalMethod method;
    const char* name;
  };
  const MethodSpec methods[] = {{RetrievalMethod::kEra, "era"},
                                {RetrievalMethod::kTa, "ta"},
                                {RetrievalMethod::kMerge, "merge"}};
  struct ShapeSpec {
    TReX* handle;
    const char* name;
    bool restrict_to_targets;
  };
  const ShapeSpec shapes[] = {{vague.get(), "vague", false},
                              {strict.get(), "strict", true}};

  Stopwatch suite_watch;
  std::vector<WorkloadResult> results;
  for (const MethodSpec& m : methods) {
    for (const ShapeSpec& s : shapes) {
      for (size_t threads : thread_ladder) {
        results.push_back(RunExecutorWorkload(s.handle, m.method, m.name,
                                              s.name, queries, threads,
                                              jobs));
        const WorkloadResult& w = results.back();
        std::printf("%-18s %8.3fs %8.1f qps  p50 %8.3fms  p99 %8.3fms\n",
                    w.name.c_str(), w.run.seconds, w.qps,
                    static_cast<double>(w.p50) * 1e-6,
                    static_cast<double>(w.p99) * 1e-6);
      }
    }
  }
  for (const ShapeSpec& s : shapes) {
    for (size_t threads : thread_ladder) {
      // The race spawns two contestant threads per query; keep the
      // outer fan-out to the ladder's lower rungs.
      if (threads > 2) continue;
      results.push_back(RunRaceWorkload(vague.get(), s.name,
                                        s.restrict_to_targets, queries,
                                        threads, jobs));
      const WorkloadResult& w = results.back();
      std::printf("%-18s %8.3fs %8.1f qps  p50 %8.3fms  p99 %8.3fms\n",
                  w.name.c_str(), w.run.seconds, w.qps,
                  static_cast<double>(w.p50) * 1e-6,
                  static_cast<double>(w.p99) * 1e-6);
    }
  }
  const double suite_seconds = suite_watch.ElapsedSeconds();

  if (profiling) FinishProfiling(profile_path);
  if (snapshotter != nullptr) snapshotter->Stop();

  std::string json = "{\"schema_version\":";
  AppendU64(&json, kSchemaVersion);
  json.append(",\"bench\":\"suite\",\"git_sha\":\"");
  json.append(BenchGitSha());
  json.append("\",\"collection\":\"IEEE\",\"k\":");
  AppendU64(&json, kTopK);
  json.append(",\"runs\":");
  AppendU64(&json, static_cast<uint64_t>(BenchRunCount(1)));
  json.append(",\"jobs_per_workload\":");
  AppendU64(&json, jobs);
  json.append(",\"suite_wall_s\":");
  AppendDouble(&json, suite_seconds);
  json.append(",\"materializer_fills\":");
  AppendU64(&json, materializer_fills);
  AppendCodecSummary(&json, vague.get());
  json.append(",\"workloads\":[");
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) json.push_back(',');
    AppendWorkload(&json, results[i]);
  }
  json.append("]}\n");

  Status s = Env::WriteStringToFile(out_path, json);
  if (!s.ok()) {
    std::fprintf(stderr, "[bench_suite] cannot write %s: %s\n",
                 out_path.c_str(), s.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu workloads in %.1fs -> %s\n", results.size(),
              suite_seconds, out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace trex

int main(int argc, char** argv) {
  std::string out_path;
  std::string snapshots_path;
  std::string scenario;
  std::string profile_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      scenario = arg + 11;
    } else if (std::strncmp(arg, "--snapshots=", 12) == 0) {
      snapshots_path = arg + 12;
    } else if (std::strncmp(arg, "--profile-out=", 14) == 0) {
      profile_out = arg + 14;
    } else {
      std::fprintf(stderr,
                   "usage: bench_suite [--out=PATH] [--scenario=NAME] "
                   "[--snapshots=PATH] [--profile-out=PATH|auto]\n");
      return 2;
    }
  }
  int rc;
  if (scenario == "list") {
    return trex::bench::RunScenario(scenario, out_path, snapshots_path,
                                    profile_out);
  }
  if (!scenario.empty()) {
    rc = trex::bench::RunScenario(scenario, out_path, snapshots_path,
                                  profile_out);
    trex::bench::WriteBenchMetrics("bench_suite_" + scenario);
  } else {
    if (out_path.empty()) out_path = "BENCH_suite.json";
    rc = trex::bench::Run(out_path, snapshots_path, profile_out);
    trex::bench::WriteBenchMetrics("bench_suite");
  }
  return rc;
}
