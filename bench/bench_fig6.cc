// Reproduces Figure 6: evaluation times for Query 233 (left), Query 290
// (center) and Query 292 (right).
//
// Expected shapes (paper): Q233 — TA and Merge orders of magnitude below
// ERA (2 sids, 2 terms), TA ahead of Merge. Q290 — Merge usually wins but
// TA overtakes at large k. Q292 — many sids, few answers: ERA very slow,
// TA slightly ahead of Merge.
#include "bench/figure_common.h"

int main() {
  using namespace trex::bench;
  auto ieee = OpenBenchIndex("IEEE");
  auto wiki = OpenBenchIndex("Wiki");
  std::printf(
      "Figure 6: evaluation times for Query 233, Query 290, Query 292\n\n");
  for (const BenchQuery& q : Table1Queries()) {
    std::string id = q.id;
    if (id == "233") RunFigureForQuery(ieee.get(), q);
    if (id == "290" || id == "292") RunFigureForQuery(wiki.get(), q);
  }
  WriteBenchMetrics("bench_fig6");
  return 0;
}
