file(REMOVE_RECURSE
  "CMakeFiles/search_cli.dir/search_cli.cpp.o"
  "CMakeFiles/search_cli.dir/search_cli.cpp.o.d"
  "search_cli"
  "search_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
