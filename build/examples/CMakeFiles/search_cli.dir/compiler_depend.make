# Empty compiler generated dependencies file for search_cli.
# This may be replaced when dependencies are built.
