# Empty dependencies file for inex_workload.
# This may be replaced when dependencies are built.
