file(REMOVE_RECURSE
  "CMakeFiles/inex_workload.dir/inex_workload.cpp.o"
  "CMakeFiles/inex_workload.dir/inex_workload.cpp.o.d"
  "inex_workload"
  "inex_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inex_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
