# Empty compiler generated dependencies file for summary_explorer.
# This may be replaced when dependencies are built.
