
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/summary_explorer.cpp" "examples/CMakeFiles/summary_explorer.dir/summary_explorer.cpp.o" "gcc" "examples/CMakeFiles/summary_explorer.dir/summary_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_nexi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
