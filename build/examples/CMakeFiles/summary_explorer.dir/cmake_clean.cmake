file(REMOVE_RECURSE
  "CMakeFiles/summary_explorer.dir/summary_explorer.cpp.o"
  "CMakeFiles/summary_explorer.dir/summary_explorer.cpp.o.d"
  "summary_explorer"
  "summary_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
