file(REMOVE_RECURSE
  "CMakeFiles/index_doctor.dir/index_doctor.cpp.o"
  "CMakeFiles/index_doctor.dir/index_doctor.cpp.o.d"
  "index_doctor"
  "index_doctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_doctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
