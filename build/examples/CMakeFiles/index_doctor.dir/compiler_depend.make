# Empty compiler generated dependencies file for index_doctor.
# This may be replaced when dependencies are built.
