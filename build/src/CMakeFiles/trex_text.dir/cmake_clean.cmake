file(REMOVE_RECURSE
  "CMakeFiles/trex_text.dir/text/porter_stemmer.cc.o"
  "CMakeFiles/trex_text.dir/text/porter_stemmer.cc.o.d"
  "CMakeFiles/trex_text.dir/text/scorer.cc.o"
  "CMakeFiles/trex_text.dir/text/scorer.cc.o.d"
  "CMakeFiles/trex_text.dir/text/stopwords.cc.o"
  "CMakeFiles/trex_text.dir/text/stopwords.cc.o.d"
  "CMakeFiles/trex_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/trex_text.dir/text/tokenizer.cc.o.d"
  "libtrex_text.a"
  "libtrex_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
