
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/porter_stemmer.cc" "src/CMakeFiles/trex_text.dir/text/porter_stemmer.cc.o" "gcc" "src/CMakeFiles/trex_text.dir/text/porter_stemmer.cc.o.d"
  "/root/repo/src/text/scorer.cc" "src/CMakeFiles/trex_text.dir/text/scorer.cc.o" "gcc" "src/CMakeFiles/trex_text.dir/text/scorer.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/trex_text.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/trex_text.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/trex_text.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/trex_text.dir/text/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
