file(REMOVE_RECURSE
  "libtrex_text.a"
)
