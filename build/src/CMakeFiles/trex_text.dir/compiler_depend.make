# Empty compiler generated dependencies file for trex_text.
# This may be replaced when dependencies are built.
