file(REMOVE_RECURSE
  "CMakeFiles/trex_xml.dir/xml/node.cc.o"
  "CMakeFiles/trex_xml.dir/xml/node.cc.o.d"
  "CMakeFiles/trex_xml.dir/xml/reader.cc.o"
  "CMakeFiles/trex_xml.dir/xml/reader.cc.o.d"
  "CMakeFiles/trex_xml.dir/xml/writer.cc.o"
  "CMakeFiles/trex_xml.dir/xml/writer.cc.o.d"
  "libtrex_xml.a"
  "libtrex_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
