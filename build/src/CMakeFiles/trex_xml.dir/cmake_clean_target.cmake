file(REMOVE_RECURSE
  "libtrex_xml.a"
)
