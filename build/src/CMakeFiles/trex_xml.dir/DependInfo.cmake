
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/trex_xml.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/trex_xml.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/reader.cc" "src/CMakeFiles/trex_xml.dir/xml/reader.cc.o" "gcc" "src/CMakeFiles/trex_xml.dir/xml/reader.cc.o.d"
  "/root/repo/src/xml/writer.cc" "src/CMakeFiles/trex_xml.dir/xml/writer.cc.o" "gcc" "src/CMakeFiles/trex_xml.dir/xml/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
