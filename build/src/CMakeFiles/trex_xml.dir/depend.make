# Empty dependencies file for trex_xml.
# This may be replaced when dependencies are built.
