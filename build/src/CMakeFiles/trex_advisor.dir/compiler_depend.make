# Empty compiler generated dependencies file for trex_advisor.
# This may be replaced when dependencies are built.
