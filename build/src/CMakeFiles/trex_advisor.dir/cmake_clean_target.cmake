file(REMOVE_RECURSE
  "libtrex_advisor.a"
)
