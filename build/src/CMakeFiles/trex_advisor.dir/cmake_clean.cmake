file(REMOVE_RECURSE
  "CMakeFiles/trex_advisor.dir/advisor/advisor.cc.o"
  "CMakeFiles/trex_advisor.dir/advisor/advisor.cc.o.d"
  "CMakeFiles/trex_advisor.dir/advisor/cost_model.cc.o"
  "CMakeFiles/trex_advisor.dir/advisor/cost_model.cc.o.d"
  "CMakeFiles/trex_advisor.dir/advisor/greedy.cc.o"
  "CMakeFiles/trex_advisor.dir/advisor/greedy.cc.o.d"
  "CMakeFiles/trex_advisor.dir/advisor/ilp.cc.o"
  "CMakeFiles/trex_advisor.dir/advisor/ilp.cc.o.d"
  "CMakeFiles/trex_advisor.dir/advisor/workload.cc.o"
  "CMakeFiles/trex_advisor.dir/advisor/workload.cc.o.d"
  "libtrex_advisor.a"
  "libtrex_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
