# Empty dependencies file for trex_index.
# This may be replaced when dependencies are built.
