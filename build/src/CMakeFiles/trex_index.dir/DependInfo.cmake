
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/element_index.cc" "src/CMakeFiles/trex_index.dir/index/element_index.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/element_index.cc.o.d"
  "/root/repo/src/index/erpl.cc" "src/CMakeFiles/trex_index.dir/index/erpl.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/erpl.cc.o.d"
  "/root/repo/src/index/index.cc" "src/CMakeFiles/trex_index.dir/index/index.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/index.cc.o.d"
  "/root/repo/src/index/index_builder.cc" "src/CMakeFiles/trex_index.dir/index/index_builder.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/index_builder.cc.o.d"
  "/root/repo/src/index/index_catalog.cc" "src/CMakeFiles/trex_index.dir/index/index_catalog.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/index_catalog.cc.o.d"
  "/root/repo/src/index/posting_lists.cc" "src/CMakeFiles/trex_index.dir/index/posting_lists.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/posting_lists.cc.o.d"
  "/root/repo/src/index/rpl.cc" "src/CMakeFiles/trex_index.dir/index/rpl.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/rpl.cc.o.d"
  "/root/repo/src/index/updater.cc" "src/CMakeFiles/trex_index.dir/index/updater.cc.o" "gcc" "src/CMakeFiles/trex_index.dir/index/updater.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
