file(REMOVE_RECURSE
  "CMakeFiles/trex_index.dir/index/element_index.cc.o"
  "CMakeFiles/trex_index.dir/index/element_index.cc.o.d"
  "CMakeFiles/trex_index.dir/index/erpl.cc.o"
  "CMakeFiles/trex_index.dir/index/erpl.cc.o.d"
  "CMakeFiles/trex_index.dir/index/index.cc.o"
  "CMakeFiles/trex_index.dir/index/index.cc.o.d"
  "CMakeFiles/trex_index.dir/index/index_builder.cc.o"
  "CMakeFiles/trex_index.dir/index/index_builder.cc.o.d"
  "CMakeFiles/trex_index.dir/index/index_catalog.cc.o"
  "CMakeFiles/trex_index.dir/index/index_catalog.cc.o.d"
  "CMakeFiles/trex_index.dir/index/posting_lists.cc.o"
  "CMakeFiles/trex_index.dir/index/posting_lists.cc.o.d"
  "CMakeFiles/trex_index.dir/index/rpl.cc.o"
  "CMakeFiles/trex_index.dir/index/rpl.cc.o.d"
  "CMakeFiles/trex_index.dir/index/updater.cc.o"
  "CMakeFiles/trex_index.dir/index/updater.cc.o.d"
  "libtrex_index.a"
  "libtrex_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
