file(REMOVE_RECURSE
  "libtrex_index.a"
)
