
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/summary/alias.cc" "src/CMakeFiles/trex_summary.dir/summary/alias.cc.o" "gcc" "src/CMakeFiles/trex_summary.dir/summary/alias.cc.o.d"
  "/root/repo/src/summary/builder.cc" "src/CMakeFiles/trex_summary.dir/summary/builder.cc.o" "gcc" "src/CMakeFiles/trex_summary.dir/summary/builder.cc.o.d"
  "/root/repo/src/summary/path_matcher.cc" "src/CMakeFiles/trex_summary.dir/summary/path_matcher.cc.o" "gcc" "src/CMakeFiles/trex_summary.dir/summary/path_matcher.cc.o.d"
  "/root/repo/src/summary/summary.cc" "src/CMakeFiles/trex_summary.dir/summary/summary.cc.o" "gcc" "src/CMakeFiles/trex_summary.dir/summary/summary.cc.o.d"
  "/root/repo/src/summary/xpath.cc" "src/CMakeFiles/trex_summary.dir/summary/xpath.cc.o" "gcc" "src/CMakeFiles/trex_summary.dir/summary/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
