file(REMOVE_RECURSE
  "libtrex_summary.a"
)
