# Empty compiler generated dependencies file for trex_summary.
# This may be replaced when dependencies are built.
