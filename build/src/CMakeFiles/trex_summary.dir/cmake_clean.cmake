file(REMOVE_RECURSE
  "CMakeFiles/trex_summary.dir/summary/alias.cc.o"
  "CMakeFiles/trex_summary.dir/summary/alias.cc.o.d"
  "CMakeFiles/trex_summary.dir/summary/builder.cc.o"
  "CMakeFiles/trex_summary.dir/summary/builder.cc.o.d"
  "CMakeFiles/trex_summary.dir/summary/path_matcher.cc.o"
  "CMakeFiles/trex_summary.dir/summary/path_matcher.cc.o.d"
  "CMakeFiles/trex_summary.dir/summary/summary.cc.o"
  "CMakeFiles/trex_summary.dir/summary/summary.cc.o.d"
  "CMakeFiles/trex_summary.dir/summary/xpath.cc.o"
  "CMakeFiles/trex_summary.dir/summary/xpath.cc.o.d"
  "libtrex_summary.a"
  "libtrex_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
