file(REMOVE_RECURSE
  "CMakeFiles/trex_storage.dir/storage/bptree.cc.o"
  "CMakeFiles/trex_storage.dir/storage/bptree.cc.o.d"
  "CMakeFiles/trex_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/trex_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/trex_storage.dir/storage/env.cc.o"
  "CMakeFiles/trex_storage.dir/storage/env.cc.o.d"
  "CMakeFiles/trex_storage.dir/storage/pager.cc.o"
  "CMakeFiles/trex_storage.dir/storage/pager.cc.o.d"
  "CMakeFiles/trex_storage.dir/storage/table.cc.o"
  "CMakeFiles/trex_storage.dir/storage/table.cc.o.d"
  "libtrex_storage.a"
  "libtrex_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
