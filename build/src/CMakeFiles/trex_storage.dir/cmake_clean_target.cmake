file(REMOVE_RECURSE
  "libtrex_storage.a"
)
