# Empty dependencies file for trex_storage.
# This may be replaced when dependencies are built.
