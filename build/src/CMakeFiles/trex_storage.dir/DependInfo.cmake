
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/trex_storage.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/trex_storage.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/trex_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/trex_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/CMakeFiles/trex_storage.dir/storage/env.cc.o" "gcc" "src/CMakeFiles/trex_storage.dir/storage/env.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/trex_storage.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/trex_storage.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/trex_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/trex_storage.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
