file(REMOVE_RECURSE
  "CMakeFiles/trex_common.dir/common/coding.cc.o"
  "CMakeFiles/trex_common.dir/common/coding.cc.o.d"
  "CMakeFiles/trex_common.dir/common/status.cc.o"
  "CMakeFiles/trex_common.dir/common/status.cc.o.d"
  "libtrex_common.a"
  "libtrex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
