# Empty dependencies file for trex_common.
# This may be replaced when dependencies are built.
