file(REMOVE_RECURSE
  "libtrex_common.a"
)
