file(REMOVE_RECURSE
  "libtrex_nexi.a"
)
