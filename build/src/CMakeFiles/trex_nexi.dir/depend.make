# Empty dependencies file for trex_nexi.
# This may be replaced when dependencies are built.
