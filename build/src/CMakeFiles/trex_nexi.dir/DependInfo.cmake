
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nexi/lexer.cc" "src/CMakeFiles/trex_nexi.dir/nexi/lexer.cc.o" "gcc" "src/CMakeFiles/trex_nexi.dir/nexi/lexer.cc.o.d"
  "/root/repo/src/nexi/parser.cc" "src/CMakeFiles/trex_nexi.dir/nexi/parser.cc.o" "gcc" "src/CMakeFiles/trex_nexi.dir/nexi/parser.cc.o.d"
  "/root/repo/src/nexi/translator.cc" "src/CMakeFiles/trex_nexi.dir/nexi/translator.cc.o" "gcc" "src/CMakeFiles/trex_nexi.dir/nexi/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
