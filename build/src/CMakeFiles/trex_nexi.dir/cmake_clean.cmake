file(REMOVE_RECURSE
  "CMakeFiles/trex_nexi.dir/nexi/lexer.cc.o"
  "CMakeFiles/trex_nexi.dir/nexi/lexer.cc.o.d"
  "CMakeFiles/trex_nexi.dir/nexi/parser.cc.o"
  "CMakeFiles/trex_nexi.dir/nexi/parser.cc.o.d"
  "CMakeFiles/trex_nexi.dir/nexi/translator.cc.o"
  "CMakeFiles/trex_nexi.dir/nexi/translator.cc.o.d"
  "libtrex_nexi.a"
  "libtrex_nexi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_nexi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
