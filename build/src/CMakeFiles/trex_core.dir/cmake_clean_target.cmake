file(REMOVE_RECURSE
  "libtrex_core.a"
)
