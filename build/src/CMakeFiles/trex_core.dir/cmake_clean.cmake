file(REMOVE_RECURSE
  "CMakeFiles/trex_core.dir/trex/trex.cc.o"
  "CMakeFiles/trex_core.dir/trex/trex.cc.o.d"
  "libtrex_core.a"
  "libtrex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
