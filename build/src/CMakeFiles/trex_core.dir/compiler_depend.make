# Empty compiler generated dependencies file for trex_core.
# This may be replaced when dependencies are built.
