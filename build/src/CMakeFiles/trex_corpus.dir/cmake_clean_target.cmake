file(REMOVE_RECURSE
  "libtrex_corpus.a"
)
