file(REMOVE_RECURSE
  "CMakeFiles/trex_corpus.dir/corpus/corpus.cc.o"
  "CMakeFiles/trex_corpus.dir/corpus/corpus.cc.o.d"
  "CMakeFiles/trex_corpus.dir/corpus/ieee_generator.cc.o"
  "CMakeFiles/trex_corpus.dir/corpus/ieee_generator.cc.o.d"
  "CMakeFiles/trex_corpus.dir/corpus/vocabulary.cc.o"
  "CMakeFiles/trex_corpus.dir/corpus/vocabulary.cc.o.d"
  "CMakeFiles/trex_corpus.dir/corpus/wiki_generator.cc.o"
  "CMakeFiles/trex_corpus.dir/corpus/wiki_generator.cc.o.d"
  "libtrex_corpus.a"
  "libtrex_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
