# Empty dependencies file for trex_corpus.
# This may be replaced when dependencies are built.
