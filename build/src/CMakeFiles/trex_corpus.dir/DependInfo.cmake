
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/CMakeFiles/trex_corpus.dir/corpus/corpus.cc.o" "gcc" "src/CMakeFiles/trex_corpus.dir/corpus/corpus.cc.o.d"
  "/root/repo/src/corpus/ieee_generator.cc" "src/CMakeFiles/trex_corpus.dir/corpus/ieee_generator.cc.o" "gcc" "src/CMakeFiles/trex_corpus.dir/corpus/ieee_generator.cc.o.d"
  "/root/repo/src/corpus/vocabulary.cc" "src/CMakeFiles/trex_corpus.dir/corpus/vocabulary.cc.o" "gcc" "src/CMakeFiles/trex_corpus.dir/corpus/vocabulary.cc.o.d"
  "/root/repo/src/corpus/wiki_generator.cc" "src/CMakeFiles/trex_corpus.dir/corpus/wiki_generator.cc.o" "gcc" "src/CMakeFiles/trex_corpus.dir/corpus/wiki_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
