file(REMOVE_RECURSE
  "libtrex_retrieval.a"
)
