# Empty compiler generated dependencies file for trex_retrieval.
# This may be replaced when dependencies are built.
