
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retrieval/era.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/era.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/era.cc.o.d"
  "/root/repo/src/retrieval/materializer.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/materializer.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/materializer.cc.o.d"
  "/root/repo/src/retrieval/merge.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/merge.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/merge.cc.o.d"
  "/root/repo/src/retrieval/race.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/race.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/race.cc.o.d"
  "/root/repo/src/retrieval/strategy.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/strategy.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/strategy.cc.o.d"
  "/root/repo/src/retrieval/strict.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/strict.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/strict.cc.o.d"
  "/root/repo/src/retrieval/ta.cc" "src/CMakeFiles/trex_retrieval.dir/retrieval/ta.cc.o" "gcc" "src/CMakeFiles/trex_retrieval.dir/retrieval/ta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trex_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_nexi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
