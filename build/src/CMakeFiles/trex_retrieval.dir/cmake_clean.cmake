file(REMOVE_RECURSE
  "CMakeFiles/trex_retrieval.dir/retrieval/era.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/era.cc.o.d"
  "CMakeFiles/trex_retrieval.dir/retrieval/materializer.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/materializer.cc.o.d"
  "CMakeFiles/trex_retrieval.dir/retrieval/merge.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/merge.cc.o.d"
  "CMakeFiles/trex_retrieval.dir/retrieval/race.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/race.cc.o.d"
  "CMakeFiles/trex_retrieval.dir/retrieval/strategy.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/strategy.cc.o.d"
  "CMakeFiles/trex_retrieval.dir/retrieval/strict.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/strict.cc.o.d"
  "CMakeFiles/trex_retrieval.dir/retrieval/ta.cc.o"
  "CMakeFiles/trex_retrieval.dir/retrieval/ta.cc.o.d"
  "libtrex_retrieval.a"
  "libtrex_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
