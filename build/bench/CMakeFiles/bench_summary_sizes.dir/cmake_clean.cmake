file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_sizes.dir/bench_summary_sizes.cc.o"
  "CMakeFiles/bench_summary_sizes.dir/bench_summary_sizes.cc.o.d"
  "bench_summary_sizes"
  "bench_summary_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
