# Empty compiler generated dependencies file for bench_summary_sizes.
# This may be replaced when dependencies are built.
