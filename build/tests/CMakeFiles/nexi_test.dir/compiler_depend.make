# Empty compiler generated dependencies file for nexi_test.
# This may be replaced when dependencies are built.
