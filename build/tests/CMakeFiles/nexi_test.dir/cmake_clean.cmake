file(REMOVE_RECURSE
  "CMakeFiles/nexi_test.dir/nexi_test.cc.o"
  "CMakeFiles/nexi_test.dir/nexi_test.cc.o.d"
  "nexi_test"
  "nexi_test.pdb"
  "nexi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
