file(REMOVE_RECURSE
  "CMakeFiles/xml_fuzz_test.dir/xml_fuzz_test.cc.o"
  "CMakeFiles/xml_fuzz_test.dir/xml_fuzz_test.cc.o.d"
  "xml_fuzz_test"
  "xml_fuzz_test.pdb"
  "xml_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
