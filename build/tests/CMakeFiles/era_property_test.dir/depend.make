# Empty dependencies file for era_property_test.
# This may be replaced when dependencies are built.
