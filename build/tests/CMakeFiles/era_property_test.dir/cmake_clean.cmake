file(REMOVE_RECURSE
  "CMakeFiles/era_property_test.dir/era_property_test.cc.o"
  "CMakeFiles/era_property_test.dir/era_property_test.cc.o.d"
  "era_property_test"
  "era_property_test.pdb"
  "era_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/era_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
