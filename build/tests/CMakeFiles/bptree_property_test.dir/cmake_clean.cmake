file(REMOVE_RECURSE
  "CMakeFiles/bptree_property_test.dir/bptree_property_test.cc.o"
  "CMakeFiles/bptree_property_test.dir/bptree_property_test.cc.o.d"
  "bptree_property_test"
  "bptree_property_test.pdb"
  "bptree_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bptree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
