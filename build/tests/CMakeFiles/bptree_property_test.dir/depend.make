# Empty dependencies file for bptree_property_test.
# This may be replaced when dependencies are built.
