# Empty dependencies file for strict_test.
# This may be replaced when dependencies are built.
