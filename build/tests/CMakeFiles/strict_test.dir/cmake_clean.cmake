file(REMOVE_RECURSE
  "CMakeFiles/strict_test.dir/strict_test.cc.o"
  "CMakeFiles/strict_test.dir/strict_test.cc.o.d"
  "strict_test"
  "strict_test.pdb"
  "strict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
