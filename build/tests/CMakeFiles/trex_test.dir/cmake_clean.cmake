file(REMOVE_RECURSE
  "CMakeFiles/trex_test.dir/trex_test.cc.o"
  "CMakeFiles/trex_test.dir/trex_test.cc.o.d"
  "trex_test"
  "trex_test.pdb"
  "trex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
