# Empty dependencies file for trex_test.
# This may be replaced when dependencies are built.
