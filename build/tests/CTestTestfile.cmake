# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/coding_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/bptree_property_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/summary_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/nexi_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/retrieval_test[1]_include.cmake")
include("/root/repo/build/tests/race_test[1]_include.cmake")
include("/root/repo/build/tests/era_property_test[1]_include.cmake")
include("/root/repo/build/tests/xml_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/retrieval_property_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/strict_test[1]_include.cmake")
include("/root/repo/build/tests/updater_test[1]_include.cmake")
include("/root/repo/build/tests/trex_test[1]_include.cmake")
