// The advisor decision audit log: unit-token round trips, synthetic
// replay folding, and the end-to-end invariant that every applied plan
// is reconstructible from `advisor_decisions.jsonl` alone.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/advisor_loop.h"
#include "advisor/calibration.h"
#include "advisor/decision_log.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "testutil.h"
#include "trex/trex.h"

namespace trex {
namespace {

constexpr const char* kHotQuery = "//article//sec[about(., ontologies)]";
constexpr const char* kColdQuery =
    "//article[about(., information retrieval)]";

TEST(UnitTokenTest, FormatParseRoundTrip) {
  for (const ListUnit& unit :
       {ListUnit{ListKind::kRpl, "xml", 4}, ListUnit{ListKind::kErpl, "a", 0},
        ListUnit{ListKind::kRpl, "ontolog", 4294967295u}}) {
    std::string token = FormatUnitToken(unit);
    auto parsed = ParseUnitToken(token);
    TREX_CHECK_OK(parsed.status());
    EXPECT_TRUE(parsed.value() == unit) << token;
  }
  EXPECT_EQ(FormatUnitToken(ListUnit{ListKind::kErpl, "xml", 7}), "E:7:xml");
}

TEST(UnitTokenTest, ParseRejectsMalformedTokens) {
  for (const char* bad : {"", "R", "R:", "R:4", "X:4:xml", "R:notanum:xml",
                          "R::xml", "4:R:xml"}) {
    EXPECT_TRUE(ParseUnitToken(bad).status().IsCorruption()) << bad;
  }
}

TEST(UnitTokenTest, JoinProducesJsonArrayBody) {
  std::vector<ListUnit> units = {ListUnit{ListKind::kRpl, "a", 1},
                                 ListUnit{ListKind::kErpl, "b", 2}};
  EXPECT_EQ(JoinUnitTokens(units), "\"R:1:a\",\"E:2:b\"");
  EXPECT_EQ(JoinUnitTokens({}), "");
}

TEST(ReplayTest, FoldsAppliesRollbacksAndTrims) {
  const std::string log =
      "{\"type\":\"decision\",\"tick\":1,\"query\":\"//a\",\"choice\":"
      "\"erpl\"}\n"
      "{\"type\":\"plan\",\"tick\":1,\"gated\":false}\n"
      "{\"type\":\"apply\",\"tick\":1,\"add\":[\"R:1:a\",\"E:1:a\","
      "\"R:2:b\"],\"drop\":[],\"trimmed\":[\"R:2:b\"],\"bytes\":10}\n"
      "{\"type\":\"apply\",\"tick\":2,\"add\":[\"E:3:c\"],\"drop\":"
      "[\"R:1:a\"],\"trimmed\":[],\"bytes\":12}\n"
      "{\"type\":\"rollback\",\"dropped\":[\"E:3:c\"]}\n"
      "{\"type\":\"future_record\",\"tick\":9}\n";
  auto replay = ReplayAuditLog(log);
  TREX_CHECK_OK(replay.status());
  EXPECT_EQ(replay.value().applies, 2u);
  EXPECT_EQ(replay.value().rollbacks, 1u);
  EXPECT_EQ(replay.value().last_tick, 9u);
  // add{R:1:a, E:1:a, R:2:b} - trim{R:2:b} + add{E:3:c} - drop{R:1:a}
  // - rollback{E:3:c} = {E:1:a}.
  std::set<ListUnit> expect = {ListUnit{ListKind::kErpl, "a", 1}};
  EXPECT_EQ(replay.value().catalog, expect);
}

TEST(ReplayTest, StartsFromTheInitialCatalog) {
  std::set<ListUnit> initial = {ListUnit{ListKind::kRpl, "x", 5},
                                ListUnit{ListKind::kRpl, "y", 6}};
  auto replay = ReplayAuditLog(
      "{\"type\":\"apply\",\"tick\":1,\"add\":[],\"drop\":[\"R:5:x\"],"
      "\"trimmed\":[],\"bytes\":0}\n",
      initial);
  TREX_CHECK_OK(replay.status());
  std::set<ListUnit> expect = {ListUnit{ListKind::kRpl, "y", 6}};
  EXPECT_EQ(replay.value().catalog, expect);
}

TEST(ReplayTest, MalformedUnitTokenIsCorruption) {
  auto replay = ReplayAuditLog(
      "{\"type\":\"apply\",\"tick\":1,\"add\":[\"Z:9:q\"],\"drop\":[],"
      "\"trimmed\":[],\"bytes\":0}\n");
  EXPECT_TRUE(replay.status().IsCorruption());
}

TEST(CalibrationTrackerTest, TracksDriftAndDirection) {
  obs::MetricsRegistry reg;
  CalibrationTracker tracker(&reg);
  tracker.Observe(/*estimated_seconds=*/0.010, /*measured_seconds=*/0.005);
  tracker.Observe(/*estimated_seconds=*/0.010, /*measured_seconds=*/0.020);
  tracker.Observe(/*estimated_seconds=*/-1.0, /*measured_seconds=*/1.0);
  EXPECT_EQ(tracker.samples(), 2u);
  // |50 - 100| and |200 - 100| percent -> mean 75.
  EXPECT_DOUBLE_EQ(tracker.mean_abs_drift_pct(), 75.0);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("advisor.calibration.samples"), 2u);
  EXPECT_EQ(snap.counter("advisor.calibration.overestimates"), 1u);
  EXPECT_EQ(snap.counter("advisor.calibration.underestimates"), 1u);
  EXPECT_EQ(snap.histograms.at("advisor.calibration.ratio_pct").count, 2u);
}

// --------------------------------------------------------------------
// End to end against a real index.

class AdvisorAuditTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = test::UniqueTestDir("trex_advisor_audit"); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<TReX> BuildTrex(const std::string& subdir) {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 40;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir_ + "/" + subdir, gen, options);
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }

  static TReX::SelfManagementOptions ManualTickOptions() {
    TReX::SelfManagementOptions sm;
    sm.start_background = false;
    sm.loop.min_list_age_ticks = 0;
    return sm;
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static std::set<ListUnit> LiveCatalog(TReX* trex) {
    auto entries = trex->index()->catalog()->List();
    TREX_CHECK_OK(entries.status());
    std::set<ListUnit> out;
    for (const CatalogEntry& e : entries.value()) {
      out.insert(ListUnit{e.kind, e.term, e.sid});
    }
    return out;
  }

  std::string dir_;
};

// The acceptance invariant: after a workload shift with several applied
// ticks, folding the audit log over the (empty) initial catalog yields
// exactly the live catalog — every advisor action is reconstructible
// from the log alone.
TEST_F(AdvisorAuditTest, AuditReplayMatchesAppliedPlan) {
  auto trex = BuildTrex("idx");
  ASSERT_TRUE(LiveCatalog(trex.get()).empty());
  TREX_CHECK_OK(trex->EnableSelfManagement(ManualTickOptions()));

  // Phase A: hot query dominates; the advisor materializes its lists.
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));

  // Phase B: the workload shifts; the advisor re-plans, dropping phase
  // A's lists in favor of the new traffic.
  trex->workload_recorder()->Clear();
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kColdQuery, 10).status());
  }
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));

  const std::string log = ReadAll(AuditLogPath(trex->index()->dir()));
  ASSERT_FALSE(log.empty());
  auto replay = ReplayAuditLog(log);
  TREX_CHECK_OK(replay.status());
  EXPECT_GE(replay.value().applies, 1u);
  EXPECT_EQ(replay.value().catalog, LiveCatalog(trex.get()))
      << "audit log does not reconstruct the live catalog";
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

// Every planned tick leaves decision records carrying the estimated
// costs, a plan record, and (when applied) an apply + calibration trail.
TEST_F(AdvisorAuditTest, RecordsCarryDecisionsAndCalibration) {
  auto trex = BuildTrex("idx");
  TREX_CHECK_OK(trex->EnableSelfManagement(ManualTickOptions()));
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  ASSERT_TRUE(report.applied);
  EXPECT_GT(report.calibration_samples, 0u);

  const std::string log = ReadAll(AuditLogPath(trex->index()->dir()));
  std::istringstream in(log);
  std::string line;
  bool saw_decision = false, saw_plan = false, saw_apply = false,
       saw_calibration = false;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"decision\"") != std::string::npos) {
      saw_decision = true;
      EXPECT_NE(line.find("\"query\":"), std::string::npos);
      EXPECT_NE(line.find("\"choice\":"), std::string::npos);
      EXPECT_NE(line.find("\"est\":{\"t_era\":"), std::string::npos);
      EXPECT_NE(line.find("\"weighted_saving\":"), std::string::npos);
    } else if (line.find("\"type\":\"plan\"") != std::string::npos) {
      saw_plan = true;
      EXPECT_NE(line.find("\"gated\":"), std::string::npos);
      EXPECT_NE(line.find("\"deferred\":"), std::string::npos);
    } else if (line.find("\"type\":\"apply\"") != std::string::npos) {
      saw_apply = true;
      EXPECT_NE(line.find("\"add\":["), std::string::npos);
      EXPECT_NE(line.find("\"bytes\":"), std::string::npos);
    } else if (line.find("\"type\":\"calibration\"") != std::string::npos) {
      saw_calibration = true;
      EXPECT_NE(line.find("\"est_s\":"), std::string::npos);
      EXPECT_NE(line.find("\"meas_s\":"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_decision);
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_apply);
  EXPECT_TRUE(saw_calibration);
  // The calibration tracker fed the registry the same samples.
  obs::MetricsSnapshot snap = obs::Default().Snapshot();
  EXPECT_GE(snap.counter("advisor.calibration.samples"),
            report.calibration_samples);
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

// Disabling the audit leaves no log behind — hosts that cannot afford
// the (tiny) append cost can opt out.
TEST_F(AdvisorAuditTest, AuditCanBeDisabled) {
  auto trex = BuildTrex("idx");
  TReX::SelfManagementOptions sm = ManualTickOptions();
  sm.loop.audit = false;
  TREX_CHECK_OK(trex->EnableSelfManagement(sm));
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  ASSERT_TRUE(report.applied);
  EXPECT_FALSE(
      std::filesystem::exists(AuditLogPath(trex->index()->dir())));
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

}  // namespace
}  // namespace trex
