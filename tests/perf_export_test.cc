// Exportable profiles: Chrome trace_event round-trip, the slow-query
// log (threshold, ring, JSONL sink, executor wiring), and the metrics
// snapshotter's delta math — each asserted by parsing the emitted JSON
// back (tests/testjson.h), not by eyeballing substrings.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/snapshotter.h"
#include "obs/trace.h"
#include "testjson.h"
#include "testutil.h"
#include "trex/query_executor.h"
#include "trex/trex.h"

namespace trex {
namespace {

test::JsonValue ParseOrFail(const std::string& text) {
  test::JsonParser parser(text);
  test::JsonValue v = parser.Parse();
  EXPECT_TRUE(parser.ok()) << parser.error() << " in: " << text;
  return v;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// A three-span tree with attributes on every level, closed in LIFO
// order — the same shape the retrieval stack produces.
std::unique_ptr<obs::Trace> MakeSampleTrace() {
  auto trace = std::make_unique<obs::Trace>("query");
  {
    obs::TraceSpan translate(trace.get(), "translate");
    translate.AddAttr("terms", uint64_t{3});
  }
  {
    obs::TraceSpan evaluate(trace.get(), "evaluate:era");
    evaluate.AddAttr("lists", uint64_t{2});
    {
      obs::TraceSpan fetch(trace.get(), "fetch");
      fetch.AddAttr("note", "warm");
    }
  }
  trace->AddRootAttr("pages_fetched", uint64_t{42});
  trace->Finish();
  return trace;
}

// ---------------------------------------------------------------------
// Chrome trace_event export.

TEST(ChromeTraceTest, EmptyWriterEmitsValidEnvelope) {
  obs::ChromeTraceWriter writer;
  test::JsonValue v = ParseOrFail(writer.Json());
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.at("traceEvents").is_array());
  EXPECT_TRUE(v.at("traceEvents").array.empty());
  EXPECT_EQ(v.at("displayTimeUnit").str, "ns");
}

TEST(ChromeTraceTest, SpanTreeRoundTripsAsCompleteEvents) {
  auto trace = MakeSampleTrace();
  std::string json = obs::ChromeTraceJson(*trace, /*pid=*/7, /*tid=*/3);
  test::JsonValue v = ParseOrFail(json);
  const auto& events = v.at("traceEvents").array;
  // Root + translate + evaluate:era + fetch.
  ASSERT_EQ(events.size(), 4u);
  for (const test::JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_EQ(e.at("pid").number, 7.0);
    EXPECT_EQ(e.at("tid").number, 3.0);
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
  }
  EXPECT_EQ(events[0].at("name").str, "query");
  EXPECT_EQ(events[1].at("name").str, "translate");
  EXPECT_EQ(events[2].at("name").str, "evaluate:era");
  EXPECT_EQ(events[3].at("name").str, "fetch");
  // Typed attrs survive as args.
  EXPECT_EQ(events[0].at("args").at("pages_fetched").number, 42.0);
  EXPECT_EQ(events[1].at("args").at("terms").number, 3.0);
  EXPECT_EQ(events[3].at("args").at("note").str, "warm");
}

TEST(ChromeTraceTest, ChildEventsNestInsideParents) {
  auto trace = MakeSampleTrace();
  test::JsonValue v = ParseOrFail(obs::ChromeTraceJson(*trace));
  const auto& events = v.at("traceEvents").array;
  ASSERT_EQ(events.size(), 4u);
  // trace_event nesting is positional: a child's [ts, ts+dur] interval
  // lies within its parent's. fetch (3) is inside evaluate:era (2),
  // which is inside the root (0).
  auto begin = [&](size_t i) { return events[i].at("ts").number; };
  auto end = [&](size_t i) {
    return events[i].at("ts").number + events[i].at("dur").number;
  };
  EXPECT_GE(begin(3), begin(2));
  EXPECT_LE(end(3), end(2) + 0.001);  // 1 ns slack for µs rounding.
  EXPECT_GE(begin(2), begin(0));
  EXPECT_LE(end(2), end(0) + 0.001);
}

TEST(ChromeTraceTest, WriterLaysTracesOutInSeparateLanes) {
  auto a = MakeSampleTrace();
  auto b = MakeSampleTrace();
  obs::ChromeTraceWriter writer;
  writer.AddTrace(*a, /*pid=*/1, /*tid=*/1);
  writer.AddTrace(*b, /*pid=*/1, /*tid=*/2, /*ts_offset_nanos=*/5000);
  EXPECT_EQ(writer.event_count(), 8u);
  test::JsonValue v = ParseOrFail(writer.Json());
  const auto& events = v.at("traceEvents").array;
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].at("tid").number, 1.0);
  EXPECT_EQ(events[4].at("tid").number, 2.0);
  // The offset shifts the second trace's epoch on the shared timeline
  // (5000 ns = 5 µs in trace_event units).
  EXPECT_GE(events[4].at("ts").number, 5.0);
}

// ---------------------------------------------------------------------
// Slow-query log.

obs::SlowQueryRecord MakeRecord(const std::string& query,
                                int64_t duration_nanos,
                                uint64_t pages = 0) {
  obs::SlowQueryRecord r;
  r.query = query;
  r.method = "ERA";
  r.duration_nanos = duration_nanos;
  r.resources.pages_fetched = pages;
  return r;
}

TEST(SlowQueryLogTest, LatencyThresholdFilters) {
  obs::SlowQueryLog::Options options;
  options.threshold_nanos = 1'000'000;  // 1 ms.
  obs::SlowQueryLog log(options);
  EXPECT_FALSE(log.Observe(MakeRecord("fast", 999'999)));
  EXPECT_TRUE(log.Observe(MakeRecord("slow", 1'000'000)));
  EXPECT_EQ(log.observed(), 2u);
  EXPECT_EQ(log.recorded(), 1u);
  auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].query, "slow");
  EXPECT_EQ(recent[0].sequence, 1u);
}

TEST(SlowQueryLogTest, PageThresholdCatchesFastButExpensiveQueries) {
  obs::SlowQueryLog::Options options;
  options.threshold_nanos = 1'000'000'000;  // Never by latency here.
  options.threshold_pages = 100;
  obs::SlowQueryLog log(options);
  EXPECT_FALSE(log.Observe(MakeRecord("cheap", 10, /*pages=*/99)));
  EXPECT_TRUE(log.Observe(MakeRecord("expensive", 10, /*pages=*/100)));
}

TEST(SlowQueryLogTest, RingWrapsKeepingNewestOldestFirst) {
  obs::SlowQueryLog::Options options;
  options.threshold_nanos = 0;  // Record everything.
  options.ring_capacity = 4;
  obs::SlowQueryLog log(options);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_TRUE(log.Observe(MakeRecord("q" + std::to_string(i), i)));
  }
  auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 4u);
  // Sequences 3..6 survive, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[i].sequence, i + 3) << "slot " << i;
    EXPECT_EQ(recent[i].query, "q" + std::to_string(i + 3));
  }
  EXPECT_EQ(log.recorded(), 6u);
}

TEST(SlowQueryLogTest, JsonlSinkWritesOneParsableObjectPerRecord) {
  std::string dir = test::UniqueTestDir("slowlog");
  std::string path = dir + "/slow.jsonl";
  {
    obs::SlowQueryLog::Options options;
    options.threshold_nanos = 0;
    options.jsonl_path = path;
    obs::SlowQueryLog log(options);
    ASSERT_FALSE(log.sink_failed());
    obs::SlowQueryRecord r = MakeRecord("//article[about(., \"xml\")]", 7);
    r.resources.pages_fetched = 11;
    auto trace = MakeSampleTrace();
    r.trace_json = trace->ToJson();
    EXPECT_TRUE(log.Observe(std::move(r)));
    EXPECT_TRUE(log.Observe(MakeRecord("plain", 9)));
  }
  auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  test::JsonValue first = ParseOrFail(lines[0]);
  EXPECT_EQ(first.at("seq").number, 1.0);
  EXPECT_EQ(first.at("query").str, "//article[about(., \"xml\")]");
  EXPECT_EQ(first.at("method").str, "ERA");
  EXPECT_EQ(first.at("duration_ns").number, 7.0);
  EXPECT_EQ(first.at("resources").at("pages_fetched").number, 11.0);
  // The full span tree is embedded, not stringified.
  const test::JsonValue& tree = first.at("trace");
  ASSERT_TRUE(tree.is_object());
  EXPECT_EQ(tree.at("name").str, "query");
  ASSERT_EQ(tree.at("children").array.size(), 2u);
  EXPECT_EQ(tree.at("children").array[1].at("name").str, "evaluate:era");
  // A record without a trace degrades to null.
  test::JsonValue second = ParseOrFail(lines[1]);
  EXPECT_TRUE(second.at("trace").is_null());
  std::filesystem::remove_all(dir);
}

TEST(SlowQueryLogTest, SinkFailureIsReportedNotFatal) {
  obs::SlowQueryLog::Options options;
  options.threshold_nanos = 0;
  options.jsonl_path = "/nonexistent-dir-for-trex-test/slow.jsonl";
  obs::SlowQueryLog log(options);
  EXPECT_TRUE(log.sink_failed());
  // The ring still works.
  EXPECT_TRUE(log.Observe(MakeRecord("q", 1)));
  EXPECT_EQ(log.Recent().size(), 1u);
}

// ---------------------------------------------------------------------
// Snapshotter delta math (pure) and the background thread.

TEST(SnapshotterTest, DeltaJsonComputesCounterDeltasAndAbsoluteGauges) {
  obs::MetricsSnapshot prev;
  prev.counters["a.count"] = 10;
  prev.gauges["g.depth"] = 5;
  obs::MetricsSnapshot cur;
  cur.counters["a.count"] = 25;
  cur.counters["b.fresh"] = 3;  // Appears between ticks.
  cur.gauges["g.depth"] = 2;

  std::string line =
      obs::MetricsSnapshotter::DeltaJson(prev, cur, /*tick=*/4,
                                         /*elapsed_nanos=*/1'000'000);
  test::JsonValue v = ParseOrFail(line);
  EXPECT_EQ(v.at("tick").number, 4.0);
  EXPECT_EQ(v.at("elapsed_ns").number, 1'000'000.0);
  EXPECT_EQ(v.at("counters").at("a.count").number, 15.0);
  EXPECT_EQ(v.at("counters").at("b.fresh").number, 3.0);
  EXPECT_EQ(v.at("gauges").at("g.depth").number, 2.0);
}

TEST(SnapshotterTest, DeltaJsonHistogramsMixDeltaAndAbsolute) {
  obs::HistogramSummary before;
  before.count = 100;
  before.sum = 1000;
  obs::HistogramSummary after;
  after.count = 160;
  after.sum = 2500;
  after.p50 = 12;
  after.p95 = 40;
  after.p99 = 90;
  obs::MetricsSnapshot prev;
  prev.histograms["h.lat"] = before;
  obs::MetricsSnapshot cur;
  cur.histograms["h.lat"] = after;

  test::JsonValue v = ParseOrFail(
      obs::MetricsSnapshotter::DeltaJson(prev, cur, 1, 1));
  const test::JsonValue& h = v.at("histograms").at("h.lat");
  ASSERT_TRUE(h.is_object());
  // count/sum are deltas; percentiles are absolute (current shape).
  EXPECT_EQ(h.at("count").number, 60.0);
  EXPECT_EQ(h.at("sum").number, 1500.0);
  EXPECT_EQ(h.at("p50").number, 12.0);
  EXPECT_EQ(h.at("p95").number, 40.0);
  EXPECT_EQ(h.at("p99").number, 90.0);
}

TEST(SnapshotterTest, DeltasConsistentUnderConcurrentWriters) {
  // Writers hammer a counter while snapshots are taken. Each tick's
  // delta must be non-negative and the deltas must telescope: their sum
  // equals last - first (no lost or double-counted increments).
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("w.count");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([c, &stop] {
      while (!stop.load(std::memory_order_relaxed)) c->Add();
    });
  }
  std::vector<obs::MetricsSnapshot> snaps;
  for (int i = 0; i < 50; ++i) snaps.push_back(reg.Snapshot());
  stop.store(true);
  for (std::thread& t : writers) t.join();

  uint64_t telescoped = 0;
  for (size_t i = 1; i < snaps.size(); ++i) {
    const uint64_t prev = snaps[i - 1].counter("w.count");
    const uint64_t cur = snaps[i].counter("w.count");
    ASSERT_GE(cur, prev) << "counter went backwards at snapshot " << i;
    test::JsonValue v = ParseOrFail(
        obs::MetricsSnapshotter::DeltaJson(snaps[i - 1], snaps[i], i, 1));
    const double delta = v.at("counters").at("w.count").number;
    EXPECT_EQ(delta, static_cast<double>(cur - prev));
    telescoped += cur - prev;
  }
  EXPECT_EQ(telescoped, snaps.back().counter("w.count") -
                            snaps.front().counter("w.count"));
}

TEST(SnapshotterTest, BackgroundThreadWritesParsableTicks) {
  std::string dir = test::UniqueTestDir("snapshotter");
  std::string path = dir + "/snapshots.jsonl";
  obs::MetricsRegistry reg;
  obs::MetricsSnapshotter::Options options;
  options.period_millis = 10;
  options.jsonl_path = path;
  options.registry = &reg;
  obs::MetricsSnapshotter snapshotter(options);
  ASSERT_TRUE(snapshotter.Start());
  // Wait out the first tick before touching the counter: ticks() >= 1
  // means the tick-1 snapshot is taken, so every increment below lands
  // strictly after it and must show up in later deltas (the final one
  // written by Stop() at the latest).
  while (snapshotter.ticks() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::Counter* c = reg.GetCounter("bg.count");
  for (int i = 0; i < 100; ++i) {
    c->Add();
    if (i % 10 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  snapshotter.Stop();
  EXPECT_GE(snapshotter.ticks(), 1u);
  auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), snapshotter.ticks());
  uint64_t total = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    test::JsonValue v = ParseOrFail(lines[i]);
    EXPECT_EQ(v.at("tick").number, static_cast<double>(i + 1));
    EXPECT_GT(v.at("elapsed_ns").number, 0.0);
    ASSERT_TRUE(v.at("counters").is_object());
    total += static_cast<uint64_t>(v.at("counters").at("bg.count").number);
  }
  // Stop() writes a final tick, so the series covers every increment.
  EXPECT_EQ(total, 100u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotterTest, StartFailsCleanlyOnBadSink) {
  obs::MetricsRegistry reg;
  obs::MetricsSnapshotter::Options options;
  options.jsonl_path = "/nonexistent-dir-for-trex-test/snap.jsonl";
  options.registry = &reg;
  obs::MetricsSnapshotter snapshotter(options);
  EXPECT_FALSE(snapshotter.Start());
  snapshotter.Stop();  // No-op; must not hang or crash.
  EXPECT_EQ(snapshotter.ticks(), 0u);
}

// ---------------------------------------------------------------------
// Executor wiring: every finished query is observed with its method,
// resource vector and span tree.

TEST(SlowQueryLogTest, ExecutorFeedsLogWithFullRecords) {
  std::string dir = test::UniqueTestDir("slowlog_exec");
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 40;
  gen_options.size_factor = 0.5;
  IeeeGenerator gen(gen_options);
  TrexOptions trex_options;
  trex_options.index.aliases = IeeeAliasMap();
  auto built = TReX::Build(dir + "/idx", gen, trex_options);
  TREX_CHECK_OK(built.status());
  std::unique_ptr<TReX> trex = std::move(built).value();

  obs::SlowQueryLog::Options log_options;
  log_options.threshold_nanos = 0;  // Every query is "slow".
  obs::SlowQueryLog log(log_options);

  constexpr char kQuery[] =
      "//article//sec[about(., ontologies case study)]";
  {
    QueryExecutor executor(trex.get(), 2);
    executor.set_slow_query_log(&log);
    std::vector<std::future<Result<QueryAnswer>>> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(executor.Submit(kQuery, 5));
    for (auto& f : futures) {
      auto answer = f.get();
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    }
  }
  EXPECT_EQ(log.observed(), 4u);
  EXPECT_EQ(log.recorded(), 4u);
  for (const obs::SlowQueryRecord& r : log.Recent()) {
    EXPECT_EQ(r.query, kQuery);
    EXPECT_EQ(r.method, "ERA");  // No redundant lists: strategy's fallback.
    EXPECT_GT(r.duration_nanos, 0);
    EXPECT_GT(r.resources.pages_fetched, 0u);
    // The record's trace embeds the usual per-phase spans.
    test::JsonValue tree = ParseOrFail(r.trace_json);
    ASSERT_TRUE(tree.at("children").is_array());
    EXPECT_FALSE(tree.at("children").array.empty());
  }
  std::filesystem::remove_all(dir);
}

// Concurrent export: traces produced on executor worker threads are
// aggregated into one chrome trace with a separate lane per query. The
// whole path — per-worker span production, shared_ptr hand-off through
// the future, writer aggregation — runs under TSan via the
// `concurrency` label.
TEST(ChromeTraceTest, ConcurrentExecutorTracesExportToSeparateLanes) {
  std::string dir = test::UniqueTestDir("chrome_exec");
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 40;
  gen_options.size_factor = 0.5;
  IeeeGenerator gen(gen_options);
  TrexOptions trex_options;
  trex_options.index.aliases = IeeeAliasMap();
  auto built = TReX::Build(dir + "/idx", gen, trex_options);
  TREX_CHECK_OK(built.status());
  std::unique_ptr<TReX> trex = std::move(built).value();

  constexpr size_t kQueries = 8;
  std::vector<QueryAnswer> answers;
  {
    QueryExecutor executor(trex.get(), 4);
    std::vector<std::future<Result<QueryAnswer>>> futures;
    for (size_t i = 0; i < kQueries; ++i) {
      futures.push_back(executor.Submit(
          "//article//sec[about(., ontologies case study)]", 5));
    }
    for (auto& f : futures) {
      auto answer = f.get();
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      answers.push_back(std::move(answer).value());
    }
  }

  obs::ChromeTraceWriter writer;
  for (size_t i = 0; i < answers.size(); ++i) {
    ASSERT_NE(answers[i].trace, nullptr);
    writer.AddTrace(*answers[i].trace, /*pid=*/1,
                    /*tid=*/static_cast<uint64_t>(i + 1));
  }
  test::JsonValue v = ParseOrFail(writer.Json());
  const auto& events = v.at("traceEvents").array;
  ASSERT_GE(events.size(), kQueries * 2);  // Root + phases per query.

  // One lane per query, every lane non-empty, every event well-formed,
  // and each lane's phase events nest inside its own root span.
  std::map<double, std::vector<const test::JsonValue*>> lanes;
  for (const test::JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    lanes[e.at("tid").number].push_back(&e);
  }
  ASSERT_EQ(lanes.size(), kQueries);
  for (const auto& [tid, lane] : lanes) {
    ASSERT_GE(lane.size(), 2u) << "lane " << tid;
    const test::JsonValue& root = *lane[0];
    EXPECT_EQ(root.at("name").str, "query");
    const double root_begin = root.at("ts").number;
    const double root_end = root_begin + root.at("dur").number;
    bool saw_evaluate = false;
    for (size_t i = 1; i < lane.size(); ++i) {
      const test::JsonValue& e = *lane[i];
      EXPECT_GE(e.at("ts").number, root_begin);
      EXPECT_LE(e.at("ts").number + e.at("dur").number,
                root_end + 0.001);  // 1 ns slack for µs rounding.
      if (e.at("name").str.rfind("evaluate:", 0) == 0) saw_evaluate = true;
    }
    EXPECT_TRUE(saw_evaluate) << "lane " << tid;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace trex
