// Overload and fault chaos harness (ctest label: robustness; run under
// ASan/UBSan and TSan by scripts/check.sh --chaos).
//
// The invariant everything here defends: under transient read failures,
// slow I/O, tight deadlines and queue saturation — alone or combined —
// no query ever hangs or crashes the process, and every submitted query
// resolves with exactly one of {OK, ResourceExhausted, DeadlineExceeded,
// Overloaded}. Afterwards the index still opens and deep-verifies clean.
//
// Deterministic pieces first (retry absorbs a bounded transient window;
// retry exhaustion surfaces Unavailable; a 50 ms deadline aborts within
// one checkpoint interval of expiry; a bounded executor sheds), then the
// randomized schedule that combines them.
//
// Worker threads never call gtest assertions; they count outcomes
// atomically and the main thread asserts.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "corpus/adversarial.h"
#include "corpus/ieee_generator.h"
#include "corpus/workload_zoo.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "retrieval/materializer.h"
#include "storage/fault_env.h"
#include "trex/query_executor.h"
#include "trex/trex.h"

#include "testutil.h"

namespace trex {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = test::UniqueTestDir("trex_chaos"); }
  void TearDown() override {
    Env::Swap(nullptr);  // Never leak a fault env into the next test.
    std::filesystem::remove_all(dir_);
  }

  TrexOptions IeeeOptions() {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    return options;
  }

  // Builds the index with the clean env and leaves it on disk; tests
  // reopen it through a FaultInjectingEnv afterwards.
  void BuildIeee(size_t docs) {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = docs;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir_ + "/idx", gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    MaterializeStats stats;
    TREX_CHECK_OK(trex.value()->MaterializeFor(
        "//article[about(., xml query evaluation)]", true, true, &stats));
    TREX_CHECK_OK(trex.value()->index()->Flush());
  }

  std::string dir_;
};

const char* const kQueries[] = {
    "//article//sec[about(., ontologies case study)]",
    "//article[about(., xml query evaluation)]",
    "//sec[about(., information retrieval)]",
    "//article[about(., parallel algorithm)]",
};

uint64_t CounterValue(const char* name) {
  return obs::Default().GetCounter(name)->value();
}

// A bounded window of transient read failures is absorbed by the pager's
// retry loop: the query succeeds and only the retry metrics notice.
TEST_F(ChaosTest, TransientReadWindowIsRetriedAway) {
  BuildIeee(30);
  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  auto opened = TReX::Open(dir_ + "/idx", IeeeOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TReX> trex = std::move(opened).value();

  // Arm after open: the very next read fails, and so does the read after
  // it — which is the retry itself (global indexes at and at+1). The
  // second retry (at+2) succeeds, all inside one ReadPage call.
  const uint64_t attempts_before = CounterValue("storage.retry.attempts");
  const uint64_t successes_before = CounterValue("storage.retry.successes");
  const uint64_t exhausted_before = CounterValue("storage.retry.exhausted");
  fenv.plan().transient_read_at = static_cast<int64_t>(fenv.reads());
  fenv.plan().transient_read_count = 2;

  auto answer = trex->Query(kQueries[1], 10);
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GE(CounterValue("storage.retry.attempts") - attempts_before, 2u);
  EXPECT_GE(CounterValue("storage.retry.successes") - successes_before, 1u);
  EXPECT_EQ(CounterValue("storage.retry.exhausted") - exhausted_before, 0u);
}

// A transient outage longer than the retry cap surfaces Unavailable —
// not Corruption, not a crash — and the exhaustion metric ticks.
TEST_F(ChaosTest, RetryExhaustionSurfacesUnavailable) {
  BuildIeee(30);
  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  auto opened = TReX::Open(dir_ + "/idx", IeeeOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TReX> trex = std::move(opened).value();

  const uint64_t exhausted_before = CounterValue("storage.retry.exhausted");
  fenv.plan().transient_read_at = static_cast<int64_t>(fenv.reads());
  fenv.plan().transient_read_count = 64;  // Outlasts every retry.

  auto answer = trex->Query(kQueries[1], 10);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsUnavailable())
      << answer.status().ToString();
  EXPECT_GE(CounterValue("storage.retry.exhausted") - exhausted_before, 1u);

  // The outage ends; the same handle serves again without reopening.
  fenv.plan().transient_read_at = FaultPlan::kNever;
  auto recovered = trex->Query(kQueries[1], 10);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

// Acceptance criterion: with every page read stalled 20 ms, a 50 ms
// deadline aborts within deadline + one checkpoint interval (one slow
// read), not after running the query to completion.
TEST_F(ChaosTest, DeadlineAbortsWithinOneCheckpointOfExpiry) {
  BuildIeee(200);  // Big enough that a cold query faults dozens of pages.
  constexpr int64_t kSlowReadMicros = 20000;  // 20 ms per page read.

  // A deliberately wide query: every term is another set of posting
  // lists to fault in, so the cold evaluation reads many pages.
  const char* kWideQuery =
      "//article[about(., parallel algorithm information retrieval xml "
      "query evaluation ontologies case study)]";

  // Baseline: a cold, un-deadlined query under slow I/O. Its read count
  // is what the deadlined run must undercut.
  uint64_t baseline_reads = 0;
  {
    FaultInjectingEnv fenv;
    Env::Swap(&fenv);
    auto opened = TReX::Open(dir_ + "/idx", IeeeOptions());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<TReX> trex = std::move(opened).value();
    fenv.plan().slow_read_every = 1;
    fenv.plan().slow_read_micros = kSlowReadMicros;
    const uint64_t before = fenv.reads();
    auto answer = trex->Query(kWideQuery, 10);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    baseline_reads = fenv.reads() - before;
    trex.reset();
    Env::Swap(nullptr);
  }
  // The baseline must be long enough that a deadline abort is
  // distinguishable from normal completion: > 20 reads = > 400 ms.
  ASSERT_GT(baseline_reads, 20u);

  // Deadlined run, same cold-open conditions.
  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  auto opened = TReX::Open(dir_ + "/idx", IeeeOptions());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TReX> trex = std::move(opened).value();
  fenv.plan().slow_read_every = 1;
  fenv.plan().slow_read_micros = kSlowReadMicros;

  const uint64_t deadline_hits_before =
      CounterValue("retrieval.deadline.exceeded");
  const uint64_t before = fenv.reads();
  QueryOptions qo;
  qo.deadline = Deadline::After(50);
  Stopwatch watch;
  auto answer = trex->Query(kWideQuery, 10, qo);
  const double elapsed_ms =
      static_cast<double>(watch.ElapsedNanos()) / 1e6;
  const uint64_t deadline_reads = fenv.reads() - before;

  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsDeadlineExceeded())
      << answer.status().ToString();
  EXPECT_EQ(CounterValue("retrieval.deadline.exceeded") -
                deadline_hits_before,
            1u);
  // At 20 ms per read, at most ~3 reads fit under the 50 ms deadline;
  // the checkpoint at the next page fault catches the expiry, so the
  // abort costs at most a handful of reads — far below the baseline.
  EXPECT_LE(deadline_reads, 10u);
  EXPECT_LT(deadline_reads, baseline_reads);
  // Wall clock: deadline + one checkpoint interval (one 20 ms read),
  // with generous scheduling/sanitizer slack — still a small fraction
  // of what the full query costs (baseline_reads * 20 ms > 400 ms).
  EXPECT_LT(elapsed_ms, 50.0 + 20.0 + 430.0);
}

// Admission control sheds deterministically once the in-flight cost
// line is crossed, and shed futures resolve immediately.
TEST_F(ChaosTest, BoundedExecutorShedsOverAdmissionLimit) {
  BuildIeee(20);
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TReX> trex = std::move(opened).value();

  QueryExecutorOptions bounds;
  bounds.max_in_flight_cost = 1;
  QueryExecutor executor(trex.get(), 1, bounds);
  // The first submit takes the whole cost budget until its query
  // finishes; the burst behind it must shed (the worker cannot have
  // finished job 0 in the nanoseconds between the submits).
  std::vector<std::future<Result<QueryAnswer>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(executor.Submit(kQueries[0], 10));
  }
  size_t ok = 0, shed = 0, other = 0;
  for (auto& f : futures) {
    Result<QueryAnswer> r = f.get();
    if (r.ok()) {
      ++ok;
    } else if (r.status().IsOverloaded()) {
      ++shed;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(other, 0u);
  EXPECT_GE(ok, 1u);   // The admitted head of the burst ran.
  EXPECT_GE(shed, 1u);  // And the tail was turned away, not queued.
  EXPECT_GE(CounterValue("trex.executor.shed"), shed);
}

// The randomized schedule: submitter threads race a bounded executor
// over an index whose env injects transient failures and slow reads,
// with random deadlines, budgets, priorities and admission costs.
TEST_F(ChaosTest, RandomizedFaultAndLoadSchedules) {
  BuildIeee(40);
  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TReX> trex = std::move(opened).value();

  // Chaos plan, armed after open. transient_read_every fails each
  // (file, offset) at most once, so the pager's retry always absorbs it
  // — Unavailable must never reach a query.
  fenv.plan().transient_read_every = 7;
  fenv.plan().slow_read_every = 13;
  fenv.plan().slow_read_micros = 200;

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 40;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> budget{0};
  std::atomic<uint64_t> bad_status{0};
  {
    QueryExecutorOptions bounds;
    bounds.max_queue_depth = 12;
    bounds.max_in_flight_cost = 16;
    QueryExecutor executor(trex.get(), 4, bounds);
    std::vector<std::thread> threads;
    for (int t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 rng(0x5eed + static_cast<unsigned>(t));
        std::vector<std::future<Result<QueryAnswer>>> futures;
        futures.reserve(kPerThread);
        for (int i = 0; i < kPerThread; ++i) {
          QueryOptions qo;
          switch (rng() % 3) {
            case 0:
              break;  // No deadline.
            case 1:
              qo.deadline = Deadline::After(5);
              break;
            default:
              qo.deadline = Deadline::After(20);
          }
          if (rng() % 4 == 0) qo.budget.max_pages = 8;
          qo.priority = rng() % 4 == 0 ? QueryPriority::kBackground
                                       : QueryPriority::kInteractive;
          qo.admission_cost = 1 + rng() % 3;
          futures.push_back(
              executor.Submit(kQueries[rng() % 4], 10, qo));
        }
        for (auto& f : futures) {
          const Status s = f.get().status();
          if (s.ok()) {
            ++ok;
          } else if (s.IsOverloaded()) {
            ++shed;
          } else if (s.IsDeadlineExceeded()) {
            ++deadline;
          } else if (s.IsResourceExhausted()) {
            ++budget;
          } else {
            ++bad_status;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    // Executor destructor: drains admitted jobs, joins workers.
  }

  const uint64_t resolved = ok + shed + deadline + budget + bad_status;
  EXPECT_EQ(resolved,
            static_cast<uint64_t>(kSubmitters) * kPerThread);
  // The invariant: only the four sanctioned outcomes, and real progress.
  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_GT(ok.load(), 0u);

  // Afterward the index is untouched: disarm chaos, reopen with repair
  // allowed — the fast path must find nothing to repair — and deep
  // verification must pass.
  trex.reset();
  fenv.plan() = FaultPlan{};
  Env::Swap(nullptr);
  RecoveryReport report;
  auto reopened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), RecoveryMode::kRepair,
                 &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(report.ran) << report.ToString();
  EXPECT_TRUE(reopened.value()->index()->DeepVerify().ok());
}

// The same invariant over the hostile corpus: pathologically deep
// documents (the zoo's deep-recursion generator) served a zoo stream
// under transient faults, slow reads, tight deadlines and page budgets.
// Deep spines mean long extent chains and deep result paths; aborting
// mid-descent must stay exactly as clean as on the friendly corpus.
TEST_F(ChaosTest, DeepRecursionCorpusAbortsStayClean) {
  DeepRecursionOptions gen_options;
  gen_options.num_documents = 24;
  {
    DeepRecursionGenerator gen(gen_options);
    auto built = TReX::Build(dir_ + "/idx", gen);
    TREX_CHECK_OK(built.status());
    TREX_CHECK_OK(built.value()->index()->Flush());
  }

  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  auto opened = TReX::Open(dir_ + "/idx", {}, OpenMode::kReadShared);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TReX> trex = std::move(opened).value();
  fenv.plan().transient_read_every = 7;
  fenv.plan().slow_read_every = 13;
  fenv.plan().slow_read_micros = 200;

  // Queries from the deep-recursion zoo streams, so the workload shape
  // matches what bench_suite's deep_* scenarios serve.
  std::vector<ZooQuery> jobs =
      PhraseHeavyStream(DeepRecursionProfile(), 31).Take(20);
  {
    auto negated = NegationHeavyStream(DeepRecursionProfile(), 32).Take(20);
    jobs.insert(jobs.end(), negated.begin(), negated.end());
  }

  constexpr int kSubmitters = 3;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> budget{0};
  std::atomic<uint64_t> bad_status{0};
  {
    QueryExecutorOptions bounds;
    bounds.max_queue_depth = 12;
    bounds.max_in_flight_cost = 16;
    QueryExecutor executor(trex.get(), 4, bounds);
    std::vector<std::thread> threads;
    for (int t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937 rng(0xdee9 + static_cast<unsigned>(t));
        std::vector<std::future<Result<QueryAnswer>>> futures;
        futures.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
          QueryOptions qo;
          switch (rng() % 3) {
            case 0:
              break;  // No deadline.
            case 1:
              qo.deadline = Deadline::After(5);
              break;
            default:
              qo.deadline = Deadline::After(20);
          }
          if (rng() % 4 == 0) qo.budget.max_pages = 8;
          qo.admission_cost = 1 + rng() % 3;
          const ZooQuery& q = jobs[rng() % jobs.size()];
          futures.push_back(executor.Submit(q.nexi, q.k, qo));
        }
        for (auto& f : futures) {
          const Status s = f.get().status();
          if (s.ok()) {
            ++ok;
          } else if (s.IsOverloaded()) {
            ++shed;
          } else if (s.IsDeadlineExceeded()) {
            ++deadline;
          } else if (s.IsResourceExhausted()) {
            ++budget;
          } else {
            ++bad_status;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const uint64_t resolved = ok + shed + deadline + budget + bad_status;
  EXPECT_EQ(resolved, static_cast<uint64_t>(kSubmitters) * jobs.size());
  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_GT(ok.load(), 0u);

  trex.reset();
  fenv.plan() = FaultPlan{};
  Env::Swap(nullptr);
  RecoveryReport report;
  auto reopened =
      TReX::Open(dir_ + "/idx", {}, RecoveryMode::kRepair, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(report.ran) << report.ToString();
  EXPECT_TRUE(reopened.value()->index()->DeepVerify().ok());
}

}  // namespace
}  // namespace trex
