// Crash-safety test suite (ctest label: fault).
//
// Three layers of coverage:
//  * FaultInjectingEnv unit behavior — each fault kind fires exactly as
//    planned, counters/metrics/op-log record it.
//  * Durability protocols — atomic whole-file replacement keeps the old
//    contents across an injected crash, and the pager's commit publishes
//    the header only after the data pages are synced (asserted on the
//    real op order, not on implementation trust).
//  * Crash-point matrices — an index build and an incremental update are
//    killed at a stride of write counts; after every "reboot" the index
//    either fails to open with a clean error (nothing was ever
//    committed) or recovers to exactly the pre- or post-operation state.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/coding.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/block_codec.h"
#include "index/recovery.h"
#include "obs/metrics.h"
#include "retrieval/materializer.h"
#include "storage/bptree.h"
#include "storage/fault_env.h"
#include "storage/page.h"
#include "trex/trex.h"

namespace trex {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/trex_crash_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void CopyDir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

TrexOptions IeeeOptions() {
  TrexOptions options;
  options.index.aliases = IeeeAliasMap();
  return options;
}

IeeeGenerator SmallCorpus() {
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 6;
  gen_options.size_factor = 0.3;
  return IeeeGenerator(gen_options);
}

// Canonical rendering of a ranked result, for exact state comparison.
std::string Signature(const RetrievalResult& result) {
  std::string sig;
  char buf[96];
  for (const ScoredElement& e : result.elements) {
    std::snprintf(buf, sizeof(buf), "%u:%u:%llu:%.6e\n", e.element.sid,
                  e.element.docid,
                  static_cast<unsigned long long>(e.element.endpos), e.score);
    sig += buf;
  }
  return sig;
}

// ERA-only answer for `query` over the index in `dir`. ERA reads only the
// base tables, so this is a pure function of the committed index state —
// independent of which redundant lists survived a crash.
std::string EraSignature(const std::string& dir, const std::string& query) {
  auto trex = TReX::Open(dir, IeeeOptions());
  TREX_CHECK_OK(trex.status());
  auto answer = trex.value()->QueryWith(RetrievalMethod::kEra, query, 0);
  TREX_CHECK_OK(answer.status());
  return Signature(answer.value().result);
}

const char kQuery[] = "//article//sec[about(., ontologies case study)]";

// ---------------------------------------------------------------------------
// FaultInjectingEnv unit behavior.

TEST(FaultEnvTest, FailedWriteReturnsIOError) {
  std::string dir = TestDir("fail_write");
  FaultInjectingEnv fenv;
  fenv.plan().fail_write_at = 1;

  auto before = obs::Default().Snapshot();
  auto file = fenv.NewFile(dir + "/f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->Write(0, "aaaa", 4).ok());
  Status s = file.value()->Write(4, "bbbb", 4);  // Write #1 fails.
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(file.value()->Write(4, "bbbb", 4).ok());  // #2 is fine again.
  EXPECT_FALSE(fenv.crashed());
  EXPECT_EQ(fenv.writes(), 3u);

  auto after = obs::Default().Snapshot();
  EXPECT_EQ(after.counter("storage.fault.injected_write_failures"),
            before.counter("storage.fault.injected_write_failures") + 1);
  std::filesystem::remove_all(dir);
}

TEST(FaultEnvTest, TornWritePersistsPrefixAndCutsPower) {
  std::string dir = TestDir("torn_write");
  FaultInjectingEnv fenv;
  fenv.plan().torn_write_at = 0;
  fenv.plan().torn_bytes = 3;

  auto file = fenv.NewFile(dir + "/f");
  ASSERT_TRUE(file.ok());
  // The torn write itself reports success: the machine is already off.
  EXPECT_TRUE(file.value()->Write(0, "ABCDEFGH", 8).ok());
  EXPECT_TRUE(fenv.crashed());
  // Later mutations are silently dropped.
  EXPECT_TRUE(file.value()->Write(8, "IJKL", 4).ok());
  EXPECT_TRUE(file.value()->Sync().ok());
  EXPECT_TRUE(fenv.Remove(dir + "/f").ok());

  // Only the 3-byte prefix ever reached disk; the file still exists.
  auto contents = Env::ReadFileToString(dir + "/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "ABC");
  std::filesystem::remove_all(dir);
}

TEST(FaultEnvTest, FlippedReadBitIsSilentCorruption) {
  std::string dir = TestDir("flip_read");
  FaultInjectingEnv fenv;
  fenv.plan().flip_read_bit_at = 0;

  auto file = fenv.NewFile(dir + "/f");
  ASSERT_TRUE(file.ok());
  const std::string payload = "0123456789abcdef";
  ASSERT_TRUE(file.value()->Write(0, payload.data(), payload.size()).ok());

  char scratch[16];
  ASSERT_TRUE(file.value()->Read(0, sizeof(scratch), scratch).ok());
  std::string got(scratch, sizeof(scratch));
  EXPECT_NE(got, payload);
  // Exactly one bit differs.
  int diff_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    diff_bits += __builtin_popcount(
        static_cast<unsigned char>(got[i] ^ payload[i]));
  }
  EXPECT_EQ(diff_bits, 1);

  // The next read is clean.
  ASSERT_TRUE(file.value()->Read(0, sizeof(scratch), scratch).ok());
  EXPECT_EQ(std::string(scratch, sizeof(scratch)), payload);
  std::filesystem::remove_all(dir);
}

TEST(FaultEnvTest, CrashAfterWritesDropsLaterOpsAndLogsThem) {
  std::string dir = TestDir("crash_after");
  FaultInjectingEnv fenv;
  fenv.plan().crash_after_writes = 2;
  fenv.set_keep_log(true);

  auto before = obs::Default().Snapshot();
  auto file = fenv.NewFile(dir + "/f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->Write(0, "aa", 2).ok());   // persisted
  EXPECT_TRUE(file.value()->Write(2, "bb", 2).ok());   // persisted
  EXPECT_TRUE(file.value()->Write(4, "cc", 2).ok());   // dropped
  EXPECT_TRUE(fenv.crashed());
  EXPECT_TRUE(file.value()->Sync().ok());              // dropped
  EXPECT_TRUE(fenv.Rename(dir + "/f", dir + "/g").ok());  // dropped
  EXPECT_TRUE(fenv.Remove(dir + "/f").ok());           // dropped

  auto contents = Env::ReadFileToString(dir + "/f");
  ASSERT_TRUE(contents.ok());  // Never renamed, never removed.
  EXPECT_EQ(contents.value(), "aabb");

  ASSERT_EQ(fenv.log().size(), 6u);
  EXPECT_FALSE(fenv.log()[0].dropped);
  EXPECT_FALSE(fenv.log()[1].dropped);
  for (size_t i = 2; i < fenv.log().size(); ++i) {
    EXPECT_TRUE(fenv.log()[i].dropped) << "op #" << i;
  }
  EXPECT_EQ(fenv.log()[3].kind, FaultOp::Kind::kSync);
  EXPECT_EQ(fenv.log()[4].kind, FaultOp::Kind::kRename);
  EXPECT_EQ(fenv.log()[5].kind, FaultOp::Kind::kRemove);

  auto after = obs::Default().Snapshot();
  EXPECT_EQ(after.counter("storage.fault.dropped_ops"),
            before.counter("storage.fault.dropped_ops") + 4);
  std::filesystem::remove_all(dir);
}

TEST(FaultEnvTest, FailedSyncReturnsIOError) {
  std::string dir = TestDir("fail_sync");
  FaultInjectingEnv fenv;
  fenv.plan().fail_sync_at = 0;

  auto file = fenv.NewFile(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Write(0, "x", 1).ok());
  EXPECT_FALSE(file.value()->Sync().ok());
  EXPECT_TRUE(file.value()->Sync().ok());
  EXPECT_EQ(fenv.syncs(), 2u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Atomic whole-file replacement (manifests, summary, corpus docs).

TEST(AtomicWriteTest, CrashMidReplaceKeepsOldContents) {
  std::string dir = TestDir("atomic_crash");
  const std::string path = dir + "/manifest.txt";
  TREX_CHECK_OK(Env::WriteStringToFile(path, "old contents"));

  FaultInjectingEnv fenv;
  fenv.plan().torn_write_at = 0;  // Tear the .tmp write, then power off.
  fenv.plan().torn_bytes = 3;
  Env::Swap(&fenv);
  // The caller cannot tell — the power is off, the rename was dropped.
  Status s = Env::WriteStringToFile(path, "NEW CONTENTS THAT MUST NOT LAND");
  Env::Swap(nullptr);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(fenv.crashed());

  // Reboot: the destination still holds the complete old contents (the
  // torn garbage only ever existed in the .tmp file).
  auto contents = Env::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "old contents");

  // And a later, healthy replacement goes through over the stale .tmp.
  TREX_CHECK_OK(Env::WriteStringToFile(path, "second try"));
  EXPECT_EQ(Env::ReadFileToString(path).value(), "second try");
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteTest, FailedTmpWriteReportsErrorAndKeepsOldContents) {
  std::string dir = TestDir("atomic_fail");
  const std::string path = dir + "/manifest.txt";
  TREX_CHECK_OK(Env::WriteStringToFile(path, "old contents"));

  FaultInjectingEnv fenv;
  fenv.plan().fail_write_at = 0;
  Env::Swap(&fenv);
  Status s = Env::WriteStringToFile(path, "replacement");
  Env::Swap(nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(fenv.crashed());
  EXPECT_EQ(Env::ReadFileToString(path).value(), "old contents");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Commit protocol: data pages must be durable before the header publishes.

TEST(CommitProtocolTest, DataIsSyncedBeforeHeaderPublish) {
  std::string dir = TestDir("commit_order");
  FaultInjectingEnv fenv;
  fenv.set_keep_log(true);
  Env::Swap(&fenv);
  {
    auto tree = BPTree::Open(dir + "/t", /*cache_pages=*/64);
    TREX_CHECK_OK(tree.status());
    for (int i = 0; i < 300; ++i) {
      TREX_CHECK_OK(tree.value()->Put("key-" + std::to_string(i),
                                      "value-" + std::to_string(i)));
    }
    TREX_CHECK_OK(tree.value()->Flush());
  }
  Env::Swap(nullptr);

  const std::vector<FaultOp>& log = fenv.log();
  // Locate the last data-page write of the flush...
  ptrdiff_t last_data = -1;
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].kind == FaultOp::Kind::kWrite &&
        log[i].offset >= 2 * kPageSize) {
      last_data = static_cast<ptrdiff_t>(i);
    }
  }
  ASSERT_GE(last_data, 0) << "flush wrote no data pages";
  // ...then the header-slot publish that committed it.
  ptrdiff_t header = -1;
  for (size_t i = last_data + 1; i < log.size(); ++i) {
    if (log[i].kind == FaultOp::Kind::kWrite &&
        log[i].offset < 2 * kPageSize) {
      header = static_cast<ptrdiff_t>(i);
      break;
    }
  }
  ASSERT_GE(header, 0) << "no header publish after the data writes";
  // The ordering that makes the commit atomic: a sync strictly between
  // the data writes and the header publish, and a sync after the publish.
  bool sync_before = false;
  for (ptrdiff_t i = last_data + 1; i < header; ++i) {
    if (log[i].kind == FaultOp::Kind::kSync) sync_before = true;
  }
  EXPECT_TRUE(sync_before) << "header published before data was synced";
  bool sync_after = false;
  for (size_t i = header + 1; i < log.size(); ++i) {
    if (log[i].kind == FaultOp::Kind::kSync) sync_after = true;
  }
  EXPECT_TRUE(sync_after) << "header publish never synced";
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Crash-point matrices.

// Killing a fresh build after K writes must never leave a silently-wrong
// index: the reboot either refuses to open (nothing was committed — the
// manifest is written last) or serves exactly the full corpus.
TEST(CrashMatrixTest, BuildInterruptedAtWriteStride) {
  std::string base = TestDir("build_matrix");
  IeeeGenerator gen = SmallCorpus();

  // Golden: a clean build of the same corpus.
  const std::string golden_dir = base + "/golden";
  { TREX_CHECK_OK(TReX::Build(golden_dir, gen, IeeeOptions()).status()); }
  const std::string golden_sig = EraSignature(golden_dir, kQuery);
  ASSERT_FALSE(golden_sig.empty());

  // Count the writes of a full build.
  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  auto counted = TReX::Build(base + "/counted", gen, IeeeOptions());
  Env::Swap(nullptr);
  TREX_CHECK_OK(counted.status());
  counted.value().reset();
  const uint64_t total = fenv.writes();
  ASSERT_GT(total, 10u);

  const uint64_t stride = std::max<uint64_t>(1, total / 8);
  int recovered = 0, refused = 0;
  for (uint64_t k = 0; k < total; k += stride) {
    const std::string dir = base + "/crash_" + std::to_string(k);
    fenv.Reset();
    fenv.plan() = FaultPlan{};
    fenv.plan().crash_after_writes = static_cast<int64_t>(k);
    Env::Swap(&fenv);
    {
      // The build may "succeed" (the power is off, writes vanish) or
      // fail; either way the process is gone. Destroy it pre-reboot so
      // its destructor flushes are dropped like everything else.
      auto doomed = TReX::Build(dir, gen, IeeeOptions());
      if (doomed.ok()) doomed.value().reset();
    }
    Env::Swap(nullptr);

    RecoveryReport report;
    auto reopened = TReX::Open(dir, IeeeOptions(), RecoveryMode::kRepair,
                               &report);
    if (!reopened.ok()) {
      // Acceptable only as a *clean* refusal: nothing was committed.
      ++refused;
      continue;
    }
    ++recovered;
    auto answer =
        reopened.value()->QueryWith(RetrievalMethod::kEra, kQuery, 0);
    ASSERT_TRUE(answer.ok()) << "k=" << k << ": " << answer.status().ToString();
    EXPECT_EQ(Signature(answer.value().result), golden_sig) << "k=" << k;
  }
  // The matrix must exercise both outcomes: early crashes refuse, and a
  // crash after the final commit point recovers everything.
  EXPECT_GT(refused, 0);
  std::filesystem::remove_all(base);
}

// Killing an incremental update after K writes: the index was committed
// once already, so every reboot MUST recover, and the answers must equal
// either the pre-update or the post-update state — never a torn mix.
TEST(CrashMatrixTest, UpdateInterruptedAtWriteStride) {
  std::string base = TestDir("update_matrix");
  IeeeGenerator gen = SmallCorpus();
  // A crafted update saturated with kQuery's terms: the post-update
  // top-k MUST differ from the pre-update one no matter how the
  // generator's byte stream evolves (corpus_test pins that stream, but
  // this test's invariant should not depend on doc 6 ranking for
  // kQuery by luck).
  const std::string new_doc =
      "<article><sec>ontologies case study ontologies case study "
      "ontologies case study ontologies case study</sec></article>";

  // Pre-update golden, with redundant lists materialized so the update's
  // list invalidation is part of the crash surface.
  const std::string pre_dir = base + "/pre";
  {
    auto trex = TReX::Build(pre_dir, gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    MaterializeStats stats;
    TREX_CHECK_OK(trex.value()->MaterializeFor(kQuery, true, true, &stats));
    TREX_CHECK_OK(trex.value()->index()->Flush());
  }
  const std::string pre_sig = EraSignature(pre_dir, kQuery);

  // Post-update golden.
  const std::string post_dir = base + "/post";
  CopyDir(pre_dir, post_dir);
  {
    auto trex = TReX::Open(post_dir, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    TREX_CHECK_OK(trex.value()->AddDocument(new_doc).status());
  }
  const std::string post_sig = EraSignature(post_dir, kQuery);
  ASSERT_NE(pre_sig, post_sig);  // The update must be visible in kQuery.

  // Count the writes of a clean update.
  FaultInjectingEnv fenv;
  const std::string counted_dir = base + "/counted";
  CopyDir(pre_dir, counted_dir);
  Env::Swap(&fenv);
  {
    auto trex = TReX::Open(counted_dir, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    TREX_CHECK_OK(trex.value()->AddDocument(new_doc).status());
  }
  Env::Swap(nullptr);
  const uint64_t total = fenv.writes();
  ASSERT_GT(total, 4u);

  const uint64_t stride = std::max<uint64_t>(1, total / 8);
  int pre_count = 0, post_count = 0;
  for (uint64_t k = 0; k < total; k += stride) {
    const std::string dir = base + "/crash_" + std::to_string(k);
    CopyDir(pre_dir, dir);
    fenv.Reset();
    fenv.plan() = FaultPlan{};
    fenv.plan().crash_after_writes = static_cast<int64_t>(k);
    Env::Swap(&fenv);
    {
      auto doomed = TReX::Open(dir, IeeeOptions());
      if (doomed.ok()) doomed.value()->AddDocument(new_doc).status();
    }
    Env::Swap(nullptr);

    RecoveryReport report;
    auto reopened = TReX::Open(dir, IeeeOptions(), RecoveryMode::kRepair,
                               &report);
    ASSERT_TRUE(reopened.ok())
        << "k=" << k << ": " << reopened.status().ToString()
        << "\n" << report.ToString();
    auto answer =
        reopened.value()->QueryWith(RetrievalMethod::kEra, kQuery, 0);
    ASSERT_TRUE(answer.ok()) << "k=" << k << ": " << answer.status().ToString();
    const std::string sig = Signature(answer.value().result);
    if (sig == pre_sig) {
      ++pre_count;
    } else if (sig == post_sig) {
      ++post_count;
    } else {
      FAIL() << "k=" << k << ": torn state — neither pre nor post answers\n"
             << report.ToString();
    }
    // The recovered index also serves strategy-chosen queries.
    EXPECT_TRUE(reopened.value()->Query(kQuery, 5).ok()) << "k=" << k;
  }
  // Early crash points roll back, late ones commit.
  EXPECT_GT(pre_count, 0);
  std::filesystem::remove_all(base);
}

// ---------------------------------------------------------------------------
// Graceful degradation: a corrupt RPL mid-query costs speed, not answers.

TEST(DegradedQueryTest, CorruptRplFallsBackToEra) {
  std::string base = TestDir("degrade");
  const std::string dir = base + "/idx";
  const std::string query = "//article[about(., xml query evaluation)]";
  {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 30;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir, gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    MaterializeStats stats;
    TREX_CHECK_OK(trex.value()->MaterializeFor(query, true, true, &stats));
    TREX_CHECK_OK(trex.value()->index()->Flush());
  }

  // Flip one byte in every data page of the RPL table (the header slots
  // stay intact, so the table still opens).
  {
    const std::string path = dir + "/RPLs.tbl";
    uint64_t size = std::filesystem::file_size(path);
    ASSERT_GT(size, 2 * kPageSize) << "no RPL pages were materialized";
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    for (uint64_t page = kFirstDataPage; page * kPageSize < size; ++page) {
      uint64_t at = page * kPageSize + 1000;
      f.seekg(static_cast<std::streamoff>(at));
      char c;
      f.read(&c, 1);
      c = static_cast<char>(c ^ 0x40);
      f.seekp(static_cast<std::streamoff>(at));
      f.write(&c, 1);
    }
  }

  auto trex = TReX::Open(dir, IeeeOptions());
  TREX_CHECK_OK(trex.status());
  auto before = obs::Default().Snapshot();
  // Force TA: it must hit the corrupt pages, degrade, and still answer.
  auto degraded = trex.value()->QueryWith(RetrievalMethod::kTa, query, 10);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  auto after = obs::Default().Snapshot();
  EXPECT_EQ(after.counter("retrieval.degraded_fallbacks"),
            before.counter("retrieval.degraded_fallbacks") + 1);

  // The degraded answer is exactly the ERA answer.
  auto era = trex.value()->QueryWith(RetrievalMethod::kEra, query, 10);
  ASSERT_TRUE(era.ok());
  ASSERT_GT(era.value().result.elements.size(), 0u);
  EXPECT_EQ(Signature(degraded.value().result),
            Signature(era.value().result));

  // ERA itself must never degrade-fallback (there is nothing below it).
  auto after2 = obs::Default().Snapshot();
  EXPECT_EQ(after2.counter("retrieval.degraded_fallbacks"),
            after.counter("retrieval.degraded_fallbacks"));
  std::filesystem::remove_all(base);
}

// Repair quarantines the corrupt RPL table; afterwards TA is simply
// unavailable (no lists) and queries run undegraded.
TEST(DegradedQueryTest, RepairQuarantinesCorruptRpl) {
  std::string base = TestDir("quarantine");
  const std::string dir = base + "/idx";
  const std::string query = "//article[about(., xml query evaluation)]";
  {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 30;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir, gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    MaterializeStats stats;
    TREX_CHECK_OK(trex.value()->MaterializeFor(query, true, true, &stats));
    TREX_CHECK_OK(trex.value()->index()->Flush());
  }
  const std::string clean_sig = EraSignature(dir, query);

  {
    const std::string path = dir + "/RPLs.tbl";
    uint64_t size = std::filesystem::file_size(path);
    ASSERT_GT(size, 2 * kPageSize);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    for (uint64_t page = kFirstDataPage; page * kPageSize < size; ++page) {
      uint64_t at = page * kPageSize + 1000;
      f.seekg(static_cast<std::streamoff>(at));
      char c;
      f.read(&c, 1);
      c = static_cast<char>(c ^ 0x40);
      f.seekp(static_cast<std::streamoff>(at));
      f.write(&c, 1);
    }
  }

  RecoveryReport report;
  auto trex = TReX::Open(dir, IeeeOptions(), RecoveryMode::kRepair, &report);
  ASSERT_TRUE(trex.ok()) << trex.status().ToString();
  EXPECT_TRUE(report.ran);
  EXPECT_GT(report.pages_quarantined, 0u);
  EXPECT_TRUE(Env::FileExists(dir + "/RPLs.tbl.quarantined"));

  // The base tables were untouched: full ERA answers are unchanged.
  auto era = trex.value()->QueryWith(RetrievalMethod::kEra, query, 0);
  ASSERT_TRUE(era.ok());
  EXPECT_EQ(Signature(era.value().result), clean_sig);

  // Strategy-chosen queries work and do not degrade (the bad lists are
  // gone from the catalog, so nothing corrupt is ever consulted).
  auto before = obs::Default().Snapshot();
  auto answer = trex.value()->Query(query, 10);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  auto after = obs::Default().Snapshot();
  EXPECT_EQ(after.counter("retrieval.degraded_fallbacks"),
            before.counter("retrieval.degraded_fallbacks"));
  std::filesystem::remove_all(base);
}

// Corruption ABOVE the pager: the block values themselves are garbage
// but were written through Table::Put, so every page checksum is valid
// and only the block codec can notice. TA must degrade to ERA — the §8
// fallback — not crash, loop, or return a wrong answer.
TEST(DegradedQueryTest, CorruptBlockValueDegradesToEra) {
  std::string base = TestDir("bad_block");
  const std::string dir = base + "/idx";
  const std::string query = "//article[about(., xml query evaluation)]";
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 30;
  gen_options.size_factor = 0.5;
  IeeeGenerator gen(gen_options);
  auto trex = TReX::Build(dir, gen, IeeeOptions());
  TREX_CHECK_OK(trex.status());
  MaterializeStats stats;
  TREX_CHECK_OK(trex.value()->MaterializeFor(query, true, false, &stats));

  // A tagged block whose count overruns its payload: deterministic
  // Status::Corruption from DecodeBlockHeader/DecodeBlock.
  std::string bad(1, static_cast<char>(kBlockTagCompressedScore));
  PutVarint32(&bad, 100000);
  bad.append(4, '\0');  // max_score
  PutVarint32(&bad, 0);
  PutVarint64(&bad, 0);

  Table* rpls = trex.value()->index()->rpls()->table();
  std::vector<std::string> keys;
  {
    BPTree::Iterator it(rpls->tree());
    TREX_CHECK_OK(it.SeekToFirst());
    while (it.Valid()) {
      keys.push_back(it.key().ToString());
      TREX_CHECK_OK(it.Next());
    }
  }
  ASSERT_GT(keys.size(), 0u) << "no RPL blocks were materialized";
  for (const std::string& key : keys) {
    TREX_CHECK_OK(rpls->Put(key, bad));
  }
  TREX_CHECK_OK(trex.value()->index()->Flush());

  auto before = obs::Default().Snapshot();
  auto degraded = trex.value()->QueryWith(RetrievalMethod::kTa, query, 10);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  auto after = obs::Default().Snapshot();
  EXPECT_EQ(after.counter("retrieval.degraded_fallbacks"),
            before.counter("retrieval.degraded_fallbacks") + 1);

  auto era = trex.value()->QueryWith(RetrievalMethod::kEra, query, 10);
  ASSERT_TRUE(era.ok());
  ASSERT_GT(era.value().result.elements.size(), 0u);
  EXPECT_EQ(Signature(degraded.value().result),
            Signature(era.value().result));
  std::filesystem::remove_all(base);
}

// Silent media corruption BELOW the pager: one read bit flipped on the
// query path. The page checksum turns the flip into Status::Corruption,
// and a TA query over the damaged page degrades to ERA and still
// answers; no flip position may crash the process or corrupt an answer.
TEST(DegradedQueryTest, ReadBitFlipOnTheQueryPathDegradesNotCrashes) {
  std::string base = TestDir("bit_flip_query");
  const std::string dir = base + "/idx";
  const std::string query = "//article[about(., xml query evaluation)]";
  {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 30;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir, gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    MaterializeStats stats;
    TREX_CHECK_OK(trex.value()->MaterializeFor(query, true, true, &stats));
    TREX_CHECK_OK(trex.value()->index()->Flush());
  }
  // ERA answer at the same k the degraded runs will use.
  std::string era_sig;
  {
    auto trex = TReX::Open(dir, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    auto era = trex.value()->QueryWith(RetrievalMethod::kEra, query, 10);
    TREX_CHECK_OK(era.status());
    era_sig = Signature(era.value().result);
  }

  // Fault-free instrumented run: the global read-index window a forced
  // TA query occupies after a cold open (open is deterministic, so the
  // same window replays in the fault runs).
  uint64_t open_reads = 0, total_reads = 0;
  {
    FaultInjectingEnv probe;
    Env* prev = Env::Swap(&probe);
    {
      auto trex = TReX::Open(dir, IeeeOptions());
      TREX_CHECK_OK(trex.status());
      open_reads = probe.reads();
      auto answer = trex.value()->QueryWith(RetrievalMethod::kTa, query, 10);
      TREX_CHECK_OK(answer.status());
      total_reads = probe.reads();
    }
    Env::Swap(prev);
  }
  ASSERT_GT(total_reads, open_reads) << "query performed no cold reads";

  const uint64_t window = total_reads - open_reads;
  size_t degraded_runs = 0;
  for (uint64_t at : {open_reads, open_reads + window / 4,
                      open_reads + window / 2, open_reads + 3 * window / 4,
                      total_reads - 1}) {
    FaultInjectingEnv fenv;
    fenv.plan().flip_read_bit_at = static_cast<int64_t>(at);
    Env* prev = Env::Swap(&fenv);
    {
      auto trex = TReX::Open(dir, IeeeOptions());
      TREX_CHECK_OK(trex.status());  // The flip is past the open's reads.
      auto before = obs::Default().Snapshot();
      auto answer = trex.value()->QueryWith(RetrievalMethod::kTa, query, 10);
      auto after = obs::Default().Snapshot();
      // The only acceptable outcomes: a clean answer (possibly via the
      // ERA fallback) or a clean classified error — Corruption from a
      // page the fallback itself needed, or NotFound when the flip eats
      // the catalog entry TA's precondition check reads. Crashes/UB are
      // caught by the sanitizer stage running this suite.
      ASSERT_TRUE(answer.ok() || answer.status().IsCorruption() ||
                  answer.status().IsNotFound())
          << "flip at read " << at << ": " << answer.status().ToString();
      if (after.counter("retrieval.degraded_fallbacks") >
          before.counter("retrieval.degraded_fallbacks")) {
        ++degraded_runs;
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        EXPECT_EQ(Signature(answer.value().result), era_sig)
            << "flip at read " << at;
      }
    }
    Env::Swap(prev);
  }
  // At least one flip position must land on a TA-path page and take the
  // degrade-to-ERA route end to end.
  EXPECT_GT(degraded_runs, 0u);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace trex
