// Tests for the XML pull parser, DOM, and writer.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "xml/node.h"
#include "xml/reader.h"
#include "xml/writer.h"

namespace trex {
namespace {

std::vector<XmlEvent> ReadAll(const std::string& xml, Status* status) {
  XmlReader reader(xml);
  std::vector<XmlEvent> events;
  XmlEvent event;
  while (true) {
    *status = reader.Next(&event);
    if (!status->ok()) return events;
    if (event.type == XmlEventType::kEndDocument) return events;
    events.push_back(event);
  }
}

TEST(XmlReader, SimpleDocument) {
  Status s;
  auto events = ReadAll("<a><b>hello</b></a>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].type, XmlEventType::kStartElement);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].type, XmlEventType::kText);
  EXPECT_EQ(events[2].text, "hello");
  EXPECT_EQ(events[3].type, XmlEventType::kEndElement);
  EXPECT_EQ(events[3].name, "b");
  EXPECT_EQ(events[4].name, "a");
}

TEST(XmlReader, Attributes) {
  Status s;
  auto events = ReadAll("<a x=\"1\" y='two' z=\"a&amp;b\"/>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].attributes.size(), 3u);
  EXPECT_EQ(events[0].attributes[0].name, "x");
  EXPECT_EQ(events[0].attributes[0].value, "1");
  EXPECT_EQ(events[0].attributes[1].value, "two");
  EXPECT_EQ(events[0].attributes[2].value, "a&b");
  EXPECT_EQ(events[1].type, XmlEventType::kEndElement);
}

TEST(XmlReader, EntitiesAndCharRefs) {
  Status s;
  auto events =
      ReadAll("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos; &#65;&#x42;</a>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(events[1].text, "<tag> & \"q\" ' AB");
}

TEST(XmlReader, UnicodeCharRef) {
  Status s;
  auto events = ReadAll("<a>&#233;&#x4E2D;</a>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(events[1].text, "\xC3\xA9\xE4\xB8\xAD");  // é + 中 in UTF-8.
}

TEST(XmlReader, CommentsPIsAndDoctypeSkipped) {
  Status s;
  auto events = ReadAll(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]>"
      "<a><!-- comment with <tags> -->text</a>",
      &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "text");
}

TEST(XmlReader, Cdata) {
  Status s;
  auto events = ReadAll("<a><![CDATA[<raw> & stuff]]></a>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(events[1].text, "<raw> & stuff");
}

TEST(XmlReader, OffsetsTrackBytePositions) {
  const std::string xml = "<a><b>xy</b></a>";
  //                       0123456789012345
  XmlReader reader(xml);
  XmlEvent e;
  ASSERT_TRUE(reader.Next(&e).ok());  // <a>
  EXPECT_EQ(e.offset, 0u);
  ASSERT_TRUE(reader.Next(&e).ok());  // <b>
  EXPECT_EQ(e.offset, 3u);
  ASSERT_TRUE(reader.Next(&e).ok());  // "xy"
  EXPECT_EQ(e.offset, 6u);
  ASSERT_TRUE(reader.Next(&e).ok());  // </b> -> one past '>'
  EXPECT_EQ(e.offset, 12u);
  ASSERT_TRUE(reader.Next(&e).ok());  // </a>
  EXPECT_EQ(e.offset, 16u);
}

TEST(XmlReader, SelfClosingProducesBothEvents) {
  Status s;
  auto events = ReadAll("<a><b/></a>", &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].type, XmlEventType::kStartElement);
  EXPECT_EQ(events[2].type, XmlEventType::kEndElement);
  EXPECT_EQ(events[2].name, "b");
  // End offset of <b/> is one past the '/>'.
  EXPECT_EQ(events[2].offset, 7u);
}

// Malformed-input rejection (failure injection surface).
TEST(XmlReader, RejectsMismatchedTags) {
  Status s;
  ReadAll("<a><b></a></b>", &s);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("mismatched"), std::string::npos);
}

TEST(XmlReader, RejectsUnclosedElement) {
  Status s;
  ReadAll("<a><b>text</b>", &s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(XmlReader, RejectsStrayEndTag) {
  Status s;
  ReadAll("</a>", &s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(XmlReader, RejectsTextOutsideRoot) {
  Status s;
  ReadAll("hello <a/>", &s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(XmlReader, RejectsBadEntity) {
  Status s;
  ReadAll("<a>&bogus;</a>", &s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(XmlReader, RejectsUnterminatedComment) {
  Status s;
  ReadAll("<a><!-- never closed </a>", &s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(XmlReader, RejectsUnquotedAttribute) {
  Status s;
  ReadAll("<a x=1/>", &s);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(XmlNode, BuildsDomTree) {
  auto doc = ParseXmlDocument("<a x=\"1\"><b>hi</b><b>ho</b><c/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const XmlNode* root = doc.value().get();
  EXPECT_EQ(root->tag(), "a");
  ASSERT_NE(root->FindAttribute("x"), nullptr);
  EXPECT_EQ(*root->FindAttribute("x"), "1");
  EXPECT_EQ(root->FindAttribute("y"), nullptr);
  EXPECT_EQ(root->children().size(), 3u);
  ASSERT_NE(root->FindChild("b"), nullptr);
  EXPECT_EQ(root->FindChild("b")->TextContent(), "hi");
  EXPECT_EQ(root->TextContent(), "hiho");
  EXPECT_EQ(root->CountElements(), 4u);
}

TEST(XmlNode, RejectsMultipleRoots) {
  auto doc = ParseXmlDocument("<a/><b/>");
  EXPECT_FALSE(doc.ok());
}

TEST(XmlNode, RejectsEmptyDocument) {
  auto doc = ParseXmlDocument("  <!-- nothing -->  ");
  EXPECT_FALSE(doc.ok());
}

TEST(XmlWriter, WritesWellFormedOutput) {
  XmlWriter w;
  w.StartElement("a");
  w.Attribute("x", "1 & 2");
  w.StartElement("b");
  w.Text("x < y");
  w.EndElement();
  w.StartElement("c");
  w.EndElement();  // Empty -> self-closing.
  w.EndElement();
  EXPECT_EQ(w.Finish(), "<a x=\"1 &amp; 2\"><b>x &lt; y</b><c/></a>");
}

TEST(XmlWriter, RoundTripsThroughReader) {
  XmlWriter w;
  w.StartElement("doc");
  w.Attribute("name", "quotes \" and & amps");
  w.Text("text with <angle> & ampersand");
  w.StartElement("child");
  w.EndElement();
  w.EndElement();
  auto doc = ParseXmlDocument(w.Finish());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc.value()->FindAttribute("name"), "quotes \" and & amps");
  EXPECT_EQ(doc.value()->TextContent(), "text with <angle> & ampersand");
}

}  // namespace
}  // namespace trex
