// A deliberately small recursive-descent JSON parser for tests that
// assert on serialized output (trace trees, Chrome trace_event export,
// slow-query JSONL, snapshotter ticks). Test-only: it accepts strict
// JSON, keeps numbers as doubles (plenty for the magnitudes asserted
// here), and fails loudly via ok()/error() rather than exceptions so a
// malformed document turns into a readable gtest failure, not a crash.
#ifndef TREX_TESTS_TESTJSON_H_
#define TREX_TESTS_TESTJSON_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace trex {
namespace test {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_null() const { return kind == Kind::kNull; }

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  // Missing keys return a null value so chained lookups in EXPECTs
  // degrade to a failed kind check instead of an abort.
  const JsonValue& at(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input as one document. On failure `ok()` is false
  // and `error()` describes where parsing stopped.
  JsonValue Parse() {
    pos_ = 0;
    ok_ = true;
    error_.clear();
    JsonValue v = ParseValue();
    SkipSpace();
    if (ok_ && pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  void Fail(const std::string& what) {
    if (!ok_) return;
    ok_ = false;
    error_ = what + " at offset " + std::to_string(pos_);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue ParseValue() {
    SkipSpace();
    JsonValue v;
    if (!ok_ || pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return v;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.str = ParseString();
        return v;
      case 't':
        if (ConsumeLiteral("true")) {
          v.kind = JsonValue::Kind::kBool;
          v.b = true;
        } else {
          Fail("bad literal");
        }
        return v;
      case 'f':
        if (ConsumeLiteral("false")) {
          v.kind = JsonValue::Kind::kBool;
          v.b = false;
        } else {
          Fail("bad literal");
        }
        return v;
      case 'n':
        if (!ConsumeLiteral("null")) Fail("bad literal");
        return v;  // kNull.
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return v;
    while (ok_) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        return v;
      }
      std::string key = ParseString();
      if (!Consume(':')) {
        Fail("expected ':'");
        return v;
      }
      v.object[key] = ParseValue();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      Fail("expected ',' or '}'");
    }
    return v;
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return v;
    while (ok_) {
      v.array.push_back(ParseValue());
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      Fail("expected ',' or ']'");
    }
    return v;
  }

  std::string ParseString() {
    std::string out;
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Tests only emit ASCII escapes; decode the BMP code point
          // to a single char when it fits, '?' otherwise.
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return out;
          }
          unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          Fail("bad escape");
          return out;
      }
    }
    Fail("unterminated string");
    return out;
  }

  JsonValue ParseNumber() {
    JsonValue v;
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return v;
    }
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string text_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace test
}  // namespace trex

#endif  // TREX_TESTS_TESTJSON_H_
