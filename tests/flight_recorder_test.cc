#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace trex {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& jsonl) {
  std::vector<std::string> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

uint64_t SeqOf(const std::string& line) {
  // Every line starts with {"seq":N — no JSON parser needed.
  EXPECT_EQ(line.rfind("{\"seq\":", 0), 0u) << line;
  return std::strtoull(line.c_str() + 7, nullptr, 10);
}

TEST(FlightRecorderTest, RecordsStructuredLines) {
  FlightRecorder rec(16);
  rec.Record(FlightKind::kCatalog, "add", "\"unit\":\"R/xml/4\",\"bytes\":12");
  rec.Record(FlightKind::kBufferPool, "evict");
  EXPECT_EQ(rec.recorded(), 2u);
  std::vector<std::string> lines = Lines(rec.DumpJsonl());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"kind\":\"catalog\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"add\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"unit\":\"R/xml/4\",\"bytes\":12"),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"t_ns\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"bufpool\""), std::string::npos);
  // Each line is one complete JSON object.
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(FlightRecorderTest, DumpIsOldestFirstBySequence) {
  FlightRecorder rec(32);
  for (int i = 0; i < 20; ++i) rec.Record(FlightKind::kOther, "e");
  std::vector<std::string> lines = Lines(rec.DumpJsonl());
  ASSERT_EQ(lines.size(), 20u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(SeqOf(lines[i]), i + 1);
  }
}

TEST(FlightRecorderTest, RingKeepsTheNewestEventsWhenFull) {
  FlightRecorder rec(16);
  for (int i = 0; i < 100; ++i) rec.Record(FlightKind::kOther, "e");
  EXPECT_EQ(rec.recorded(), 100u);
  std::vector<std::string> lines = Lines(rec.DumpJsonl());
  ASSERT_EQ(lines.size(), rec.capacity());
  // Sharding by sequence number keeps exactly the last `capacity`
  // events, whatever thread produced them.
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(SeqOf(lines[i]), 100 - rec.capacity() + i + 1);
  }
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder rec(16);
  rec.set_enabled(false);
  rec.Record(FlightKind::kOther, "e");
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.DumpJsonl().empty());
  rec.set_enabled(true);
  rec.Record(FlightKind::kOther, "e");
  EXPECT_EQ(Lines(rec.DumpJsonl()).size(), 1u);
}

TEST(FlightRecorderTest, OversizeDetailIsDroppedWholeEventKept) {
  FlightRecorder rec(16);
  std::string huge = "\"blob\":\"" + std::string(500, 'x') + "\"";
  rec.Record(FlightKind::kOther, "big", huge);
  std::vector<std::string> lines = Lines(rec.DumpJsonl());
  ASSERT_EQ(lines.size(), 1u);
  // The detail is gone but the line is still complete JSON.
  EXPECT_EQ(lines[0].find("blob"), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"big\""), std::string::npos);
  EXPECT_EQ(lines[0].back(), '}');
  EXPECT_LE(lines[0].size(), FlightRecorder::kLineBytes);
}

TEST(FlightRecorderTest, ResetForgetsEventsButKeepsCounting) {
  FlightRecorder rec(16);
  rec.Record(FlightKind::kOther, "e");
  rec.Reset();
  EXPECT_TRUE(rec.DumpJsonl().empty());
  rec.Record(FlightKind::kOther, "e");
  std::vector<std::string> lines = Lines(rec.DumpJsonl());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(SeqOf(lines[0]), 2u);  // Sequence numbers never restart.
}

TEST(FlightRecorderTest, ConcurrentRecordersLoseNothing) {
  FlightRecorder rec(4096);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record(FlightKind::kOther, "e",
                   "\"thread\":" + std::to_string(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<std::string> lines = Lines(rec.DumpJsonl());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  std::set<uint64_t> seqs;
  for (const std::string& l : lines) seqs.insert(SeqOf(l));
  EXPECT_EQ(seqs.size(), lines.size());  // All distinct, none torn.
}

TEST(FlightRecorderTest, WriteDumpAndDumpToFdAgree) {
  FlightRecorder rec(16);
  rec.Record(FlightKind::kAdvisor, "plan", "\"tick\":1");
  rec.Record(FlightKind::kAdvisor, "apply", "\"tick\":1");
  std::string dir = ::testing::TempDir();
  std::string path = dir + "/flight_dump_" + std::to_string(::getpid());

  ASSERT_TRUE(rec.WriteDump(path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, rec.DumpJsonl());

  std::string fd_path = path + ".fd";
  int fd = ::open(fd_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(rec.DumpToFd(fd), 2);
  ::close(fd);
  std::ifstream fd_in(fd_path);
  std::string fd_text((std::istreambuf_iterator<char>(fd_in)),
                      std::istreambuf_iterator<char>());
  // DumpToFd writes in shard order; with <= one event per shard here
  // the sets of lines must match exactly.
  std::vector<std::string> a = Lines(text);
  std::vector<std::string> b = Lines(fd_text);
  EXPECT_EQ(std::set<std::string>(a.begin(), a.end()),
            std::set<std::string>(b.begin(), b.end()));
  std::remove(path.c_str());
  std::remove(fd_path.c_str());
}

TEST(FlightRecorderTest, DefaultIsSingletonAndRecordsKinds) {
  FlightRecorder& rec = FlightRecorder::Default();
  EXPECT_EQ(&rec, &FlightRecorder::Default());
  // Exercise every kind name once (the dump is shared process state, so
  // only look for what we just wrote).
  uint64_t before = rec.recorded();
  for (FlightKind k :
       {FlightKind::kAdvisor, FlightKind::kCatalog, FlightKind::kBufferPool,
        FlightKind::kRetrieval, FlightKind::kBudget, FlightKind::kRecovery,
        FlightKind::kSignal, FlightKind::kShed, FlightKind::kDeadline,
        FlightKind::kRetry, FlightKind::kOther}) {
    rec.Record(k, "kind_probe");
  }
  EXPECT_EQ(rec.recorded(), before + 11);
  std::string dump = rec.DumpJsonl();
  for (const char* name : {"advisor", "catalog", "bufpool", "retrieval",
                           "budget", "recovery", "signal", "shed",
                           "deadline", "retry", "other"}) {
    EXPECT_NE(dump.find(std::string("\"kind\":\"") + name + "\""),
              std::string::npos)
        << name;
  }
}

}  // namespace
}  // namespace obs
}  // namespace trex
