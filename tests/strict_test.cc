// Tests for the strict-interpretation evaluator (§1): structural
// constraints satisfied precisely, per-clause support joined by
// containment.
#include <algorithm>
#include <filesystem>
#include <set>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "retrieval/strict.h"
#include "trex/trex.h"
#include "testutil.h"

namespace trex {
namespace {

class StrictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_strict_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::vector<std::string> docs = {
        // doc 0: article about xml AND its sec about query -> strict hit.
        "<lib><article><abs>xml systems xml</abs>"
        "<sec>query engines query</sec></article></lib>",
        // doc 1: sec about query, but the article never mentions xml ->
        // vague hit (flattened terms), strict miss.
        "<lib><article><abs>databases</abs>"
        "<sec>query engines</sec></article></lib>",
        // doc 2: article about xml but no sec about query -> strict miss.
        "<lib><article><abs>xml stores</abs>"
        "<sec>storage layouts</sec></article></lib>",
    };
    auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
    TREX_CHECK_OK(trex.status());
    trex_ = std::move(trex).value();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<TReX> trex_;
};

constexpr char kQuery[] =
    "//article[about(., xml)]//sec[about(., query)]";

TEST_F(StrictTest, StrictRequiresAllClausesSupported) {
  auto strict = trex_->QueryStrict(kQuery, 0);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  // Only doc 0's sec qualifies: doc 1 lacks xml in the article, doc 2
  // lacks query in a sec.
  ASSERT_EQ(strict.value().result.elements.size(), 1u);
  EXPECT_EQ(strict.value().result.elements[0].element.docid, 0u);
  const Summary& summary = trex_->index()->summary();
  EXPECT_EQ(
      summary.node(strict.value().result.elements[0].element.sid).label,
      "sec");
}

TEST_F(StrictTest, VagueReturnsSuperset) {
  auto strict = trex_->QueryStrict(kQuery, 0);
  auto vague = trex_->Query(kQuery, 0);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(vague.ok());
  // The vague flattened evaluation also returns doc 1's sec (contains
  // "query") and the article elements themselves.
  EXPECT_GT(vague.value().result.elements.size(),
            strict.value().result.elements.size());
}

TEST_F(StrictTest, ScoreSumsClauseSupports) {
  auto strict = trex_->QueryStrict(kQuery, 0);
  ASSERT_TRUE(strict.ok());
  ASSERT_EQ(strict.value().result.elements.size(), 1u);
  float combined = strict.value().result.elements[0].score;
  // Single-clause strict query on the sec alone must score lower than
  // the combined article+sec support.
  auto sec_only = trex_->QueryStrict("//article//sec[about(., query)]", 0);
  ASSERT_TRUE(sec_only.ok());
  ASSERT_GE(sec_only.value().result.elements.size(), 1u);
  EXPECT_GT(combined, sec_only.value().result.elements[0].score);
}

TEST_F(StrictTest, RelativePathClauseSupportsFromBelow) {
  // about(.//sec, query): the support (sec) is a DESCENDANT of the
  // target (article).
  auto r = trex_->QueryStrict("//article[about(.//sec, query)]", 0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Articles of docs 0 and 1 have a sec containing "query".
  ASSERT_EQ(r.value().result.elements.size(), 2u);
  const Summary& summary = trex_->index()->summary();
  for (const auto& e : r.value().result.elements) {
    EXPECT_EQ(summary.node(e.element.sid).label, "article");
    EXPECT_NE(e.element.docid, 2u);
  }
}

TEST_F(StrictTest, TopKTruncates) {
  auto r = trex_->QueryStrict("//article[about(.//sec, query)]", 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result.elements.size(), 1u);
}

TEST_F(StrictTest, NoMatchesIsEmptyNotError) {
  auto r = trex_->QueryStrict("//article[about(., nonexistentterm)]", 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().result.elements.empty());
}


// Property over a generated corpus: every strict answer is a target-sid
// element, and its document also appears among the vague answers (the
// strict semantics only tightens the vague one).
TEST(StrictProperty, StrictAnswersAreVagueAnswersDocuments) {
  std::string dir = test::UniqueTestDir("trex_strict");
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 40;
  gen_options.size_factor = 0.5;
  IeeeGenerator gen(gen_options);
  TrexOptions options;
  options.index.aliases = IeeeAliasMap();
  auto trex = TReX::Build(dir + "/idx", gen, options);
  ASSERT_TRUE(trex.ok());

  const char* queries[] = {
      "//article[about(., ontologies)]//sec[about(., case study)]",
      "//article[about(.//bdy, model)]//sec[about(., checking)]",
      "//article[about(., information)]",
  };
  for (const char* q : queries) {
    auto strict = trex.value()->QueryStrict(q, 0);
    auto vague = trex.value()->Query(q, 0);
    ASSERT_TRUE(strict.ok()) << q;
    ASSERT_TRUE(vague.ok()) << q;
    const auto& targets = strict.value().translation.target_sids;
    std::set<DocId> vague_docs;
    for (const auto& e : vague.value().result.elements) {
      vague_docs.insert(e.element.docid);
    }
    for (const auto& e : strict.value().result.elements) {
      EXPECT_TRUE(std::binary_search(targets.begin(), targets.end(),
                                     e.element.sid))
          << q;
      EXPECT_TRUE(vague_docs.count(e.element.docid)) << q;
      EXPECT_GT(e.score, 0.0f) << q;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace trex
