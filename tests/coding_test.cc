// Unit + property tests for the binary codecs in common/coding.h.
#include "common/coding.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace trex {
namespace {

TEST(Fixed, RoundTrip32) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu,
                     std::numeric_limits<uint32_t>::max()}) {
    std::string s;
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(Fixed, RoundTrip64) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40,
                     std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(Varint, RoundTrip32Boundaries) {
  std::vector<uint32_t> values = {0, 1, 127, 128, 16383, 16384,
                                  std::numeric_limits<uint32_t>::max()};
  for (uint32_t v : values) {
    std::string s;
    PutVarint32(&s, v);
    Slice in(s);
    uint32_t out = 0;
    ASSERT_TRUE(GetVarint32(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Varint, RoundTrip64Random) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next() >> rng.Uniform(64);
    std::string s;
    PutVarint64(&s, v);
    Slice in(s);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, TruncatedInputFails) {
  std::string s;
  PutVarint64(&s, uint64_t{1} << 50);
  for (size_t cut = 0; cut + 1 < s.size(); ++cut) {
    Slice in(s.data(), cut);
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "cut=" << cut;
  }
}

TEST(Varint, SequenceDecodesInOrder) {
  std::string s;
  for (uint32_t v = 0; v < 300; ++v) PutVarint32(&s, v * 7);
  Slice in(s);
  for (uint32_t v = 0; v < 300; ++v) {
    uint32_t out = 0;
    ASSERT_TRUE(GetVarint32(&in, &out));
    EXPECT_EQ(out, v * 7);
  }
  EXPECT_TRUE(in.empty());
}

TEST(LengthPrefixed, RoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, Slice("hello"));
  PutLengthPrefixed(&s, Slice(""));
  PutLengthPrefixed(&s, Slice(std::string(1000, 'x')));
  Slice in(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(LengthPrefixed, TruncatedPayloadFails) {
  std::string s;
  PutLengthPrefixed(&s, Slice("hello"));
  Slice in(s.data(), s.size() - 1);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// Property: big-endian key encodings are order-preserving.
TEST(BigEndian, OrderPreserving32) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Next());
    uint32_t b = static_cast<uint32_t>(rng.Next());
    std::string ea, eb;
    PutBigEndian32(&ea, a);
    PutBigEndian32(&eb, b);
    EXPECT_EQ(a < b, Slice(ea).Compare(Slice(eb)) < 0);
    EXPECT_EQ(DecodeBigEndian32(ea.data()), a);
  }
}

TEST(BigEndian, OrderPreserving64) {
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next() >> rng.Uniform(64);
    uint64_t b = rng.Next() >> rng.Uniform(64);
    std::string ea, eb;
    PutBigEndian64(&ea, a);
    PutBigEndian64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea).Compare(Slice(eb)) < 0);
    EXPECT_EQ(DecodeBigEndian64(ea.data()), a);
  }
}

// Property: descending-score encoding inverts order, ascending preserves it.
TEST(ScoreEncoding, DescendingInvertsOrder) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    float a = static_cast<float>(rng.NextDouble() * 1000.0);
    float b = static_cast<float>(rng.NextDouble() * 1000.0);
    std::string ea, eb;
    PutDescendingScore(&ea, a);
    PutDescendingScore(&eb, b);
    if (a != b) {
      EXPECT_EQ(a > b, Slice(ea).Compare(Slice(eb)) < 0)
          << "a=" << a << " b=" << b;
    }
    EXPECT_FLOAT_EQ(DecodeDescendingScore(ea.data()), a);
  }
}

TEST(ScoreEncoding, AscendingPreservesOrder) {
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    float a = static_cast<float>(rng.NextDouble() * 10.0);
    float b = static_cast<float>(rng.NextDouble() * 10.0);
    std::string ea, eb;
    PutAscendingScore(&ea, a);
    PutAscendingScore(&eb, b);
    if (a != b) {
      EXPECT_EQ(a < b, Slice(ea).Compare(Slice(eb)) < 0);
    }
    EXPECT_FLOAT_EQ(DecodeAscendingScore(ea.data()), a);
  }
}

TEST(ScoreEncoding, ZeroAndExtremes) {
  std::string e0, e1;
  PutDescendingScore(&e0, 0.0f);
  PutDescendingScore(&e1, std::numeric_limits<float>::max());
  // Larger score sorts first (smaller key).
  EXPECT_LT(Slice(e1).Compare(Slice(e0)), 0);
}

TEST(Float, RoundTrip) {
  for (float v : {0.0f, 1.5f, -3.25f, 1e30f}) {
    std::string s;
    PutFloat(&s, v);
    EXPECT_EQ(DecodeFloat(s.data()), v);
  }
}

// Property: the ordered-bits mapping is a monotone bijection on
// non-negative floats, so score deltas can be taken on the bit images.
TEST(OrderedBits, MonotoneBijectionOnScores) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    float a = static_cast<float>(rng.NextDouble() * 1000.0);
    float b = static_cast<float>(rng.NextDouble() * 1000.0);
    EXPECT_EQ(OrderedBitsToFloat(FloatToOrderedBits(a)), a);
    if (a != b) {
      EXPECT_EQ(a < b, FloatToOrderedBits(a) < FloatToOrderedBits(b))
          << "a=" << a << " b=" << b;
    }
  }
  EXPECT_EQ(OrderedBitsToFloat(FloatToOrderedBits(0.0f)), 0.0f);
  EXPECT_EQ(OrderedBitsToFloat(FloatToOrderedBits(-2.5f)), -2.5f);
}

TEST(ZigZag, RoundTripAndSmallMagnitudeStaysSmall) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{63},
                    int64_t{-64}, std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes map to small codes — the reason zigzag exists.
  EXPECT_LE(ZigZagEncode(-1), 2u);
  EXPECT_LE(ZigZagEncode(1), 2u);
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next() >> rng.Uniform(64));
    if (rng.Uniform(2) == 0) v = -v;
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(PositionDelta, RoundTripRandomSteps) {
  Rng rng(13);
  uint32_t prev_doc = 0;
  uint64_t prev_off = 0;
  for (int i = 0; i < 2000; ++i) {
    // Mix same-docid forward steps with docid jumps (offset resets).
    uint32_t docid = prev_doc + rng.Uniform(3);
    uint64_t offset = docid == prev_doc ? prev_off + 1 + rng.Uniform(1000)
                                        : rng.Uniform(100000);
    std::string s;
    PutPositionDelta(&s, docid, offset, prev_doc, prev_off);
    EXPECT_EQ(s.size(), PositionDeltaSize(docid, offset, prev_doc, prev_off));
    Slice in(s);
    uint32_t out_doc = 0;
    uint64_t out_off = 0;
    ASSERT_TRUE(GetPositionDelta(&in, prev_doc, prev_off, &out_doc, &out_off));
    EXPECT_EQ(out_doc, docid);
    EXPECT_EQ(out_off, offset);
    EXPECT_TRUE(in.empty());
    prev_doc = docid;
    prev_off = offset;
  }
}

TEST(PositionDelta, TruncationFailsCleanly) {
  std::string s;
  PutPositionDelta(&s, 7, 123456, 3, 99);
  for (size_t cut = 0; cut < s.size(); ++cut) {
    Slice in(s.data(), cut);
    uint32_t docid = 0;
    uint64_t offset = 0;
    EXPECT_FALSE(GetPositionDelta(&in, 3, 99, &docid, &offset))
        << "cut=" << cut;
  }
}

TEST(Slice, CompareSemantics) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").StartsWith(Slice("abc")));
  EXPECT_FALSE(Slice("ab").StartsWith(Slice("abc")));
}

}  // namespace
}  // namespace trex
