// Tests for structural summaries, alias maps, and path matching.
#include <set>

#include "gtest/gtest.h"
#include "summary/alias.h"
#include "summary/builder.h"
#include "summary/path_matcher.h"
#include "summary/summary.h"

namespace trex {
namespace {

constexpr char kDoc1[] =
    "<books><journal><article><fm><atl>t</atl></fm>"
    "<bdy><sec><p>x</p></sec><ss1><p>y</p></ss1></bdy>"
    "</article></journal></books>";
constexpr char kDoc2[] =
    "<books><journal><article><bdy><sec><p>z</p><fig><fgc>c</fgc></fig>"
    "</sec></bdy></article></journal></books>";

TEST(AliasMap, ApplyAndSerialize) {
  AliasMap map;
  map.Add("ss1", "sec");
  map.Add("ss2", "sec");
  EXPECT_EQ(map.Apply("ss1"), "sec");
  EXPECT_EQ(map.Apply("sec"), "sec");
  EXPECT_EQ(map.Apply("unknown"), "unknown");

  AliasMap restored = AliasMap::Deserialize(map.Serialize());
  EXPECT_EQ(restored.Apply("ss2"), "sec");
  EXPECT_EQ(restored.size(), 2u);
}

TEST(SummaryBuilder, IncomingSummaryDistinguishesPaths) {
  SummaryBuilder builder(SummaryKind::kIncoming, nullptr);
  ASSERT_TRUE(builder.AddDocument(kDoc1).ok());
  Summary summary = builder.Take();
  // Distinct root paths: books, journal, article, fm, atl, bdy, sec, p
  // (under sec), ss1, p (under ss1) = 10 nodes.
  EXPECT_EQ(summary.num_label_nodes(), 10u);
  EXPECT_EQ(summary.ancestor_violations(), 0u);
}

TEST(SummaryBuilder, TagSummaryMergesByLabel) {
  SummaryBuilder builder(SummaryKind::kTag, nullptr);
  ASSERT_TRUE(builder.AddDocument(kDoc1).ok());
  Summary summary = builder.Take();
  // Distinct tags: books, journal, article, fm, atl, bdy, sec, p, ss1 = 9.
  EXPECT_EQ(summary.num_label_nodes(), 9u);
}

TEST(SummaryBuilder, AliasCollapsesSynonyms) {
  AliasMap aliases = IeeeAliasMap();
  SummaryBuilder with(SummaryKind::kIncoming, &aliases);
  ASSERT_TRUE(with.AddDocument(kDoc1).ok());
  Summary aliased = with.Take();
  SummaryBuilder without(SummaryKind::kIncoming, nullptr);
  ASSERT_TRUE(without.AddDocument(kDoc1).ok());
  Summary plain = without.Take();
  // ss1 collapses into sec (and its p child collapses too): the aliased
  // incoming summary is strictly smaller, as in §2.1's numbers.
  EXPECT_LT(aliased.num_label_nodes(), plain.num_label_nodes());
}

TEST(SummaryBuilder, ExtentsPartitionElements) {
  SummaryBuilder builder(SummaryKind::kIncoming, nullptr);
  ASSERT_TRUE(builder.AddDocument(kDoc1).ok());
  ASSERT_TRUE(builder.AddDocument(kDoc2).ok());
  Summary summary = builder.Take();
  uint64_t total = 0;
  for (size_t sid = 1; sid < summary.size(); ++sid) {
    total += summary.node(static_cast<Sid>(sid)).extent_size;
  }
  // doc1 has 10 elements, doc2 has 8: extents must partition all 18.
  EXPECT_EQ(total, 18u);
  EXPECT_EQ(summary.total_extent_size(), 18u);
}

TEST(SummaryBuilder, DetectsAncestorViolations) {
  // <a><a>...</a></a> puts two nested elements in one tag-summary extent.
  SummaryBuilder builder(SummaryKind::kTag, nullptr);
  ASSERT_TRUE(builder.AddDocument("<a><b><a>x</a></b></a>").ok());
  Summary summary = builder.Take();
  EXPECT_EQ(summary.ancestor_violations(), 1u);
  // The incoming summary distinguishes /a from /a/b/a: no violations.
  SummaryBuilder builder2(SummaryKind::kIncoming, nullptr);
  ASSERT_TRUE(builder2.AddDocument("<a><b><a>x</a></b></a>").ok());
  EXPECT_EQ(builder2.Take().ancestor_violations(), 0u);
}

TEST(Summary, PathOfWalksToRoot) {
  SummaryBuilder builder(SummaryKind::kIncoming, nullptr);
  ASSERT_TRUE(builder.AddDocument(kDoc1).ok());
  Summary summary = builder.Take();
  std::set<std::string> paths;
  for (size_t sid = 1; sid < summary.size(); ++sid) {
    paths.insert(summary.PathOf(static_cast<Sid>(sid)));
  }
  EXPECT_TRUE(paths.count("/books/journal/article/bdy/sec/p"));
  EXPECT_TRUE(paths.count("/books/journal/article/fm/atl"));
}

TEST(Summary, SerializeRoundTrip) {
  AliasMap aliases = IeeeAliasMap();
  SummaryBuilder builder(SummaryKind::kIncoming, &aliases);
  ASSERT_TRUE(builder.AddDocument(kDoc1).ok());
  ASSERT_TRUE(builder.AddDocument(kDoc2).ok());
  Summary original = builder.Take();
  auto restored = Summary::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().size(), original.size());
  EXPECT_EQ(restored.value().kind(), original.kind());
  for (size_t sid = 1; sid < original.size(); ++sid) {
    Sid s = static_cast<Sid>(sid);
    EXPECT_EQ(restored.value().node(s).label, original.node(s).label);
    EXPECT_EQ(restored.value().node(s).parent, original.node(s).parent);
    EXPECT_EQ(restored.value().node(s).extent_size,
              original.node(s).extent_size);
    EXPECT_EQ(restored.value().PathOf(s), original.PathOf(s));
  }
}

TEST(Summary, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Summary::Deserialize("not a summary").ok());
  EXPECT_FALSE(Summary::Deserialize("kind bogus\nnodes 1\nviolations 0\n").ok());
  // Node referencing a later parent is rejected.
  EXPECT_FALSE(
      Summary::Deserialize("kind tag\nnodes 3\nviolations 0\n1 2 5 a\n2 0 5 b\n")
          .ok());
}

class PathMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    aliases_ = IeeeAliasMap();
    SummaryBuilder builder(SummaryKind::kIncoming, &aliases_);
    ASSERT_TRUE(builder.AddDocument(kDoc1).ok());
    ASSERT_TRUE(builder.AddDocument(kDoc2).ok());
    summary_ = std::make_unique<Summary>(builder.Take());
  }

  std::vector<std::string> MatchPaths(const std::string& expr) {
    auto steps = ParsePathExpression(expr);
    EXPECT_TRUE(steps.ok()) << steps.status().ToString();
    std::vector<std::string> paths;
    for (Sid sid : MatchPath(*summary_, steps.value(), &aliases_)) {
      paths.push_back(summary_->PathOf(sid));
    }
    return paths;
  }

  AliasMap aliases_;
  std::unique_ptr<Summary> summary_;
};

TEST_F(PathMatcherTest, DescendantMatch) {
  auto paths = MatchPaths("//article//sec");
  // With aliases, sec and ss1 collapse: one summary node.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/books/journal/article/bdy/sec");
}

TEST_F(PathMatcherTest, AliasAppliedToQueryLabels) {
  // Querying the synonym ss1 must hit the aliased sec node.
  auto paths = MatchPaths("//ss1");
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/books/journal/article/bdy/sec");
}

TEST_F(PathMatcherTest, ChildAxisIsExact) {
  EXPECT_TRUE(MatchPaths("/article").empty());  // article is not the root.
  auto paths = MatchPaths("/books/journal/article");
  ASSERT_EQ(paths.size(), 1u);
  // Child axis after descendant.
  auto paths2 = MatchPaths("//bdy/sec");
  ASSERT_EQ(paths2.size(), 1u);
  // /bdy/sec exists but //fm/sec does not.
  EXPECT_TRUE(MatchPaths("//fm/sec").empty());
}

TEST_F(PathMatcherTest, WildcardMatchesAnyLabel) {
  auto paths = MatchPaths("//bdy//*");
  // Everything under bdy: sec, p, figure(fgc via alias), fig.
  EXPECT_GE(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_NE(p.find("/bdy/"), std::string::npos) << p;
  }
}

TEST_F(PathMatcherTest, DescendantSkipsLevels) {
  auto paths = MatchPaths("//books//p");
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/books/journal/article/bdy/sec/p");
}

TEST_F(PathMatcherTest, NoMatchForUnknownLabel) {
  EXPECT_TRUE(MatchPaths("//nosuchtag").empty());
}

TEST(PathExpression, ParseAndPrint) {
  auto steps = ParsePathExpression("//article/bdy//*");
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps.value().size(), 3u);
  EXPECT_EQ(steps.value()[0].axis, Axis::kDescendant);
  EXPECT_EQ(steps.value()[1].axis, Axis::kChild);
  EXPECT_TRUE(steps.value()[2].is_wildcard());
  EXPECT_EQ(PathToString(steps.value()), "//article/bdy//*");

  EXPECT_FALSE(ParsePathExpression("").ok());
  EXPECT_FALSE(ParsePathExpression("article").ok());
  EXPECT_FALSE(ParsePathExpression("//").ok());
  EXPECT_FALSE(ParsePathExpression("//a[pred]").ok());
}


TEST_F(PathMatcherTest, AlternationMatchesAnyListedTag) {
  // fm|bdy at the article level.
  auto paths = MatchPaths("//article/(fm|bdy)");
  ASSERT_EQ(paths.size(), 2u);
  // Alternation members go through the alias map too: ss1 ≡ sec.
  auto paths2 = MatchPaths("//(ss1|fgc)");
  ASSERT_EQ(paths2.size(), 2u);  // The sec node and the figure node.
}

TEST(PathExpressionAlternation, ParsePrintRoundTrip) {
  auto steps = ParsePathExpression("//(sec|abs)/p");
  ASSERT_TRUE(steps.ok()) << steps.status().ToString();
  ASSERT_EQ(steps.value().size(), 2u);
  EXPECT_EQ(steps.value()[0].label, "sec|abs");
  EXPECT_EQ(PathToString(steps.value()), "//(sec|abs)/p");
  EXPECT_FALSE(ParsePathExpression("//(sec|)").ok());
  EXPECT_FALSE(ParsePathExpression("//(sec").ok());
  EXPECT_FALSE(ParsePathExpression("//()").ok());
}

TEST(StepLabelMatchesTest, AlternationAndWildcard) {
  EXPECT_TRUE(StepLabelMatches({Axis::kChild, "a|b|c"}, "b", nullptr));
  EXPECT_FALSE(StepLabelMatches({Axis::kChild, "a|b|c"}, "d", nullptr));
  EXPECT_TRUE(StepLabelMatches({Axis::kChild, "*"}, "anything", nullptr));
  EXPECT_FALSE(StepLabelMatches({Axis::kChild, "ab"}, "a", nullptr));
  AliasMap aliases;
  aliases.Add("ss1", "sec");
  EXPECT_TRUE(StepLabelMatches({Axis::kChild, "x|ss1"}, "sec", &aliases));
}

}  // namespace
}  // namespace trex
