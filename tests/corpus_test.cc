// Tests for the synthetic corpus generators and the document store.
#include <filesystem>
#include <set>

#include "corpus/corpus.h"
#include "corpus/ieee_generator.h"
#include "corpus/wiki_generator.h"
#include "gtest/gtest.h"
#include "summary/builder.h"
#include "text/tokenizer.h"
#include "xml/node.h"
#include "testutil.h"

namespace trex {
namespace {

TEST(Vocabulary, WordsAreDistinctAndStemStable) {
  std::set<std::string> seen;
  for (size_t r = 0; r < 5000; ++r) {
    std::string w = Vocabulary::WordForRank(r);
    EXPECT_GE(w.size(), 4u);
    EXPECT_TRUE(seen.insert(w).second) << "duplicate word " << w;
  }
}

TEST(Vocabulary, ZipfHeadDominates) {
  Vocabulary vocab(1000, 1.0);
  Rng rng(5);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) counts[vocab.SampleWord(&rng)]++;
  EXPECT_GT(counts[vocab.word(0)], counts[vocab.word(100)] * 5);
}

TEST(GenerateText, PlantsActiveTerms) {
  Vocabulary vocab(1000, 1.0);
  PlantedTerm term{"ontologies", 1.0, 0.5};
  Rng rng(6);
  std::string text = GenerateText(vocab, {&term}, 2000, &rng);
  size_t hits = 0;
  size_t pos = 0;
  while ((pos = text.find("ontologies", pos)) != std::string::npos) {
    ++hits;
    pos += 10;
  }
  // ~50% of 2000 tokens.
  EXPECT_GT(hits, 800u);
  EXPECT_LT(hits, 1200u);
}

TEST(IeeeGenerator, DeterministicPerSeed) {
  IeeeGeneratorOptions options;
  options.num_documents = 3;
  IeeeGenerator a(options), b(options);
  EXPECT_EQ(a.Generate(0), b.Generate(0));
  EXPECT_EQ(a.Generate(2), b.Generate(2));
  EXPECT_NE(a.Generate(0), a.Generate(1));
  options.seed = 77;
  IeeeGenerator c(options);
  EXPECT_NE(a.Generate(0), c.Generate(0));
}

TEST(IeeeGenerator, ProducesWellFormedIeeeShapedXml) {
  IeeeGeneratorOptions options;
  options.num_documents = 5;
  IeeeGenerator gen(options);
  for (DocId d = 0; d < 5; ++d) {
    auto doc = ParseXmlDocument(gen.Generate(d));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(doc.value()->tag(), "books");
    const XmlNode* journal = doc.value()->FindChild("journal");
    ASSERT_NE(journal, nullptr);
    const XmlNode* article = journal->FindChild("article");
    ASSERT_NE(article, nullptr);
    EXPECT_NE(article->FindChild("fm"), nullptr);
    EXPECT_NE(article->FindChild("bdy"), nullptr);
    EXPECT_NE(article->FindChild("bm"), nullptr);
    EXPECT_GT(article->CountElements(), 10u);
  }
}

TEST(IeeeGenerator, AliasedSummaryIsAncestorDisjoint) {
  // §2.1: TReX requires summaries where no two ancestor-descendant
  // elements share a sid; the alias incoming summary over the IEEE-like
  // corpus must satisfy it.
  IeeeGeneratorOptions options;
  options.num_documents = 20;
  IeeeGenerator gen(options);
  AliasMap aliases = IeeeAliasMap();
  SummaryBuilder builder(SummaryKind::kIncoming, &aliases);
  for (DocId d = 0; d < 20; ++d) {
    ASSERT_TRUE(builder.AddDocument(gen.Generate(d)).ok());
  }
  Summary summary = builder.Take();
  EXPECT_EQ(summary.ancestor_violations(), 0u);
  // Summary size ordering from §2.1: alias incoming < plain incoming.
  SummaryBuilder plain(SummaryKind::kIncoming, nullptr);
  for (DocId d = 0; d < 20; ++d) {
    ASSERT_TRUE(plain.AddDocument(gen.Generate(d)).ok());
  }
  EXPECT_LT(summary.num_label_nodes(), plain.Take().num_label_nodes());
}

TEST(WikiGenerator, ProducesWellFormedWikiShapedXml) {
  WikiGeneratorOptions options;
  options.num_documents = 5;
  WikiGenerator gen(options);
  for (DocId d = 0; d < 5; ++d) {
    auto doc = ParseXmlDocument(gen.Generate(d));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(doc.value()->tag(), "article");
    EXPECT_NE(doc.value()->FindChild("body"), nullptr);
  }
}

TEST(WikiGenerator, PlantedTermsAppearAtExpectedRates) {
  WikiGeneratorOptions options;
  options.num_documents = 200;
  WikiGenerator gen(options);
  Tokenizer tok{TokenizerOptions{.remove_stopwords = false, .stem = false}};
  size_t docs_with_french = 0, docs_with_flemish = 0;
  for (DocId d = 0; d < 200; ++d) {
    std::string doc = gen.Generate(d);
    if (doc.find("french") != std::string::npos) ++docs_with_french;
    if (doc.find("flemish") != std::string::npos) ++docs_with_flemish;
  }
  // french (doc prob 0.10) must be far more common than flemish (0.006).
  EXPECT_GT(docs_with_french, docs_with_flemish * 2);
  EXPECT_GT(docs_with_french, 5u);
}

TEST(CorpusStore, WriteAndReadBack) {
  std::string dir = test::UniqueTestDir("trex_corpus");
  IeeeGeneratorOptions options;
  options.num_documents = 4;
  options.size_factor = 0.3;
  IeeeGenerator gen(options);
  ASSERT_TRUE(WriteCorpusToDir(gen, dir).ok());

  auto corpus = Corpus::Open(dir);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus.value().num_documents(), 4u);
  auto doc = corpus.value().ReadDocument(2);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value(), gen.Generate(2));
  EXPECT_FALSE(corpus.value().ReadDocument(99).ok());
  std::filesystem::remove_all(dir);
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Pins the generators' byte streams: Generate(docid) under default
// options must stay byte-for-byte what it was when the per-document RNG
// derivation (DocumentRng) landed. Committed bench baselines and golden
// query answers silently shift if these hashes move — if a generator
// change is intentional, re-pin the hashes AND regenerate the
// bench/BENCH_baseline_*.json files in the same commit.
TEST(CorpusGolden, DefaultByteStreamsArePinned) {
  IeeeGenerator ieee({});
  WikiGenerator wiki({});
  const uint64_t ieee_hash =
      Fnv1a(ieee.Generate(0) + ieee.Generate(1) + ieee.Generate(2));
  const uint64_t wiki_hash =
      Fnv1a(wiki.Generate(0) + wiki.Generate(1) + wiki.Generate(2));
  EXPECT_EQ(ieee_hash, 7039418491686771957ull);
  EXPECT_EQ(wiki_hash, 17833054104261713352ull);
}

}  // namespace
}  // namespace trex
