// Tests for the reference XPath evaluator, including the key
// cross-validation property: for any path expression, the elements
// selected through the structural summary (sid extents in the Elements
// table) must be exactly the elements selected by evaluating the path
// directly on the documents.
#include <unistd.h>

#include <filesystem>
#include <set>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "summary/xpath.h"
#include "xml/node.h"

namespace trex {
namespace {

TEST(XPathEval, BasicAxesAndWildcard) {
  auto doc = ParseXmlDocument(
      "<a><b><c>x</c></b><d><c>y</c><c>z</c></d><c>top</c></a>");
  ASSERT_TRUE(doc.ok());

  auto r = EvaluatePathExpression(*doc.value(), "//c", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 4u);

  r = EvaluatePathExpression(*doc.value(), "/a/c", nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0]->TextContent(), "top");

  r = EvaluatePathExpression(*doc.value(), "//d/c", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);

  r = EvaluatePathExpression(*doc.value(), "//b//*", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);  // Only c under b.

  r = EvaluatePathExpression(*doc.value(), "/b", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());  // b is not the root.

  EXPECT_FALSE(EvaluatePathExpression(*doc.value(), "c", nullptr).ok());
}

TEST(XPathEval, AliasRewriting) {
  AliasMap aliases;
  aliases.Add("ss1", "sec");
  auto doc = ParseXmlDocument("<a><sec>x</sec><ss1>y</ss1></a>");
  ASSERT_TRUE(doc.ok());
  auto r = EvaluatePathExpression(*doc.value(), "//sec", &aliases);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);  // ss1 counts as sec.
  // Without aliases only the literal sec matches.
  r = EvaluatePathExpression(*doc.value(), "//sec", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
}

TEST(XPathEval, DomOffsetsMatchIndexSemantics) {
  const std::string xml = "<a><b>hello</b></a>";
  auto doc = ParseXmlDocument(xml);
  ASSERT_TRUE(doc.ok());
  const XmlNode* b = doc.value()->FindChild("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->start_offset(), 3u);
  EXPECT_EQ(b->end_offset(), 15u);  // One past </b>.
  EXPECT_EQ(doc.value()->start_offset(), 0u);
  EXPECT_EQ(doc.value()->end_offset(), xml.size());
}

class SummaryVsXPathTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    // ctest runs each parameterized case as its own process; key the suite
    // directory by pid so concurrent cases cannot clobber each other.
    dir_ = new std::string(::testing::TempDir() + "/trex_xpath_cross_" +
                           std::to_string(::getpid()));
    std::filesystem::remove_all(*dir_);
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 25;
    gen_options.size_factor = 0.5;
    generator_ = new IeeeGenerator(gen_options);
    IndexOptions options;
    options.aliases = IeeeAliasMap();
    IndexBuilder builder(*dir_ + "/idx", options);
    for (size_t d = 0; d < generator_->num_documents(); ++d) {
      TREX_CHECK_OK(builder.AddDocument(static_cast<DocId>(d),
                                        generator_->Generate(d)));
    }
    TREX_CHECK_OK(builder.Finish());
    auto index = Index::Open(*dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    index_ = std::move(index).value().release();
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete generator_;
    std::filesystem::remove_all(*dir_);
    delete dir_;
  }

  static std::string* dir_;
  static IeeeGenerator* generator_;
  static Index* index_;
};

std::string* SummaryVsXPathTest::dir_ = nullptr;
IeeeGenerator* SummaryVsXPathTest::generator_ = nullptr;
Index* SummaryVsXPathTest::index_ = nullptr;

TEST_P(SummaryVsXPathTest, ExtentsEqualDirectEvaluation) {
  const std::string path = GetParam();
  AliasMap aliases = IeeeAliasMap();
  auto steps = ParsePathExpression(path);
  ASSERT_TRUE(steps.ok());

  // Side A: summary translation + Elements-table extents.
  std::vector<Sid> sids = MatchPath(index_->summary(), steps.value(),
                                    &aliases);
  std::set<std::pair<DocId, uint64_t>> via_summary;
  for (Sid sid : sids) {
    ElementIndex::ExtentIterator it(index_->elements(), sid);
    auto e = it.FirstElement();
    ASSERT_TRUE(e.ok());
    while (!e.value().is_dummy()) {
      via_summary.insert({e.value().docid, e.value().endpos});
      e = it.NextElementAfter(e.value().end_position());
      ASSERT_TRUE(e.ok());
    }
  }

  // Side B: direct XPath evaluation over every document's DOM.
  std::set<std::pair<DocId, uint64_t>> via_xpath;
  for (size_t d = 0; d < generator_->num_documents(); ++d) {
    auto doc = ParseXmlDocument(generator_->Generate(static_cast<DocId>(d)));
    ASSERT_TRUE(doc.ok());
    for (const XmlNode* node :
         EvaluatePathOnDocument(*doc.value(), steps.value(), &aliases)) {
      via_xpath.insert({static_cast<DocId>(d), node->end_offset()});
    }
  }

  EXPECT_EQ(via_summary, via_xpath) << "path " << path;
  EXPECT_FALSE(via_xpath.empty()) << "path " << path
                                  << " selects nothing; weak test";
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SummaryVsXPathTest,
    ::testing::Values("//article", "//article//sec", "//bdy/sec",
                      "//sec//p", "//bdy//*", "//article//figure",
                      "//sec/sec", "/books/journal/article/fm//*",
                      "//bb/title", "//journal//title"));

}  // namespace
}  // namespace trex
