// Tests for ERA, TA, Merge, the materializer, the strategy selector,
// the instrumented heap, and the hand-written quicksort.
#include <algorithm>
#include <filesystem>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "retrieval/era.h"
#include "retrieval/heap.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/strategy.h"
#include "retrieval/ta.h"

namespace trex {
namespace {

class RetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_retr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    IndexOptions options;
    IndexBuilder builder(dir_ + "/idx", options);
    // Three documents; "apple" concentrated in doc0 secs, "pear" in doc1.
    TREX_CHECK_OK(builder.AddDocument(
        0,
        "<doc><sec><p>apple apple banana</p></sec>"
        "<sec><p>apple cherry</p></sec></doc>"));
    TREX_CHECK_OK(builder.AddDocument(
        1,
        "<doc><sec><p>pear pear pear</p></sec>"
        "<sec><p>banana pear</p></sec></doc>"));
    TREX_CHECK_OK(builder.AddDocument(
        2, "<doc><sec><p>cherry banana</p></sec></doc>"));
    TREX_CHECK_OK(builder.Finish());

    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    index_ = std::move(index).value();

    // Clause over the sec extent with terms apple, banana.
    auto steps = ParsePathExpression("//doc/sec");
    TREX_CHECK_OK(steps.status());
    clause_.sids = MatchPath(index_->summary(), steps.value(), nullptr);
    ASSERT_EQ(clause_.sids.size(), 1u);
    // Query terms go through the same normalization as indexed tokens
    // ("apple" stems to "appl").
    clause_.terms = {{*index_->tokenizer().NormalizeTerm("apple"), 1.0f},
                     {*index_->tokenizer().NormalizeTerm("banana"), 1.0f}};
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<Index> index_;
  TranslatedClause clause_;
};

TEST_F(RetrievalTest, EraFindsElementsWithTermFrequencies) {
  Era era(index_.get());
  std::vector<Era::TfEntry> entries;
  RetrievalMetrics metrics;
  std::vector<std::string> terms = {clause_.terms[0].term,
                                    clause_.terms[1].term};
  TREX_CHECK_OK(era.ComputeTermFrequencies(clause_.sids, terms, &entries,
                                           &metrics));
  // Relevant sec elements: doc0-sec1 (apple x2, banana x1),
  // doc0-sec2 (apple x1), doc1-sec2 (banana x1), doc2-sec1 (banana x1).
  ASSERT_EQ(entries.size(), 4u);
  uint32_t total_apple = 0, total_banana = 0;
  for (const auto& e : entries) {
    total_apple += e.tf[0];
    total_banana += e.tf[1];
    EXPECT_GT(e.tf[0] + e.tf[1], 0u);
  }
  EXPECT_EQ(total_apple, 3u);
  EXPECT_EQ(total_banana, 3u);
  EXPECT_GT(metrics.positions_scanned, 0u);
  EXPECT_GT(metrics.elements_scanned, 0u);
}

TEST_F(RetrievalTest, EraEvaluateRanksByScore) {
  Era era(index_.get());
  RetrievalResult result;
  TREX_CHECK_OK(era.Evaluate(clause_, &result));
  ASSERT_EQ(result.elements.size(), 4u);
  // doc0-sec1 has apple x2 + banana: highest score.
  EXPECT_EQ(result.elements[0].element.docid, 0u);
  for (size_t i = 1; i < result.elements.size(); ++i) {
    EXPECT_TRUE(ScoredElementGreater(result.elements[i - 1],
                                     result.elements[i]) ||
                result.elements[i - 1].score == result.elements[i].score);
  }
}

TEST_F(RetrievalTest, EraEmptyInputs) {
  Era era(index_.get());
  RetrievalResult result;
  TranslatedClause empty;
  TREX_CHECK_OK(era.Evaluate(empty, &result));
  EXPECT_TRUE(result.elements.empty());

  TranslatedClause no_match = clause_;
  no_match.terms = {{"zzzmissing", 1.0f}};
  TREX_CHECK_OK(era.Evaluate(no_match, &result));
  EXPECT_TRUE(result.elements.empty());
}

TEST_F(RetrievalTest, TaAndMergeRequireMaterializedLists) {
  EXPECT_FALSE(Ta::CanEvaluate(index_.get(), clause_));
  EXPECT_FALSE(Merge::CanEvaluate(index_.get(), clause_));
  Ta ta(index_.get());
  RetrievalResult result;
  EXPECT_TRUE(ta.Evaluate(clause_, 3, &result).IsNotFound());
  Merge merge(index_.get());
  EXPECT_TRUE(merge.Evaluate(clause_, &result).IsNotFound());
}

TEST_F(RetrievalTest, MaterializerWritesAndRegistersLists) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  EXPECT_EQ(stats.lists_written, 4u);  // 2 terms x 1 sid x 2 kinds.
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_TRUE(Ta::CanEvaluate(index_.get(), clause_));
  EXPECT_TRUE(Merge::CanEvaluate(index_.get(), clause_));

  // Idempotent: nothing written the second time.
  MaterializeStats again;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &again));
  EXPECT_EQ(again.lists_written, 0u);
  EXPECT_EQ(again.lists_skipped, 4u);

  // Dropping brings back the NotFound behaviour.
  TREX_CHECK_OK(DropUnits(index_.get(), UnitsForClause(clause_, true, true)));
  EXPECT_FALSE(Ta::CanEvaluate(index_.get(), clause_));
}

TEST_F(RetrievalTest, AllThreeMethodsAgreeExactly) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));

  Era era(index_.get());
  Merge merge(index_.get());
  Ta ta(index_.get());
  RetrievalResult r_era, r_merge, r_ta;
  TREX_CHECK_OK(era.Evaluate(clause_, &r_era));
  TREX_CHECK_OK(merge.Evaluate(clause_, &r_merge));
  TREX_CHECK_OK(ta.Evaluate(clause_, 100, &r_ta));  // k > #answers: exact.

  ASSERT_EQ(r_era.elements.size(), r_merge.elements.size());
  ASSERT_EQ(r_era.elements.size(), r_ta.elements.size());
  for (size_t i = 0; i < r_era.elements.size(); ++i) {
    EXPECT_EQ(r_era.elements[i].element, r_merge.elements[i].element) << i;
    EXPECT_EQ(r_era.elements[i].score, r_merge.elements[i].score) << i;
    EXPECT_EQ(r_era.elements[i].element, r_ta.elements[i].element) << i;
    EXPECT_EQ(r_era.elements[i].score, r_ta.elements[i].score) << i;
  }
}

TEST_F(RetrievalTest, TaTopKIsPrefixOfFullRanking) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  Era era(index_.get());
  RetrievalResult full;
  TREX_CHECK_OK(era.Evaluate(clause_, &full));
  Ta ta(index_.get());
  for (size_t k = 1; k <= full.elements.size(); ++k) {
    RetrievalResult topk;
    TREX_CHECK_OK(ta.Evaluate(clause_, k, &topk));
    ASSERT_EQ(topk.elements.size(), k);
    for (size_t i = 0; i < k; ++i) {
      // The top-k SET is correct; scores are lower bounds.
      EXPECT_LE(topk.elements[i].score, full.elements[i].score + 1e-5f);
      EXPECT_GE(topk.elements[i].score,
                full.elements[k - 1].score - 1e-5f);
    }
  }
}

TEST_F(RetrievalTest, NegativeWeightsPenalize) {
  TranslatedClause with_excluded = clause_;
  with_excluded.terms = {{clause_.terms[0].term, 1.0f},
                         {clause_.terms[1].term, -1.0f}};
  MaterializeStats stats;
  TREX_CHECK_OK(MaterializeForClause(index_.get(), with_excluded, true, true,
                                     &stats));
  Era era(index_.get());
  Merge merge(index_.get());
  RetrievalResult r_era, r_merge;
  TREX_CHECK_OK(era.Evaluate(with_excluded, &r_era));
  TREX_CHECK_OK(merge.Evaluate(with_excluded, &r_merge));
  ASSERT_EQ(r_era.elements.size(), r_merge.elements.size());
  for (size_t i = 0; i < r_era.elements.size(); ++i) {
    EXPECT_EQ(r_era.elements[i].score, r_merge.elements[i].score);
  }
  // Banana-only elements rank at the bottom with negative scores.
  EXPECT_LT(r_era.elements.back().score, 0.0f);
  // The apple-only element outranks the banana-contaminated ones.
  EXPECT_EQ(r_era.elements[0].element.docid, 0u);
}

TEST_F(RetrievalTest, StrategySelectorRespectsAvailability) {
  auto decision = ChooseStrategy(index_.get(), clause_, 5);
  EXPECT_EQ(decision.method, RetrievalMethod::kEra);

  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, false, &stats));
  decision = ChooseStrategy(index_.get(), clause_, 1);
  EXPECT_EQ(decision.method, RetrievalMethod::kTa);

  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, false, true, &stats));
  decision = ChooseStrategy(index_.get(), clause_, 0);  // All answers.
  EXPECT_EQ(decision.method, RetrievalMethod::kMerge);
}

TEST_F(RetrievalTest, EvaluatorRunsChosenMethod) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  Evaluator evaluator(index_.get());
  RetrievalResult result;
  RetrievalMethod used;
  TREX_CHECK_OK(evaluator.Evaluate(clause_, 2, &result, &used));
  EXPECT_EQ(result.elements.size(), 2u);
  for (RetrievalMethod m : {RetrievalMethod::kEra, RetrievalMethod::kTa,
                            RetrievalMethod::kMerge}) {
    RetrievalResult forced;
    TREX_CHECK_OK(evaluator.EvaluateWith(m, clause_, 2, &forced));
    EXPECT_EQ(forced.elements.size(), 2u) << RetrievalMethodName(m);
    EXPECT_EQ(forced.elements[0].element, result.elements[0].element);
  }
}

TEST(InstrumentedHeap, OrderingAndOps) {
  InstrumentedHeap<int> heap;
  for (int v : {5, 1, 4, 2, 3}) heap.Push(v);
  EXPECT_EQ(heap.size(), 5u);
  for (int expected : {1, 2, 3, 4, 5}) {
    EXPECT_EQ(heap.Pop(), expected);
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.operations(), 10u);
}

TEST(InstrumentedHeap, ReplaceKeepsHeapProperty) {
  InstrumentedHeap<int> heap;
  for (int v = 10; v > 0; --v) heap.Push(v);
  EXPECT_EQ(heap.Replace(99), 1);
  EXPECT_EQ(heap.top(), 2);
  int prev = 0;
  while (!heap.empty()) {
    int v = heap.Pop();
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(InstrumentedHeap, PausesAttachedTimer) {
  PausableTimer timer;
  timer.Start();
  InstrumentedHeap<int> heap;
  heap.set_timer(&timer);
  for (int i = 0; i < 1000; ++i) heap.Push(i);
  while (!heap.empty()) heap.Pop();
  timer.Stop();
  EXPECT_GT(timer.PausedNanos(), 0);
  EXPECT_LE(timer.ActiveNanos(), timer.WallNanos());
}

TEST(QuickSort, SortsDescendingByScoreWithStableTies) {
  Rng rng(77);
  std::vector<ScoredElement> v;
  for (int i = 0; i < 5000; ++i) {
    ScoredElement e;
    e.element = ElementInfo{1, static_cast<DocId>(rng.Uniform(100)),
                            rng.Uniform(100000), 10};
    e.score = static_cast<float>(rng.Uniform(50));  // Many ties.
    v.push_back(e);
  }
  std::vector<ScoredElement> expected = v;
  std::sort(expected.begin(), expected.end(), ScoredElementGreater);
  QuickSortByScore(&v);
  ASSERT_EQ(v.size(), expected.size());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i].score, expected[i].score) << i;
  }
  // Fully ordered under the canonical comparator.
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_FALSE(ScoredElementGreater(v[i], v[i - 1])) << i;
  }
}

TEST(QuickSort, EdgeCases) {
  std::vector<ScoredElement> empty;
  QuickSortByScore(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<ScoredElement> one(1);
  QuickSortByScore(&one);
  std::vector<ScoredElement> equal(100);
  QuickSortByScore(&equal);
  EXPECT_EQ(equal.size(), 100u);
}

}  // namespace
}  // namespace trex
