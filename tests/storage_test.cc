// Unit tests for env, pager, buffer pool, table veneer, and basic B+-tree
// behaviour (including corruption detection via page checksums).
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/coding.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/pager.h"
#include "storage/table.h"

namespace trex {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_storage_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(StorageTest, EnvReadWriteRoundTrip) {
  auto file = Env::OpenFile(Path("f"));
  ASSERT_TRUE(file.ok());
  std::string data = "hello world";
  ASSERT_TRUE(file.value()->Write(100, data.data(), data.size()).ok());
  std::string out(data.size(), '\0');
  ASSERT_TRUE(file.value()->Read(100, data.size(), out.data()).ok());
  EXPECT_EQ(out, data);
  uint64_t size = 0;
  ASSERT_TRUE(file.value()->Size(&size).ok());
  EXPECT_EQ(size, 100 + data.size());
}

TEST_F(StorageTest, EnvShortReadFails) {
  auto file = Env::OpenFile(Path("f"));
  ASSERT_TRUE(file.ok());
  char buf[16];
  EXPECT_TRUE(file.value()->Read(0, 16, buf).IsIOError());
}

TEST_F(StorageTest, EnvWholeFileHelpers) {
  ASSERT_TRUE(Env::WriteStringToFile(Path("doc.xml"), "<a/>").ok());
  auto contents = Env::ReadFileToString(Path("doc.xml"));
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "<a/>");
  // Overwrite with shorter content truncates.
  ASSERT_TRUE(Env::WriteStringToFile(Path("doc.xml"), "<b/").ok());
  EXPECT_EQ(Env::ReadFileToString(Path("doc.xml")).value(), "<b/");
}

TEST_F(StorageTest, PagerAllocateWriteRead) {
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  auto id = pager.value()->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_NE(id.value(), kInvalidPageId);

  std::vector<char> buf(kPageSize, 0);
  std::snprintf(buf.data(), 32, "page payload");
  ASSERT_TRUE(pager.value()->WritePage(id.value(), buf.data()).ok());

  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager.value()->ReadPage(id.value(), got.data()).ok());
  EXPECT_STREQ(got.data(), "page payload");
}

TEST_F(StorageTest, PagerPersistsAcrossReopen) {
  PageId id;
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    auto id_or = pager.value()->AllocatePage();
    ASSERT_TRUE(id_or.ok());
    id = id_or.value();
    std::vector<char> buf(kPageSize, 0);
    buf[0] = 'Z';
    ASSERT_TRUE(pager.value()->WritePage(id, buf.data()).ok());
    ASSERT_TRUE(pager.value()->SetRootPage(id).ok());
    // Nothing is published until Commit(): the header slots still
    // describe the empty file.
    ASSERT_TRUE(pager.value()->Commit().ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ(pager.value()->root_page(), id);
  std::vector<char> got(kPageSize);
  ASSERT_TRUE(pager.value()->ReadPage(id, got.data()).ok());
  EXPECT_EQ(got[0], 'Z');
}

TEST_F(StorageTest, PagerFreelistRecyclesPages) {
  auto pager_or = Pager::Open(Path("p"));
  ASSERT_TRUE(pager_or.ok());
  Pager* pager = pager_or.value().get();
  PageId a = pager->AllocatePage().value();
  PageId b = pager->AllocatePage().value();
  uint32_t count = pager->page_count();
  ASSERT_TRUE(pager->FreePage(a).ok());
  ASSERT_TRUE(pager->FreePage(b).ok());
  // Recycled in LIFO order; no file growth.
  EXPECT_EQ(pager->AllocatePage().value(), b);
  EXPECT_EQ(pager->AllocatePage().value(), a);
  EXPECT_EQ(pager->page_count(), count);
}

TEST_F(StorageTest, PagerDetectsCorruptPage) {
  PageId id;
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    id = pager.value()->AllocatePage().value();
    std::vector<char> buf(kPageSize, 0);
    ASSERT_TRUE(pager.value()->WritePage(id, buf.data()).ok());
    ASSERT_TRUE(pager.value()->Commit().ok());
  }
  // Flip one byte in the middle of the page on disk.
  {
    auto file = Env::OpenFile(Path("p"));
    ASSERT_TRUE(file.ok());
    char evil = 0x5a;
    ASSERT_TRUE(
        file.value()->Write(id * kPageSize + 2000, &evil, 1).ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  std::vector<char> got(kPageSize);
  Status s = pager.value()->ReadPage(id, got.data());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(StorageTest, PagerUncommittedStateInvisibleAfterReopen) {
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    PageId id = pager.value()->AllocatePage().value();
    std::vector<char> buf(kPageSize, 0);
    ASSERT_TRUE(pager.value()->WritePage(id, buf.data()).ok());
    ASSERT_TRUE(pager.value()->SetRootPage(id).ok());
    // No Commit: the mutations must not survive the "crash".
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ(pager.value()->root_page(), kInvalidPageId);
  EXPECT_EQ(pager.value()->page_count(), kFirstDataPage);
  EXPECT_EQ(pager.value()->epoch(), 0u);
}

TEST_F(StorageTest, PagerSurvivesTornHeaderPublish) {
  PageId id;
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    id = pager.value()->AllocatePage().value();
    std::vector<char> buf(kPageSize, 0);
    ASSERT_TRUE(pager.value()->WritePage(id, buf.data()).ok());
    ASSERT_TRUE(pager.value()->SetRootPage(id).ok());
    ASSERT_TRUE(pager.value()->Commit().ok());  // Epoch 1 -> slot 1.
    EXPECT_EQ(pager.value()->epoch(), 1u);
  }
  // Tear the just-published header slot (slot 1). Open must fall back to
  // the older slot and present the pre-commit (empty) state rather than
  // failing.
  {
    auto file = Env::OpenFile(Path("p"));
    ASSERT_TRUE(file.ok());
    char evil = 0x5a;
    ASSERT_TRUE(file.value()->Write(1 * kPageSize + 100, &evil, 1).ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ(pager.value()->epoch(), 0u);
  EXPECT_EQ(pager.value()->root_page(), kInvalidPageId);
}

TEST_F(StorageTest, PagerAlternatesHeaderSlotsAcrossCommits) {
  PageId first_root, second_root;
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    std::vector<char> buf(kPageSize, 0);
    first_root = pager.value()->AllocatePage().value();
    ASSERT_TRUE(pager.value()->WritePage(first_root, buf.data()).ok());
    ASSERT_TRUE(pager.value()->SetRootPage(first_root).ok());
    ASSERT_TRUE(pager.value()->Commit().ok());  // Epoch 1 -> slot 1.
    second_root = pager.value()->AllocatePage().value();
    ASSERT_TRUE(pager.value()->WritePage(second_root, buf.data()).ok());
    ASSERT_TRUE(pager.value()->SetRootPage(second_root).ok());
    ASSERT_TRUE(pager.value()->Commit().ok());  // Epoch 2 -> slot 0.
    EXPECT_EQ(pager.value()->epoch(), 2u);
  }
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ(pager.value()->epoch(), 2u);
    EXPECT_EQ(pager.value()->root_page(), second_root);
  }
  // Destroying the newest header (slot 0, epoch 2) rolls back exactly one
  // commit: the epoch-1 state in slot 1 takes over.
  {
    auto file = Env::OpenFile(Path("p"));
    ASSERT_TRUE(file.ok());
    char evil = 0x5a;
    ASSERT_TRUE(file.value()->Write(0 * kPageSize + 100, &evil, 1).ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ(pager.value()->epoch(), 1u);
  EXPECT_EQ(pager.value()->root_page(), first_root);
}

TEST_F(StorageTest, PagerRejectsFileWithBothHeadersCorrupt) {
  {
    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE(pager.value()->Commit().ok());
  }
  {
    auto file = Env::OpenFile(Path("p"));
    ASSERT_TRUE(file.ok());
    char evil = 0x5a;
    ASSERT_TRUE(file.value()->Write(0 * kPageSize + 100, &evil, 1).ok());
    ASSERT_TRUE(file.value()->Write(1 * kPageSize + 100, &evil, 1).ok());
  }
  auto pager = Pager::Open(Path("p"));
  EXPECT_FALSE(pager.ok());
  EXPECT_TRUE(pager.status().IsCorruption()) << pager.status().ToString();
}

TEST_F(StorageTest, BPTreeDeepVerifyPassesOnHealthyTree) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        tree.value()->Put("key" + std::to_string(i), "value").ok());
  }
  // A few deletes so the free list is non-trivial.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.value()->Delete("key" + std::to_string(i * 7)).ok());
  }
  ASSERT_TRUE(tree.value()->Flush().ok());
  BPTree::DeepVerifyStats stats;
  Status s = tree.value()->DeepVerify(&stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(stats.pages_visited, 1u);
}

TEST_F(StorageTest, BPTreeDeepVerifyDetectsBitRot) {
  {
    auto tree = BPTree::Open(Path("t"));
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE(
          tree.value()->Put("key" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(tree.value()->Flush().ok());
  }
  {
    auto file = Env::OpenFile(Path("t"));
    ASSERT_TRUE(file.ok());
    char evil = 0x13;
    ASSERT_TRUE(file.value()->Write(3 * kPageSize + 777, &evil, 1).ok());
  }
  // Fresh open, tiny cache: DeepVerify must reach the rotten page on disk.
  auto tree = BPTree::Open(Path("t"), /*cache_pages=*/4);
  ASSERT_TRUE(tree.ok());
  Status s = tree.value()->DeepVerify();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(StorageTest, PagerRejectsOutOfRangePage) {
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  std::vector<char> buf(kPageSize);
  EXPECT_TRUE(pager.value()->ReadPage(999, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(pager.value()->ReadPage(kInvalidPageId, buf.data())
                  .IsInvalidArgument());
}

TEST_F(StorageTest, BufferPoolCachesPages) {
  auto pager_or = Pager::Open(Path("p"));
  ASSERT_TRUE(pager_or.ok());
  Pager* pager = pager_or.value().get();
  BufferPool pool(pager, 8);
  auto h = pool.Allocate();
  ASSERT_TRUE(h.ok());
  PageId id = h.value().id();
  h.value().MutableData()[0] = 'Q';
  h.value().Release();
  ASSERT_TRUE(pool.FlushAll().ok());

  pool.ResetCounters();
  for (int i = 0; i < 5; ++i) {
    auto again = pool.Fetch(id);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().data()[0], 'Q');
  }
  EXPECT_EQ(pool.page_accesses(), 5u);
  EXPECT_EQ(pool.page_reads(), 0u);  // All hits (page stayed cached).
}

TEST_F(StorageTest, BufferPoolCountsColdMissesAndWarmHits) {
  constexpr int kPages = 6;
  std::vector<PageId> ids;
  {
    auto pager_or = Pager::Open(Path("p"));
    ASSERT_TRUE(pager_or.ok());
    BufferPool pool(pager_or.value().get(), 8);
    for (int i = 0; i < kPages; ++i) {
      auto h = pool.Allocate();
      ASSERT_TRUE(h.ok());
      h.value().MutableData()[0] = static_cast<char>('a' + i);
      ids.push_back(h.value().id());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(pager_or.value()->Commit().ok());
  }

  // A fresh pool reading a cold workload must report one miss per page...
  auto pager_or = Pager::Open(Path("p"));
  ASSERT_TRUE(pager_or.ok());
  BufferPool pool(pager_or.value().get(), 8);
  obs::MetricsSnapshot before = obs::Default().Snapshot();
  for (PageId id : ids) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ(pool.misses(), static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.hits(), 0u);

  // ...and re-reading the same pages must be all hits.
  for (PageId id : ids) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ(pool.misses(), static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.hits(), static_cast<uint64_t>(kPages));
  EXPECT_EQ(pool.evictions(), 0u);

  // The same events flow into the process-wide registry (deltas, since
  // the registry is cumulative across tests).
  obs::MetricsSnapshot after = obs::Default().Snapshot();
  EXPECT_EQ(after.counter("storage.bufpool.misses") -
                before.counter("storage.bufpool.misses"),
            static_cast<uint64_t>(kPages));
  EXPECT_EQ(after.counter("storage.bufpool.hits") -
                before.counter("storage.bufpool.hits"),
            static_cast<uint64_t>(kPages));
  EXPECT_GE(after.counter("storage.pager.page_reads"),
            before.counter("storage.pager.page_reads") + kPages);
}

TEST_F(StorageTest, BufferPoolEvictsAndWritesBack) {
  auto pager_or = Pager::Open(Path("p"));
  ASSERT_TRUE(pager_or.ok());
  Pager* pager = pager_or.value().get();
  BufferPool pool(pager, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 16; ++i) {
    auto h = pool.Allocate();
    ASSERT_TRUE(h.ok());
    h.value().MutableData()[0] = static_cast<char>('a' + i);
    ids.push_back(h.value().id());
  }
  // All 16 pages readable even though only 4 frames exist.
  for (int i = 0; i < 16; ++i) {
    auto h = pool.Fetch(ids[i]);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.value().data()[0], static_cast<char>('a' + i));
  }
}

TEST_F(StorageTest, BufferPoolFailsWhenAllPinned) {
  auto pager_or = Pager::Open(Path("p"));
  ASSERT_TRUE(pager_or.ok());
  BufferPool pool(pager_or.value().get(), 2);
  auto h1 = pool.Allocate();
  auto h2 = pool.Allocate();
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  auto h3 = pool.Allocate();
  EXPECT_FALSE(h3.ok());
  EXPECT_TRUE(h3.status().IsIOError());
}

TEST_F(StorageTest, BPTreeBasicPutGet) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree.value()->Put("key1", "value1").ok());
  ASSERT_TRUE(tree.value()->Put("key2", "value2").ok());
  std::string v;
  ASSERT_TRUE(tree.value()->Get("key1", &v).ok());
  EXPECT_EQ(v, "value1");
  ASSERT_TRUE(tree.value()->Get("key2", &v).ok());
  EXPECT_EQ(v, "value2");
  EXPECT_TRUE(tree.value()->Get("key3", &v).IsNotFound());
  EXPECT_EQ(tree.value()->row_count(), 2u);
}

TEST_F(StorageTest, BPTreeUpsertReplaces) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree.value()->Put("k", "v1").ok());
  ASSERT_TRUE(tree.value()->Put("k", "v2-longer-than-before").ok());
  std::string v;
  ASSERT_TRUE(tree.value()->Get("k", &v).ok());
  EXPECT_EQ(v, "v2-longer-than-before");
  EXPECT_EQ(tree.value()->row_count(), 1u);
}

TEST_F(StorageTest, BPTreeDelete) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree.value()->Put("a", "1").ok());
  ASSERT_TRUE(tree.value()->Put("b", "2").ok());
  ASSERT_TRUE(tree.value()->Delete("a").ok());
  std::string v;
  EXPECT_TRUE(tree.value()->Get("a", &v).IsNotFound());
  ASSERT_TRUE(tree.value()->Get("b", &v).ok());
  EXPECT_TRUE(tree.value()->Delete("zzz").IsNotFound());
  EXPECT_EQ(tree.value()->row_count(), 1u);
}

TEST_F(StorageTest, BPTreeRejectsOversizedPayload) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  std::string big(kMaxCellPayload + 1, 'x');
  EXPECT_TRUE(tree.value()->Put("k", big).IsInvalidArgument());
  EXPECT_TRUE(tree.value()->Put("", "v").IsInvalidArgument());
}

TEST_F(StorageTest, BPTreeIteratorOrderedScan) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  // Insert in reverse to prove iteration is key order, not insert order.
  for (int i = 99; i >= 0; --i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(tree.value()->Put(key, std::to_string(i)).ok());
  }
  auto it = BPTree::Iterator(tree.value().get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  int count = 0;
  std::string prev;
  while (it.Valid()) {
    std::string k = it.key().ToString();
    EXPECT_LT(prev, k);
    prev = k;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 100);
}

TEST_F(StorageTest, BPTreeSeekLowerBound) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree.value()->Put("b", "1").ok());
  ASSERT_TRUE(tree.value()->Put("d", "2").ok());
  ASSERT_TRUE(tree.value()->Put("f", "3").ok());
  auto it = BPTree::Iterator(tree.value().get());
  ASSERT_TRUE(it.Seek("c").ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "d");
  ASSERT_TRUE(it.Seek("d").ok());
  EXPECT_EQ(it.key().ToString(), "d");
  ASSERT_TRUE(it.Seek("g").ok());
  EXPECT_FALSE(it.Valid());
  ASSERT_TRUE(it.Seek("").ok());
  EXPECT_EQ(it.key().ToString(), "b");
}

TEST_F(StorageTest, BPTreeSeekOnEmptyTree) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  auto it = BPTree::Iterator(tree.value().get());
  ASSERT_TRUE(it.Seek("x").ok());
  EXPECT_FALSE(it.Valid());
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(StorageTest, BPTreeSplitsManyKeys) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%08d", i * 7919 % kN);
    ASSERT_TRUE(tree.value()->Put(key, std::string(50, 'v')).ok());
  }
  // Spot check.
  std::string v;
  ASSERT_TRUE(tree.value()->Get("key00000000", &v).ok());
  ASSERT_TRUE(tree.value()->Get("key00004999", &v).ok());
}

TEST_F(StorageTest, BPTreePersistsAcrossReopen) {
  {
    auto tree = BPTree::Open(Path("t"));
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          tree.value()->Put("k" + std::to_string(i), "v" + std::to_string(i))
              .ok());
    }
    ASSERT_TRUE(tree.value()->Flush().ok());
  }
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value()->row_count(), 500u);
  std::string v;
  ASSERT_TRUE(tree.value()->Get("k250", &v).ok());
  EXPECT_EQ(v, "v250");
}

TEST_F(StorageTest, BPTreeBulkLoadMatchesScan) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  {
    BPTree::BulkLoader loader(tree.value().get());
    for (int i = 0; i < 10000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%08d", i);
      ASSERT_TRUE(loader.Add(key, "value" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(loader.Finish().ok());
  }
  EXPECT_EQ(tree.value()->row_count(), 10000u);
  std::string v;
  ASSERT_TRUE(tree.value()->Get("key00004567", &v).ok());
  EXPECT_EQ(v, "value4567");
  auto it = BPTree::Iterator(tree.value().get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  int n = 0;
  std::string prev;
  while (it.Valid()) {
    EXPECT_LT(prev, it.key().ToString());
    prev = it.key().ToString();
    ++n;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(n, 10000);
}

TEST_F(StorageTest, BPTreeBulkLoadRejectsUnsortedKeys) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  BPTree::BulkLoader loader(tree.value().get());
  ASSERT_TRUE(loader.Add("b", "1").ok());
  EXPECT_TRUE(loader.Add("a", "2").IsInvalidArgument());
  EXPECT_TRUE(loader.Add("b", "3").IsInvalidArgument());
  ASSERT_TRUE(loader.Finish().ok());
}

TEST_F(StorageTest, TableOpenAndTokenComponent) {
  auto table = Table::Open(dir_ + "/db", "Elements");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->name(), "Elements");
  ASSERT_TRUE(table.value()->Put("k", "v").ok());
  std::string v;
  ASSERT_TRUE(table.value()->Get("k", &v).ok());
  EXPECT_EQ(v, "v");

  std::string key;
  ASSERT_TRUE(AppendTokenComponent(&key, "xml").ok());
  PutBigEndian32(&key, 7);
  Slice in(key);
  Slice token;
  ASSERT_TRUE(GetTokenComponent(&in, &token));
  EXPECT_EQ(token.ToString(), "xml");
  EXPECT_EQ(DecodeBigEndian32(in.data()), 7u);

  std::string bad;
  EXPECT_TRUE(
      AppendTokenComponent(&bad, Slice("a\0b", 3)).IsInvalidArgument());
}

// Token-order property: (token1 < token2) implies encoded prefix order,
// regardless of suffixes — the 0x00 terminator keeps keys prefix-free.
TEST_F(StorageTest, TokenComponentPreservesOrder) {
  auto mk = [](const std::string& tok, uint32_t sid) {
    std::string k;
    TREX_CHECK_OK(AppendTokenComponent(&k, tok));
    PutBigEndian32(&k, sid);
    return k;
  };
  EXPECT_LT(Slice(mk("ab", 999)).Compare(Slice(mk("abc", 0))), 0);
  EXPECT_LT(Slice(mk("abc", 5)).Compare(Slice(mk("abd", 0))), 0);
  EXPECT_LT(Slice(mk("abc", 1)).Compare(Slice(mk("abc", 2))), 0);
}


TEST_F(StorageTest, AnalyzeReportsBalancedTree) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  BPTree::TreeStats stats;
  ASSERT_TRUE(tree.value()->Analyze(&stats).ok());
  EXPECT_EQ(stats.height, 0u);  // Empty tree.

  {
    BPTree::BulkLoader loader(tree.value().get());
    for (int i = 0; i < 20000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%08d", i);
      ASSERT_TRUE(loader.Add(key, std::string(30, 'v')).ok());
    }
    ASSERT_TRUE(loader.Finish().ok());
  }
  ASSERT_TRUE(tree.value()->Analyze(&stats).ok());
  EXPECT_GE(stats.height, 2u);
  EXPECT_EQ(stats.cells, 20000u);
  EXPECT_GT(stats.leaf_nodes, 1u);
  EXPECT_GT(stats.internal_nodes, 0u);
  // Bulk load packs leaves tightly.
  EXPECT_GT(stats.leaf_fill_factor, 0.8);
  EXPECT_LE(stats.leaf_fill_factor, 1.0);
}

TEST_F(StorageTest, AnalyzeAfterRandomInsertsCountsRows) {
  auto tree = BPTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok());
  Rng rng(99);
  for (int i = 0; i < 3000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(10000));
    ASSERT_TRUE(tree.value()->Put(key, "value").ok());
  }
  BPTree::TreeStats stats;
  ASSERT_TRUE(tree.value()->Analyze(&stats).ok());
  EXPECT_EQ(stats.cells, tree.value()->row_count());
  // Random insertion order splits 50/50: fill factor roughly half.
  EXPECT_GT(stats.leaf_fill_factor, 0.3);
}

TEST_F(StorageTest, BufferPoolStressManyPinsAndEvictions) {
  auto pager_or = Pager::Open(Path("p"));
  ASSERT_TRUE(pager_or.ok());
  BufferPool pool(pager_or.value().get(), 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    auto h = pool.Allocate();
    ASSERT_TRUE(h.ok());
    h.value().MutableData()[0] = static_cast<char>(i);
    ids.push_back(h.value().id());
  }
  Rng rng(7);
  // Random fetch pattern with overlapping pin lifetimes.
  for (int round = 0; round < 2000; ++round) {
    size_t a = rng.Uniform(ids.size());
    size_t b = rng.Uniform(ids.size());
    auto ha = pool.Fetch(ids[a]);
    ASSERT_TRUE(ha.ok());
    auto hb = pool.Fetch(ids[b]);
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(ha.value().data()[0], static_cast<char>(a));
    EXPECT_EQ(hb.value().data()[0], static_cast<char>(b));
  }
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST_F(StorageTest, BPTreeDetectsOnDiskCorruption) {
  {
    auto tree = BPTree::Open(Path("t"));
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          tree.value()->Put("key" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(tree.value()->Flush().ok());
  }
  // Flip a byte inside some non-header page.
  {
    auto file = Env::OpenFile(Path("t"));
    ASSERT_TRUE(file.ok());
    uint64_t size = 0;
    ASSERT_TRUE(file.value()->Size(&size).ok());
    ASSERT_GT(size, 3 * kPageSize);
    char evil = 0x77;
    ASSERT_TRUE(file.value()->Write(2 * kPageSize + 1234, &evil, 1).ok());
  }
  auto tree = BPTree::Open(Path("t"), /*cache_pages=*/4);
  ASSERT_TRUE(tree.ok());
  // Some operation that touches the corrupt page must surface
  // Corruption; a full scan certainly does.
  BPTree::Iterator it(tree.value().get());
  Status s = it.SeekToFirst();
  while (s.ok() && it.Valid()) s = it.Next();
  bool corruption_seen = s.IsCorruption();
  if (!corruption_seen) {
    BPTree::TreeStats stats;
    corruption_seen = tree.value()->Analyze(&stats).IsCorruption();
  }
  EXPECT_TRUE(corruption_seen);
}

}  // namespace
}  // namespace trex
