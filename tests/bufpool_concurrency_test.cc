// Concurrency property tests for the latched buffer pool (ctest label:
// concurrency). Random concurrent pin/unpin/evict traffic is checked
// against a model: every page was filled with a content pattern that is
// a pure function of its id, so any eviction of a pinned frame, frame
// recycling race, or torn read shows up as a payload mismatch. Failures
// are counted atomically and asserted on the main thread (gtest
// assertions are not reliable from worker threads), so the checks fire
// in release builds too — they do not hide behind NDEBUG asserts.
#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/pager.h"
#include "testutil.h"

namespace trex {
namespace {

class BufPoolConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::UniqueTestDir("trex_bufpool_conc");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // The reference model: page `id` holds this byte at every payload
  // offset. The 4-byte checksum trailer past kPageUsableSize belongs to
  // the pager (stamped on writeback), so the tests never inspect it.
  static char ExpectedByte(PageId id) {
    return static_cast<char>('A' + (id % 23));
  }

  // Writes `num_pages` pages of patterned content through the pool.
  std::vector<PageId> FillPages(BufferPool* pool, size_t num_pages) {
    std::vector<PageId> ids;
    for (size_t i = 0; i < num_pages; ++i) {
      auto page = pool->Allocate();
      TREX_CHECK_OK(page.status());
      PageId id = page.value().id();
      std::memset(page.value().MutableData(), ExpectedByte(id),
                  kPageUsableSize);
      ids.push_back(id);
    }
    TREX_CHECK_OK(pool->FlushAll());
    return ids;
  }

  std::string dir_;
};

// Many threads fetch random pages from a pool far smaller than the page
// set (every fetch may evict), hold the pin while re-verifying content,
// and unpin. If a pinned frame were ever evicted/recycled, the second
// verification would observe another page's pattern.
TEST_F(BufPoolConcurrencyTest, ConcurrentFetchesMatchReferenceModel) {
  auto pager_or = Pager::Open(dir_ + "/p");
  ASSERT_TRUE(pager_or.ok());
  Pager* pager = pager_or.value().get();
  constexpr size_t kPages = 96;
  constexpr size_t kCapacity = 16;  // Heavy eviction traffic.
  BufferPool pool(pager, kCapacity);
  std::vector<PageId> ids = FillPages(&pool, kPages);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(0x9e3779b9u + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        PageId id = ids[rng.Uniform(ids.size())];
        auto page = pool.Fetch(id);
        if (!page.ok()) {
          ++errors;
          continue;
        }
        const char* data = page.value().data();
        const char want = ExpectedByte(id);
        // Sample a few offsets, spin a little, then check again while
        // still pinned: an eviction under the pin would swap the bytes.
        for (size_t off : {size_t{0}, kPageSize / 2, kPageUsableSize - 1}) {
          if (data[off] != want) ++mismatches;
        }
        for (int spin = 0; spin < 50; ++spin) {
          std::atomic_signal_fence(std::memory_order_seq_cst);
        }
        for (size_t off : {size_t{1}, kPageSize / 3, kPageUsableSize - 2}) {
          if (data[off] != want) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(errors.load(), 0u);
  // The pool really was under eviction pressure, or the test proves
  // nothing about pinned-frame stability.
  EXPECT_GT(pool.evictions(), 0u);
  // Allocate() is not a logical page access, so the count is exactly the
  // fetch traffic — the relaxed counters lose nothing under concurrency.
  EXPECT_EQ(pool.page_accesses(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

// Mixed traffic: four writer threads each own a disjoint page (so page
// bytes have exactly one mutator — cross-thread byte-level exclusion on
// one page is the snapshot lock's job, one layer up) and rewrite it to
// successive patterned generations; reader threads hammer the remaining
// pages. Evictions interleave dirty writebacks with reads under a tiny
// capacity; the model says read-only pages never change and the durable
// state afterwards is each writer page's last generation.
TEST_F(BufPoolConcurrencyTest, DirtyWritebacksKeepContentsConsistent) {
  auto pager_or = Pager::Open(dir_ + "/p");
  ASSERT_TRUE(pager_or.ok());
  Pager* pager = pager_or.value().get();
  constexpr size_t kPages = 24;
  constexpr size_t kWriterPages = 4;
  constexpr size_t kCapacity = 8;
  BufferPool pool(pager, kCapacity);
  std::vector<PageId> ids = FillPages(&pool, kPages);

  auto byte_for = [&](size_t slot, int g) {
    return static_cast<char>(ExpectedByte(ids[slot]) + (g % 7));
  };

  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<bool> stop{false};

  constexpr int kRounds = 400;
  std::vector<std::thread> writers;
  for (size_t slot = 0; slot < kWriterPages; ++slot) {
    writers.emplace_back([&, slot]() {
      for (int round = 1; round <= kRounds; ++round) {
        auto page = pool.Fetch(ids[slot]);
        if (!page.ok()) {
          ++errors;
          return;
        }
        // The pin must bring back the previous generation before the
        // rewrite: a lost dirty writeback would resurface an older one.
        if (page.value().data()[0] != byte_for(slot, round - 1)) {
          ++mismatches;
        }
        std::memset(page.value().MutableData(), byte_for(slot, round),
                    kPageUsableSize);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(0xc0ffee + t);
      while (!stop.load(std::memory_order_acquire)) {
        size_t slot = kWriterPages + rng.Uniform(kPages - kWriterPages);
        auto page = pool.Fetch(ids[slot]);
        if (!page.ok()) {
          ++errors;
          return;
        }
        // Read-only pages hold their original pattern forever, however
        // often they get evicted to make room for dirty frames.
        if (page.value().data()[kPageSize / 2] != ExpectedByte(ids[slot])) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(errors.load(), 0u);
  TREX_CHECK_OK(pool.FlushAll());
  // After the dust settles the durable state matches the model exactly.
  for (size_t slot = 0; slot < kPages; ++slot) {
    std::vector<char> buf(kPageSize);
    TREX_CHECK_OK(pager->ReadPage(ids[slot], buf.data()));
    char want = slot < kWriterPages ? byte_for(slot, kRounds)
                                    : ExpectedByte(ids[slot]);
    EXPECT_EQ(buf[kPageSize / 2], want) << "page slot " << slot;
  }
}

// A fully pinned pool refuses further fetches instead of evicting a
// pinned frame, and recovers as soon as pins are released.
TEST_F(BufPoolConcurrencyTest, ExhaustedPoolFailsFetchRatherThanEvictPinned) {
  auto pager_or = Pager::Open(dir_ + "/p");
  ASSERT_TRUE(pager_or.ok());
  BufferPool pool(pager_or.value().get(), 4);
  std::vector<PageId> ids = FillPages(&pool, 8);

  std::vector<PageHandle> pinned;
  for (size_t i = 0; i < 4; ++i) {
    auto page = pool.Fetch(ids[i]);
    ASSERT_TRUE(page.ok());
    pinned.push_back(std::move(page.value()));
  }
  // Every frame is pinned: fetching an absent page must fail cleanly.
  EXPECT_TRUE(pool.Fetch(ids[7]).status().IsIOError());
  // Pinned frames survived the failed grab attempt.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pinned[i].data()[0], ExpectedByte(ids[i]));
  }
  pinned.clear();
  auto page = pool.Fetch(ids[7]);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value().data()[0], ExpectedByte(ids[7]));
}

}  // namespace
}  // namespace trex
