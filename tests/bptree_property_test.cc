// Property tests: the B+-tree must behave exactly like std::map under
// random operation streams (put / overwrite / delete / get / range scan),
// across a sweep of key/value size profiles.
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/bptree.h"
#include "testutil.h"

namespace trex {
namespace {

struct ProfileParam {
  const char* name;
  uint64_t seed;
  int num_ops;
  size_t key_space;      // Number of distinct keys to draw from.
  size_t min_value_len;
  size_t max_value_len;
};

class BPTreeVsMapTest : public ::testing::TestWithParam<ProfileParam> {
 protected:
  void SetUp() override {
    dir_ = test::UniqueTestDir("trex_btprop");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

std::string MakeKey(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key-%012llu",
                static_cast<unsigned long long>(id));
  return buf;
}

TEST_P(BPTreeVsMapTest, RandomOpsMatchReference) {
  const ProfileParam& p = GetParam();
  Rng rng(p.seed);
  auto tree_or = BPTree::Open(dir_ + "/t", /*cache_pages=*/64);
  ASSERT_TRUE(tree_or.ok());
  BPTree* tree = tree_or.value().get();
  std::map<std::string, std::string> ref;

  for (int op = 0; op < p.num_ops; ++op) {
    int action = static_cast<int>(rng.Uniform(10));
    std::string key = MakeKey(rng.Uniform(p.key_space));
    if (action < 6) {  // Put (often overwrites).
      size_t len = rng.UniformRange(p.min_value_len, p.max_value_len);
      std::string value(len, static_cast<char>('a' + rng.Uniform(26)));
      ASSERT_TRUE(tree->Put(key, value).ok());
      ref[key] = value;
    } else if (action < 8) {  // Delete.
      Status s = tree->Delete(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        EXPECT_TRUE(s.ok()) << s.ToString();
        ref.erase(it);
      }
    } else {  // Get.
      std::string v;
      Status s = tree->Get(key, &v);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(v, it->second);
      }
    }
    EXPECT_EQ(tree->row_count(), ref.size());
  }

  // Full scan must equal the reference map.
  auto it = BPTree::Iterator(tree);
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto rit = ref.begin();
  while (it.Valid() && rit != ref.end()) {
    EXPECT_EQ(it.key().ToString(), rit->first);
    EXPECT_EQ(it.value().ToString(), rit->second);
    ASSERT_TRUE(it.Next().ok());
    ++rit;
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_EQ(rit, ref.end());

  // Random lower-bound probes must agree with the reference map.
  for (int probe = 0; probe < 200; ++probe) {
    std::string target = MakeKey(rng.Uniform(p.key_space));
    auto bt_it = BPTree::Iterator(tree);
    ASSERT_TRUE(bt_it.Seek(target).ok());
    auto ref_it = ref.lower_bound(target);
    if (ref_it == ref.end()) {
      EXPECT_FALSE(bt_it.Valid());
    } else {
      ASSERT_TRUE(bt_it.Valid());
      EXPECT_EQ(bt_it.key().ToString(), ref_it->first);
      EXPECT_EQ(bt_it.value().ToString(), ref_it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, BPTreeVsMapTest,
    ::testing::Values(
        ProfileParam{"small_values_dense", 101, 4000, 300, 0, 16},
        ProfileParam{"medium_values", 202, 3000, 500, 32, 128},
        ProfileParam{"large_values_split_heavy", 303, 1500, 200, 400, 900},
        ProfileParam{"tiny_keyspace_churn", 404, 4000, 20, 0, 64},
        ProfileParam{"wide_keyspace_sparse", 505, 2000, 100000, 8, 40}),
    [](const ::testing::TestParamInfo<ProfileParam>& info) {
      return info.param.name;
    });

// Reopen durability under a random workload: state after Flush + reopen
// equals the reference.
TEST(BPTreeDurability, SurvivesReopenMidWorkload) {
  std::string dir = test::UniqueTestDir("trex_btprop");
  Rng rng(999);
  std::map<std::string, std::string> ref;

  for (int round = 0; round < 3; ++round) {
    auto tree_or = BPTree::Open(dir + "/t", 64);
    ASSERT_TRUE(tree_or.ok());
    BPTree* tree = tree_or.value().get();
    EXPECT_EQ(tree->row_count(), ref.size());
    for (int op = 0; op < 800; ++op) {
      std::string key = MakeKey(rng.Uniform(400));
      std::string value = "r" + std::to_string(round) + "-" +
                          std::to_string(rng.Uniform(1000000));
      ASSERT_TRUE(tree->Put(key, value).ok());
      ref[key] = value;
    }
    ASSERT_TRUE(tree->Flush().ok());
  }

  auto tree_or = BPTree::Open(dir + "/t", 64);
  ASSERT_TRUE(tree_or.ok());
  for (const auto& [k, v] : ref) {
    std::string got;
    ASSERT_TRUE(tree_or.value()->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  std::filesystem::remove_all(dir);
}

// Regression for a shadow-paging hazard: deleting from a *reopened*
// (committed) tree relocates the root-to-leaf path but cannot repair the
// predecessor leaf's sibling link, so a scan that followed the leaf chain
// would resurrect superseded pages and disagree with point lookups. Scans
// must see exactly the rows Get sees, across deletes and reopens.
TEST(BPTreeDurability, ScansAgreeWithLookupsAfterReopenAndDelete) {
  std::string dir = test::UniqueTestDir("trex_btprop");
  std::map<std::string, std::string> ref;
  {
    auto tree = BPTree::Open(dir + "/t", 64);
    ASSERT_TRUE(tree.ok());
    for (uint64_t i = 0; i < 2000; ++i) {
      std::string key = MakeKey(i);
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(tree.value()->Put(key, value).ok());
      ref[key] = value;
    }
    ASSERT_TRUE(tree.value()->Flush().ok());
  }
  for (int round = 0; round < 3; ++round) {
    auto tree = BPTree::Open(dir + "/t", 64);
    ASSERT_TRUE(tree.ok());
    // Collect every 71st surviving key via a scan, then delete them.
    std::vector<std::string> doomed;
    {
      BPTree::Iterator it(tree.value().get());
      ASSERT_TRUE(it.SeekToFirst().ok());
      for (uint64_t row = 0; it.Valid(); ++row) {
        if (row % 71 == 0) doomed.push_back(it.key().ToString());
        ASSERT_TRUE(it.Next().ok());
      }
    }
    for (const std::string& key : doomed) {
      ASSERT_TRUE(tree.value()->Delete(key).ok()) << key;
      ref.erase(key);
    }
    // Same-session scan agrees with the reference (and thus with Get).
    BPTree::Iterator it(tree.value().get());
    ASSERT_TRUE(it.SeekToFirst().ok());
    auto expect = ref.begin();
    while (it.Valid()) {
      ASSERT_NE(expect, ref.end());
      EXPECT_EQ(it.key().ToString(), expect->first);
      EXPECT_EQ(it.value().ToString(), expect->second);
      ++expect;
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_EQ(expect, ref.end());
    EXPECT_EQ(tree.value()->row_count(), ref.size());
    ASSERT_TRUE(tree.value()->Flush().ok());
  }
  auto tree = BPTree::Open(dir + "/t", 64);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value()->row_count(), ref.size());
  ASSERT_TRUE(tree.value()->DeepVerify().ok());
  uint64_t rows = 0;
  BPTree::Iterator it(tree.value().get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  while (it.Valid()) {
    std::string got;
    ASSERT_TRUE(tree.value()->Get(it.key(), &got).ok())
        << "scan surfaced a key Get cannot find: " << it.key().ToString();
    ++rows;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(rows, ref.size());
  std::filesystem::remove_all(dir);
}

// Corruption property: whatever random bit rot does to the file, every
// operation must come back with a Status — Corruption at worst, never a
// crash, hang, or silently wrong answer that a checksum should have
// caught. (Page checksums make any flipped byte detectable.)
TEST(BPTreeCorruption, RandomBitFlipsSurfaceAsCorruptionNeverCrash) {
  std::string dir = test::UniqueTestDir("trex_btprop");

  // One healthy tree, reused as the template for every corruption case.
  const std::string golden = dir + "/golden";
  {
    auto tree_or = BPTree::Open(golden, 64);
    ASSERT_TRUE(tree_or.ok());
    for (uint64_t i = 0; i < 3000; ++i) {
      ASSERT_TRUE(
          tree_or.value()->Put(MakeKey(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(tree_or.value()->Flush().ok());
  }
  const uint64_t file_size = std::filesystem::file_size(golden);
  ASSERT_GT(file_size, 0u);

  for (uint64_t seed = 1; seed <= 16; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const std::string victim = dir + "/victim";
    std::filesystem::copy_file(
        golden, victim, std::filesystem::copy_options::overwrite_existing);

    // 1..8 random single-bit flips anywhere in the file, headers included.
    {
      std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.is_open());
      const int flips = 1 + static_cast<int>(rng.Uniform(8));
      for (int i = 0; i < flips; ++i) {
        uint64_t at = rng.Uniform(file_size);
        f.seekg(static_cast<std::streamoff>(at));
        char c;
        f.read(&c, 1);
        c = static_cast<char>(c ^ (1u << rng.Uniform(8)));
        f.seekp(static_cast<std::streamoff>(at));
        f.write(&c, 1);
      }
    }

    // A tiny cache defeats lucky hits: nearly every access re-reads disk.
    auto tree_or = BPTree::Open(victim, 4);
    if (!tree_or.ok()) {
      // Both header slots unusable — a legal outcome, reported cleanly.
      EXPECT_TRUE(tree_or.status().IsCorruption())
          << tree_or.status().ToString();
      continue;
    }
    BPTree* tree = tree_or.value().get();

    Status verify = tree->DeepVerify();
    EXPECT_TRUE(verify.ok() || verify.IsCorruption()) << verify.ToString();

    // Point reads: hit or miss or corruption, never anything else.
    for (int probe = 0; probe < 200; ++probe) {
      std::string value;
      Status s = tree->Get(MakeKey(rng.Uniform(4000)), &value);
      EXPECT_TRUE(s.ok() || s.IsNotFound() || s.IsCorruption())
          << s.ToString();
    }

    // Full scan: either completes or stops at the corrupt page.
    auto it = BPTree::Iterator(tree);
    Status s = it.SeekToFirst();
    uint64_t rows = 0;
    while (s.ok() && it.Valid()) {
      ++rows;
      s = it.Next();
    }
    EXPECT_TRUE(s.ok() || s.IsCorruption()) << s.ToString();
    if (s.ok() && verify.ok()) {
      EXPECT_EQ(rows, 3000u);
    }

    // Mutations through a possibly-corrupt path must also degrade to a
    // Status (the shadowing walk reads pages before copying them).
    for (uint64_t i = 0; i < 20; ++i) {
      Status put = tree->Put(MakeKey(10000 + i), "fresh");
      EXPECT_TRUE(put.ok() || put.IsCorruption()) << put.ToString();
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace trex
