// Property tests: the B+-tree must behave exactly like std::map under
// random operation streams (put / overwrite / delete / get / range scan),
// across a sweep of key/value size profiles.
#include <filesystem>
#include <map>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/bptree.h"

namespace trex {
namespace {

struct ProfileParam {
  const char* name;
  uint64_t seed;
  int num_ops;
  size_t key_space;      // Number of distinct keys to draw from.
  size_t min_value_len;
  size_t max_value_len;
};

class BPTreeVsMapTest : public ::testing::TestWithParam<ProfileParam> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_btprop_" + GetParam().name;
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

std::string MakeKey(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key-%012llu",
                static_cast<unsigned long long>(id));
  return buf;
}

TEST_P(BPTreeVsMapTest, RandomOpsMatchReference) {
  const ProfileParam& p = GetParam();
  Rng rng(p.seed);
  auto tree_or = BPTree::Open(dir_ + "/t", /*cache_pages=*/64);
  ASSERT_TRUE(tree_or.ok());
  BPTree* tree = tree_or.value().get();
  std::map<std::string, std::string> ref;

  for (int op = 0; op < p.num_ops; ++op) {
    int action = static_cast<int>(rng.Uniform(10));
    std::string key = MakeKey(rng.Uniform(p.key_space));
    if (action < 6) {  // Put (often overwrites).
      size_t len = rng.UniformRange(p.min_value_len, p.max_value_len);
      std::string value(len, static_cast<char>('a' + rng.Uniform(26)));
      ASSERT_TRUE(tree->Put(key, value).ok());
      ref[key] = value;
    } else if (action < 8) {  // Delete.
      Status s = tree->Delete(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        EXPECT_TRUE(s.ok()) << s.ToString();
        ref.erase(it);
      }
    } else {  // Get.
      std::string v;
      Status s = tree->Get(key, &v);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(v, it->second);
      }
    }
    EXPECT_EQ(tree->row_count(), ref.size());
  }

  // Full scan must equal the reference map.
  auto it = BPTree::Iterator(tree);
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto rit = ref.begin();
  while (it.Valid() && rit != ref.end()) {
    EXPECT_EQ(it.key().ToString(), rit->first);
    EXPECT_EQ(it.value().ToString(), rit->second);
    ASSERT_TRUE(it.Next().ok());
    ++rit;
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_EQ(rit, ref.end());

  // Random lower-bound probes must agree with the reference map.
  for (int probe = 0; probe < 200; ++probe) {
    std::string target = MakeKey(rng.Uniform(p.key_space));
    auto bt_it = BPTree::Iterator(tree);
    ASSERT_TRUE(bt_it.Seek(target).ok());
    auto ref_it = ref.lower_bound(target);
    if (ref_it == ref.end()) {
      EXPECT_FALSE(bt_it.Valid());
    } else {
      ASSERT_TRUE(bt_it.Valid());
      EXPECT_EQ(bt_it.key().ToString(), ref_it->first);
      EXPECT_EQ(bt_it.value().ToString(), ref_it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, BPTreeVsMapTest,
    ::testing::Values(
        ProfileParam{"small_values_dense", 101, 4000, 300, 0, 16},
        ProfileParam{"medium_values", 202, 3000, 500, 32, 128},
        ProfileParam{"large_values_split_heavy", 303, 1500, 200, 400, 900},
        ProfileParam{"tiny_keyspace_churn", 404, 4000, 20, 0, 64},
        ProfileParam{"wide_keyspace_sparse", 505, 2000, 100000, 8, 40}),
    [](const ::testing::TestParamInfo<ProfileParam>& info) {
      return info.param.name;
    });

// Reopen durability under a random workload: state after Flush + reopen
// equals the reference.
TEST(BPTreeDurability, SurvivesReopenMidWorkload) {
  std::string dir = ::testing::TempDir() + "/trex_btprop_reopen";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Rng rng(999);
  std::map<std::string, std::string> ref;

  for (int round = 0; round < 3; ++round) {
    auto tree_or = BPTree::Open(dir + "/t", 64);
    ASSERT_TRUE(tree_or.ok());
    BPTree* tree = tree_or.value().get();
    EXPECT_EQ(tree->row_count(), ref.size());
    for (int op = 0; op < 800; ++op) {
      std::string key = MakeKey(rng.Uniform(400));
      std::string value = "r" + std::to_string(round) + "-" +
                          std::to_string(rng.Uniform(1000000));
      ASSERT_TRUE(tree->Put(key, value).ok());
      ref[key] = value;
    }
    ASSERT_TRUE(tree->Flush().ok());
  }

  auto tree_or = BPTree::Open(dir + "/t", 64);
  ASSERT_TRUE(tree_or.ok());
  for (const auto& [k, v] : ref) {
    std::string got;
    ASSERT_TRUE(tree_or.value()->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace trex
