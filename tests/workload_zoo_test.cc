// Property tests for the query-workload zoo (ctest label: zoo): every
// stream is deterministic from its seed, every generated query parses,
// the hot-key stream's observed head frequency matches its Zipf skew,
// the shifting-topic stream flips pools exactly at its changepoint, and
// the scenario table stays the advertised 4-corpora x 4-streams cross.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "corpus/workload_zoo.h"
#include "gtest/gtest.h"
#include "nexi/parser.h"
#include "testutil.h"
#include "trex/trex.h"

namespace trex {
namespace {

std::vector<std::string> NexiStrings(const std::vector<ZooQuery>& qs) {
  std::vector<std::string> out;
  out.reserve(qs.size());
  for (const auto& q : qs) out.push_back(q.nexi);
  return out;
}

TEST(WorkloadZoo, EveryScenarioStreamIsDeterministicFromItsSeed) {
  for (const ScenarioSpec& spec : ScenarioTable()) {
    auto a = spec.make_stream(42);
    auto b = spec.make_stream(42);
    auto c = spec.make_stream(43);
    const auto seq_a = a->Take(30);
    EXPECT_EQ(seq_a, b->Take(30)) << spec.name;
    EXPECT_NE(NexiStrings(seq_a), NexiStrings(c->Take(30))) << spec.name;
  }
}

TEST(WorkloadZoo, EveryScenarioQueryParsesAndCarriesASaneK) {
  for (const ScenarioSpec& spec : ScenarioTable()) {
    auto stream = spec.make_stream(7);
    for (const ZooQuery& q : stream->Take(40)) {
      auto parsed = ParseNexi(q.nexi);
      EXPECT_TRUE(parsed.ok())
          << spec.name << ": " << q.nexi << " -> "
          << parsed.status().ToString();
      EXPECT_GE(q.k, 1u) << spec.name;
      EXPECT_LE(q.k, 100u) << spec.name;
    }
  }
}

TEST(WorkloadZoo, PhraseHeavyStreamIsMostlyPhrases) {
  PhraseHeavyStream stream(ZipfSkewProfile(), 11);
  size_t with_phrase = 0;
  const size_t n = 200;
  for (const ZooQuery& q : stream.Take(n)) {
    if (q.nexi.find('"') != std::string::npos) ++with_phrase;
  }
  // phrase_fraction defaults to 0.8 per term; at least one phrase per
  // query should appear well over half the time.
  EXPECT_GT(with_phrase, n * 6 / 10);
}

TEST(WorkloadZoo, NegationHeavyStreamAlwaysNegates) {
  NegationHeavyStream stream(NearDuplicateProfile(), 12);
  for (const ZooQuery& q : stream.Take(100)) {
    EXPECT_NE(q.nexi.find(" -"), std::string::npos) << q.nexi;
    EXPECT_NE(q.nexi.find('+'), std::string::npos) << q.nexi;
  }
}

TEST(WorkloadZoo, HotKeyStreamHeadFrequencyMatchesTheZipfSkew) {
  HotKeyStream stream(ZipfSkewProfile(), 99);
  const std::vector<ZooQuery>& pool = stream.pool();
  ASSERT_EQ(pool.size(), HotKeyOptions().pool_size);
  // Pool entries must be distinct or the frequency counts below merge.
  std::set<std::string> distinct;
  for (const ZooQuery& q : pool) {
    distinct.insert(q.nexi + "#" + std::to_string(q.k));
  }
  ASSERT_EQ(distinct.size(), pool.size());

  const size_t n = 3000;
  std::map<std::string, size_t> counts;
  for (const ZooQuery& q : stream.Take(n)) {
    ++counts[q.nexi + "#" + std::to_string(q.k)];
  }
  auto count_of = [&](size_t rank) {
    return counts[pool[rank].nexi + "#" + std::to_string(pool[rank].k)];
  };
  // Every draw is from the pool.
  size_t total = 0;
  for (size_t r = 0; r < pool.size(); ++r) total += count_of(r);
  EXPECT_EQ(total, n);
  // theta=1.2 over 12 keys gives the head ~40% of the mass; rank 0 must
  // dominate and clearly beat mid-pool ranks.
  EXPECT_GT(count_of(0), n / 5);
  EXPECT_GT(count_of(0), 2 * count_of(5));
}

TEST(WorkloadZoo, ShiftingTopicStreamFlipsPoolsExactlyAtTheChangepoint) {
  ShiftingTopicStream stream(DeepRecursionProfile(), 5);
  const size_t changepoint = stream.changepoint();
  ASSERT_GT(changepoint, 0u);
  std::set<std::string> pool_a, pool_b;
  for (const ZooQuery& q : stream.topic_a()) pool_a.insert(q.nexi);
  for (const ZooQuery& q : stream.topic_b()) pool_b.insert(q.nexi);
  // The topics target different posting lists, so their pools must not
  // overlap (else the advisor would have nothing to chase).
  for (const std::string& q : pool_a) {
    EXPECT_EQ(pool_b.count(q), 0u) << q;
  }

  for (size_t i = 0; i < changepoint; ++i) {
    EXPECT_EQ(stream.position(), i);
    const ZooQuery q = stream.Next();
    EXPECT_EQ(pool_a.count(q.nexi), 1u) << "position " << i << ": " << q.nexi;
  }
  for (size_t i = 0; i < 40; ++i) {
    const ZooQuery q = stream.Next();
    EXPECT_EQ(pool_b.count(q.nexi), 1u)
        << "position " << changepoint + i << ": " << q.nexi;
  }
  EXPECT_EQ(stream.position(), changepoint + 40);
}

TEST(WorkloadZoo, ScenarioTableIsTheAdvertisedCross) {
  const auto& table = ScenarioTable();
  ASSERT_EQ(table.size(), 8u);
  std::set<std::string> names;
  std::map<std::string, size_t> corpus_uses, stream_uses;
  for (const ScenarioSpec& spec : table) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
    ++corpus_uses[spec.corpus];
    ++stream_uses[spec.stream];
    EXPECT_NE(spec.make_corpus, nullptr) << spec.name;
    EXPECT_NE(spec.make_stream, nullptr) << spec.name;
    EXPECT_EQ(FindScenario(spec.name), &spec);
  }
  EXPECT_EQ(corpus_uses.size(), 4u);
  EXPECT_EQ(stream_uses.size(), 4u);
  for (const auto& [corpus, uses] : corpus_uses) {
    EXPECT_EQ(uses, 2u) << corpus;
  }
  for (const auto& [stream, uses] : stream_uses) {
    EXPECT_EQ(uses, 2u) << stream;
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(WorkloadZoo, EveryScenarioServesItsOwnStreamEndToEnd) {
  for (const ScenarioSpec& spec : ScenarioTable()) {
    const std::string dir = test::UniqueTestDir("trex_zoo_" + spec.name);
    auto gen = spec.make_corpus(6);
    ASSERT_NE(gen, nullptr) << spec.name;
    auto trex = TReX::Build(dir, *gen);
    ASSERT_TRUE(trex.ok()) << spec.name << ": " << trex.status().ToString();
    auto stream = spec.make_stream(21);
    for (const ZooQuery& q : stream->Take(8)) {
      auto answer = trex.value()->Query(q.nexi, q.k);
      EXPECT_TRUE(answer.ok())
          << spec.name << ": " << q.nexi << " -> "
          << answer.status().ToString();
    }
  }
}

}  // namespace
}  // namespace trex
