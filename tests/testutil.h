// Shared helpers for the test suite.
#ifndef TREX_TESTS_TESTUTIL_H_
#define TREX_TESTS_TESTUTIL_H_

#include <unistd.h>

#include <filesystem>
#include <string>

#include "gtest/gtest.h"

namespace trex {
namespace test {

// A fresh scratch directory unique to (test case, process): the name
// folds in the suite name, the test name (with parameterization
// suffixes) and the pid, so parallel ctest workers and repeated stress
// runs (`scripts/check.sh --stress`) can never collide on a fixed path.
// The directory is wiped and recreated; callers remove it in TearDown.
inline std::string UniqueTestDir(const std::string& prefix) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name =
      info != nullptr
          ? std::string(info->test_suite_name()) + "_" + info->name()
          : std::string("global");
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  std::string dir = ::testing::TempDir() + "/" + prefix + "_" + name + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace test
}  // namespace trex

#endif  // TREX_TESTS_TESTUTIL_H_
