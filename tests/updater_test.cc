// Tests for incremental document insertion (index/updater.h): the
// updated index must be indistinguishable from one built from scratch
// over the same documents, up to the frozen scoring-statistics snapshot.
#include <filesystem>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/updater.h"
#include "retrieval/era.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"
#include "trex/trex.h"

namespace trex {
namespace {

class UpdaterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_updater_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(UpdaterTest, InsertedDocumentBecomesSearchable) {
  std::vector<std::string> docs = {
      "<doc><sec><p>alpha beta</p></sec></doc>",
      "<doc><sec><p>beta gamma</p></sec></doc>",
  };
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());

  auto before = trex.value()->Query("//doc//sec[about(., alpha)]", 0);
  ASSERT_TRUE(before.ok());
  size_t before_count = before.value().result.elements.size();

  auto docid = trex.value()->AddDocument(
      "<doc><sec><p>alpha alpha delta</p></sec></doc>");
  ASSERT_TRUE(docid.ok()) << docid.status().ToString();
  EXPECT_EQ(docid.value(), 2u);

  auto after = trex.value()->Query("//doc//sec[about(., alpha)]", 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().result.elements.size(), before_count + 1);
  // The new document ranks first (alpha twice, short element).
  EXPECT_EQ(after.value().result.elements[0].element.docid, 2u);

  // New terms are searchable too.
  auto delta = trex.value()->Query("//doc//sec[about(., delta)]", 0);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta.value().result.elements.size(), 1u);
  EXPECT_EQ(delta.value().result.elements[0].element.docid, 2u);
}

TEST_F(UpdaterTest, NewPathsExtendSummary) {
  std::vector<std::string> docs = {"<doc><sec><p>alpha</p></sec></doc>"};
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());
  size_t before_nodes = trex.value()->index()->summary().num_label_nodes();

  ASSERT_TRUE(trex.value()
                  ->AddDocument("<doc><appendix><p>omega</p></appendix></doc>")
                  .ok());
  EXPECT_GT(trex.value()->index()->summary().num_label_nodes(),
            before_nodes);
  auto r = trex.value()->Query("//appendix//*[about(., omega)]", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result.elements.size(), 1u);
}

TEST_F(UpdaterTest, UpdateInvalidatesAffectedListsOnly) {
  std::vector<std::string> docs = {
      "<doc><sec><p>alpha beta</p></sec></doc>",
      "<doc><sec><p>gamma</p></sec></doc>",
  };
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());
  Index* index = trex.value()->index();

  MaterializeStats stats;
  TREX_CHECK_OK(trex.value()->MaterializeFor("//sec[about(., alpha)]", true,
                                             true, &stats));
  TREX_CHECK_OK(trex.value()->MaterializeFor("//sec[about(., gamma)]", true,
                                             true, &stats));
  auto norm = index->tokenizer().NormalizeTerm("alpha");
  auto norm_gamma = index->tokenizer().NormalizeTerm("gamma");

  // Insert a doc containing alpha but not gamma.
  ASSERT_TRUE(
      trex.value()->AddDocument("<doc><sec><p>alpha</p></sec></doc>").ok());

  // alpha lists dropped, gamma lists intact.
  auto entries = index->catalog()->List();
  ASSERT_TRUE(entries.ok());
  bool has_alpha = false, has_gamma = false;
  for (const auto& e : entries.value()) {
    if (e.term == *norm) has_alpha = true;
    if (e.term == *norm_gamma) has_gamma = true;
  }
  EXPECT_FALSE(has_alpha);
  EXPECT_TRUE(has_gamma);
}

TEST_F(UpdaterTest, MethodsAgreeAfterUpdateAndRematerialization) {
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 25;
  gen_options.size_factor = 0.4;
  IeeeGenerator gen(gen_options);
  TrexOptions options;
  options.index.aliases = IeeeAliasMap();
  std::vector<std::string> docs;
  for (size_t d = 0; d < 20; ++d) docs.push_back(gen.Generate(d));
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, options);
  ASSERT_TRUE(trex.ok());

  // Insert five more documents incrementally.
  for (size_t d = 20; d < 25; ++d) {
    ASSERT_TRUE(trex.value()->AddDocument(gen.Generate(d)).ok());
  }

  const std::string query =
      "//article//sec[about(., information retrieval)]";
  MaterializeStats stats;
  TREX_CHECK_OK(trex.value()->MaterializeFor(query, true, true, &stats));

  auto era = trex.value()->QueryWith(RetrievalMethod::kEra, query, 0);
  auto ta = trex.value()->QueryWith(RetrievalMethod::kTa, query, 0);
  auto merge = trex.value()->QueryWith(RetrievalMethod::kMerge, query, 0);
  ASSERT_TRUE(era.ok());
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(merge.ok());
  ASSERT_GT(era.value().result.elements.size(), 0u);
  ASSERT_EQ(era.value().result.elements.size(),
            ta.value().result.elements.size());
  ASSERT_EQ(era.value().result.elements.size(),
            merge.value().result.elements.size());
  for (size_t i = 0; i < era.value().result.elements.size(); ++i) {
    EXPECT_EQ(era.value().result.elements[i].element,
              ta.value().result.elements[i].element);
    EXPECT_EQ(era.value().result.elements[i].score,
              merge.value().result.elements[i].score);
  }
  // Some answers come from the incrementally added documents.
  bool any_new = false;
  for (const auto& e : era.value().result.elements) {
    if (e.element.docid >= 20) any_new = true;
  }
  EXPECT_TRUE(any_new);
}

TEST_F(UpdaterTest, IndexStaysVerifiableAndReopenable) {
  std::vector<std::string> docs = {"<doc><sec><p>alpha beta</p></sec></doc>"};
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(trex.value()
                    ->AddDocument("<doc><sec><p>alpha beta gamma word" +
                                  std::to_string(i) + "</p></sec></doc>")
                    .ok());
  }
  Status s = trex.value()->index()->Verify();
  EXPECT_TRUE(s.ok()) << s.ToString();

  // Reopen: counts and searchability survive.
  trex.value().reset();
  auto reopened = TReX::Open(dir_ + "/idx", TrexOptions{});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->index()->max_docid(), 10u);
  s = reopened.value()->index()->Verify();
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto r = reopened.value()->Query("//sec[about(., word7)]", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result.elements.size(), 1u);
}

TEST_F(UpdaterTest, LongListsSpillIntoNewFragments) {
  // Force the tail-extension path across fragment boundaries: one term
  // occurring thousands of times.
  std::string big = "<doc><p>";
  for (int i = 0; i < 800; ++i) big += "omega ";
  big += "</p></doc>";
  std::vector<std::string> docs = {big};
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(trex.value()->AddDocument(big).ok());
  }
  Status s = trex.value()->index()->Verify();
  EXPECT_TRUE(s.ok()) << s.ToString();
  TermStats stats;
  auto norm = trex.value()->index()->tokenizer().NormalizeTerm("omega");
  ASSERT_TRUE(trex.value()
                  ->index()
                  ->postings()
                  ->GetTermStats(*norm, &stats)
                  .ok());
  EXPECT_EQ(stats.collection_freq, 3200u);
  EXPECT_EQ(stats.doc_freq, 4u);
}

TEST_F(UpdaterTest, RejectsNonMonotoneDocids) {
  std::vector<std::string> docs = {"<doc><p>alpha</p></doc>"};
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());
  IndexUpdater updater(trex.value()->index());
  EXPECT_TRUE(
      updater.AddDocument(0, "<doc><p>x</p></doc>").IsInvalidArgument());
}

TEST_F(UpdaterTest, MalformedDocumentLeavesSummaryUsable) {
  std::vector<std::string> docs = {"<doc><p>alpha</p></doc>"};
  auto trex = TReX::BuildFromDocuments(dir_ + "/idx", docs, TrexOptions{});
  ASSERT_TRUE(trex.ok());
  auto r = trex.value()->AddDocument("<doc><p>oops</doc>");
  EXPECT_FALSE(r.ok());
  // The index still answers queries.
  auto q = trex.value()->Query("//doc//p[about(., alpha)]", 0);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().result.elements.size(), 1u);
}

}  // namespace
}  // namespace trex
