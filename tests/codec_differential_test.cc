// Differential oracle for the block codec: the same corpus built with
// list_codec=raw and list_codec=compressed must answer every query of
// every workload-zoo scenario identically — same status, same elements,
// bit-identical scores — under every retrieval method (forced ERA, TA
// and Merge, so the cost model cannot steer the two builds onto
// different paths), under both the vague and the strict interpretation,
// and through the TA-vs-Merge race (whose answer must equal the forced
// answer of whichever side won, on the same build).
//
// Compression and block-max skipping are storage-level concerns; any
// divergence here means the codec or a skip rule changed an answer.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "corpus/workload_zoo.h"
#include "gtest/gtest.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/race.h"
#include "retrieval/ta.h"
#include "testutil.h"
#include "trex/trex.h"

namespace trex {
namespace {

constexpr size_t kDocs = 24;
constexpr size_t kQueriesPerScenario = 5;
constexpr uint64_t kStreamSeed = 7;

// Bit-exact result comparison: the two builds run identical algorithms
// over identical decoded entries, so even float sums must agree.
void ExpectSameResult(const RetrievalResult& raw,
                      const RetrievalResult& compressed) {
  ASSERT_EQ(raw.elements.size(), compressed.elements.size());
  for (size_t i = 0; i < raw.elements.size(); ++i) {
    EXPECT_EQ(raw.elements[i].element, compressed.elements[i].element)
        << "rank " << i;
    EXPECT_EQ(raw.elements[i].score, compressed.elements[i].score)
        << "rank " << i;
  }
}

class CodecDifferentialTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = test::UniqueTestDir("trex_codec_diff");
    const ScenarioSpec* spec = FindScenario(GetParam());
    ASSERT_NE(spec, nullptr) << GetParam();
    std::unique_ptr<DocumentGenerator> corpus = spec->make_corpus(kDocs);

    TrexOptions raw_options;
    raw_options.index.list_codec = ListCodec::kRaw;
    auto raw = TReX::Build(dir_ + "/raw", *corpus, raw_options);
    TREX_CHECK_OK(raw.status());
    raw_ = std::move(raw).value();

    corpus = spec->make_corpus(kDocs);  // Same seed, same documents.
    TrexOptions compressed_options;
    compressed_options.index.list_codec = ListCodec::kCompressed;
    auto compressed =
        TReX::Build(dir_ + "/compressed", *corpus, compressed_options);
    TREX_CHECK_OK(compressed.status());
    compressed_ = std::move(compressed).value();

    queries_ = spec->make_stream(kStreamSeed)->Take(kQueriesPerScenario);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<TReX> raw_;
  std::unique_ptr<TReX> compressed_;
  std::vector<ZooQuery> queries_;
};

TEST_P(CodecDifferentialTest, EveryMethodAnswersIdenticallyOnBothCodecs) {
  EXPECT_EQ(raw_->index()->list_codec(), ListCodec::kRaw);
  EXPECT_EQ(compressed_->index()->list_codec(), ListCodec::kCompressed);
  for (const ZooQuery& q : queries_) {
    SCOPED_TRACE(q.nexi + " k=" + std::to_string(q.k));
    MaterializeStats stats;
    Status raw_mat = raw_->MaterializeFor(q.nexi, true, true, &stats);
    Status comp_mat =
        compressed_->MaterializeFor(q.nexi, true, true, &stats);
    ASSERT_EQ(raw_mat.code(), comp_mat.code())
        << raw_mat.ToString() << " vs " << comp_mat.ToString();
    if (!raw_mat.ok()) continue;

    for (RetrievalMethod method :
         {RetrievalMethod::kEra, RetrievalMethod::kTa,
          RetrievalMethod::kMerge}) {
      SCOPED_TRACE(RetrievalMethodName(method));
      auto raw_answer = raw_->QueryWith(method, q.nexi, q.k);
      auto comp_answer = compressed_->QueryWith(method, q.nexi, q.k);
      ASSERT_EQ(raw_answer.status().code(), comp_answer.status().code())
          << raw_answer.status().ToString() << " vs "
          << comp_answer.status().ToString();
      if (!raw_answer.ok()) continue;
      ExpectSameResult(raw_answer.value().result,
                       comp_answer.value().result);
    }

    auto raw_strict = raw_->QueryStrict(q.nexi, q.k);
    auto comp_strict = compressed_->QueryStrict(q.nexi, q.k);
    ASSERT_EQ(raw_strict.status().code(), comp_strict.status().code())
        << raw_strict.status().ToString() << " vs "
        << comp_strict.status().ToString();
    if (raw_strict.ok()) {
      ExpectSameResult(raw_strict.value().result,
                       comp_strict.value().result);
    }
  }
}

// The race's answer is exactly the winner's answer: re-running the
// winning method alone on the same build must reproduce it bit for bit
// (and the raced top-k therefore inherits the cross-codec identity the
// forced legs above establish).
TEST_P(CodecDifferentialTest, RaceAnswerMatchesTheForcedWinner) {
  for (TReX* handle : {raw_.get(), compressed_.get()}) {
    const ZooQuery& q = queries_.front();
    SCOPED_TRACE(std::string(ListCodecName(handle->index()->list_codec())) +
                 ": " + q.nexi);
    MaterializeStats stats;
    Status mat = handle->MaterializeFor(q.nexi, true, true, &stats);
    if (!mat.ok()) continue;
    Index* index = handle->index();
    auto translated = TranslateNexi(q.nexi, index->summary(),
                                    &index->aliases(), index->tokenizer());
    ASSERT_TRUE(translated.ok()) << translated.status().ToString();
    const TranslatedClause& clause = translated.value().flattened;

    RaceEvaluator race(index);
    RaceOutcome outcome;
    Status s = race.Evaluate(clause, q.k, &outcome);
    if (s.IsNotFound()) continue;  // A (term, sid) had no list to race.
    ASSERT_TRUE(s.ok()) << s.ToString();

    RetrievalResult forced;
    if (outcome.winner == RetrievalMethod::kTa) {
      Ta ta(index);
      TREX_CHECK_OK(ta.Evaluate(clause, q.k, &forced));
    } else {
      ASSERT_EQ(outcome.winner, RetrievalMethod::kMerge);
      Merge merge(index);
      TREX_CHECK_OK(merge.Evaluate(clause, &forced));
      if (q.k > 0 && forced.elements.size() > q.k) {
        forced.elements.resize(q.k);
      }
    }
    ExpectSameResult(forced, outcome.result);
  }
}

std::vector<std::string> AllScenarioNames() {
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : ScenarioTable()) {
    names.push_back(spec.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Zoo, CodecDifferentialTest,
                         ::testing::ValuesIn(AllScenarioNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace trex
