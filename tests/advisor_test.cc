// Tests for the workload model, the selection solvers (greedy vs exact),
// the Theorem 4.2 bound, the cost model, and the end-to-end self-manager.
#include <filesystem>

#include "advisor/advisor.h"
#include "advisor/greedy.h"
#include "advisor/ilp.h"
#include "common/rng.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {
namespace {

TEST(Workload, ValidatesDefinition41) {
  Workload w;
  EXPECT_TRUE(w.Validate().IsInvalidArgument());  // Empty.

  w.Add("//a[about(., x)]", 0.5, 10);
  w.Add("//b[about(., y)]", 0.5, 10);
  EXPECT_TRUE(w.Validate().ok());

  Workload bad_sum;
  bad_sum.Add("//a[about(., x)]", 0.5, 10);
  bad_sum.Add("//b[about(., y)]", 0.2, 10);
  EXPECT_TRUE(bad_sum.Validate().IsInvalidArgument());

  Workload bad_freq;
  bad_freq.Add("//a[about(., x)]", 1.5, 10);
  EXPECT_TRUE(bad_freq.Validate().IsInvalidArgument());

  Workload bad_k;
  bad_k.Add("//a[about(., x)]", 1.0, 0);
  EXPECT_TRUE(bad_k.Validate().IsInvalidArgument());
}

TEST(Workload, TextFormatRoundTrip) {
  Workload w;
  w.Add("//article[about(., xml)]", 0.7, 10);
  w.Add("//sec[about(., \"query evaluation\")]", 0.3, 100);
  auto parsed = Workload::ParseFromText(w.SerializeToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().queries()[0].nexi, "//article[about(., xml)]");
  EXPECT_DOUBLE_EQ(parsed.value().queries()[0].frequency, 0.7);
  EXPECT_EQ(parsed.value().queries()[1].k, 100u);
  EXPECT_TRUE(parsed.value().Validate().ok());
}

TEST(Workload, TextFormatSkipsCommentsAndRejectsGarbage) {
  auto parsed = Workload::ParseFromText(
      "# comment\n\n0.5 10 //a[about(., x)]\n0.5 20 //b[about(., y)]\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);

  EXPECT_FALSE(Workload::ParseFromText("not numbers //a").ok());
  EXPECT_FALSE(Workload::ParseFromText("0.5 10\n").ok());  // Missing NEXI.
}

SelectionInstance RandomInstance(Rng* rng, size_t num_queries) {
  SelectionInstance instance;
  double freq_total = 0;
  std::vector<double> freqs;
  for (size_t i = 0; i < num_queries; ++i) {
    double f = 0.1 + rng->NextDouble();
    freqs.push_back(f);
    freq_total += f;
  }
  for (size_t i = 0; i < num_queries; ++i) {
    SelectionQuery q;
    q.frequency = freqs[i] / freq_total;
    q.merge_saving = rng->NextDouble() * 100;
    q.ta_saving = rng->NextDouble() * 100;
    q.s_erpl = 1 + rng->Uniform(1000);
    q.s_rpl = 1 + rng->Uniform(1000);
    instance.queries.push_back(q);
  }
  instance.disk_budget = 1 + rng->Uniform(2000);
  return instance;
}

TEST(Ilp, MatchesBruteForceOnRandomInstances) {
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    SelectionInstance instance = RandomInstance(&rng, 2 + rng.Uniform(7));
    SelectionResult exact = SolveBruteForce(instance);
    IlpStats stats;
    SelectionResult ilp = SolveIlp(instance, &stats);
    EXPECT_NEAR(ilp.total_saving, exact.total_saving, 1e-9)
        << "trial " << trial;
    EXPECT_LE(SelectionSize(instance, ilp.choice), instance.disk_budget);
    EXPECT_GT(stats.nodes_explored, 0u);
  }
}

TEST(Ilp, RespectsMutualExclusion) {
  // One query where both indexes would fit: only one may be chosen.
  SelectionInstance instance;
  SelectionQuery q;
  q.frequency = 1.0;
  q.merge_saving = 10;
  q.ta_saving = 8;
  q.s_erpl = 10;
  q.s_rpl = 10;
  instance.queries.push_back(q);
  instance.disk_budget = 100;
  SelectionResult r = SolveIlp(instance);
  EXPECT_EQ(r.choice[0], IndexChoice::kErpl);  // The better saving.
  EXPECT_NEAR(r.total_saving, 10.0, 1e-12);
}

TEST(Ilp, ZeroBudgetChoosesNothing) {
  Rng rng(7);
  SelectionInstance instance = RandomInstance(&rng, 5);
  instance.disk_budget = 0;
  SelectionResult r = SolveIlp(instance);
  for (IndexChoice c : r.choice) EXPECT_EQ(c, IndexChoice::kNone);
  EXPECT_EQ(r.total_saving, 0.0);
}

// Theorem 4.2: the greedy solution is a 2-approximation of the optimum.
TEST(Greedy, TwoApproximationBoundHolds) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    SelectionInstance instance = RandomInstance(&rng, 2 + rng.Uniform(8));
    SelectionResult optimal = SolveBruteForce(instance);
    GreedyStats stats;
    SelectionResult greedy = SolveGreedy(instance, &stats);
    EXPECT_LE(SelectionSize(instance, greedy.choice), instance.disk_budget);
    EXPECT_LE(greedy.total_saving, optimal.total_saving + 1e-9);
    EXPECT_LE(optimal.total_saving, 2.0 * greedy.total_saving + 1e-9)
        << "trial " << trial << ": greedy " << greedy.total_saving
        << " optimal " << optimal.total_saving;
  }
}

TEST(Greedy, SharingMakesSecondQueryFree) {
  // Two queries needing the SAME ERPL unit: after paying for it once,
  // the second query is supported at zero additional cost.
  SelectionInstance instance;
  ListUnit shared{ListKind::kErpl, "xml", 7};
  for (int i = 0; i < 2; ++i) {
    SelectionQuery q;
    q.frequency = 0.5;
    q.merge_saving = 10;
    q.ta_saving = 0;
    q.s_erpl = 100;
    q.s_rpl = 0;
    q.erpl_units = {shared};
    instance.queries.push_back(q);
  }
  instance.unit_sizes[shared] = 100;
  instance.disk_budget = 100;  // Enough for ONE copy only.
  SelectionResult r = SolveGreedy(instance);
  // Both queries supported; only 100 bytes used.
  EXPECT_EQ(r.choice[0], IndexChoice::kErpl);
  EXPECT_EQ(r.choice[1], IndexChoice::kErpl);
  EXPECT_EQ(r.total_size, 100u);
  EXPECT_NEAR(r.total_saving, 10.0, 1e-12);  // 0.5*10 + 0.5*10.
}

TEST(Greedy, PrefersHigherGainCostRatio) {
  SelectionInstance instance;
  SelectionQuery cheap;  // Ratio 1.0.
  cheap.frequency = 0.5;
  cheap.merge_saving = 20;  // Weighted gain 10, size 10.
  cheap.s_erpl = 10;
  SelectionQuery expensive;  // Ratio 0.1.
  expensive.frequency = 0.5;
  expensive.merge_saving = 20;
  expensive.s_erpl = 100;
  instance.queries = {cheap, expensive};
  instance.disk_budget = 10;
  SelectionResult r = SolveGreedy(instance);
  EXPECT_EQ(r.choice[0], IndexChoice::kErpl);
  EXPECT_EQ(r.choice[1], IndexChoice::kNone);
}

class SelfManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_advisor_selfmgr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    IndexOptions options;
    options.aliases = IeeeAliasMap();
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 40;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    IndexBuilder builder(dir_ + "/idx", options);
    for (size_t i = 0; i < gen.num_documents(); ++i) {
      TREX_CHECK_OK(
          builder.AddDocument(static_cast<DocId>(i), gen.Generate(i)));
    }
    TREX_CHECK_OK(builder.Finish());
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    index_ = std::move(index).value();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<Index> index_;
};

TEST_F(SelfManagerTest, MaterializesChosenListsWithinBudget) {
  Workload workload;
  workload.Add("//article//sec[about(., ontologies)]", 0.6, 10);
  workload.Add("//article[about(., information retrieval)]", 0.4, 20);
  TREX_CHECK_OK(workload.Validate());
  TREX_CHECK_OK(workload.Prepare(index_.get()));

  SelfManagerOptions options;
  options.solver = SelfManagerOptions::Solver::kGreedy;
  options.costs = SelfManagerOptions::Costs::kMeasured;
  options.disk_budget_bytes = 64ull << 20;  // Plenty.
  SelfManager manager(index_.get(), options);
  SelfManagerReport report;
  TREX_CHECK_OK(manager.Run(workload, &report));

  ASSERT_EQ(report.queries.size(), 2u);
  // With an ample budget every query gets one redundant index, and the
  // promised method becomes actually evaluable.
  for (size_t i = 0; i < report.queries.size(); ++i) {
    const auto& pq = report.queries[i];
    const TranslatedClause& clause = workload.queries()[i].clause;
    if (pq.choice == IndexChoice::kErpl) {
      EXPECT_TRUE(Merge::CanEvaluate(index_.get(), clause));
    } else if (pq.choice == IndexChoice::kRpl) {
      EXPECT_TRUE(Ta::CanEvaluate(index_.get(), clause));
    }
  }
  EXPECT_LE(report.bytes_materialized, options.disk_budget_bytes);
}

TEST_F(SelfManagerTest, ZeroBudgetMaterializesNothing) {
  Workload workload;
  workload.Add("//article//sec[about(., ontologies)]", 1.0, 10);
  TREX_CHECK_OK(workload.Validate());
  TREX_CHECK_OK(workload.Prepare(index_.get()));
  SelfManagerOptions options;
  options.disk_budget_bytes = 0;
  options.costs = SelfManagerOptions::Costs::kEstimated;
  SelfManager manager(index_.get(), options);
  SelfManagerReport report;
  TREX_CHECK_OK(manager.Run(workload, &report));
  EXPECT_EQ(report.bytes_materialized, 0u);
  EXPECT_EQ(report.queries[0].choice, IndexChoice::kNone);
}

TEST_F(SelfManagerTest, IlpAndGreedyAgreeOnEasyInstances) {
  Workload workload;
  workload.Add("//article//sec[about(., ontologies case study)]", 0.5, 10);
  workload.Add("//sec[about(., code signing)]", 0.5, 10);
  TREX_CHECK_OK(workload.Validate());
  TREX_CHECK_OK(workload.Prepare(index_.get()));

  for (auto solver : {SelfManagerOptions::Solver::kGreedy,
                      SelfManagerOptions::Solver::kIlp}) {
    SelfManagerOptions options;
    options.solver = solver;
    options.costs = SelfManagerOptions::Costs::kEstimated;
    options.disk_budget_bytes = 1ull << 30;
    SelfManager manager(index_.get(), options);
    SelectionInstance instance;
    SelectionResult result;
    TREX_CHECK_OK(manager.Plan(workload, &instance, &result));
    // Ample budget: both solvers support every query with its best index.
    for (size_t i = 0; i < instance.queries.size(); ++i) {
      double best = std::max(
          instance.queries[i].frequency * instance.queries[i].merge_saving,
          instance.queries[i].frequency * instance.queries[i].ta_saving);
      double got =
          result.choice[i] == IndexChoice::kErpl
              ? instance.queries[i].frequency * instance.queries[i].merge_saving
          : result.choice[i] == IndexChoice::kRpl
              ? instance.queries[i].frequency * instance.queries[i].ta_saving
              : 0.0;
      if (best > 0) {
        EXPECT_NEAR(got, best, 1e-12);
      }
    }
  }
}

// The classic greedy pathology: a cheap tiny-gain index would block a
// huge one; the best-single augmentation must rescue the bound.
TEST(Greedy, SingleItemAugmentationRescuesPathology) {
  SelectionInstance instance;
  SelectionQuery tiny;
  tiny.frequency = 1.0;
  tiny.merge_saving = 1;  // Ratio 1.0.
  tiny.s_erpl = 1;
  SelectionQuery huge;
  huge.frequency = 1.0;
  huge.merge_saving = 99;  // Ratio 0.99.
  huge.s_erpl = 100;
  instance.queries = {tiny, huge};
  instance.disk_budget = 100;
  SelectionResult r = SolveGreedy(instance);
  EXPECT_NEAR(r.total_saving, 99.0, 1e-12);
  EXPECT_EQ(r.choice[1], IndexChoice::kErpl);
}

}  // namespace
}  // namespace trex
