// Tests for the NEXI lexer, parser, and query translation.
#include "gtest/gtest.h"
#include "nexi/lexer.h"
#include "nexi/parser.h"
#include "nexi/translator.h"
#include "summary/builder.h"

namespace trex {
namespace {

TEST(NexiLexer, TokenizesAllKinds) {
  auto tokens = LexNexi("//a[about(., \"x y\" +b -c)] | *");
  ASSERT_TRUE(tokens.ok());
  std::vector<NexiTokenType> types;
  for (const auto& t : tokens.value()) types.push_back(t.type);
  std::vector<NexiTokenType> expected = {
      NexiTokenType::kDoubleSlash, NexiTokenType::kWord,
      NexiTokenType::kLBracket,    NexiTokenType::kWord,
      NexiTokenType::kLParen,      NexiTokenType::kDot,
      NexiTokenType::kComma,       NexiTokenType::kQuoted,
      NexiTokenType::kPlus,        NexiTokenType::kWord,
      NexiTokenType::kMinus,       NexiTokenType::kWord,
      NexiTokenType::kRParen,      NexiTokenType::kRBracket,
      NexiTokenType::kPipe,        NexiTokenType::kStar,
      NexiTokenType::kEnd};
  EXPECT_EQ(types, expected);
}

TEST(NexiLexer, RejectsUnterminatedQuote) {
  EXPECT_FALSE(LexNexi("//a[about(., \"oops)]").ok());
}

TEST(NexiLexer, RejectsForeignCharacters) {
  EXPECT_FALSE(LexNexi("//a{b}").ok());
}

TEST(NexiParser, PaperExampleQuery) {
  // Example 1.1 of the paper.
  auto q = ParseNexi(
      "//article[about(., XML)]//sec[about(., query evaluation)]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().steps.size(), 2u);
  EXPECT_EQ(q.value().steps[0].path_step.label, "article");
  EXPECT_EQ(q.value().steps[0].path_step.axis, Axis::kDescendant);
  ASSERT_NE(q.value().steps[0].predicate, nullptr);
  EXPECT_EQ(q.value().steps[0].predicate->kind, PredicateExpr::Kind::kAbout);
  EXPECT_EQ(q.value().steps[0].predicate->about.terms.size(), 1u);
  EXPECT_EQ(q.value().steps[0].predicate->about.terms[0].text, "XML");
  ASSERT_NE(q.value().steps[1].predicate, nullptr);
  EXPECT_EQ(q.value().steps[1].predicate->about.terms.size(), 2u);
}

TEST(NexiParser, AndOrPredicates) {
  // Q233 from Table 1.
  auto q = ParseNexi(
      "//article[about(.//bdy, synthesizers) and about(.//bdy, music)]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& pred = q.value().steps[0].predicate;
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->kind, PredicateExpr::Kind::kAnd);
  std::vector<const AboutClause*> abouts;
  pred->CollectAboutClauses(&abouts);
  ASSERT_EQ(abouts.size(), 2u);
  ASSERT_EQ(abouts[0]->relative_path.size(), 1u);
  EXPECT_EQ(abouts[0]->relative_path[0].label, "bdy");
  EXPECT_EQ(abouts[0]->terms[0].text, "synthesizers");
  EXPECT_EQ(abouts[1]->terms[0].text, "music");

  auto q2 = ParseNexi("//a[about(., x) or (about(., y) and about(., z))]");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2.value().steps[0].predicate->kind, PredicateExpr::Kind::kOr);
}

TEST(NexiParser, WildcardStepAndModifiers) {
  // Q260 and Q292 shapes from Table 1.
  auto q = ParseNexi("//bdy//*[about(., model checking)]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().steps[1].path_step.label, "*");

  auto q2 = ParseNexi(
      "//article//figure[about(., Renaissance painting Italian Flemish "
      "-French -German)]");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  const auto& terms = q2.value().steps[1].predicate->about.terms;
  ASSERT_EQ(terms.size(), 6u);
  EXPECT_EQ(terms[4].text, "French");
  EXPECT_EQ(terms[4].modifier, QueryTerm::Modifier::kExcluded);
  EXPECT_EQ(terms[5].modifier, QueryTerm::Modifier::kExcluded);
  EXPECT_EQ(terms[0].modifier, QueryTerm::Modifier::kPlain);
  EXPECT_LT(terms[4].weight(), 0.0f);
}

TEST(NexiParser, QuotedPhrase) {
  auto q = ParseNexi("//article[about(., \"genetic algorithm\")]");
  ASSERT_TRUE(q.ok());
  const auto& terms = q.value().steps[0].predicate->about.terms;
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_TRUE(terms[0].is_phrase);
  EXPECT_EQ(terms[0].text, "genetic algorithm");
}

TEST(NexiParser, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseNexi("").ok());
  EXPECT_FALSE(ParseNexi("article").ok());
  EXPECT_FALSE(ParseNexi("//article[").ok());
  EXPECT_FALSE(ParseNexi("//article[about(, x)]").ok());      // Missing '.'.
  EXPECT_FALSE(ParseNexi("//article[about(.)]").ok());        // No keywords.
  EXPECT_FALSE(ParseNexi("//article[about(., )]").ok());      // Empty kw.
  EXPECT_FALSE(ParseNexi("//article[notabout(., x)]").ok());
  EXPECT_FALSE(ParseNexi("//article[about(., x)] trailing").ok());
  EXPECT_FALSE(ParseNexi("//article[about(., x) and]").ok());
}

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    aliases_ = IeeeAliasMap();
    SummaryBuilder builder(SummaryKind::kIncoming, &aliases_);
    ASSERT_TRUE(builder
                    .AddDocument("<books><journal><article>"
                                 "<fm><atl>t</atl></fm>"
                                 "<bdy><sec><p>a</p></sec>"
                                 "<ss1><p>b</p><fig><fgc>c</fgc></fig></ss1>"
                                 "</bdy></article></journal></books>")
                    .ok());
    summary_ = std::make_unique<Summary>(builder.Take());
  }

  AliasMap aliases_;
  std::unique_ptr<Summary> summary_;
  Tokenizer tokenizer_;
};

TEST_F(TranslatorTest, FlattensClausesLikeTable1) {
  auto t = TranslateNexi(
      "//article[about(., XML)]//sec[about(., query evaluation)]", *summary_,
      &aliases_, tokenizer_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t.value().clauses.size(), 2u);
  // Clause 0: //article -> 1 sid, term "xml".
  EXPECT_EQ(t.value().clauses[0].sids.size(), 1u);
  ASSERT_EQ(t.value().clauses[0].terms.size(), 1u);
  EXPECT_EQ(t.value().clauses[0].terms[0].term, "xml");
  // Clause 1: //article//sec -> 1 sid (aliased), terms query+evaluation.
  EXPECT_EQ(t.value().clauses[1].sids.size(), 1u);
  EXPECT_EQ(t.value().clauses[1].terms.size(), 2u);
  // Flattened: union of sids (2) and terms (3), as in Table 1's counts.
  EXPECT_EQ(t.value().flattened.sids.size(), 2u);
  EXPECT_EQ(t.value().flattened.terms.size(), 3u);
  // Target: //article//sec.
  EXPECT_EQ(t.value().target_sids.size(), 1u);
}

TEST_F(TranslatorTest, RelativePathExtendsContext) {
  auto t = TranslateNexi("//article[about(.//fgc, caption words)]", *summary_,
                         &aliases_, tokenizer_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // //article//fgc -> the figure node (fgc aliased to figure).
  ASSERT_EQ(t.value().clauses.size(), 1u);
  ASSERT_EQ(t.value().clauses[0].sids.size(), 1u);
  EXPECT_EQ(summary_->node(t.value().clauses[0].sids[0]).label, "figure");
}

TEST_F(TranslatorTest, ExcludedTermsCarryNegativeWeight) {
  auto t = TranslateNexi("//sec[about(., painting -french)]", *summary_,
                         &aliases_, tokenizer_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  const auto& terms = t.value().flattened.terms;
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_GT(terms[0].weight, 0.0f);
  EXPECT_LT(terms[1].weight, 0.0f);
}

TEST_F(TranslatorTest, PhraseDecomposesIntoWords) {
  auto t = TranslateNexi("//sec[about(., \"query evaluation\")]", *summary_,
                         &aliases_, tokenizer_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().flattened.terms.size(), 2u);
}

TEST_F(TranslatorTest, StopwordOnlyAboutFails) {
  auto t = TranslateNexi("//sec[about(., the of and)]", *summary_, &aliases_,
                         tokenizer_);
  EXPECT_FALSE(t.ok());
}

TEST_F(TranslatorTest, NoAboutClauseFails) {
  auto t = TranslateNexi("//article//sec", *summary_, &aliases_, tokenizer_);
  EXPECT_FALSE(t.ok());
}

TEST_F(TranslatorTest, WildcardTargetMatchesManySids) {
  auto t = TranslateNexi("//bdy//*[about(., word)]", *summary_, &aliases_,
                         tokenizer_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // sec, p, fig, figure under bdy.
  EXPECT_GE(t.value().flattened.sids.size(), 3u);
}

TEST_F(TranslatorTest, TagSummaryFallsBackToLabelMatching) {
  SummaryBuilder tag_builder(SummaryKind::kTag, &aliases_);
  ASSERT_TRUE(tag_builder.AddDocument("<a><b>x</b><c><b>y</b></c></a>").ok());
  Summary tag_summary = tag_builder.Take();
  // Tag summaries cannot check paths: //c/b degrades to label "b".
  auto t = TranslateNexi("//c/b[about(., x)]", tag_summary, &aliases_,
                         tokenizer_);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t.value().flattened.sids.size(), 1u);
  EXPECT_EQ(tag_summary.node(t.value().flattened.sids[0]).label, "b");
  // Wildcard matches every node.
  auto t2 = TranslateNexi("//*[about(., x)]", tag_summary, &aliases_,
                          tokenizer_);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2.value().flattened.sids.size(),
            tag_summary.num_label_nodes());
}


TEST(NexiParser, TagAlternation) {
  auto q = ParseNexi("//article//(sec|abs)[about(., xml)]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().steps[1].path_step.label, "sec|abs");
  EXPECT_FALSE(ParseNexi("//(sec|)[about(., x)]").ok());
  EXPECT_FALSE(ParseNexi("//()[about(., x)]").ok());
}

}  // namespace
}  // namespace trex
