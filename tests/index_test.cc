// Tests for the four paper tables (Elements, PostingLists, RPLs, ERPLs),
// the catalog, the index builder, and index reopen.
#include <filesystem>
#include <limits>

#include "common/coding.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/element_index.h"
#include "index/erpl.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "index/index_catalog.h"
#include "index/posting_lists.h"
#include "index/rpl.h"

namespace trex {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_index_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(IndexTest, ElementExtentIterator) {
  auto index = ElementIndex::Open(dir_);
  ASSERT_TRUE(index.ok());
  ElementIndex* ei = index.value().get();
  // Extent of sid 5: elements at (doc 1, end 10, len 5), (doc 1, end 30,
  // len 8), (doc 2, end 7, len 7). Plus noise in sids 4 and 6.
  ASSERT_TRUE(ei->Add({5, 1, 10, 5}).ok());
  ASSERT_TRUE(ei->Add({5, 1, 30, 8}).ok());
  ASSERT_TRUE(ei->Add({5, 2, 7, 7}).ok());
  ASSERT_TRUE(ei->Add({4, 1, 50, 10}).ok());
  ASSERT_TRUE(ei->Add({6, 1, 5, 2}).ok());

  ElementIndex::ExtentIterator it(ei, 5);
  auto first = it.FirstElement();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().endpos, 10u);
  EXPECT_EQ(first.value().length, 5u);

  auto next = it.NextElementAfter(Position{1, 10});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().endpos, 30u);

  next = it.NextElementAfter(Position{1, 31});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().docid, 2u);
  EXPECT_EQ(next.value().endpos, 7u);

  next = it.NextElementAfter(Position{2, 7});
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value().is_dummy());

  next = it.NextElementAfter(kMaxPosition);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value().is_dummy());

  // An empty extent yields the dummy immediately.
  ElementIndex::ExtentIterator empty(ei, 99);
  auto f = empty.FirstElement();
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f.value().is_dummy());
}

TEST_F(IndexTest, ElementInfoSemantics) {
  ElementInfo e{1, 2, 100, 30};
  EXPECT_EQ(e.start(), 70u);
  EXPECT_TRUE(e.Contains(70));
  EXPECT_TRUE(e.Contains(99));
  EXPECT_FALSE(e.Contains(100));
  EXPECT_FALSE(e.Contains(69));
  EXPECT_FALSE(e.is_dummy());
  EXPECT_TRUE(kDummyElement.is_dummy());
}

TEST_F(IndexTest, PostingListsFragmentationAndSentinel) {
  auto lists = PostingLists::Open(dir_);
  ASSERT_TRUE(lists.ok());
  PostingLists* pl = lists.value().get();

  // A long list forces multiple fragments.
  std::vector<Position> positions;
  for (uint32_t d = 0; d < 5; ++d) {
    for (uint64_t o = 0; o < 200; ++o) {
      positions.push_back(Position{d, o * 3});
    }
  }
  {
    PostingLists::Loader loader(pl);
    ASSERT_TRUE(loader.AddTerm("apple", positions).ok());
    ASSERT_TRUE(loader.AddTerm("banana", {Position{7, 42}}).ok());
    ASSERT_TRUE(loader.Finish().ok());
  }
  // Fragmented: more than one tuple for "apple".
  EXPECT_GT(pl->postings_table()->row_count(), 2u);

  PostingLists::PositionIterator it(pl, "apple");
  for (const Position& expected : positions) {
    auto p = it.NextPosition();
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().docid, expected.docid);
    EXPECT_EQ(p.value().offset, expected.offset);
  }
  // Then m-pos, forever.
  for (int i = 0; i < 3; ++i) {
    auto p = it.NextPosition();
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(p.value() == kMaxPosition);
    EXPECT_TRUE(it.AtEnd());
  }

  // Iterating a term that does not exist yields m-pos immediately.
  PostingLists::PositionIterator missing(pl, "zucchini");
  auto p = missing.NextPosition();
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value() == kMaxPosition);

  // The single-position term: its position, then m-pos.
  PostingLists::PositionIterator banana(pl, "banana");
  auto b = banana.NextPosition();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().docid, 7u);
  EXPECT_EQ(b.value().offset, 42u);
  EXPECT_TRUE(banana.NextPosition().value() == kMaxPosition);

  TermStats stats;
  ASSERT_TRUE(pl->GetTermStats("apple", &stats).ok());
  EXPECT_EQ(stats.doc_freq, 5u);
  EXPECT_EQ(stats.collection_freq, 1000u);
  EXPECT_TRUE(pl->GetTermStats("zucchini", &stats).IsNotFound());
}

TEST_F(IndexTest, PostingListLoaderRejectsEmptyList) {
  auto lists = PostingLists::Open(dir_);
  ASSERT_TRUE(lists.ok());
  PostingLists::Loader loader(lists.value().get());
  EXPECT_TRUE(loader.AddTerm("empty", {}).IsInvalidArgument());
  ASSERT_TRUE(loader.Finish().ok());
}

std::vector<ScoredEntry> MakeEntries(int n, uint64_t seed) {
  std::vector<ScoredEntry> entries;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    ScoredEntry e;
    e.docid = static_cast<DocId>(rng.Uniform(50));
    // Unique end positions per (docid, endpos): i in the low bits.
    e.endpos = rng.Uniform(100000) * 4096 + static_cast<uint64_t>(i);
    e.length = rng.UniformRange(1, 500);
    e.score = static_cast<float>(rng.NextDouble() * 10);
    entries.push_back(e);
  }
  return entries;
}

TEST_F(IndexTest, RplDescendingScoreOrder) {
  auto store = RplStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto entries = MakeEntries(500, 11);
  uint64_t bytes = 0;
  ASSERT_TRUE(store.value()->WriteList("term", 7, entries, &bytes).ok());
  EXPECT_GT(bytes, 0u);

  RplStore::Iterator it(store.value().get(), "term", 7);
  ASSERT_TRUE(it.Init().ok());
  int count = 0;
  float prev = std::numeric_limits<float>::max();
  while (it.Valid()) {
    EXPECT_LE(it.entry().score, prev);
    prev = it.entry().score;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 500);
  EXPECT_EQ(it.entries_read(), 500u);

  // Another (term, sid) is invisible to this prefix.
  RplStore::Iterator other(store.value().get(), "term", 8);
  ASSERT_TRUE(other.Init().ok());
  EXPECT_FALSE(other.Valid());
}

TEST_F(IndexTest, ErplPositionOrder) {
  auto store = ErplStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  auto entries = MakeEntries(500, 12);
  uint64_t bytes = 0;
  ASSERT_TRUE(store.value()->WriteList("term", 7, entries, &bytes).ok());

  ErplStore::Iterator it(store.value().get(), "term", 7);
  ASSERT_TRUE(it.Init().ok());
  int count = 0;
  Position prev{0, 0};
  while (it.Valid()) {
    Position p = it.entry().end_position();
    EXPECT_TRUE(prev < p || count == 0)
        << prev.ToString() << " vs " << p.ToString();
    prev = p;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 500);
}

TEST_F(IndexTest, RplDeleteListRemovesOnlyThatList) {
  auto store = RplStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  uint64_t bytes = 0;
  ASSERT_TRUE(
      store.value()->WriteList("a", 1, MakeEntries(100, 1), &bytes).ok());
  ASSERT_TRUE(
      store.value()->WriteList("a", 2, MakeEntries(100, 2), &bytes).ok());
  ASSERT_TRUE(store.value()->DeleteList("a", 1).ok());

  RplStore::Iterator gone(store.value().get(), "a", 1);
  ASSERT_TRUE(gone.Init().ok());
  EXPECT_FALSE(gone.Valid());
  RplStore::Iterator kept(store.value().get(), "a", 2);
  ASSERT_TRUE(kept.Init().ok());
  EXPECT_TRUE(kept.Valid());
}

TEST_F(IndexTest, CatalogRegisterListUnregister) {
  auto catalog = IndexCatalog::Open(dir_);
  ASSERT_TRUE(catalog.ok());
  IndexCatalog* cat = catalog.value().get();
  EXPECT_FALSE(cat->Has(ListKind::kRpl, "xml", 7));
  ASSERT_TRUE(cat->Register(ListKind::kRpl, "xml", 7, 1234).ok());
  ASSERT_TRUE(cat->Register(ListKind::kErpl, "xml", 7, 2345).ok());
  ASSERT_TRUE(cat->Register(ListKind::kRpl, "query", 9, 100).ok());
  EXPECT_TRUE(cat->Has(ListKind::kRpl, "xml", 7));
  EXPECT_FALSE(cat->Has(ListKind::kRpl, "xml", 8));

  auto entries = cat->List();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 3u);
  EXPECT_EQ(cat->TotalSizeBytes().value(), 1234u + 2345u + 100u);

  ASSERT_TRUE(cat->Unregister(ListKind::kRpl, "xml", 7).ok());
  EXPECT_FALSE(cat->Has(ListKind::kRpl, "xml", 7));
  // Idempotent.
  ASSERT_TRUE(cat->Unregister(ListKind::kRpl, "xml", 7).ok());
}

TEST_F(IndexTest, BuilderEndToEndAndReopen) {
  IndexOptions options;
  options.aliases = IeeeAliasMap();
  {
    IndexBuilder builder(dir_ + "/idx", options);
    ASSERT_TRUE(builder
                    .AddDocument(0,
                                 "<books><journal><article><bdy>"
                                 "<sec><p>xml retrieval systems</p></sec>"
                                 "<ss1><p>xml queries</p></ss1>"
                                 "</bdy></article></journal></books>")
                    .ok());
    ASSERT_TRUE(builder
                    .AddDocument(1,
                                 "<books><journal><article><bdy>"
                                 "<sec><p>databases</p></sec>"
                                 "</bdy></article></journal></books>")
                    .ok());
    ASSERT_TRUE(builder.Finish().ok());
    EXPECT_EQ(builder.stats().num_documents, 2u);
    // 8 elements in doc 0, 6 in doc 1.
    EXPECT_EQ(builder.stats().num_elements, 14u);
  }
  auto index = Index::Open(dir_ + "/idx");
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index.value()->stats().num_documents, 2u);
  EXPECT_EQ(index.value()->stats().num_elements, 14u);
  EXPECT_GT(index.value()->stats().avg_element_length, 0.0);
  // Summary persisted with aliases applied: ss1 merged into sec.
  const Summary& summary = index.value()->summary();
  EXPECT_EQ(summary.kind(), SummaryKind::kIncoming);
  EXPECT_EQ(summary.ancestor_violations(), 0u);
  // "xml" occurs in two docs; stemmed terms present.
  TermStats stats;
  ASSERT_TRUE(index.value()->postings()->GetTermStats("xml", &stats).ok());
  EXPECT_EQ(stats.doc_freq, 1u);  // Both occurrences are in doc 0.
  EXPECT_EQ(stats.collection_freq, 2u);
  ASSERT_TRUE(
      index.value()->postings()->GetTermStats("databas", &stats).ok());
  EXPECT_EQ(stats.doc_freq, 1u);
}

TEST_F(IndexTest, BuilderRejectsOutOfOrderDocids) {
  IndexBuilder builder(dir_ + "/idx", IndexOptions{});
  ASSERT_TRUE(builder.AddDocument(5, "<a>x</a>").ok());
  EXPECT_TRUE(builder.AddDocument(5, "<a>y</a>").IsInvalidArgument());
  EXPECT_TRUE(builder.AddDocument(3, "<a>z</a>").IsInvalidArgument());
}

TEST_F(IndexTest, BuilderPropagatesXmlErrors) {
  IndexBuilder builder(dir_ + "/idx", IndexOptions{});
  EXPECT_TRUE(builder.AddDocument(0, "<a><b></a>").IsCorruption());
}

TEST_F(IndexTest, OpenFailsOnMissingIndex) {
  auto index = Index::Open(dir_ + "/nonexistent");
  EXPECT_FALSE(index.ok());
}

TEST_F(IndexTest, VerifyPassesOnFreshIndex) {
  IndexOptions options;
  options.aliases = IeeeAliasMap();
  IndexBuilder builder(dir_ + "/idx", options);
  TREX_CHECK_OK(builder.AddDocument(
      0, "<doc><sec><p>alpha beta alpha</p></sec><sec><p>beta</p></sec>"
         "</doc>"));
  TREX_CHECK_OK(builder.AddDocument(
      1, "<doc><sec><p>gamma alpha</p></sec></doc>"));
  TREX_CHECK_OK(builder.Finish());
  auto index = Index::Open(dir_ + "/idx");
  ASSERT_TRUE(index.ok());
  Status s = index.value()->Verify();
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string stats = index.value()->DebugStats();
  EXPECT_NE(stats.find("documents 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("Elements"), std::string::npos);
}

TEST_F(IndexTest, VerifyCatchesMissingSentinel) {
  // Hand-build a posting list WITHOUT the m-pos sentinel by writing a
  // raw fragment, then check Verify flags it.
  IndexOptions options;
  IndexBuilder builder(dir_ + "/idx", options);
  TREX_CHECK_OK(builder.AddDocument(0, "<doc><p>alpha</p></doc>"));
  TREX_CHECK_OK(builder.Finish());
  auto index = Index::Open(dir_ + "/idx");
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index.value()->Verify().ok());

  std::string key = PostingLists::EncodeKey("zzz", Position{9, 9});
  std::string value;
  PostingLists::EncodeFragment(Position{9, 9}, {}, &value);  // No m-pos.
  TREX_CHECK_OK(index.value()->postings()->postings_table()->Put(key, value));
  Status s = index.value()->Verify();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("m-pos"), std::string::npos) << s.ToString();
}

TEST_F(IndexTest, VerifyCatchesUnsortedRplBlock) {
  IndexOptions options;
  IndexBuilder builder(dir_ + "/idx", options);
  TREX_CHECK_OK(builder.AddDocument(0, "<doc><p>alpha</p></doc>"));
  TREX_CHECK_OK(builder.Finish());
  auto index = Index::Open(dir_ + "/idx");
  ASSERT_TRUE(index.ok());

  // Write an RPL block with ascending scores (invalid).
  std::string key = RplStore::KeyPrefix("alpha", 3);
  PutDescendingScore(&key, 5.0f);
  PutBigEndian32(&key, 0);
  PutBigEndian64(&key, 10);
  std::vector<ScoredEntry> block = {{0, 10, 5, 1.0f}, {0, 20, 5, 2.0f}};
  std::string value;
  EncodeScoredBlock(block, &value);
  TREX_CHECK_OK(index.value()->rpls()->table()->Put(key, value));
  Status s = index.value()->Verify();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(IndexTest, VerifyCatchesOverlappingExtentElements) {
  IndexOptions options;
  IndexBuilder builder(dir_ + "/idx", options);
  TREX_CHECK_OK(builder.AddDocument(0, "<doc><p>alpha</p></doc>"));
  TREX_CHECK_OK(builder.Finish());
  auto index = Index::Open(dir_ + "/idx");
  ASSERT_TRUE(index.ok());
  // Inject an element overlapping an existing one in the same extent.
  // sid 2 is the <p> extent (doc=1, root=... first doc creates doc=1,p=2).
  ElementInfo bogus{2, 0, 12, 12};  // Spans [0,12): overlaps everything.
  ElementInfo bogus2{2, 0, 13, 12};
  TREX_CHECK_OK(index.value()->elements()->Add(bogus));
  TREX_CHECK_OK(index.value()->elements()->Add(bogus2));
  Status s = index.value()->Verify();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}


// Codec property: fragment encode/decode round-trips arbitrary ascending
// position lists, including cross-document jumps and huge offsets.
TEST_F(IndexTest, FragmentCodecRoundTripsRandomLists) {
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Position> positions;
    Position cur{static_cast<DocId>(rng.Uniform(10)), rng.Uniform(1000)};
    size_t n = 1 + rng.Uniform(60);
    for (size_t i = 0; i < n; ++i) {
      positions.push_back(cur);
      if (rng.Bernoulli(0.2)) {
        cur.docid += 1 + static_cast<DocId>(rng.Uniform(1000));
        cur.offset = rng.Uniform(1ull << 40);
      } else {
        cur.offset += 1 + rng.Uniform(1ull << 20);
      }
    }
    std::string key = PostingLists::EncodeKey("t", positions.front());
    std::vector<Position> rest(positions.begin() + 1, positions.end());
    std::string value;
    PostingLists::EncodeFragment(positions.front(), rest, &value);
    std::vector<Position> decoded;
    ASSERT_TRUE(PostingLists::DecodeFragment(key, value, &decoded).ok());
    ASSERT_EQ(decoded.size(), positions.size());
    for (size_t i = 0; i < positions.size(); ++i) {
      EXPECT_TRUE(decoded[i] == positions[i]) << trial << ":" << i;
    }
  }
}

TEST_F(IndexTest, FragmentCodecRejectsTruncation) {
  std::string key = PostingLists::EncodeKey("t", Position{1, 2});
  std::string value;
  PostingLists::EncodeFragment(Position{1, 2},
                               {Position{1, 9}, Position{2, 5}}, &value);
  std::vector<Position> decoded;
  for (size_t cut = 1; cut < value.size(); ++cut) {
    Slice partial(value.data(), cut);
    Status s = PostingLists::DecodeFragment(key, partial, &decoded);
    // Either cleanly rejected or not silently wrong-length.
    if (s.ok()) EXPECT_EQ(decoded.size(), 3u);
  }
  // A bad key is always rejected.
  EXPECT_TRUE(PostingLists::DecodeFragment("nokey", value, &decoded)
                  .IsCorruption());
}

}  // namespace
}  // namespace trex
