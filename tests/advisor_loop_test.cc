// The online self-managing loop: workload capture in the serving path,
// advisor ticks against the live catalog, replay determinism, crash
// recovery of half-applied plans, and behavior under concurrent queries
// (this binary also runs under TSan via the `concurrency` label).
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "advisor/advisor_loop.h"
#include "advisor/workload_recorder.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "testutil.h"
#include "trex/trex.h"

namespace trex {
namespace {

constexpr const char* kHotQuery = "//article//sec[about(., ontologies)]";
constexpr const char* kColdQuery =
    "//article[about(., information retrieval)]";

class AdvisorLoopTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = test::UniqueTestDir("trex_advisor_loop"); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<TReX> BuildTrex(const std::string& subdir,
                                  size_t num_documents = 40) {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = num_documents;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir_ + "/" + subdir, gen, options);
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }

  // Self-management in manual-tick mode with deterministic defaults.
  static TReX::SelfManagementOptions ManualTickOptions() {
    TReX::SelfManagementOptions sm;
    sm.start_background = false;
    sm.loop.min_list_age_ticks = 0;
    return sm;
  }

  std::string dir_;
};

// --------------------------------------------------------------------
// WorkloadRecorder.

TEST(WorkloadRecorder, SpaceSavingEvictionKeepsHeavyHitters) {
  WorkloadRecorderOptions options;
  options.capacity = 2;
  WorkloadRecorder recorder(options);
  for (int i = 0; i < 3; ++i) recorder.Record("//a[about(., x)]", 10);
  for (int i = 0; i < 2; ++i) recorder.Record("//b[about(., y)]", 10);
  EXPECT_EQ(recorder.distinct(), 2u);
  EXPECT_EQ(recorder.evictions(), 0u);

  // At capacity the newcomer evicts the lightest entry and inherits its
  // weight + 1; the heavy hitter survives.
  recorder.Record("//c[about(., z)]", 10);
  EXPECT_EQ(recorder.distinct(), 2u);
  EXPECT_EQ(recorder.evictions(), 1u);
  Workload snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.queries()[0].nexi, "//a[about(., x)]");
  double sum = 0.0;
  for (const WorkloadQuery& q : snapshot.queries()) sum += q.frequency;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  TREX_CHECK_OK(snapshot.Validate());

  // k == 0 ("all answers") is not a Definition 4.1 query; ignored.
  uint64_t before = recorder.observed();
  recorder.Record("//d[about(., w)]", 0);
  EXPECT_EQ(recorder.observed(), before);
}

TEST(WorkloadRecorder, DecaySweepDrainsStaleEntries) {
  WorkloadRecorderOptions options;
  options.decay = 0.25;
  options.decay_every = 4;
  options.min_weight = 0.3;
  WorkloadRecorder recorder(options);
  recorder.Record("//old[about(., x)]", 10);
  // Three more observations trigger the sweep on the 4th: the old
  // entry's weight 1*0.25 falls below min_weight and is dropped.
  for (int i = 0; i < 3; ++i) recorder.Record("//new[about(., y)]", 10);
  Workload snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.queries()[0].nexi, "//new[about(., y)]");
}

TEST(WorkloadRecorder, SnapshotCapsAndNormalizes) {
  WorkloadRecorder recorder;
  for (int q = 0; q < 8; ++q) {
    std::string nexi = "//q" + std::to_string(q) + "[about(., t)]";
    for (int i = 0; i <= q; ++i) recorder.Record(nexi, 10);
  }
  Workload top3 = recorder.Snapshot(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3.queries()[0].nexi, "//q7[about(., t)]");  // Heaviest.
  double sum = 0.0;
  for (const WorkloadQuery& q : top3.queries()) sum += q.frequency;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// Record -> persist -> reload must reproduce the sketch bit for bit
// (and therefore the downstream plan).
TEST_F(AdvisorLoopTest, ReplayDeterminism) {
  WorkloadRecorderOptions options;
  options.persist_path = dir_ + "/sketch.txt";
  WorkloadRecorder recorder(options);
  for (int i = 0; i < 30; ++i) recorder.Record(kHotQuery, 10);
  for (int i = 0; i < 10; ++i) recorder.Record(kColdQuery, 20);
  TREX_CHECK_OK(recorder.Save());

  WorkloadRecorder replayed;
  TREX_CHECK_OK(replayed.LoadFrom(dir_ + "/sketch.txt"));
  EXPECT_EQ(replayed.SerializeToText(), recorder.SerializeToText());
  EXPECT_EQ(replayed.observed(), recorder.observed());

  // Identical sketches must yield identical plans.
  auto trex = BuildTrex("idx");
  Workload a = recorder.Snapshot();
  Workload b = replayed.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  TREX_CHECK_OK(a.Prepare(trex->index()));
  TREX_CHECK_OK(b.Prepare(trex->index()));
  SelfManagerOptions manager_options;
  manager_options.costs = SelfManagerOptions::Costs::kEstimated;
  SelfManager manager(trex->index(), manager_options);
  SelectionInstance ia, ib;
  SelectionResult ra, rb;
  TREX_CHECK_OK(manager.Plan(a, &ia, &ra));
  TREX_CHECK_OK(manager.Plan(b, &ib, &rb));
  EXPECT_EQ(ra.choice, rb.choice);
  EXPECT_EQ(ra.total_saving, rb.total_saving);
  EXPECT_EQ(ChosenUnits(ia, ra), ChosenUnits(ib, rb));
}

// --------------------------------------------------------------------
// End-to-end adaptation.

// A skewed stream must cause the loop to materialize the hot query's
// lists within two ticks: the served method leaves ERA and the per-query
// page count drops, while the catalog stays within budget.
TEST_F(AdvisorLoopTest, AdaptsToSkewedStreamWithinTwoTicks) {
  auto trex = BuildTrex("idx");
  TREX_CHECK_OK(trex->EnableSelfManagement(ManualTickOptions()));

  auto before = trex->Query(kHotQuery, 10);
  TREX_CHECK_OK(before.status());
  EXPECT_EQ(before.value().method, RetrievalMethod::kEra);

  // The skewed stream: the hot query dominates.
  for (int i = 0; i < 19; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  TREX_CHECK_OK(trex->Query(kColdQuery, 10).status());

  AdvisorTickReport report;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  EXPECT_TRUE(report.applied);
  EXPECT_LE(report.bytes_materialized, report.bytes_budget);

  auto after = trex->Query(kHotQuery, 10);
  TREX_CHECK_OK(after.status());
  EXPECT_NE(after.value().method, RetrievalMethod::kEra)
      << "hot query still evaluated by ERA after two advisor ticks";
  EXPECT_LT(after.value().resources.pages_fetched,
            before.value().resources.pages_fetched);
  // Same answers, cheaper plan.
  ASSERT_EQ(after.value().result.elements.size(),
            before.value().result.elements.size());

  auto total = trex->index()->catalog()->TotalSizeBytes();
  TREX_CHECK_OK(total.status());
  EXPECT_LE(total.value(), report.bytes_budget);
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

// The loop persists its sketch; a reopened handle resumes from it and
// the first tick plans yesterday's traffic (warm restart).
TEST_F(AdvisorLoopTest, SketchSurvivesReopen) {
  {
    auto trex = BuildTrex("idx");
    TREX_CHECK_OK(trex->EnableSelfManagement(ManualTickOptions()));
    for (int i = 0; i < 8; ++i) {
      TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
    }
    TREX_CHECK_OK(trex->DisableSelfManagement());
  }
  TrexOptions options;
  options.index.aliases = IeeeAliasMap();
  auto reopened = TReX::Open(dir_ + "/idx", options);
  TREX_CHECK_OK(reopened.status());
  TREX_CHECK_OK(reopened.value()->EnableSelfManagement(ManualTickOptions()));
  EXPECT_EQ(reopened.value()->workload_recorder()->observed(), 8u);
  AdvisorTickReport report;
  TREX_CHECK_OK(reopened.value()->advisor_loop()->TickNow(&report));
  EXPECT_TRUE(report.planned);
  EXPECT_EQ(report.workload_queries, 1u);
}

// --------------------------------------------------------------------
// Hysteresis.

TEST_F(AdvisorLoopTest, MinAgeDefersDropsUntilListsMature) {
  auto trex = BuildTrex("idx");
  TReX::SelfManagementOptions sm = ManualTickOptions();
  sm.loop.min_list_age_ticks = 3;
  TREX_CHECK_OK(trex->EnableSelfManagement(sm));

  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));  // Tick 1.
  ASSERT_TRUE(report.applied);
  ASSERT_GT(report.lists_materialized, 0u);

  // Workload shift: only the cold query from now on.
  trex->workload_recorder()->Clear();
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kColdQuery, 10).status());
  }
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));  // Tick 2.
  EXPECT_TRUE(report.applied);
  EXPECT_GT(report.drops_deferred, 0u)
      << "hot lists (age 1 < 3) must be kept, not dropped";
  EXPECT_EQ(report.lists_dropped, 0u);

  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));  // Tick 3: age 2.
  EXPECT_EQ(report.lists_dropped, 0u);
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));  // Tick 4: age 3.
  EXPECT_GT(report.lists_dropped, 0u)
      << "matured unwanted lists must be dropped";
  EXPECT_EQ(report.drops_deferred, 0u);
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

TEST_F(AdvisorLoopTest, SavingGateKeepsCatalogWhenPlanIsNotBetter) {
  auto trex = BuildTrex("idx");
  TReX::SelfManagementOptions sm = ManualTickOptions();
  // An impossible improvement threshold: no plan change ever clears it.
  sm.loop.min_saving_delta = 1e9;
  TREX_CHECK_OK(trex->EnableSelfManagement(sm));
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
  EXPECT_TRUE(report.planned);
  EXPECT_FALSE(report.applied);
  EXPECT_EQ(report.lists_materialized, 0u);
  auto total = trex->index()->catalog()->TotalSizeBytes();
  TREX_CHECK_OK(total.status());
  EXPECT_EQ(total.value(), 0u);
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

// --------------------------------------------------------------------
// Tick resource budget.

TEST_F(AdvisorLoopTest, TickBudgetAbortsCleanly) {
  auto trex = BuildTrex("idx");
  TReX::SelfManagementOptions sm = ManualTickOptions();
  sm.loop.tick_budget.max_pages = 1;  // Starve the tick.
  TREX_CHECK_OK(trex->EnableSelfManagement(sm));
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  Status s = trex->advisor_loop()->TickNow(&report);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // The abort left no debris: no journal, no half-applied lists.
  EXPECT_FALSE(Env::Default()->Exists(
      AdvisorLoop::ApplyJournalPath(trex->index()->dir())));
  auto total = trex->index()->catalog()->TotalSizeBytes();
  TREX_CHECK_OK(total.status());
  EXPECT_EQ(total.value(), 0u);
  // Queries are unaffected.
  TREX_CHECK_OK(trex->Query(kHotQuery, 10).status());
  TREX_CHECK_OK(trex->DisableSelfManagement());
}

// --------------------------------------------------------------------
// Crash mid-apply.

// Power loss halfway through an advisor apply: after reboot + recovery
// the journal is quarantined, the catalog byte-consistent, and the next
// tick re-converges — no orphaned bytes, no failed queries.
TEST_F(AdvisorLoopTest, CrashMidApplyRecoversToConsistentCatalog) {
  // Phase 1: learn how many writes a clean tick performs (the corpus
  // and the plan are deterministic, so a second identical index ticks
  // identically). The whole handle lives under the counting env: table
  // file handles are created at open time, so an env swapped in later
  // would never see their page writes.
  TrexOptions options;
  options.index.aliases = IeeeAliasMap();
  uint64_t pre_tick_writes = 0;
  uint64_t clean_tick_writes = 0;
  BuildTrex("learn");
  {
    FaultInjectingEnv fenv;
    Env* prev = Env::Swap(&fenv);
    auto trex = TReX::Open(dir_ + "/learn", options);
    TREX_CHECK_OK(trex.status());
    TREX_CHECK_OK(trex.value()->EnableSelfManagement(ManualTickOptions()));
    for (int i = 0; i < 10; ++i) {
      TREX_CHECK_OK(trex.value()->Query(kHotQuery, 10).status());
    }
    pre_tick_writes = fenv.writes();
    AdvisorTickReport report;
    TREX_CHECK_OK(trex.value()->advisor_loop()->TickNow(&report));
    clean_tick_writes = fenv.writes() - pre_tick_writes;
    TREX_CHECK_OK(trex.value()->DisableSelfManagement());
    trex.value().reset();
    Env::Swap(prev);
    ASSERT_TRUE(report.applied);
    ASSERT_GT(report.lists_materialized, 0u);
    ASSERT_GT(clean_tick_writes, 2u);
  }

  // Phase 2: identical index, but the power dies halfway through the
  // apply (journal persisted, list writes partially dropped).
  const std::string index_dir = dir_ + "/crash";
  BuildTrex("crash");
  {
    FaultInjectingEnv fenv;
    fenv.plan().crash_after_writes =
        static_cast<int64_t>(pre_tick_writes + clean_tick_writes / 2);
    Env* prev = Env::Swap(&fenv);
    auto trex = TReX::Open(index_dir, options);
    TREX_CHECK_OK(trex.status());
    TREX_CHECK_OK(trex.value()->EnableSelfManagement(ManualTickOptions()));
    for (int i = 0; i < 10; ++i) {
      TREX_CHECK_OK(trex.value()->Query(kHotQuery, 10).status());
    }
    AdvisorTickReport report;
    // The tick may "succeed" in memory — the dead disk swallows writes
    // silently — or fail; either way the machine is now off.
    (void)trex.value()->advisor_loop()->TickNow(&report);
    (void)trex.value()->DisableSelfManagement();
    trex.value().reset();
    Env::Swap(prev);
    EXPECT_TRUE(fenv.crashed());
  }

  // Reboot: storage-level recovery, then the advisor's journal
  // quarantine (run by EnableSelfManagement).
  ASSERT_TRUE(Env::Default()->Exists(AdvisorLoop::ApplyJournalPath(index_dir)))
      << "crash was expected to strand the apply journal";
  RecoveryReport recovery;
  auto reopened =
      TReX::Open(index_dir, options, RecoveryMode::kRepair, &recovery);
  TREX_CHECK_OK(reopened.status());
  TREX_CHECK_OK(reopened.value()->EnableSelfManagement(ManualTickOptions()));

  // The journal is gone and the catalog verifies byte-for-byte.
  EXPECT_FALSE(
      Env::Default()->Exists(AdvisorLoop::ApplyJournalPath(index_dir)));
  TREX_CHECK_OK(reopened.value()->index()->DeepVerify());

  // No orphaned bytes: everything the catalog counts is droppable and
  // re-materializable, and queries still work.
  TREX_CHECK_OK(reopened.value()->Query(kHotQuery, 10).status());
  for (int i = 0; i < 10; ++i) {
    TREX_CHECK_OK(reopened.value()->Query(kHotQuery, 10).status());
  }
  AdvisorTickReport report;
  TREX_CHECK_OK(reopened.value()->advisor_loop()->TickNow(&report));
  EXPECT_TRUE(report.applied);
  EXPECT_LE(report.bytes_materialized, report.bytes_budget);
  auto after = reopened.value()->Query(kHotQuery, 10);
  TREX_CHECK_OK(after.status());
  EXPECT_NE(after.value().method, RetrievalMethod::kEra);
  TREX_CHECK_OK(reopened.value()->DisableSelfManagement());
}

// --------------------------------------------------------------------
// Concurrency (runs under TSan via the `concurrency` ctest label).

TEST_F(AdvisorLoopTest, BackgroundLoopCoexistsWithConcurrentQueries) {
  auto trex = BuildTrex("idx", /*num_documents=*/20);
  TReX::SelfManagementOptions sm;
  sm.loop.interval_millis = 5;  // Tick aggressively while queries run.
  sm.loop.min_list_age_ticks = 0;
  TREX_CHECK_OK(trex->EnableSelfManagement(sm));

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const char* nexi = (t % 2 == 0) ? kHotQuery : kColdQuery;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto answer = trex->Query(nexi, 10);
        if (!answer.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Let the loop take at least one tick over the recorded stream.
  for (int i = 0; i < 200 && trex->advisor_loop()->ticks() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const uint64_t ticks = trex->advisor_loop()->ticks();
  TREX_CHECK_OK(trex->DisableSelfManagement());

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(ticks, uint64_t{1});
  EXPECT_EQ(trex->workload_recorder()->observed(),
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  // The index is still sane after loop + queries raced.
  TREX_CHECK_OK(trex->index()->DeepVerify());
}

}  // namespace
}  // namespace trex
