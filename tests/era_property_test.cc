// ERA ground-truth property test: Figure 2's output (elements with
// per-term frequencies) must equal a brute-force recount computed
// independently from the raw documents — tokenize each document, then
// for every element of the queried extents count the term occurrences
// whose byte offsets fall inside the element's span.
#include <filesystem>
#include <map>
#include <set>

#include "common/rng.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "retrieval/era.h"
#include "xml/reader.h"

namespace trex {
namespace {

struct Key {
  Sid sid;
  DocId docid;
  uint64_t endpos;
  friend bool operator<(const Key& a, const Key& b) {
    return std::tie(a.sid, a.docid, a.endpos) <
           std::tie(b.sid, b.docid, b.endpos);
  }
  friend bool operator==(const Key& a, const Key& b) {
    return a.sid == b.sid && a.docid == b.docid && a.endpos == b.endpos;
  }
};

class EraGroundTruthTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EraGroundTruthTest, MatchesBruteForceRecount) {
  std::string dir = ::testing::TempDir() + "/trex_era_gt_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);

  IeeeGeneratorOptions gen_options;
  gen_options.seed = GetParam();
  gen_options.num_documents = 20;
  gen_options.size_factor = 0.4;
  IeeeGenerator gen(gen_options);

  IndexOptions options;
  options.aliases = IeeeAliasMap();
  IndexBuilder builder(dir + "/idx", options);
  for (size_t d = 0; d < gen.num_documents(); ++d) {
    TREX_CHECK_OK(
        builder.AddDocument(static_cast<DocId>(d), gen.Generate(d)));
  }
  TREX_CHECK_OK(builder.Finish());
  auto index_or = Index::Open(dir + "/idx");
  TREX_CHECK_OK(index_or.status());
  Index* index = index_or.value().get();

  Rng rng(GetParam() * 7 + 3);
  for (int task = 0; task < 6; ++task) {
    // Random sids and terms.
    std::set<Sid> sid_set;
    size_t want = 1 + rng.Uniform(4);
    while (sid_set.size() < want) {
      sid_set.insert(
          static_cast<Sid>(1 + rng.Uniform(index->summary().size() - 1)));
    }
    std::vector<Sid> sids(sid_set.begin(), sid_set.end());
    std::vector<std::string> terms;
    auto planted = DefaultIeeePlantedTerms();
    std::set<std::string> term_set;
    while (term_set.size() < 1 + rng.Uniform(3)) {
      auto norm = index->tokenizer().NormalizeTerm(
          planted[rng.Uniform(planted.size())].word);
      if (norm) term_set.insert(*norm);
    }
    terms.assign(term_set.begin(), term_set.end());

    // ERA's answer.
    Era era(index);
    std::vector<Era::TfEntry> entries;
    TREX_CHECK_OK(era.ComputeTermFrequencies(sids, terms, &entries, nullptr));
    std::map<Key, std::vector<uint32_t>> got;
    for (const auto& e : entries) {
      got[{e.element.sid, e.element.docid, e.element.endpos}] = e.tf;
    }

    // Brute force: re-tokenize every document, recount per element.
    std::map<Key, std::vector<uint32_t>> expected;
    for (size_t d = 0; d < gen.num_documents(); ++d) {
      DocId docid = static_cast<DocId>(d);
      // Token occurrences with byte offsets, via the XML reader + the
      // index's tokenizer (independent of the posting lists).
      std::string doc = gen.Generate(docid);
      XmlReader reader(doc);
      XmlEvent event;
      std::vector<TokenOccurrence> occurrences;
      while (true) {
        TREX_CHECK_OK(reader.Next(&event));
        if (event.type == XmlEventType::kEndDocument) break;
        if (event.type == XmlEventType::kText) {
          index->tokenizer().Tokenize(event.text, event.offset,
                                      &occurrences);
        }
      }
      for (Sid sid : sids) {
        ElementIndex::ExtentIterator it(index->elements(), sid);
        auto e = it.FirstElement();
        TREX_CHECK_OK(e.status());
        while (!e.value().is_dummy()) {
          if (e.value().docid == docid) {
            std::vector<uint32_t> tf(terms.size(), 0);
            bool any = false;
            for (const auto& occ : occurrences) {
              if (!e.value().Contains(occ.offset)) continue;
              for (size_t j = 0; j < terms.size(); ++j) {
                if (occ.term == terms[j]) {
                  ++tf[j];
                  any = true;
                }
              }
            }
            if (any) {
              expected[{sid, docid, e.value().endpos}] = tf;
            }
          }
          e = it.NextElementAfter(e.value().end_position());
          TREX_CHECK_OK(e.status());
        }
      }
    }

    EXPECT_EQ(got, expected) << "task " << task << " seed " << GetParam();
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EraGroundTruthTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace trex
