// Randomized round-trip properties for the XML stack:
//  * writer output always re-parses, and the rebuilt DOM is structurally
//    identical (tags, attributes, text, element counts);
//  * serialize(parse(serialize(tree))) is a fixpoint;
//  * random byte mutations of well-formed documents never crash the
//    reader — they either parse or fail with Corruption.
#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "retrieval/heap.h"
#include "xml/node.h"
#include "xml/reader.h"
#include "xml/writer.h"

namespace trex {
namespace {

// Random printable text including XML-special characters.
std::string RandomText(Rng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "abc XYZ 012 <>&\"' \t.,;:!?()-_=+*/\\@#$%";
  size_t len = rng->Uniform(max_len + 1);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::string RandomTag(Rng* rng) {
  static const char* kTags[] = {"a", "b", "sec", "p", "title", "x-1", "n_2"};
  return kTags[rng->Uniform(7)];
}

void BuildRandomTree(XmlWriter* w, Rng* rng, int depth, int* budget) {
  std::string tag = RandomTag(rng);
  w->StartElement(tag);
  size_t num_attrs = rng->Uniform(3);
  for (size_t i = 0; i < num_attrs; ++i) {
    w->Attribute("attr" + std::to_string(i), RandomText(rng, 12));
  }
  while (*budget > 0 && rng->Bernoulli(depth == 0 ? 0.9 : 0.5)) {
    --*budget;
    if (depth < 6 && rng->Bernoulli(0.4)) {
      BuildRandomTree(w, rng, depth + 1, budget);
    } else {
      w->Text(RandomText(rng, 30));
    }
  }
  w->EndElement();
}

bool TreesEqual(const XmlNode& a, const XmlNode& b) {
  if (a.type() != b.type()) return false;
  if (a.is_element()) {
    if (a.tag() != b.tag()) return false;
    if (a.attributes().size() != b.attributes().size()) return false;
    for (size_t i = 0; i < a.attributes().size(); ++i) {
      if (a.attributes()[i].name != b.attributes()[i].name ||
          a.attributes()[i].value != b.attributes()[i].value) {
        return false;
      }
    }
    // Compare text content and element children; adjacent text nodes may
    // be merged by serialization, so compare the concatenation and the
    // sequence of element children.
    if (a.TextContent() != b.TextContent()) return false;
    std::vector<const XmlNode*> ea, eb;
    for (const auto& c : a.children()) {
      if (c->is_element()) ea.push_back(c.get());
    }
    for (const auto& c : b.children()) {
      if (c->is_element()) eb.push_back(c.get());
    }
    if (ea.size() != eb.size()) return false;
    for (size_t i = 0; i < ea.size(); ++i) {
      if (!TreesEqual(*ea[i], *eb[i])) return false;
    }
    return true;
  }
  return a.text() == b.text();
}

std::string SerializeTree(const XmlNode& node, XmlWriter* w) {
  std::function<void(const XmlNode&)> emit = [&](const XmlNode& n) {
    if (!n.is_element()) {
      w->Text(n.text());
      return;
    }
    w->StartElement(n.tag());
    for (const auto& a : n.attributes()) w->Attribute(a.name, a.value);
    for (const auto& c : n.children()) emit(*c);
    w->EndElement();
  };
  emit(node);
  return w->Finish();
}

TEST(XmlFuzz, WriterOutputAlwaysReparses) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    XmlWriter w;
    int budget = 40;
    BuildRandomTree(&w, &rng, 0, &budget);
    const std::string& xml = w.Finish();
    auto doc = ParseXmlDocument(xml);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << xml;

    // Fixpoint: serialize the parsed DOM; it must reparse to an equal
    // tree (serialization normalizes entity forms, so compare trees,
    // not strings).
    XmlWriter w2;
    std::string xml2 = SerializeTree(*doc.value(), &w2);
    auto doc2 = ParseXmlDocument(xml2);
    ASSERT_TRUE(doc2.ok()) << xml2;
    EXPECT_TRUE(TreesEqual(*doc.value(), *doc2.value()))
        << xml << "\nvs\n" << xml2;
  }
}

TEST(XmlFuzz, MutatedDocumentsNeverCrash) {
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    XmlWriter w;
    int budget = 20;
    BuildRandomTree(&w, &rng, 0, &budget);
    std::string xml = w.Finish();
    // Flip / insert / delete a few bytes.
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations && !xml.empty(); ++m) {
      size_t pos = rng.Uniform(xml.size());
      switch (rng.Uniform(3)) {
        case 0:
          xml[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          xml.erase(pos, 1);
          break;
        case 2:
          xml.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
          break;
      }
    }
    // Must not crash; status is either OK or a clean error.
    auto doc = ParseXmlDocument(xml);
    if (!doc.ok()) {
      EXPECT_TRUE(doc.status().IsCorruption()) << doc.status().ToString();
    }
  }
}

TEST(HeapProperty, MatchesStdPriorityQueue) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    InstrumentedHeap<uint64_t> heap;
    std::vector<uint64_t> reference;
    for (int op = 0; op < 400; ++op) {
      if (heap.empty() || rng.Bernoulli(0.6)) {
        uint64_t v = rng.Uniform(1000);
        heap.Push(v);
        reference.push_back(v);
      } else {
        auto it = std::min_element(reference.begin(), reference.end());
        EXPECT_EQ(heap.top(), *it);
        EXPECT_EQ(heap.Pop(), *it);
        reference.erase(it);
      }
      EXPECT_EQ(heap.size(), reference.size());
    }
  }
}

}  // namespace
}  // namespace trex
