#include "common/status.h"

#include "gtest/gtest.h"

namespace trex {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(Status, OverloadCodesRoundTrip) {
  Status deadline = Status::DeadlineExceeded("50 ms up");
  EXPECT_FALSE(deadline.ok());
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_FALSE(deadline.IsResourceExhausted());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: 50 ms up");

  Status transient = Status::Unavailable("read blip");
  EXPECT_TRUE(transient.IsUnavailable());
  EXPECT_FALSE(transient.IsIOError());
  EXPECT_FALSE(transient.IsCorruption());
  EXPECT_EQ(transient.ToString(), "Unavailable: read blip");

  Status shed = Status::Overloaded("queue full");
  EXPECT_TRUE(shed.IsOverloaded());
  EXPECT_FALSE(shed.IsResourceExhausted());
  EXPECT_EQ(shed.ToString(), "Overloaded: queue full");
}

Status FailsEarly() {
  TREX_RETURN_IF_ERROR(Status::IOError("disk on fire"));
  ADD_FAILURE() << "should not reach here";
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  Status s = FailsEarly();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string(100, 'a'));
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 100u);
}

}  // namespace
}  // namespace trex
