// Tests for the parallel TA-vs-Merge race evaluator (§4's "return the
// answer from the computation that finishes first").
#include <filesystem>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/index_builder.h"
#include "retrieval/era.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/race.h"
#include "retrieval/ta.h"
#include "storage/fault_env.h"
#include "testutil.h"

namespace trex {
namespace {

class RaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::UniqueTestDir("trex_race");
    IndexOptions options;
    options.aliases = IeeeAliasMap();
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 60;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    IndexBuilder builder(dir_ + "/idx", options);
    for (size_t d = 0; d < gen.num_documents(); ++d) {
      TREX_CHECK_OK(
          builder.AddDocument(static_cast<DocId>(d), gen.Generate(d)));
    }
    TREX_CHECK_OK(builder.Finish());
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    index_ = std::move(index).value();

    auto translated =
        TranslateNexi("//article//sec[about(., information retrieval)]",
                      index_->summary(), &index_->aliases(),
                      index_->tokenizer());
    TREX_CHECK_OK(translated.status());
    clause_ = translated.value().flattened;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<Index> index_;
  TranslatedClause clause_;
};

TEST_F(RaceTest, RequiresBothListKinds) {
  auto race = RaceEvaluator::Open(dir_ + "/idx");
  ASSERT_TRUE(race.ok()) << race.status().ToString();
  RaceOutcome outcome;
  EXPECT_TRUE(race.value()->Evaluate(clause_, 5, &outcome).IsNotFound());

  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, false, &stats));
  TREX_CHECK_OK(index_->Flush());
  auto race2 = RaceEvaluator::Open(dir_ + "/idx");
  ASSERT_TRUE(race2.ok());
  EXPECT_TRUE(race2.value()->Evaluate(clause_, 5, &outcome).IsNotFound());
}

TEST_F(RaceTest, WinnerMatchesExactTopK) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  TREX_CHECK_OK(index_->Flush());

  Era era(index_.get());
  RetrievalResult exact;
  TREX_CHECK_OK(era.Evaluate(clause_, &exact));
  ASSERT_GT(exact.elements.size(), 5u);

  auto race = RaceEvaluator::Open(dir_ + "/idx");
  ASSERT_TRUE(race.ok()) << race.status().ToString();
  RaceOutcome outcome;
  TREX_CHECK_OK(race.value()->Evaluate(clause_, 5, &outcome));
  EXPECT_GT(outcome.ta_seconds, 0.0);
  EXPECT_GT(outcome.merge_seconds, 0.0);
  ASSERT_EQ(outcome.result.elements.size(), 5u);
  // The winner's top-5 is a valid top-5: every returned element's exact
  // score clears the exact 5th score.
  float kth = exact.elements[4].score;
  for (const auto& e : outcome.result.elements) {
    bool found = false;
    for (const auto& f : exact.elements) {
      if (f.element == e.element) {
        EXPECT_GE(f.score, kth - 1e-5f);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(RaceTest, AllAnswersModeMatchesMergeExactly) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  TREX_CHECK_OK(index_->Flush());

  Era era(index_.get());
  RetrievalResult exact;
  TREX_CHECK_OK(era.Evaluate(clause_, &exact));

  auto race = RaceEvaluator::Open(dir_ + "/idx");
  ASSERT_TRUE(race.ok());
  RaceOutcome outcome;
  // k beyond the answer count: both contestants compute the exact list.
  TREX_CHECK_OK(
      race.value()->Evaluate(clause_, exact.elements.size(), &outcome));
  ASSERT_EQ(outcome.result.elements.size(), exact.elements.size());
  for (size_t i = 0; i < exact.elements.size(); ++i) {
    EXPECT_EQ(outcome.result.elements[i].element, exact.elements[i].element);
    EXPECT_EQ(outcome.result.elements[i].score, exact.elements[i].score);
  }
}

// A contestant whose cancel token is already set must abort before it
// touches a single page: the token check precedes catalog probes and
// iterator setup. Asserted on the fault env's real read count, not on
// implementation trust — this is the op-log form of "the loser performs
// no further page reads once the winner has finished".
TEST_F(RaceTest, PreCancelledContestantPerformsNoPageReads) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  TREX_CHECK_OK(index_->Flush());

  FaultInjectingEnv fenv;
  Env::Swap(&fenv);
  {
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    const uint64_t reads_after_open = fenv.reads();

    CancelToken cancel;
    cancel.Cancel();
    RetrievalResult result;
    Ta ta(index.value().get());
    ta.set_cancel_token(&cancel);
    EXPECT_TRUE(ta.Evaluate(clause_, 5, &result).IsAborted());
    Merge merge(index.value().get());
    merge.set_cancel_token(&cancel);
    EXPECT_TRUE(merge.Evaluate(clause_, &result).IsAborted());

    EXPECT_EQ(fenv.reads(), reads_after_open);
  }
  Env::Swap(nullptr);
}

// A token cancelled mid-run stops the contestant at the next loop head
// with Status::Aborted (never a wrong answer), and a token cancelled
// after a clean finish changes nothing.
TEST_F(RaceTest, CancelAfterFinishDoesNotDisturbResult) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  TREX_CHECK_OK(index_->Flush());

  CancelToken cancel;
  RetrievalResult result;
  Ta ta(index_.get());
  ta.set_cancel_token(&cancel);
  TREX_CHECK_OK(ta.Evaluate(clause_, 5, &result));
  ASSERT_EQ(result.elements.size(), 5u);
  cancel.Cancel();  // Too late: the result above stays valid.
  EXPECT_EQ(result.elements.size(), 5u);
  // A fresh evaluation under the now-cancelled token aborts instead.
  RetrievalResult aborted;
  EXPECT_TRUE(ta.Evaluate(clause_, 5, &aborted).IsAborted());
}

// The race over one shared Index handle is repeatable and safe to run
// from several RaceEvaluator uses in a row; when the loser was cancelled
// the outcome says so, and the winner's answer is unaffected either way.
TEST_F(RaceTest, RepeatedRacesReportLoserAbort) {
  MaterializeStats stats;
  TREX_CHECK_OK(
      MaterializeForClause(index_.get(), clause_, true, true, &stats));
  TREX_CHECK_OK(index_->Flush());

  RaceEvaluator race(index_.get());
  RaceOutcome first;
  TREX_CHECK_OK(race.Evaluate(clause_, 5, &first));
  ASSERT_EQ(first.result.elements.size(), 5u);
  for (int round = 0; round < 10; ++round) {
    RaceOutcome outcome;
    TREX_CHECK_OK(race.Evaluate(clause_, 5, &outcome));
    EXPECT_GT(outcome.ta_seconds, 0.0);
    EXPECT_GT(outcome.merge_seconds, 0.0);
    ASSERT_EQ(outcome.result.elements.size(), 5u);
    if (outcome.loser_aborted) {
      // A cancelled loser must not have been declared the winner.
      EXPECT_TRUE(outcome.winner == RetrievalMethod::kTa ||
                  outcome.winner == RetrievalMethod::kMerge);
    }
    // Same snapshot, same top-5 set regardless of which method won.
    for (const auto& e : outcome.result.elements) {
      bool found = false;
      for (const auto& f : first.result.elements) {
        if (f.element == e.element) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

}  // namespace
}  // namespace trex
