// Concurrent read-path tests (ctest label: concurrency; run under TSan
// by scripts/check.sh).
//
// Four properties:
//  * N reader threads over one shared read-only TReX handle produce
//    byte-identical answers to the single-threaded baseline, for every
//    retrieval method;
//  * the thread-pool QueryExecutor preserves those answers and its
//    bookkeeping metrics balance;
//  * a kReadShared handle rejects every mutation;
//  * readers racing an updater only ever observe committed states — each
//    answer matches exactly one of the index states a serial replay of
//    the same updates produces, and each reader's view is monotone.
//
// Worker threads never call gtest assertions; they count violations
// atomically and the main thread asserts, so failures are reliable and
// survive NDEBUG builds.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "retrieval/materializer.h"
#include "trex/query_executor.h"
#include "trex/trex.h"

#include "testutil.h"

namespace trex {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::UniqueTestDir("trex_conc");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TrexOptions IeeeOptions() {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    return options;
  }

  std::unique_ptr<TReX> BuildIeee(size_t docs) {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = docs;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir_ + "/idx", gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }

  std::string dir_;
};

// Canonical bytes of a ranked answer, scores as raw float bits.
std::string Signature(const QueryAnswer& answer) {
  std::string sig;
  char buf[96];
  for (const ScoredElement& e : answer.result.elements) {
    uint32_t score_bits;
    std::memcpy(&score_bits, &e.score, sizeof(score_bits));
    std::snprintf(buf, sizeof(buf), "%u:%u:%llu:%u;", e.element.sid,
                  e.element.docid,
                  static_cast<unsigned long long>(e.element.endpos),
                  score_bits);
    sig += buf;
  }
  return sig;
}

const char* const kQueries[] = {
    "//article//sec[about(., ontologies case study)]",
    "//article[about(., xml query evaluation)]",
    "//sec[about(., information retrieval)]",
    "//article[about(., parallel algorithm)]",
};

TEST_F(ConcurrencyTest, NReadersByteIdenticalToBaseline) {
  // Build, materialize one clause (so TA/Merge run too), reopen shared.
  {
    auto rw = BuildIeee(50);
    MaterializeStats stats;
    TREX_CHECK_OK(rw->MaterializeFor(kQueries[0], true, true, &stats));
    TREX_CHECK_OK(rw->index()->Flush());
  }
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> trex = std::move(opened).value();

  // Single-threaded baseline, per query x method.
  const std::vector<RetrievalMethod> methods = {
      RetrievalMethod::kEra, RetrievalMethod::kTa, RetrievalMethod::kMerge};
  std::vector<std::string> baseline;
  for (const char* q : kQueries) {
    auto answer = trex->Query(q, 10);
    TREX_CHECK_OK(answer.status());
    baseline.push_back(Signature(answer.value()));
  }
  auto ta = trex->QueryWith(RetrievalMethod::kTa, kQueries[0], 10);
  TREX_CHECK_OK(ta.status());
  auto merge = trex->QueryWith(RetrievalMethod::kMerge, kQueries[0], 10);
  TREX_CHECK_OK(merge.status());
  const std::string ta_baseline = Signature(ta.value());
  const std::string merge_baseline = Signature(merge.value());

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
          auto answer = trex->Query(kQueries[qi], 10);
          if (!answer.ok()) {
            ++errors;
            continue;
          }
          if (Signature(answer.value()) != baseline[qi]) ++mismatches;
        }
        // Concurrently exercise the materialized RPL/ERPL read paths.
        auto a = trex->QueryWith(RetrievalMethod::kTa, kQueries[0], 10);
        auto b = trex->QueryWith(RetrievalMethod::kMerge, kQueries[0], 10);
        if (!a.ok() || !b.ok()) {
          ++errors;
        } else {
          if (Signature(a.value()) != ta_baseline) ++mismatches;
          if (Signature(b.value()) != merge_baseline) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_F(ConcurrencyTest, QueryExecutorMatchesBaselineAndBalancesMetrics) {
  {
    auto rw = BuildIeee(40);
  }
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> trex = std::move(opened).value();

  std::vector<std::string> baseline;
  for (const char* q : kQueries) {
    auto answer = trex->Query(q, 10);
    TREX_CHECK_OK(answer.status());
    baseline.push_back(Signature(answer.value()));
  }

  obs::MetricsRegistry& reg = obs::Default();
  const uint64_t submitted0 = reg.GetCounter("trex.executor.submitted")->value();
  const uint64_t completed0 = reg.GetCounter("trex.executor.completed")->value();
  const uint64_t failed0 = reg.GetCounter("trex.executor.failed")->value();

  constexpr size_t kJobs = 48;
  {
    QueryExecutor executor(trex.get(), 4);
    EXPECT_EQ(executor.num_threads(), 4u);
    std::vector<std::future<Result<QueryAnswer>>> futures;
    for (size_t i = 0; i < kJobs; ++i) {
      futures.push_back(
          executor.Submit(kQueries[i % std::size(kQueries)], 10));
    }
    for (size_t i = 0; i < kJobs; ++i) {
      Result<QueryAnswer> answer = futures[i].get();
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      EXPECT_EQ(Signature(answer.value()),
                baseline[i % std::size(kQueries)]);
      // Every answer carries its own trace with the usual spans.
      ASSERT_NE(answer.value().trace, nullptr);
      EXPECT_NE(answer.value().trace->ToJson().find("translate"),
                std::string::npos);
    }
  }  // Executor destructor drains and joins.

  EXPECT_EQ(reg.GetCounter("trex.executor.submitted")->value() - submitted0,
            kJobs);
  EXPECT_EQ(reg.GetCounter("trex.executor.completed")->value() - completed0,
            kJobs);
  EXPECT_EQ(reg.GetCounter("trex.executor.failed")->value() - failed0, 0u);
  EXPECT_EQ(reg.GetGauge("trex.executor.in_flight")->value(), 0);
}

TEST_F(ConcurrencyTest, DestructorResolvesQueuedFutures) {
  {
    auto rw = BuildIeee(20);
  }
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> trex = std::move(opened).value();

  std::vector<std::future<Result<QueryAnswer>>> futures;
  {
    QueryExecutor executor(trex.get(), 1);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(executor.Submit(kQueries[0], 5));
    }
    // Destroy with most jobs still queued behind the single worker.
  }
  for (auto& f : futures) {
    Result<QueryAnswer> answer = f.get();  // Must not hang or break.
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  }
}

TEST_F(ConcurrencyTest, ShutdownWhileSheddingResolvesEveryFuture) {
  {
    auto rw = BuildIeee(20);
  }
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> trex = std::move(opened).value();

  // A tiny queue behind one worker: a concurrent submit storm mostly
  // sheds, and the executor is destroyed while admitted jobs are still
  // queued. Every future — shed or admitted — must resolve.
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 25;
  std::vector<std::future<Result<QueryAnswer>>> futures;
  std::mutex futures_mu;
  {
    QueryExecutorOptions bounds;
    bounds.max_queue_depth = 2;
    QueryExecutor executor(trex.get(), 1, bounds);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&]() {
        std::vector<std::future<Result<QueryAnswer>>> local;
        local.reserve(kPerThread);
        for (int i = 0; i < kPerThread; ++i) {
          local.push_back(
              executor.Submit(kQueries[i % std::size(kQueries)], 5));
        }
        std::lock_guard<std::mutex> lock(futures_mu);
        for (auto& f : local) futures.push_back(std::move(f));
      });
    }
    for (std::thread& t : submitters) t.join();
    // Destroy with jobs still queued; the drain guarantee resolves them.
  }
  size_t ok = 0, shed = 0, other = 0;
  for (auto& f : futures) {
    Result<QueryAnswer> answer = f.get();  // Must not hang.
    if (answer.ok()) {
      ++ok;
    } else if (answer.status().IsOverloaded()) {
      ++shed;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(futures.size(),
            static_cast<size_t>(kSubmitters) * kPerThread);
  EXPECT_EQ(other, 0u);
  EXPECT_GE(ok, 1u);    // Admitted head of the storm ran to completion.
  EXPECT_GE(shed, 1u);  // The burst overran a depth-2 queue.
  EXPECT_EQ(ok + shed, futures.size());
}

TEST_F(ConcurrencyTest, ReadSharedHandleRejectsMutations) {
  {
    auto rw = BuildIeee(20);
  }
  auto opened =
      TReX::Open(dir_ + "/idx", IeeeOptions(), OpenMode::kReadShared);
  TREX_CHECK_OK(opened.status());
  std::unique_ptr<TReX> trex = std::move(opened).value();
  EXPECT_EQ(trex->mode(), OpenMode::kReadShared);

  EXPECT_TRUE(trex->AddDocument("<doc><p>x</p></doc>").status()
                  .IsNotSupported());
  MaterializeStats stats;
  EXPECT_TRUE(
      trex->MaterializeFor(kQueries[0], true, true, &stats).IsNotSupported());
  Workload workload;
  SelfManagerOptions options;
  SelfManagerReport report;
  EXPECT_TRUE(trex->SelfManage(workload, options, &report).IsNotSupported());
  // Queries still work, and a default Open stays read-write.
  TREX_CHECK_OK(trex->Query(kQueries[0], 5).status());
  auto rw = TReX::Open(dir_ + "/idx", IeeeOptions());
  TREX_CHECK_OK(rw.status());
  EXPECT_EQ(rw.value()->mode(), OpenMode::kReadWrite);
}

TEST_F(ConcurrencyTest, ReadersObserveOnlyCommittedStates) {
  const std::string query = "//doc//sec[about(., alpha)]";
  std::vector<std::string> base_docs = {
      "<doc><sec><p>alpha beta</p></sec></doc>",
      "<doc><sec><p>beta gamma</p></sec></doc>",
  };
  std::vector<std::string> updates;
  for (int i = 0; i < 8; ++i) {
    // Each update adds one more matching element, so every commit moves
    // the answer to a distinct, recognizable state.
    updates.push_back("<doc><sec><p>alpha extra" + std::to_string(i) +
                      "</p></sec></doc>");
  }

  // Serial replay: the exact sequence of committed states.
  std::vector<std::string> committed;
  {
    auto replay =
        TReX::BuildFromDocuments(dir_ + "/replay", base_docs, TrexOptions{});
    TREX_CHECK_OK(replay.status());
    auto state = [&]() {
      auto a = replay.value()->QueryWith(RetrievalMethod::kEra, query, 0);
      TREX_CHECK_OK(a.status());
      return Signature(a.value());
    };
    committed.push_back(state());
    for (const std::string& doc : updates) {
      TREX_CHECK_OK(replay.value()->AddDocument(doc).status());
      committed.push_back(state());
    }
    for (size_t i = 1; i < committed.size(); ++i) {
      ASSERT_NE(committed[i - 1], committed[i]) << "states must be distinct";
    }
  }

  // Live run: readers race the updater on a second identical index.
  auto built =
      TReX::BuildFromDocuments(dir_ + "/live", base_docs, TrexOptions{});
  TREX_CHECK_OK(built.status());
  std::unique_ptr<TReX> trex = std::move(built).value();

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> uncommitted_states{0};
  std::atomic<uint64_t> time_travel{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&]() {
      size_t last_pos = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto answer = trex->QueryWith(RetrievalMethod::kEra, query, 0);
        if (!answer.ok()) {
          ++errors;
          return;
        }
        std::string sig = Signature(answer.value());
        size_t pos = committed.size();
        for (size_t i = 0; i < committed.size(); ++i) {
          if (committed[i] == sig) {
            pos = i;
            break;
          }
        }
        if (pos == committed.size()) {
          // Not any committed state: a torn / mid-update view.
          ++uncommitted_states;
        } else if (pos < last_pos) {
          // Snapshots must advance monotonically for one reader.
          ++time_travel;
        } else {
          last_pos = pos;
        }
      }
    });
  }

  for (const std::string& doc : updates) {
    TREX_CHECK_OK(trex->AddDocument(doc).status());
  }
  // Let the readers observe the final state before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(uncommitted_states.load(), 0u);
  EXPECT_EQ(time_travel.load(), 0u);
  // And the live index ended at exactly the replay's final state.
  auto final_answer = trex->QueryWith(RetrievalMethod::kEra, query, 0);
  TREX_CHECK_OK(final_answer.status());
  EXPECT_EQ(Signature(final_answer.value()), committed.back());
}

TEST_F(ConcurrencyTest, ConcurrentMaterializationIsSingleFlight) {
  auto trex = BuildIeee(40);
  Index* index = trex->index();
  auto translated =
      TranslateNexi(kQueries[1], index->summary(), &index->aliases(),
                    index->tokenizer());
  TREX_CHECK_OK(translated.status());
  const TranslatedClause clause = translated.value().flattened;

  const uint64_t fills0 =
      obs::Default().GetCounter("retrieval.materializer.fills")->value();

  constexpr int kThreads = 4;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> lists_written{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      MaterializeStats stats;
      Status s = MaterializeForClause(index, clause, true, true, &stats);
      if (!s.ok()) ++errors;
      lists_written.fetch_add(stats.lists_written);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(errors.load(), 0u);
  // Exactly one thread performed the fill; the rest saw the registered
  // lists and skipped. The single-flight lease makes the misses collapse
  // instead of racing to write the same (term, sid) lists.
  EXPECT_EQ(
      obs::Default().GetCounter("retrieval.materializer.fills")->value() -
          fills0,
      1u);
  MaterializeStats again;
  TREX_CHECK_OK(MaterializeForClause(index, clause, true, true, &again));
  EXPECT_EQ(again.lists_written, 0u);
  EXPECT_EQ(lists_written.load(), again.lists_skipped);

  // The materialized lists are complete enough to serve TA and Merge.
  TREX_CHECK_OK(
      trex->QueryWith(RetrievalMethod::kTa, kQueries[1], 10).status());
  TREX_CHECK_OK(
      trex->QueryWith(RetrievalMethod::kMerge, kQueries[1], 10).status());
}

}  // namespace
}  // namespace trex
