// Property and fuzz tests for the RPL/ERPL block codec
// (index/block_codec.h): exact roundtrips for both codecs and both
// block orders, header-maxima invariants against a naive scan,
// legacy-format compatibility, and a byte-mutation fuzzer proving the
// decoder only ever answers OK or Corruption — never a crash, hang or
// out-of-bounds read (the codec stage runs this under ASan/UBSan).
//
// Iteration count for the fuzz loops is TREX_CODEC_FUZZ_ITERS (default
// 300 for ctest; scripts/check.sh --codec raises it).
#include "index/block_codec.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/rpl.h"

namespace trex {
namespace {

size_t FuzzIters(size_t dflt) {
  const char* v = std::getenv("TREX_CODEC_FUZZ_ITERS");
  if (v == nullptr) return dflt;
  const long long n = std::atoll(v);
  return n < 1 ? dflt : static_cast<size_t>(n);
}

bool SameEntries(const std::vector<ScoredEntry>& a,
                 const std::vector<ScoredEntry>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].docid != b[i].docid || a[i].endpos != b[i].endpos ||
        a[i].length != b[i].length || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

// Random entries sorted for the given block order. Scores are drawn
// from a small grid so score ties (delta 0) are exercised too.
std::vector<ScoredEntry> RandomEntries(Rng* rng, size_t n, BlockOrder order) {
  std::vector<ScoredEntry> entries(n);
  for (ScoredEntry& e : entries) {
    e.docid = static_cast<DocId>(rng->Uniform(5000));
    e.endpos = rng->Uniform(1u << 20);
    e.length = 1 + rng->Uniform(400);
    e.score = static_cast<float>(rng->Uniform(64)) * 0.125f;
  }
  if (order == BlockOrder::kScore) {
    std::sort(entries.begin(), entries.end(),
              [](const ScoredEntry& a, const ScoredEntry& b) {
                return a.score > b.score;
              });
  } else {
    std::sort(entries.begin(), entries.end(),
              [](const ScoredEntry& a, const ScoredEntry& b) {
                return a.docid != b.docid ? a.docid < b.docid
                                          : a.endpos < b.endpos;
              });
    // Ascending (docid, endpos) must be strict for the delta step.
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const ScoredEntry& a, const ScoredEntry& b) {
                                return a.docid == b.docid &&
                                       a.endpos == b.endpos;
                              }),
                  entries.end());
  }
  return entries;
}

TEST(ListCodecTest, NamesRoundTrip) {
  for (ListCodec codec : {ListCodec::kRaw, ListCodec::kCompressed}) {
    ListCodec parsed;
    ASSERT_TRUE(ParseListCodec(ListCodecName(codec), &parsed));
    EXPECT_EQ(parsed, codec);
  }
  ListCodec parsed;
  EXPECT_FALSE(ParseListCodec("snappy", &parsed));
  EXPECT_FALSE(ParseListCodec("", &parsed));
}

// Exact roundtrip across both codecs, both orders, and sizes straddling
// the block-packing boundary (empty, single, kBlockEntries +- 1).
TEST(BlockCodecTest, RoundTripBoundarySizes) {
  Rng rng(101);
  for (ListCodec codec : {ListCodec::kRaw, ListCodec::kCompressed}) {
    for (BlockOrder order : {BlockOrder::kScore, BlockOrder::kPosition}) {
      for (size_t n : {size_t{0}, size_t{1}, kBlockEntries - 1, kBlockEntries,
                       kBlockEntries + 1, 3 * kBlockEntries}) {
        std::vector<ScoredEntry> entries = RandomEntries(&rng, n, order);
        std::string value;
        EncodeBlock(codec, order, entries, &value);
        std::vector<ScoredEntry> decoded;
        Status s = DecodeBlock(value, &decoded);
        ASSERT_TRUE(s.ok()) << s.ToString() << " n=" << n;
        EXPECT_TRUE(SameEntries(entries, decoded))
            << "codec=" << ListCodecName(codec) << " n=" << n;
      }
    }
  }
}

TEST(BlockCodecTest, RoundTripRandomizedLists) {
  Rng rng(202);
  for (size_t iter = 0; iter < FuzzIters(300); ++iter) {
    ListCodec codec =
        rng.Bernoulli(0.5) ? ListCodec::kRaw : ListCodec::kCompressed;
    BlockOrder order =
        rng.Bernoulli(0.5) ? BlockOrder::kScore : BlockOrder::kPosition;
    std::vector<ScoredEntry> entries =
        RandomEntries(&rng, rng.Uniform(2 * kBlockEntries + 1), order);
    std::string value;
    EncodeBlock(codec, order, entries, &value);
    std::vector<ScoredEntry> decoded;
    Status s = DecodeBlock(value, &decoded);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(SameEntries(entries, decoded));
  }
}

// The header's maxima must agree with a naive scan of the entries — TA
// and the strict path prove skips from them, so an understated maximum
// would silently drop answers.
TEST(BlockCodecTest, HeaderMaximaMatchNaiveScan) {
  Rng rng(303);
  for (size_t iter = 0; iter < FuzzIters(300); ++iter) {
    BlockOrder order =
        rng.Bernoulli(0.5) ? BlockOrder::kScore : BlockOrder::kPosition;
    std::vector<ScoredEntry> entries =
        RandomEntries(&rng, 1 + rng.Uniform(kBlockEntries), order);
    std::string value;
    EncodeBlock(rng.Bernoulli(0.5) ? ListCodec::kRaw : ListCodec::kCompressed,
                order, entries, &value);
    BlockHeader header;
    bool has_header = false;
    ASSERT_TRUE(DecodeBlockHeader(value, &header, &has_header).ok());
    ASSERT_TRUE(has_header);
    float max_score = entries[0].score;
    uint32_t max_docid = 0;
    uint64_t max_endpos = 0;
    for (const ScoredEntry& e : entries) {
      max_score = std::max(max_score, e.score);
      max_docid = std::max(max_docid, e.docid);
      max_endpos = std::max(max_endpos, e.endpos);
    }
    EXPECT_EQ(header.count, entries.size());
    EXPECT_EQ(header.max_score, max_score);
    EXPECT_EQ(header.max_docid, max_docid);
    EXPECT_EQ(header.max_endpos, max_endpos);
  }
}

// Delta coding has to pay off on the lists it was built for: dense
// blocks with clustered docids and a narrow score range.
TEST(BlockCodecTest, CompressedIsSmallerThanRawOnTypicalBlocks) {
  Rng rng(404);
  std::vector<ScoredEntry> entries = RandomEntries(&rng, kBlockEntries,
                                                   BlockOrder::kScore);
  std::string raw, compressed;
  EncodeBlock(ListCodec::kRaw, BlockOrder::kScore, entries, &raw);
  EncodeBlock(ListCodec::kCompressed, BlockOrder::kScore, entries,
              &compressed);
  EXPECT_LT(compressed.size(), raw.size());
}

// Legacy (pre-header) blocks written by EncodeScoredBlock must keep
// decoding: old indexes are opened by the new code without a rewrite.
TEST(BlockCodecTest, LegacyBlocksStillDecode) {
  Rng rng(505);
  std::vector<ScoredEntry> entries =
      RandomEntries(&rng, kBlockEntries, BlockOrder::kScore);
  std::string value;
  EncodeScoredBlock(entries, &value);
  BlockHeader header;
  bool has_header = true;
  ASSERT_TRUE(DecodeBlockHeader(value, &header, &has_header).ok());
  EXPECT_FALSE(has_header);
  std::vector<ScoredEntry> decoded;
  Status s = DecodeBlock(value, &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(SameEntries(entries, decoded));
}

// Every strict prefix of a valid block must decode to Corruption (the
// full block to OK): truncation anywhere in header or payload is caught.
TEST(BlockCodecTest, EveryTruncationIsCorruption) {
  Rng rng(606);
  for (ListCodec codec : {ListCodec::kRaw, ListCodec::kCompressed}) {
    for (BlockOrder order : {BlockOrder::kScore, BlockOrder::kPosition}) {
      std::vector<ScoredEntry> entries =
          RandomEntries(&rng, kBlockEntries, order);
      std::string value;
      EncodeBlock(codec, order, entries, &value);
      std::vector<ScoredEntry> decoded;
      for (size_t cut = 0; cut < value.size(); ++cut) {
        Status s = DecodeBlock(Slice(value.data(), cut), &decoded);
        EXPECT_TRUE(s.IsCorruption())
            << "cut=" << cut << " -> " << s.ToString();
      }
      ASSERT_TRUE(DecodeBlock(value, &decoded).ok());
    }
  }
}

TEST(BlockCodecTest, TrailingBytesAreCorruption) {
  Rng rng(707);
  for (ListCodec codec : {ListCodec::kRaw, ListCodec::kCompressed}) {
    std::vector<ScoredEntry> entries =
        RandomEntries(&rng, kBlockEntries, BlockOrder::kScore);
    std::string value;
    EncodeBlock(codec, BlockOrder::kScore, entries, &value);
    value.push_back('\0');
    std::vector<ScoredEntry> decoded;
    EXPECT_TRUE(DecodeBlock(value, &decoded).IsCorruption());
  }
}

TEST(BlockCodecTest, UnknownTagAndOversizedCountAreCorruption) {
  std::vector<ScoredEntry> decoded;
  // 0xF0 and 0xFF are in the tagged range but name no format.
  for (uint8_t tag : {uint8_t{0xF0}, uint8_t{0xFF}}) {
    std::string value(1, static_cast<char>(tag));
    value.append(8, '\0');
    EXPECT_TRUE(DecodeBlock(value, &decoded).IsCorruption());
  }
  // A count far past the payload must be rejected before any reserve.
  std::string value(1, static_cast<char>(kBlockTagCompressedScore));
  PutVarint32(&value, 0x0FFFFFFF);
  value.append(4, '\0');  // max_score
  PutVarint32(&value, 1);
  PutVarint64(&value, 1);
  EXPECT_TRUE(DecodeBlock(value, &decoded).IsCorruption());
}

// The fuzzer: valid blocks put through byte flips, truncations, splices
// and random garbage. The only acceptable outcomes are OK or
// Corruption; under ASan/UBSan any overread or UB aborts the test.
TEST(BlockCodecFuzz, MutatedBlocksNeverCrashTheDecoder) {
  Rng rng(808);
  size_t corrupt = 0, survived = 0;
  const size_t iters = FuzzIters(300);
  for (size_t iter = 0; iter < iters; ++iter) {
    ListCodec codec =
        rng.Bernoulli(0.5) ? ListCodec::kRaw : ListCodec::kCompressed;
    BlockOrder order =
        rng.Bernoulli(0.5) ? BlockOrder::kScore : BlockOrder::kPosition;
    std::string value;
    if (rng.Bernoulli(0.1)) {
      EncodeScoredBlock(RandomEntries(&rng, kBlockEntries, order), &value);
    } else {
      EncodeBlock(codec, order,
                  RandomEntries(&rng, rng.Uniform(kBlockEntries + 1), order),
                  &value);
    }
    // 1-8 mutations per round.
    const size_t mutations = 1 + rng.Uniform(8);
    for (size_t m = 0; m < mutations && !value.empty(); ++m) {
      switch (rng.Uniform(4)) {
        case 0:  // Bit flip.
          value[rng.Uniform(value.size())] ^=
              static_cast<char>(1u << rng.Uniform(8));
          break;
        case 1:  // Truncate.
          value.resize(rng.Uniform(value.size() + 1));
          break;
        case 2:  // Overwrite a byte with garbage.
          value[rng.Uniform(value.size())] =
              static_cast<char>(rng.Uniform(256));
          break;
        case 3:  // Append garbage.
          value.push_back(static_cast<char>(rng.Uniform(256)));
          break;
      }
    }
    std::vector<ScoredEntry> decoded;
    Status s = DecodeBlock(value, &decoded);
    ASSERT_TRUE(s.ok() || s.IsCorruption()) << s.ToString();
    BlockHeader header;
    bool has_header = false;
    Status hs = DecodeBlockHeader(value, &header, &has_header);
    ASSERT_TRUE(hs.ok() || hs.IsCorruption()) << hs.ToString();
    if (s.ok()) {
      ++survived;
    } else {
      ++corrupt;
    }
  }
  // The mutator must actually be producing corrupt inputs, not no-ops.
  EXPECT_GT(corrupt, iters / 4);
}

TEST(BlockCodecFuzz, PureGarbageNeverCrashesTheDecoder) {
  Rng rng(909);
  for (size_t iter = 0; iter < FuzzIters(300); ++iter) {
    std::string value;
    const size_t len = rng.Uniform(200);
    value.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      value.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::vector<ScoredEntry> decoded;
    Status s = DecodeBlock(value, &decoded);
    ASSERT_TRUE(s.ok() || s.IsCorruption()) << s.ToString();
  }
}

}  // namespace
}  // namespace trex
