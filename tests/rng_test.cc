#include "common/rng.h"

#include <map>

#include "gtest/gtest.h"

namespace trex {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal = all_equal && (va == vb);
    any_diff_c = any_diff_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, RankZeroIsMostFrequent) {
  Rng rng(7);
  ZipfSampler zipf(100, 1.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  // Head rank should dominate rank 50 by roughly 50x under theta=1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // All samples in range.
  for (const auto& [rank, n] : counts) {
    EXPECT_LT(rank, 100u);
    EXPECT_GT(n, 0);
  }
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  Rng rng(8);
  ZipfSampler zipf(10, 0.0);
  std::map<size_t, int> counts;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Sample(&rng)]++;
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(counts[r], kDraws / 10, kDraws / 50) << "rank " << r;
  }
}

}  // namespace
}  // namespace trex
