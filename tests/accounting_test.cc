// Per-query resource accounting: the thread-local scope spine, budget
// enforcement through the storage layer, and the facade surfacing the
// vector in QueryAnswer / trace root attrs — end to end on a real
// index, plus through the QueryExecutor pool.
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "testjson.h"
#include "trex/query_executor.h"
#include "trex/trex.h"

namespace trex {
namespace {

constexpr char kQuery[] =
    "//article//sec[about(., ontologies case study)]";

// ---------------------------------------------------------------------
// ResourceAccounting / ResourceScope unit semantics.

TEST(ResourceScopeTest, NoCurrentOutsideAnyScope) {
  EXPECT_EQ(obs::ResourceAccounting::Current(), nullptr);
}

TEST(ResourceScopeTest, InstallsAndRestores) {
  obs::ResourceAccounting acct;
  {
    obs::ResourceScope scope(&acct);
    EXPECT_EQ(obs::ResourceAccounting::Current(), &acct);
  }
  EXPECT_EQ(obs::ResourceAccounting::Current(), nullptr);
}

TEST(ResourceScopeTest, InnerScopeShadowsOuterAndDoesNotMerge) {
  obs::ResourceAccounting outer;
  obs::ResourceAccounting inner;
  obs::ResourceScope outer_scope(&outer);
  obs::ResourceAccounting::Current()->ChargePostings(3);
  {
    obs::ResourceScope inner_scope(&inner);
    EXPECT_EQ(obs::ResourceAccounting::Current(), &inner);
    obs::ResourceAccounting::Current()->ChargePostings(5);
  }
  EXPECT_EQ(obs::ResourceAccounting::Current(), &outer);
  EXPECT_EQ(outer.Usage().postings_scanned, 3u);
  EXPECT_EQ(inner.Usage().postings_scanned, 5u);
}

TEST(ResourceScopeTest, NullScopeIsTolerated) {
  obs::ResourceAccounting acct;
  obs::ResourceScope outer(&acct);
  {
    // Installing nullptr means "no accounting here" — charge sites all
    // guard on Current() != nullptr.
    obs::ResourceScope inner(nullptr);
    EXPECT_EQ(obs::ResourceAccounting::Current(), nullptr);
  }
  EXPECT_EQ(obs::ResourceAccounting::Current(), &acct);
}

TEST(ResourceAccountingTest, ChargesAccumulateIntoUsage) {
  obs::ResourceAccounting acct;
  EXPECT_TRUE(acct.ChargePageAccess().ok());
  EXPECT_TRUE(acct.ChargePageFault(4096).ok());
  acct.ChargeDecodedBlock(128);
  acct.ChargeBlockDecoded(64);
  acct.ChargeBlockSkipped();
  acct.ChargePostings(7);
  acct.ChargeSortedAccesses(11);
  acct.ChargeRandomAccess();
  acct.ChargeElementsScanned(13);
  acct.ChargeHeapOperations(17);
  acct.ChargeCpuNanos(19);
  obs::ResourceUsage u = acct.Usage();
  EXPECT_EQ(u.pages_fetched, 1u);
  EXPECT_EQ(u.pages_faulted, 1u);
  EXPECT_EQ(u.bytes_read, 4096u);
  EXPECT_EQ(u.bytes_decoded, 192u);
  EXPECT_EQ(u.list_fragments, 2u);
  EXPECT_EQ(u.blocks_decoded, 1u);
  EXPECT_EQ(u.blocks_skipped, 1u);
  EXPECT_EQ(u.postings_scanned, 7u);
  EXPECT_EQ(u.sorted_accesses, 11u);
  EXPECT_EQ(u.random_accesses, 1u);
  EXPECT_EQ(u.elements_scanned, 13u);
  EXPECT_EQ(u.heap_operations, 17u);
  EXPECT_EQ(u.cpu_nanos, 19u);
}

namespace {
// Burns at least `nanos` of this thread's CPU time.
void BurnThreadCpu(int64_t nanos) {
  const int64_t start = ThreadCpuNanos();
  volatile uint64_t sink = 0;
  while (ThreadCpuNanos() - start < nanos) {
    for (uint64_t i = 0; i < 4096; ++i) sink = sink + i;
  }
}
}  // namespace

TEST(ResourceScopeTest, ChargesThreadCpuOnExit) {
  obs::ResourceAccounting acct;
  {
    obs::ResourceScope scope(&acct);
    BurnThreadCpu(2'000'000);
    // The delta is charged at scope exit, not continuously.
    EXPECT_EQ(acct.Usage().cpu_nanos, 0u);
  }
  EXPECT_GE(acct.Usage().cpu_nanos, 2'000'000u);
}

TEST(ResourceScopeTest, AdoptingScopeDoesNotDoubleChargeCpu) {
  // The race evaluator installs the same accounting on its contestant
  // threads via a nested scope; re-installing what is already current
  // must not charge the same CPU twice.
  obs::ResourceAccounting acct;
  {
    obs::ResourceScope outer(&acct);
    {
      obs::ResourceScope adopting(&acct);
      BurnThreadCpu(4'000'000);
    }
  }
  // Double-charging would report >= 8ms here.
  EXPECT_GE(acct.Usage().cpu_nanos, 4'000'000u);
  EXPECT_LT(acct.Usage().cpu_nanos, 7'000'000u);
}

TEST(ResourceAccountingTest, PageBudgetTripsOnTheFirstAccessPast) {
  obs::ResourceBudget budget;
  budget.max_pages = 3;
  obs::ResourceAccounting acct(budget);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(acct.ChargePageAccess().ok());
  }
  Status s = acct.ChargePageAccess();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // The over-budget access is still counted — the vector reports what
  // actually happened, not what was allowed.
  EXPECT_EQ(acct.Usage().pages_fetched, 4u);
}

TEST(ResourceAccountingTest, ByteBudgetTripsOnFaultBytes) {
  obs::ResourceBudget budget;
  budget.max_bytes = 100;
  obs::ResourceAccounting acct(budget);
  EXPECT_TRUE(acct.ChargePageFault(60).ok());
  Status s = acct.ChargePageFault(60);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

TEST(ResourceAccountingTest, ConcurrentChargesStayExact) {
  // The race evaluator installs one accounting on both contestant
  // threads; totals must not lose increments.
  obs::ResourceAccounting acct;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&acct] {
      obs::ResourceScope scope(&acct);
      for (int i = 0; i < kPerThread; ++i) {
        obs::ResourceAccounting::Current()->ChargeSortedAccesses(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(acct.Usage().sorted_accesses,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ResourceUsageTest, JsonHasCanonicalFieldOrder) {
  obs::ResourceUsage u;
  u.pages_fetched = 1;
  u.heap_operations = 2;
  std::string json = u.ToJson();
  test::JsonParser parser(json);
  test::JsonValue v = parser.Parse();
  ASSERT_TRUE(parser.ok()) << parser.error() << " in " << json;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("pages_fetched").number, 1.0);
  EXPECT_EQ(v.at("heap_operations").number, 2.0);
  // All thirteen canonical fields present.
  for (const char* key :
       {"pages_fetched", "pages_faulted", "bytes_read", "bytes_decoded",
        "list_fragments", "blocks_decoded", "blocks_skipped",
        "postings_scanned", "sorted_accesses", "random_accesses",
        "elements_scanned", "heap_operations", "cpu_nanos"}) {
    EXPECT_TRUE(v.has(key)) << "missing " << key << " in " << json;
  }
  // pages_fetched serializes before heap_operations, cpu_nanos last
  // (canonical order).
  EXPECT_LT(json.find("pages_fetched"), json.find("heap_operations"));
  EXPECT_LT(json.find("heap_operations"), json.find("cpu_nanos"));
}

// ---------------------------------------------------------------------
// End to end through the TReX facade.

class AccountingE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_acct_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<TReX> BuildIeee(size_t docs) {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = docs;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    auto trex = TReX::Build(dir_ + "/idx", gen, options);
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }

  std::string dir_;
};

TEST_F(AccountingE2eTest, QueryAnswerCarriesNonZeroResourceVector) {
  auto trex = BuildIeee(40);
  auto answer = trex->Query(kQuery, 10);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const obs::ResourceUsage& r = answer.value().resources;
  EXPECT_GT(r.pages_fetched, 0u);
  EXPECT_GT(r.postings_scanned, 0u);
  EXPECT_GT(r.list_fragments, 0u);
  // ERA walks extents.
  EXPECT_GT(r.elements_scanned, 0u);
  // The query-wide ResourceScope charges thread CPU at exit; any real
  // query burns a measurable amount.
  EXPECT_GT(r.cpu_nanos, 0u);
}

TEST_F(AccountingE2eTest, ResourceVectorLandsInTraceRootAttrs) {
  auto trex = BuildIeee(40);
  auto answer = trex->Query(kQuery, 10);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_NE(answer.value().trace, nullptr);
  std::string json = answer.value().trace->ToJson();
  test::JsonParser parser(json);
  test::JsonValue v = parser.Parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const test::JsonValue& attrs = v.at("attrs");
  ASSERT_TRUE(attrs.is_object()) << json;
  EXPECT_TRUE(attrs.has("pages_fetched"));
  EXPECT_TRUE(attrs.has("postings_scanned"));
  EXPECT_TRUE(attrs.has("cpu_nanos"));
  EXPECT_EQ(attrs.at("pages_fetched").number,
            static_cast<double>(answer.value().resources.pages_fetched));
}

TEST_F(AccountingE2eTest, PageBudgetAbortsQueryWithResourceExhausted) {
  auto trex = BuildIeee(40);
  obs::MetricsRegistry& reg = obs::Default();
  const uint64_t exceeded_before =
      reg.Snapshot().counter("retrieval.budget.exceeded");

  QueryOptions query_options;
  query_options.budget.max_pages = 2;  // Far below any real query.
  auto answer = trex->Query(kQuery, 10, query_options);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsResourceExhausted())
      << answer.status().ToString();
  EXPECT_EQ(reg.Snapshot().counter("retrieval.budget.exceeded"),
            exceeded_before + 1);

  // The handle survives the abort: the same query without a budget
  // succeeds afterwards.
  auto retry = trex->Query(kQuery, 10);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(retry.value().result.elements.size(), 0u);
}

TEST_F(AccountingE2eTest, GenerousBudgetDoesNotTrip) {
  auto trex = BuildIeee(30);
  QueryOptions query_options;
  query_options.budget.max_pages = 10'000'000;
  query_options.budget.max_bytes = 1ull << 40;
  auto answer = trex->Query(kQuery, 10, query_options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GT(answer.value().resources.pages_fetched, 0u);
}

TEST_F(AccountingE2eTest, StrictQueryAccountsAndEnforcesBudget) {
  auto trex = BuildIeee(40);
  auto ok_answer = trex->QueryStrict(kQuery, 10);
  ASSERT_TRUE(ok_answer.ok()) << ok_answer.status().ToString();
  EXPECT_GT(ok_answer.value().resources.pages_fetched, 0u);

  QueryOptions query_options;
  query_options.budget.max_pages = 2;
  auto answer = trex->QueryStrict(kQuery, 10, query_options);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsResourceExhausted())
      << answer.status().ToString();
}

TEST_F(AccountingE2eTest, BudgetRidesThroughTheExecutor) {
  auto trex = BuildIeee(40);
  QueryExecutor executor(trex.get(), 2);

  QueryOptions tiny;
  tiny.budget.max_pages = 2;
  std::future<Result<QueryAnswer>> capped =
      executor.Submit(kQuery, 10, tiny);
  std::future<Result<QueryAnswer>> free = executor.Submit(kQuery, 10);

  Result<QueryAnswer> capped_answer = capped.get();
  ASSERT_FALSE(capped_answer.ok());
  EXPECT_TRUE(capped_answer.status().IsResourceExhausted())
      << capped_answer.status().ToString();

  Result<QueryAnswer> free_answer = free.get();
  ASSERT_TRUE(free_answer.ok()) << free_answer.status().ToString();
  EXPECT_GT(free_answer.value().resources.pages_fetched, 0u);
}

TEST_F(AccountingE2eTest, EachQueryGetsItsOwnVector) {
  // Accounting must reset per query — a second query's vector reflects
  // only its own work (warm caches make it cheaper, not cumulative).
  auto trex = BuildIeee(40);
  auto first = trex->Query(kQuery, 10);
  ASSERT_TRUE(first.ok());
  auto second = trex->Query(kQuery, 10);
  ASSERT_TRUE(second.ok());
  // Cumulative accounting would make the second vector strictly larger;
  // per-query accounting makes it at most the first (warm cache).
  EXPECT_LE(second.value().resources.pages_faulted,
            first.value().resources.pages_fetched);
  EXPECT_GT(second.value().resources.pages_fetched, 0u);
  EXPECT_LE(second.value().resources.pages_fetched,
            2 * first.value().resources.pages_fetched);
}

}  // namespace
}  // namespace trex
