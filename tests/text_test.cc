// Tests for the tokenizer, stopwords, Porter stemmer, and BM25 scorer.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "text/porter_stemmer.h"
#include "text/scorer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace trex {
namespace {

TEST(Stopwords, KnownWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("ourselves"));
  EXPECT_FALSE(IsStopword("xml"));
  EXPECT_FALSE(IsStopword("retrieval"));
  EXPECT_FALSE(IsStopword(""));
}

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, MatchesPublishedVector) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

// Vectors from Porter's paper and the reference implementation's
// voc.txt/output.txt sample.
INSTANTIATE_TEST_SUITE_P(
    Vectors, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"}, StemCase{"triplicate", "triplic"},
        StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
        StemCase{"electriciti", "electr"}, StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"homologou", "homolog"}, StemCase{"communism", "commun"},
        StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
        StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
        StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
        StemCase{"controll", "control"}, StemCase{"roll", "roll"},
        // Retrieval-domain words used by the queries.
        StemCase{"ontologies", "ontolog"}, StemCase{"ontology", "ontolog"},
        StemCase{"evaluation", "evalu"}, StemCase{"evaluating", "evalu"},
        StemCase{"retrieval", "retriev"}, StemCase{"queries", "queri"}));

TEST(PorterStem, ShortAndNonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("ab"), "ab");
  EXPECT_EQ(PorterStem("x86"), "x86");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(Tokenizer, SplitsLowercasesAndStems) {
  Tokenizer tok;
  std::vector<std::string> terms;
  tok.Tokenize("The Ontologies, of XML-retrieval!", &terms);
  // "The" and "of" are stopwords.
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "ontolog");
  EXPECT_EQ(terms[1], "xml");
  EXPECT_EQ(terms[2], "retriev");
}

TEST(Tokenizer, OffsetsAreBytePositions) {
  Tokenizer tok;
  std::vector<TokenOccurrence> occ;
  tok.Tokenize("  xml  query ", 100, &occ);
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_EQ(occ[0].term, "xml");
  EXPECT_EQ(occ[0].offset, 102u);
  EXPECT_EQ(occ[1].term, "queri");
  EXPECT_EQ(occ[1].offset, 107u);
}

TEST(Tokenizer, OptionsControlPipeline) {
  Tokenizer raw{TokenizerOptions{.remove_stopwords = false, .stem = false}};
  std::vector<std::string> terms;
  raw.Tokenize("The evaluation", &terms);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "the");
  EXPECT_EQ(terms[1], "evaluation");

  Tokenizer limited{TokenizerOptions{.min_token_length = 3,
                                     .max_token_length = 5}};
  terms.clear();
  limited.Tokenize("ab abc abcdef", &terms);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], "abc");
}

TEST(Tokenizer, NormalizeTermMatchesTokenize) {
  Tokenizer tok;
  auto norm = tok.NormalizeTerm("Ontologies");
  ASSERT_TRUE(norm.has_value());
  EXPECT_EQ(*norm, "ontolog");
  EXPECT_FALSE(tok.NormalizeTerm("the").has_value());
  // Every document token must normalize to itself under NormalizeTerm.
  std::vector<std::string> terms;
  tok.Tokenize("ontologies evaluation retrieval", &terms);
  for (const auto& t : terms) {
    auto again = tok.NormalizeTerm(t);
    ASSERT_TRUE(again.has_value());
    // Stemming is idempotent on these stems.
    EXPECT_EQ(*again, t);
  }
}

TEST(Scorer, MonotoneInTf) {
  CorpusStats stats{100, 1000, 50.0};
  Bm25Scorer scorer(Bm25Params{}, stats);
  float prev = 0;
  for (uint32_t tf = 1; tf <= 10; ++tf) {
    float s = scorer.Score(tf, 50, 10);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_EQ(scorer.Score(0, 50, 10), 0.0f);
}

TEST(Scorer, RareTermsScoreHigher) {
  CorpusStats stats{1000, 10000, 50.0};
  Bm25Scorer scorer(Bm25Params{}, stats);
  EXPECT_GT(scorer.Score(3, 50, 2), scorer.Score(3, 50, 500));
}

TEST(Scorer, LongerElementsScoreLower) {
  CorpusStats stats{1000, 10000, 50.0};
  Bm25Scorer scorer(Bm25Params{}, stats);
  EXPECT_GT(scorer.Score(3, 20, 10), scorer.Score(3, 2000, 10));
}

TEST(Scorer, NonNegative) {
  CorpusStats stats{10, 100, 5.0};
  Bm25Scorer scorer(Bm25Params{}, stats);
  // Even when df is close to N the score must not go negative.
  EXPECT_GE(scorer.Score(1, 5, 10), 0.0f);
  EXPECT_GE(scorer.Score(100, 100000, 9), 0.0f);
}

}  // namespace
}  // namespace trex
