// NEXI fuzzing (modeled on xml_fuzz_test): every byte sequence thrown
// at the query pipeline must come back as a clean status, never a
// crash, hang, or sanitizer report.
//
//  * grammar-valid queries (drawn from a generator that walks the CO+S
//    grammar) always parse, and printing the AST is a fixpoint:
//    print(parse(print(parse(q)))) == print(parse(q));
//  * byte-level mutations of valid queries and fully random byte
//    strings parse or fail with InvalidArgument — including hostile
//    "((((..." nesting, which the parser's depth guard must reject
//    rather than overflow the stack on;
//  * whatever parses is pushed on through translate -> evaluate against
//    a small adversarial index under a per-query deadline and budget;
//    the only acceptable outcomes are OK, InvalidArgument,
//    ResourceExhausted and DeadlineExceeded.
//
// Iteration count is TREX_NEXI_FUZZ_ITERS (default 300 for ctest;
// scripts/check.sh --zoo raises it to 10000 under ASan/UBSan).
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/adversarial.h"
#include "gtest/gtest.h"
#include "nexi/parser.h"
#include "testutil.h"
#include "trex/trex.h"

namespace trex {
namespace {

size_t FuzzIters(size_t dflt) {
  const char* v = std::getenv("TREX_NEXI_FUZZ_ITERS");
  if (v == nullptr) return dflt;
  const long long n = std::atoll(v);
  return n < 1 ? dflt : static_cast<size_t>(n);
}

// ---------------------------------------------------------------------
// Grammar-valid query generation.

std::string RandomWord(Rng* rng) {
  // Tags and terms that exist in the fuzz index, words that stem or
  // stop away, and arbitrary identifiers.
  static const char* kWords[] = {
      "magma", "basalt",  "geyser", "fumarole", "head", "t0",
      "t1",    "doc",     "the",    "of",       "and",  "or",
      "about", "running", "xyzzy",  "q",        "a1_b",
  };
  if (rng->Bernoulli(0.8)) {
    return kWords[rng->Uniform(sizeof(kWords) / sizeof(kWords[0]))];
  }
  std::string w;
  const size_t len = 1 + rng->Uniform(6);
  for (size_t i = 0; i < len; ++i) {
    w.push_back(static_cast<char>('a' + rng->Uniform(26)));
  }
  return w;
}

std::string RandomTest(Rng* rng) {
  const uint64_t pick = rng->Uniform(10);
  if (pick == 0) return "*";
  if (pick == 1) {
    std::string alt = "(" + RandomWord(rng);
    const size_t extra = 1 + rng->Uniform(2);
    for (size_t i = 0; i < extra; ++i) alt += "|" + RandomWord(rng);
    return alt + ")";
  }
  return RandomWord(rng);
}

std::string RandomAxis(Rng* rng) {
  return rng->Bernoulli(0.7) ? "//" : "/";
}

std::string RandomAbout(Rng* rng) {
  std::string s = "about(.";
  const size_t rel_steps = rng->Uniform(3);
  for (size_t i = 0; i < rel_steps; ++i) {
    s += RandomAxis(rng) + RandomTest(rng);
  }
  s += ", ";
  const size_t terms = 1 + rng->Uniform(4);
  for (size_t i = 0; i < terms; ++i) {
    if (i > 0) s.push_back(' ');
    const uint64_t mod = rng->Uniform(5);
    if (mod == 0) s.push_back('+');
    if (mod == 1) s.push_back('-');
    if (rng->Bernoulli(0.3)) {
      s += "\"" + RandomWord(rng) + " " + RandomWord(rng) + "\"";
    } else {
      s += RandomWord(rng);
    }
  }
  return s + ")";
}

std::string RandomPredicate(Rng* rng, int depth) {
  if (depth > 3 || rng->Bernoulli(0.5)) return RandomAbout(rng);
  const std::string lhs = RandomPredicate(rng, depth + 1);
  const std::string rhs = RandomPredicate(rng, depth + 1);
  const char* op = rng->Bernoulli(0.5) ? " and " : " or ";
  std::string expr = lhs + op + rhs;
  if (rng->Bernoulli(0.4)) return "(" + expr + ")";
  return expr;
}

std::string RandomGrammarQuery(Rng* rng) {
  std::string q;
  const size_t steps = 1 + rng->Uniform(3);
  for (size_t i = 0; i < steps; ++i) {
    q += RandomAxis(rng) + RandomTest(rng);
    if (rng->Bernoulli(0.7)) {
      q += "[" + RandomPredicate(rng, 0) + "]";
    }
  }
  return q;
}

// ---------------------------------------------------------------------
// AST printer (the fixpoint side of parse-print-reparse).

std::string PrintTest(const std::string& label) {
  if (label.find('|') != std::string::npos) return "(" + label + ")";
  return label;
}

std::string PrintPathStep(const PathStep& step) {
  return (step.axis == Axis::kDescendant ? "//" : "/") +
         PrintTest(step.label);
}

std::string PrintAbout(const AboutClause& about) {
  std::string s = "about(.";
  for (const PathStep& step : about.relative_path) {
    s += PrintPathStep(step);
  }
  s += ", ";
  for (size_t i = 0; i < about.terms.size(); ++i) {
    if (i > 0) s.push_back(' ');
    const QueryTerm& t = about.terms[i];
    if (t.modifier == QueryTerm::Modifier::kRequired) s.push_back('+');
    if (t.modifier == QueryTerm::Modifier::kExcluded) s.push_back('-');
    if (t.is_phrase) {
      s += "\"" + t.text + "\"";
    } else {
      s += t.text;
    }
  }
  return s + ")";
}

// Parenthesization rule: a left operand needs parens only when its
// precedence is lower than the parent's (an `or` under an `and`); a
// right operand needs them whenever it is compound (the parser builds
// left-deep trees, so a bare right-hand "b and c" would re-associate).
// Under this rule parse(print(t)) == t, which makes print a fixpoint.
std::string PrintExpr(const PredicateExpr& e) {
  if (e.kind == PredicateExpr::Kind::kAbout) return PrintAbout(e.about);
  const char* op = e.kind == PredicateExpr::Kind::kAnd ? " and " : " or ";
  std::string lhs = PrintExpr(*e.lhs);
  if (e.kind == PredicateExpr::Kind::kAnd &&
      e.lhs->kind == PredicateExpr::Kind::kOr) {
    lhs = "(" + lhs + ")";
  }
  std::string rhs = PrintExpr(*e.rhs);
  if (e.rhs->kind != PredicateExpr::Kind::kAbout) {
    rhs = "(" + rhs + ")";
  }
  return lhs + op + rhs;
}

std::string PrintQuery(const NexiQuery& q) {
  std::string s;
  for (const NexiStep& step : q.steps) {
    s += PrintPathStep(step.path_step);
    if (step.predicate != nullptr) {
      s += "[" + PrintExpr(*step.predicate) + "]";
    }
  }
  return s;
}

// ---------------------------------------------------------------------
// Tests.

TEST(NexiFuzz, GrammarValidQueriesParseAndPrintIsFixpoint) {
  Rng rng(90125);
  const size_t iters = FuzzIters(300);
  for (size_t i = 0; i < iters; ++i) {
    const std::string q = RandomGrammarQuery(&rng);
    auto parsed = ParseNexi(q);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << q;
    const std::string printed = PrintQuery(parsed.value());
    auto reparsed = ParseNexi(printed);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\noriginal: " << q
        << "\nprinted:  " << printed;
    EXPECT_EQ(printed, PrintQuery(reparsed.value())) << "original: " << q;
  }
}

TEST(NexiFuzz, DepthGuardRejectsHostileNesting) {
  // Past the guard: a clean InvalidArgument, not a stack overflow.
  std::string deep = "//a[";
  for (int i = 0; i < 4000; ++i) deep.push_back('(');
  deep += "about(., x)";
  for (int i = 0; i < 4000; ++i) deep.push_back(')');
  deep += "]";
  auto status = ParseNexi(deep);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.status().IsInvalidArgument())
      << status.status().ToString();

  // Well under the guard still parses.
  std::string shallow = "//a[";
  for (int i = 0; i < 16; ++i) shallow.push_back('(');
  shallow += "about(., x)";
  for (int i = 0; i < 16; ++i) shallow.push_back(')');
  shallow += "]";
  EXPECT_TRUE(ParseNexi(shallow).ok());
}

TEST(NexiFuzz, MutatedAndRandomInputNeverCrashesParser) {
  Rng rng(31337);
  const size_t iters = FuzzIters(300);
  for (size_t i = 0; i < iters; ++i) {
    std::string q;
    if (rng.Bernoulli(0.7)) {
      // Byte-mutate a grammar-valid query.
      q = RandomGrammarQuery(&rng);
      const size_t mutations = 1 + rng.Uniform(5);
      for (size_t m = 0; m < mutations && !q.empty(); ++m) {
        const size_t pos = rng.Uniform(q.size());
        switch (rng.Uniform(3)) {
          case 0:
            q[pos] = static_cast<char>(rng.Uniform(256));
            break;
          case 1:
            q.erase(pos, 1);
            break;
          case 2:
            q.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
            break;
        }
      }
    } else {
      // Fully random bytes.
      const size_t len = rng.Uniform(80);
      for (size_t b = 0; b < len; ++b) {
        q.push_back(static_cast<char>(rng.Uniform(256)));
      }
    }
    auto parsed = ParseNexi(q);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument())
          << parsed.status().ToString();
    } else {
      // Whatever parses must survive printing and re-parsing too.
      auto reparsed = ParseNexi(PrintQuery(parsed.value()));
      EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    }
  }
}

// Full pipeline: parse -> translate -> evaluate against a live (small,
// adversarial) index, under a deadline and a page budget.
class NexiPipelineFuzz : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(test::UniqueTestDir("nexi_fuzz"));
    ZipfSkewOptions options;
    options.num_documents = 15;
    ZipfSkewGenerator gen(options);
    auto built = TReX::Build(*dir_, gen, TrexOptions());
    TREX_CHECK_OK(built.status());
    trex_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete trex_;
    trex_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static std::string* dir_;
  static TReX* trex_;
};

std::string* NexiPipelineFuzz::dir_ = nullptr;
TReX* NexiPipelineFuzz::trex_ = nullptr;

TEST_F(NexiPipelineFuzz, EveryInputYieldsACleanStatus) {
  Rng rng(4096);
  const size_t iters = FuzzIters(300);
  for (size_t i = 0; i < iters; ++i) {
    std::string q;
    const uint64_t mode = rng.Uniform(10);
    if (mode < 6) {
      q = RandomGrammarQuery(&rng);
    } else if (mode < 9) {
      q = RandomGrammarQuery(&rng);
      const size_t mutations = 1 + rng.Uniform(4);
      for (size_t m = 0; m < mutations && !q.empty(); ++m) {
        const size_t pos = rng.Uniform(q.size());
        q[pos] = static_cast<char>(rng.Uniform(256));
      }
    } else {
      const size_t len = rng.Uniform(60);
      for (size_t b = 0; b < len; ++b) {
        q.push_back(static_cast<char>(rng.Uniform(256)));
      }
    }
    QueryOptions options;
    options.deadline = Deadline::After(2000);
    options.budget.max_pages = 100000;
    const size_t k = 1 + rng.Uniform(20);
    auto answer = trex_->Query(q, k, options);
    const Status& s = answer.status();
    EXPECT_TRUE(s.ok() || s.IsInvalidArgument() ||
                s.IsResourceExhausted() || s.IsDeadlineExceeded())
        << s.ToString() << "\nquery: " << q;
  }
}

}  // namespace
}  // namespace trex
