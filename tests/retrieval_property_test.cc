// Cross-method property tests: on randomly generated corpora and random
// (sids, terms) tasks, ERA, Merge, and exhaustive TA must return
// identical ranked lists, and top-k TA must return a correct top-k set.
#include <filesystem>
#include <set>

#include "common/rng.h"
#include "corpus/ieee_generator.h"
#include "corpus/wiki_generator.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "retrieval/era.h"
#include "retrieval/materializer.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {
namespace {

struct CorpusParam {
  const char* name;
  bool wiki;       // IEEE-like vs Wikipedia-like generator.
  uint64_t seed;
  size_t num_docs;
  int num_tasks;   // Random (sids, terms) tasks to check.
};

class CrossMethodTest : public ::testing::TestWithParam<CorpusParam> {
 protected:
  void SetUp() override {
    const CorpusParam& p = GetParam();
    // Two TEST_P cases share each param; key the directory by test name
    // too so concurrent ctest processes stay isolated ('/' → '_').
    std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    dir_ = ::testing::TempDir() + "/trex_xmethod_" + test_name + "_" + p.name;
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    IndexOptions options;
    options.aliases = p.wiki ? WikiAliasMap() : IeeeAliasMap();
    IndexBuilder builder(dir_ + "/idx", options);
    if (p.wiki) {
      WikiGeneratorOptions gen_options;
      gen_options.seed = p.seed;
      gen_options.num_documents = p.num_docs;
      gen_options.size_factor = 0.4;
      WikiGenerator gen(gen_options);
      for (size_t i = 0; i < p.num_docs; ++i) {
        TREX_CHECK_OK(
            builder.AddDocument(static_cast<DocId>(i), gen.Generate(i)));
      }
    } else {
      IeeeGeneratorOptions gen_options;
      gen_options.seed = p.seed;
      gen_options.num_documents = p.num_docs;
      gen_options.size_factor = 0.4;
      IeeeGenerator gen(gen_options);
      for (size_t i = 0; i < p.num_docs; ++i) {
        TREX_CHECK_OK(
            builder.AddDocument(static_cast<DocId>(i), gen.Generate(i)));
      }
    }
    TREX_CHECK_OK(builder.Finish());
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    index_ = std::move(index).value();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Builds a random retrieval task over existing sids and terms.
  TranslatedClause RandomClause(Rng* rng) {
    TranslatedClause clause;
    const Summary& summary = index_->summary();
    size_t num_sids = 1 + rng->Uniform(5);
    std::set<Sid> sids;
    while (sids.size() < num_sids) {
      Sid sid = static_cast<Sid>(1 + rng->Uniform(summary.size() - 1));
      sids.insert(sid);
    }
    clause.sids.assign(sids.begin(), sids.end());

    // Pick terms that exist: sample words from the planted set and the
    // synthetic vocabulary head (frequent ranks).
    std::vector<std::string> pool;
    for (const auto& t : GetParam().wiki ? DefaultWikiPlantedTerms()
                                         : DefaultIeeePlantedTerms()) {
      pool.push_back(t.word);
    }
    for (size_t r = 0; r < 40; ++r) pool.push_back(Vocabulary::WordForRank(r));
    size_t num_terms = 1 + rng->Uniform(4);
    std::set<std::string> chosen;
    while (chosen.size() < num_terms) {
      std::string raw = pool[rng->Uniform(pool.size())];
      auto norm = index_->tokenizer().NormalizeTerm(raw);
      if (norm.has_value()) chosen.insert(*norm);
    }
    for (const auto& t : chosen) {
      float weight = rng->Bernoulli(0.2) ? -1.0f : 1.0f;
      clause.terms.push_back(WeightedTerm{t, weight});
    }
    return clause;
  }

  std::string dir_;
  std::unique_ptr<Index> index_;
};

TEST_P(CrossMethodTest, MethodsReturnIdenticalRankedLists) {
  Rng rng(GetParam().seed * 31 + 1);
  Era era(index_.get());
  Merge merge(index_.get());
  Ta ta(index_.get());
  int non_empty = 0;
  for (int task = 0; task < GetParam().num_tasks; ++task) {
    TranslatedClause clause = RandomClause(&rng);
    MaterializeStats stats;
    TREX_CHECK_OK(
        MaterializeForClause(index_.get(), clause, true, true, &stats));

    RetrievalResult r_era, r_merge, r_ta;
    TREX_CHECK_OK(era.Evaluate(clause, &r_era));
    TREX_CHECK_OK(merge.Evaluate(clause, &r_merge));
    TREX_CHECK_OK(ta.Evaluate(clause, SIZE_MAX, &r_ta));

    ASSERT_EQ(r_era.elements.size(), r_merge.elements.size())
        << "task " << task;
    ASSERT_EQ(r_era.elements.size(), r_ta.elements.size()) << "task " << task;
    for (size_t i = 0; i < r_era.elements.size(); ++i) {
      ASSERT_EQ(r_era.elements[i].element, r_merge.elements[i].element)
          << "task " << task << " rank " << i;
      ASSERT_EQ(r_era.elements[i].score, r_merge.elements[i].score)
          << "task " << task << " rank " << i;
      ASSERT_EQ(r_era.elements[i].element, r_ta.elements[i].element)
          << "task " << task << " rank " << i;
      ASSERT_EQ(r_era.elements[i].score, r_ta.elements[i].score)
          << "task " << task << " rank " << i;
    }
    if (!r_era.elements.empty()) ++non_empty;
  }
  // The corpus must actually exercise the comparison.
  EXPECT_GT(non_empty, GetParam().num_tasks / 2);
}

TEST_P(CrossMethodTest, TopKTaReturnsValidTopKSet) {
  Rng rng(GetParam().seed * 31 + 2);
  Era era(index_.get());
  Ta ta(index_.get());
  for (int task = 0; task < GetParam().num_tasks / 2; ++task) {
    TranslatedClause clause = RandomClause(&rng);
    MaterializeStats stats;
    TREX_CHECK_OK(
        MaterializeForClause(index_.get(), clause, true, false, &stats));
    RetrievalResult full;
    TREX_CHECK_OK(era.Evaluate(clause, &full));
    if (full.elements.empty()) continue;

    for (size_t k : {size_t{1}, size_t{5}, full.elements.size()}) {
      k = std::min(k, full.elements.size());
      RetrievalResult topk;
      TREX_CHECK_OK(ta.Evaluate(clause, k, &topk));
      ASSERT_EQ(topk.elements.size(), k) << "task " << task << " k " << k;
      // Every returned element's exact score must be >= the exact k-th
      // score (a correct top-k set under ties).
      float kth_exact = full.elements[k - 1].score;
      std::set<std::pair<DocId, uint64_t>> exact_scores;
      for (const auto& e : full.elements) {
        exact_scores.insert({e.element.docid, e.element.endpos});
      }
      for (const auto& e : topk.elements) {
        // Find the element's exact score in the full ranking.
        bool found = false;
        for (const auto& f : full.elements) {
          if (f.element == e.element) {
            EXPECT_GE(f.score, kth_exact - 1e-5f)
                << "task " << task << " k " << k;
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "TA returned an element ERA did not";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, CrossMethodTest,
    ::testing::Values(CorpusParam{"ieee_small", false, 1001, 30, 12},
                      CorpusParam{"ieee_other_seed", false, 2002, 40, 12},
                      CorpusParam{"ieee_larger", false, 5005, 80, 8},
                      CorpusParam{"wiki_small", true, 3003, 30, 12},
                      CorpusParam{"wiki_other_seed", true, 4004, 50, 10}),
    [](const ::testing::TestParamInfo<CorpusParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace trex
