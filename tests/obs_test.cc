#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trex {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, InternedByName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test.same");
  Counter* b = reg.GetCounter("test.same");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.other"));
}

TEST(CounterTest, DisabledAddsAreDropped) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  c->Add(5);
  reg.set_enabled(false);
  c->Add(100);
  EXPECT_EQ(c->value(), 5u);
  reg.set_enabled(true);
  c->Add(1);
  EXPECT_EQ(c->value(), 6u);
}

TEST(CounterTest, ConcurrentIncrementsFromFourThreads) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("test.gauge");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-4);
  EXPECT_EQ(g->value(), 6);
  g->Set(-3);
  EXPECT_EQ(g->value(), -3);
}

TEST(HistogramTest, SummaryOfKnownSamples) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  EXPECT_EQ(h->Summary().count, 0u);
  h->Record(0);
  h->Record(1);
  h->Record(2);
  h->Record(1000);
  HistogramSummary s = h->Summary();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1003u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
}

TEST(HistogramTest, ConstantDistributionPercentilesAreExact) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  for (int i = 0; i < 1000; ++i) h->Record(7);
  HistogramSummary s = h->Summary();
  // All mass in one bucket, clamped to the recorded min/max.
  EXPECT_EQ(s.p50, 7u);
  EXPECT_EQ(s.p95, 7u);
  EXPECT_EQ(s.p99, 7u);
}

TEST(HistogramTest, UniformDistributionPercentilesWithinBucketError) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  // Uniform over [1, 10000].
  for (uint64_t v = 1; v <= 10000; ++v) h->Record(v);
  HistogramSummary s = h->Summary();
  // Log2 buckets bound the relative error by 2x; uniform mass makes the
  // interpolation much tighter, but assert only the guaranteed bound.
  EXPECT_GE(s.p50, 2500u);
  EXPECT_LE(s.p50, 10000u);
  EXPECT_GE(s.p95, 4750u);
  EXPECT_LE(s.p95, 10000u);
  EXPECT_GE(s.p99, 4950u);
  EXPECT_LE(s.p99, 10000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  h->Record(UINT64_MAX);
  h->Record(1);
  HistogramSummary s = h->Summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_EQ(s.min, 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  Histogram* h = reg.GetHistogram("test.hist");
  c->Add(9);
  h->Record(5);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->Summary().count, 0u);
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
  c->Add(2);
  EXPECT_EQ(c->value(), 2u);
}

TEST(RegistryTest, SnapshotAndJson) {
  MetricsRegistry reg;
  reg.GetCounter("a.b.c")->Add(3);
  reg.GetGauge("g")->Set(-1);
  reg.GetHistogram("h")->Record(4);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("a.b.c"), 3u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), -1);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"a.b.c\":3"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  std::string out;
  JsonEscape("a\"b\\c\n\t", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t");
}

TEST(TraceTest, NullTraceIsANoOp) {
  TraceSpan span(nullptr, "phase");
  span.AddAttr("k", uint64_t{1});
  span.End();  // Must not crash.
}

TEST(TraceTest, NestedSpansFormATree) {
  Trace trace("query");
  {
    TraceSpan outer(&trace, "outer");
    outer.AddAttr("n", uint64_t{2});
    { TraceSpan inner(&trace, "inner"); }
    { TraceSpan inner2(&trace, "inner2"); }
  }
  trace.Finish();
  const TraceNode& root = *trace.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->name, "outer");
  ASSERT_EQ(root.children[0]->children.size(), 2u);
  EXPECT_EQ(root.children[0]->children[0]->name, "inner");
  EXPECT_EQ(root.children[0]->children[1]->name, "inner2");
  EXPECT_GE(root.duration_nanos, root.children[0]->duration_nanos);
}

TEST(TraceTest, JsonShapeHasDurationsAndAttrs) {
  Trace trace("query");
  {
    TraceSpan span(&trace, "evaluate:TA");
    span.AddAttr("sorted_accesses", uint64_t{12});
    span.AddAttr("wall_seconds", 0.5);
    span.AddAttr("reason", "test");
  }
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"evaluate:TA\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"start_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"sorted_accesses\":12"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"test\""), std::string::npos);
}

TEST(TraceTest, FinishClosesLeakedSpansAndIsIdempotent) {
  Trace trace;
  TraceNode* open = trace.OpenSpan("leaked");
  (void)open;
  trace.Finish();
  trace.Finish();
  EXPECT_GE(trace.root()->duration_nanos, 0);
  ASSERT_EQ(trace.root()->children.size(), 1u);
  EXPECT_GE(trace.root()->children[0]->duration_nanos, 0);
}

}  // namespace
}  // namespace obs
}  // namespace trex
