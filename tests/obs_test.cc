#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/trace.h"

namespace trex {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, InternedByName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("test.same");
  Counter* b = reg.GetCounter("test.same");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.other"));
}

TEST(CounterTest, DisabledAddsAreDropped) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  c->Add(5);
  reg.set_enabled(false);
  c->Add(100);
  EXPECT_EQ(c->value(), 5u);
  reg.set_enabled(true);
  c->Add(1);
  EXPECT_EQ(c->value(), 6u);
}

TEST(CounterTest, ConcurrentIncrementsFromFourThreads) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("test.gauge");
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-4);
  EXPECT_EQ(g->value(), 6);
  g->Set(-3);
  EXPECT_EQ(g->value(), -3);
}

TEST(HistogramTest, SummaryOfKnownSamples) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  EXPECT_EQ(h->Summary().count, 0u);
  h->Record(0);
  h->Record(1);
  h->Record(2);
  h->Record(1000);
  HistogramSummary s = h->Summary();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1003u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
}

TEST(HistogramTest, ConstantDistributionPercentilesAreExact) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  for (int i = 0; i < 1000; ++i) h->Record(7);
  HistogramSummary s = h->Summary();
  // All mass in one bucket, clamped to the recorded min/max.
  EXPECT_EQ(s.p50, 7u);
  EXPECT_EQ(s.p95, 7u);
  EXPECT_EQ(s.p99, 7u);
}

TEST(HistogramTest, UniformDistributionPercentilesWithinBucketError) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  // Uniform over [1, 10000].
  for (uint64_t v = 1; v <= 10000; ++v) h->Record(v);
  HistogramSummary s = h->Summary();
  // Log2 buckets bound the relative error by 2x; uniform mass makes the
  // interpolation much tighter, but assert only the guaranteed bound.
  EXPECT_GE(s.p50, 2500u);
  EXPECT_LE(s.p50, 10000u);
  EXPECT_GE(s.p95, 4750u);
  EXPECT_LE(s.p95, 10000u);
  EXPECT_GE(s.p99, 4950u);
  EXPECT_LE(s.p99, 10000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.hist");
  h->Record(UINT64_MAX);
  h->Record(1);
  HistogramSummary s = h->Summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_EQ(s.min, 1u);
}

TEST(RegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  Histogram* h = reg.GetHistogram("test.hist");
  c->Add(9);
  h->Record(5);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->Summary().count, 0u);
  EXPECT_EQ(reg.GetCounter("test.counter"), c);
  c->Add(2);
  EXPECT_EQ(c->value(), 2u);
}

TEST(RegistryTest, SnapshotAndJson) {
  MetricsRegistry reg;
  reg.GetCounter("a.b.c")->Add(3);
  reg.GetGauge("g")->Set(-1);
  reg.GetHistogram("h")->Record(4);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("a.b.c"), 3u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), -1);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"a.b.c\":3"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  std::string out;
  JsonEscape("a\"b\\c\n\t", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t");
}

TEST(TraceTest, NullTraceIsANoOp) {
  TraceSpan span(nullptr, "phase");
  span.AddAttr("k", uint64_t{1});
  span.End();  // Must not crash.
}

TEST(TraceTest, NestedSpansFormATree) {
  Trace trace("query");
  {
    TraceSpan outer(&trace, "outer");
    outer.AddAttr("n", uint64_t{2});
    { TraceSpan inner(&trace, "inner"); }
    { TraceSpan inner2(&trace, "inner2"); }
  }
  trace.Finish();
  const TraceNode& root = *trace.root();
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->name, "outer");
  ASSERT_EQ(root.children[0]->children.size(), 2u);
  EXPECT_EQ(root.children[0]->children[0]->name, "inner");
  EXPECT_EQ(root.children[0]->children[1]->name, "inner2");
  EXPECT_GE(root.duration_nanos, root.children[0]->duration_nanos);
}

TEST(TraceTest, JsonShapeHasDurationsAndAttrs) {
  Trace trace("query");
  {
    TraceSpan span(&trace, "evaluate:TA");
    span.AddAttr("sorted_accesses", uint64_t{12});
    span.AddAttr("wall_seconds", 0.5);
    span.AddAttr("reason", "test");
  }
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"evaluate:TA\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"start_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"sorted_accesses\":12"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"test\""), std::string::npos);
}

TEST(TraceTest, FinishClosesLeakedSpansAndIsIdempotent) {
  Trace trace;
  TraceNode* open = trace.OpenSpan("leaked");
  (void)open;
  trace.Finish();
  trace.Finish();
  EXPECT_GE(trace.root()->duration_nanos, 0);
  ASSERT_EQ(trace.root()->children.size(), 1u);
  EXPECT_GE(trace.root()->children[0]->duration_nanos, 0);
}

// ---------------------------------------------------------------------
// Quantile helpers: ExactQuantile is the reference (numpy's default
// "type 7" linear interpolation); QuantileFromLogBuckets is the
// histogram's bucketed estimate and must stay within one power of two
// of the truth by construction.

TEST(QuantileTest, ExactQuantileSingleSample) {
  std::vector<uint64_t> s = {42};
  EXPECT_EQ(ExactQuantile(s, 0.0), 42.0);
  EXPECT_EQ(ExactQuantile(s, 0.5), 42.0);
  EXPECT_EQ(ExactQuantile(s, 1.0), 42.0);
}

TEST(QuantileTest, ExactQuantileInterpolatesBetweenOrderStatistics) {
  std::vector<uint64_t> s = {10, 20, 30, 40};
  EXPECT_EQ(ExactQuantile(s, 0.0), 10.0);
  EXPECT_EQ(ExactQuantile(s, 1.0), 40.0);
  // h = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(ExactQuantile(s, 0.5), 25.0);
  // h = 0.25 * 3 = 0.75 -> 10 + 0.75 * (20 - 10).
  EXPECT_DOUBLE_EQ(ExactQuantile(s, 0.25), 17.5);
}

TEST(QuantileTest, ExactQuantileMatchesNumpyOnOneToHundred) {
  std::vector<uint64_t> s(100);
  for (uint64_t i = 0; i < 100; ++i) s[i] = i + 1;
  // numpy.percentile([1..100], q, interpolation='linear').
  EXPECT_DOUBLE_EQ(ExactQuantile(s, 0.50), 50.5);
  EXPECT_DOUBLE_EQ(ExactQuantile(s, 0.95), 95.05);
  EXPECT_DOUBLE_EQ(ExactQuantile(s, 0.99), 99.01);
}

TEST(QuantileTest, LogBucketsConstantDistributionIsExact) {
  // Every sample identical: min == max clamps the estimate to the
  // exact value regardless of bucket width.
  uint64_t counts[65] = {};
  counts[7] = 1000;  // 100 lands in bucket ceil(log2)=7: [64, 127].
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(QuantileFromLogBuckets(counts, 1000, 100, 100, q), 100u);
  }
}

TEST(QuantileTest, LogBucketsUsesCeilRankNotTruncation) {
  // 100 samples: 95 small (value 1, bucket 1) and 5 large (value 1000,
  // bucket 10). p95 must pick rank ceil(0.95*100)=95 — the last small
  // sample — while p96 crosses into the large bucket. The old
  // truncating rank under-reported exactly this boundary.
  uint64_t counts[65] = {};
  counts[1] = 95;
  counts[10] = 5;
  EXPECT_LE(QuantileFromLogBuckets(counts, 100, 1, 1000, 0.95), 2u);
  EXPECT_GE(QuantileFromLogBuckets(counts, 100, 1, 1000, 0.96), 512u);
}

TEST(QuantileTest, LogBucketsWithinFactorTwoOfExactOnUniform) {
  // Uniform 1..4096 through real Histogram buckets: the log2-bucket
  // estimate is allowed to be off by at most the bucket width (2x).
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("q.uniform");
  std::vector<uint64_t> samples;
  for (uint64_t v = 1; v <= 4096; ++v) {
    h->Record(v);
    samples.push_back(v);
  }
  HistogramSummary summary = h->Summary();
  for (auto [est, q] : {std::pair<uint64_t, double>{summary.p50, 0.50},
                        {summary.p95, 0.95},
                        {summary.p99, 0.99}}) {
    const double exact = ExactQuantile(samples, q);
    EXPECT_GE(static_cast<double>(est), exact / 2.0) << "q=" << q;
    EXPECT_LE(static_cast<double>(est), exact * 2.0) << "q=" << q;
  }
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_LE(summary.p95, summary.p99);
}

TEST(QuantileTest, LogBucketsEmptyTotalIsZero) {
  uint64_t counts[65] = {};
  EXPECT_EQ(QuantileFromLogBuckets(counts, 0, 0, 0, 0.5), 0u);
}

// ---------------------------------------------------------------------
// Prometheus exposition.

TEST(PromTest, NamePrefixesAndSanitizes) {
  EXPECT_EQ(PromName("storage.bufpool.hits"), "trex_storage_bufpool_hits");
  EXPECT_EQ(PromName("a-b c/d"), "trex_a_b_c_d");
  EXPECT_EQ(PromName("already_ok_9"), "trex_already_ok_9");
}

TEST(PromTest, TextRendersCounterGaugeAndSummary) {
  MetricsRegistry reg;
  reg.GetCounter("test.count")->Add(7);
  reg.GetGauge("test.level")->Set(-3);
  Histogram* h = reg.GetHistogram("test.lat");
  h->Record(100);
  h->Record(100);
  std::string text = PromText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE trex_test_count counter"), std::string::npos);
  EXPECT_NE(text.find("trex_test_count 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE trex_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("trex_test_level -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE trex_test_lat summary"), std::string::npos);
  EXPECT_NE(text.find("trex_test_lat{quantile=\"0.5\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("trex_test_lat_sum 200"), std::string::npos);
  EXPECT_NE(text.find("trex_test_lat_count 2"), std::string::npos);
}

TEST(PromTest, DerivedGaugesComputeRatios) {
  MetricsRegistry reg;
  reg.GetCounter("storage.bufpool.hits")->Add(90);
  reg.GetCounter("storage.bufpool.misses")->Add(10);
  reg.GetCounter("retrieval.materializer.units_requested")->Add(8);
  reg.GetCounter("retrieval.materializer.units_reused")->Add(6);
  std::vector<DerivedGauge> derived = DerivedGauges(reg.Snapshot());
  ASSERT_GE(derived.size(), 2u);
  EXPECT_EQ(derived[0].name, "derived.bufpool.hit_rate");
  EXPECT_DOUBLE_EQ(derived[0].value, 0.9);
  EXPECT_EQ(derived[1].name, "derived.materializer.reuse_rate");
  EXPECT_DOUBLE_EQ(derived[1].value, 0.75);
  // Live process health rides along on platforms that can read it.
  std::vector<std::string> names;
  for (const DerivedGauge& g : derived) names.push_back(g.name);
#if defined(__linux__)
  EXPECT_NE(std::find(names.begin(), names.end(), "process.rss_bytes"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "process.open_fds"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "process.cpu_seconds_total"),
            names.end());
#endif
}

TEST(PromTest, DerivedGaugesSkipZeroDenominators) {
  MetricsRegistry reg;
  reg.GetCounter("storage.bufpool.hits");  // 0 hits, no misses counter.
  // No ratio gauge may appear (process health gauges are unrelated to
  // the snapshot and may still be present).
  for (const DerivedGauge& g : DerivedGauges(reg.Snapshot())) {
    EXPECT_NE(g.name.rfind("derived.", 0), 0u) << g.name;
  }
  // The exposition must stay silent too, not emit a 0/0.
  EXPECT_EQ(PromText(reg.Snapshot()).find("derived"), std::string::npos);
}

TEST(PromTest, WritePromFileRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("test.count")->Add(1);
  std::string path = ::testing::TempDir() + "/prom_test_" +
                     std::to_string(::getpid()) + ".prom";
  ASSERT_TRUE(WritePromFile(reg.Snapshot(), path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Process health gauges are read live at render time (CPU advances
  // between two renders), so compare everything except their values.
  auto strip_process = [](const std::string& exposition) {
    std::string out;
    size_t pos = 0;
    while (pos < exposition.size()) {
      size_t eol = exposition.find('\n', pos);
      if (eol == std::string::npos) eol = exposition.size();
      const std::string line = exposition.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.find("trex_process_") == std::string::npos) {
        out += line;
        out.push_back('\n');
      }
    }
    return out;
  };
  EXPECT_EQ(strip_process(text), strip_process(PromText(reg.Snapshot())));
  EXPECT_NE(text.find("trex_test_count 1"), std::string::npos);
  EXPECT_FALSE(
      WritePromFile(reg.Snapshot(), "/nonexistent-dir/x/y.prom"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace trex
