// Randomized properties of the §4.2 index-selection solvers, plus the
// cost-model measurement regression suite.
//
//   * On random small instances the greedy solution saves at least half
//     of what the exact solver saves (Theorem 4.2's 2-approximation,
//     checked against SolveIlp rather than brute force) and both fit
//     the budget.
//   * Planning is deterministic: the same seed yields the same instance
//     and the same choices, run after run.
//   * CostModel::Measure times best-of-3 with a warmup pass, so a slow
//     cold first read (buffer-pool cold start) no longer skews T_e.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "advisor/advisor.h"
#include "common/rng.h"
#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "nexi/translator.h"
#include "retrieval/materializer.h"
#include "storage/env.h"
#include "testutil.h"

namespace trex {
namespace {

SelectionInstance RandomInstance(Rng* rng, size_t num_queries) {
  SelectionInstance instance;
  double freq_total = 0;
  std::vector<double> freqs;
  for (size_t i = 0; i < num_queries; ++i) {
    double f = 0.1 + rng->NextDouble();
    freqs.push_back(f);
    freq_total += f;
  }
  for (size_t i = 0; i < num_queries; ++i) {
    SelectionQuery q;
    q.frequency = freqs[i] / freq_total;
    q.merge_saving = rng->NextDouble() * 100;
    q.ta_saving = rng->NextDouble() * 100;
    q.s_erpl = 1 + rng->Uniform(1000);
    q.s_rpl = 1 + rng->Uniform(1000);
    instance.queries.push_back(q);
  }
  instance.disk_budget = 1 + rng->Uniform(2000);
  return instance;
}

// Theorem 4.2 against the exact solver: on 100 random instances the
// greedy never saves less than half the ILP optimum, and neither
// solution exceeds the budget.
TEST(AdvisorProperty, GreedySavesAtLeastHalfOfIlpOn100RandomInstances) {
  Rng rng(20260806);
  for (int trial = 0; trial < 100; ++trial) {
    SelectionInstance instance = RandomInstance(&rng, 2 + rng.Uniform(9));
    SelectionResult ilp = SolveIlp(instance);
    SelectionResult greedy = SolveGreedy(instance);
    EXPECT_LE(SelectionSize(instance, ilp.choice), instance.disk_budget)
        << "trial " << trial;
    EXPECT_LE(SelectionSize(instance, greedy.choice), instance.disk_budget)
        << "trial " << trial;
    // Sanity: the exact solver is never beaten...
    EXPECT_LE(greedy.total_saving, ilp.total_saving + 1e-9)
        << "trial " << trial;
    // ...and the greedy is never worse than half of it.
    EXPECT_LE(ilp.total_saving, 2.0 * greedy.total_saving + 1e-9)
        << "trial " << trial << ": greedy " << greedy.total_saving
        << " ilp " << ilp.total_saving;
  }
}

// Fixed seed => identical instance => identical plan, every time. The
// advisor loop's replay determinism rests on this.
TEST(AdvisorProperty, PlanningIsDeterministicForFixedSeed) {
  for (int round = 0; round < 5; ++round) {
    Rng rng_a(777);
    Rng rng_b(777);
    SelectionInstance a = RandomInstance(&rng_a, 8);
    SelectionInstance b = RandomInstance(&rng_b, 8);
    SelectionResult greedy_a = SolveGreedy(a);
    SelectionResult greedy_b = SolveGreedy(b);
    ASSERT_EQ(greedy_a.choice, greedy_b.choice) << "round " << round;
    EXPECT_EQ(greedy_a.total_saving, greedy_b.total_saving);
    EXPECT_EQ(greedy_a.total_size, greedy_b.total_size);
    SelectionResult ilp_a = SolveIlp(a);
    SelectionResult ilp_b = SolveIlp(b);
    ASSERT_EQ(ilp_a.choice, ilp_b.choice) << "round " << round;
    EXPECT_EQ(ilp_a.total_saving, ilp_b.total_saving);
  }
}

// Sharing-aware instances (random unit overlap) still respect the
// budget, and repeated solves stay bit-identical.
TEST(AdvisorProperty, SharedUnitInstancesFitBudgetDeterministically) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    SelectionInstance instance = RandomInstance(&rng, 2 + rng.Uniform(6));
    // A pool of unit names smaller than the query count forces overlap.
    const size_t pool = 1 + rng.Uniform(4);
    for (SelectionQuery& q : instance.queries) {
      ListUnit eu{ListKind::kErpl, "t" + std::to_string(rng.Uniform(pool)),
                  static_cast<Sid>(rng.Uniform(3))};
      ListUnit ru{ListKind::kRpl, "t" + std::to_string(rng.Uniform(pool)),
                  static_cast<Sid>(rng.Uniform(3))};
      q.erpl_units = {eu};
      q.rpl_units = {ru};
      instance.unit_sizes[eu] = q.s_erpl;
      instance.unit_sizes[ru] = q.s_rpl;
    }
    SelectionResult first = SolveGreedy(instance);
    SelectionResult second = SolveGreedy(instance);
    EXPECT_LE(first.total_size, instance.disk_budget) << "trial " << trial;
    ASSERT_EQ(first.choice, second.choice) << "trial " << trial;
    EXPECT_EQ(first.total_saving, second.total_saving);
  }
}

// ---------------------------------------------------------------------
// CostModel::Measure cold-start regression.

// Env wrapper that sleeps once, on the first read of a file whose path
// contains `slow_substr`, after Arm(). Models a buffer-pool cold start
// (the first disk read is much slower than the rest) deterministically.
class SlowFirstReadEnv : public Env {
 public:
  explicit SlowFirstReadEnv(Env* base) : base_(base) {}

  void Arm(std::string slow_substr, int millis) {
    slow_substr_ = std::move(slow_substr);
    millis_ = millis;
    armed_.store(true);
  }

  Result<std::unique_ptr<RandomAccessFile>> NewFile(
      const std::string& path) override {
    auto base = base_->NewFile(path);
    if (!base.ok()) return base.status();
    return std::unique_ptr<RandomAccessFile>(
        new SlowFile(this, path, std::move(base).value()));
  }
  bool Exists(const std::string& path) override {
    return base_->Exists(path);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status MakeDirs(const std::string& path) override {
    return base_->MakeDirs(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }

 private:
  class SlowFile : public RandomAccessFile {
   public:
    SlowFile(SlowFirstReadEnv* env, std::string path,
             std::unique_ptr<RandomAccessFile> base)
        : env_(env), path_(std::move(path)), base_(std::move(base)) {}

    Status Read(uint64_t offset, size_t n, char* scratch) override {
      env_->MaybeSleep(path_);
      return base_->Read(offset, n, scratch);
    }
    Status Write(uint64_t offset, const char* data, size_t n) override {
      return base_->Write(offset, data, n);
    }
    Status Sync() override { return base_->Sync(); }
    Status Size(uint64_t* size) override { return base_->Size(size); }

   private:
    SlowFirstReadEnv* env_;
    std::string path_;
    std::unique_ptr<RandomAccessFile> base_;
  };

  void MaybeSleep(const std::string& path) {
    if (!armed_.load()) return;
    if (path.find(slow_substr_) == std::string::npos) return;
    if (armed_.exchange(false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(millis_));
    }
  }

  Env* base_;
  std::string slow_substr_;
  int millis_ = 0;
  std::atomic<bool> armed_{false};
};

class CostModelMeasureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::UniqueTestDir("trex_costmodel");
    IndexOptions options;
    options.aliases = IeeeAliasMap();
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 20;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    IndexBuilder builder(dir_ + "/idx", options);
    for (size_t i = 0; i < gen.num_documents(); ++i) {
      TREX_CHECK_OK(
          builder.AddDocument(static_cast<DocId>(i), gen.Generate(i)));
    }
    TREX_CHECK_OK(builder.Finish());

    // Pre-materialize the query's units with a throwaway handle, so the
    // measured handles only ever *read* PostingLists.tbl.
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    auto translated =
        TranslateNexi(kNexi, index.value()->summary(),
                      &index.value()->aliases(), index.value()->tokenizer());
    TREX_CHECK_OK(translated.status());
    clause_ = translated.value().flattened;
    MaterializeStats stats;
    TREX_CHECK_OK(MaterializeUnits(
        index.value().get(), UnitsForClause(clause_, true, true), &stats));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static constexpr const char* kNexi = "//article[about(., xml)]";
  std::string dir_;
  TranslatedClause clause_;
};

TEST_F(CostModelMeasureTest, WarmupAndBestOfThreeAbsorbSlowFirstRead) {
  constexpr int kSleepMillis = 150;
  constexpr double kSleepSeconds = kSleepMillis / 1000.0;
  SlowFirstReadEnv slow_env(PosixEnv());
  Env* prev = Env::Swap(&slow_env);

  // Without the fix (single timed run, no warmup) the cold first read
  // lands inside T_e and inflates it past the injected delay.
  {
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    slow_env.Arm("PostingLists", kSleepMillis);
    MeasureOptions naive;
    naive.runs = 1;
    naive.warmup = false;
    auto costs = CostModel::Measure(index.value().get(), clause_, 10, naive);
    TREX_CHECK_OK(costs.status());
    EXPECT_GE(costs.value().t_era, kSleepSeconds * 0.9)
        << "expected the injected cold read to skew the naive measure";
  }

  // With warmup + best-of-3 the cold read is absorbed before timing and
  // T_e comes out orders of magnitude below the injected delay.
  {
    auto index = Index::Open(dir_ + "/idx");
    TREX_CHECK_OK(index.status());
    slow_env.Arm("PostingLists", kSleepMillis);
    auto costs = CostModel::Measure(index.value().get(), clause_, 10);
    TREX_CHECK_OK(costs.status());
    EXPECT_LT(costs.value().t_era, kSleepSeconds * 0.5)
        << "warmup failed to absorb the cold first read";
  }

  Env::Swap(prev);
}

}  // namespace
}  // namespace trex
