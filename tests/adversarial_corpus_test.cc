// Property tests for the adversarial corpus generators (ctest label:
// zoo): each generator's hostile axis — depth, fan-out, skew,
// duplication — is measured on generated documents and checked against
// the bounds its options declare, and every generator is deterministic
// from (options, docid).
#include <map>
#include <string>
#include <vector>

#include "corpus/adversarial.h"
#include "gtest/gtest.h"
#include "xml/node.h"
#include "xml/reader.h"

namespace trex {
namespace {

// Splits the concatenated <sec>/spine text of a document into tokens.
std::vector<std::string> TextTokens(const XmlNode& node) {
  std::vector<std::string> tokens;
  std::string text = node.TextContent();
  std::string cur;
  for (char c : text) {
    if (c == ' ' || c == '\n' || c == '\t') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

// ---------------------------------------------------------------------
// Deep recursion.

// Walks the r*/leaf spine and returns the number of r-levels.
size_t SpineDepth(const XmlNode& doc) {
  const XmlNode* node = &doc;
  size_t depth = 0;
  while (true) {
    const XmlNode* next = nullptr;
    for (const auto& c : node->children()) {
      if (c->is_element() && !c->tag().empty() && c->tag()[0] == 'r') {
        next = c.get();
        break;
      }
    }
    if (next == nullptr) break;
    ++depth;
    node = next;
  }
  return depth;
}

TEST(DeepRecursionGenerator, DepthStaysWithinDeclaredBounds) {
  DeepRecursionOptions options;
  options.num_documents = 30;
  options.min_depth = 20;
  options.max_depth = 90;
  DeepRecursionGenerator gen(options);
  size_t max_seen = 0, min_seen = SIZE_MAX;
  for (DocId d = 0; d < 30; ++d) {
    auto doc = ParseXmlDocument(gen.Generate(d));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(doc.value()->tag(), "doc");
    const size_t depth = SpineDepth(*doc.value());
    EXPECT_GE(depth, options.min_depth);
    EXPECT_LE(depth, options.max_depth);
    min_seen = std::min(min_seen, depth);
    max_seen = std::max(max_seen, depth);
  }
  // The uniform draw actually uses the range, not one fixed depth.
  EXPECT_GT(max_seen, min_seen + 10);
}

TEST(DeepRecursionGenerator, DeterministicAndSeedSensitive) {
  DeepRecursionOptions options;
  options.num_documents = 4;
  DeepRecursionGenerator a(options), b(options);
  for (DocId d = 0; d < 4; ++d) EXPECT_EQ(a.Generate(d), b.Generate(d));
  EXPECT_NE(a.Generate(0), a.Generate(1));
  options.seed = 999;
  DeepRecursionGenerator c(options);
  EXPECT_NE(a.Generate(0), c.Generate(0));
}

TEST(DeepRecursionGenerator, PlantsHotTermAtDeclaredDocRate) {
  DeepRecursionOptions options;
  options.num_documents = 100;
  DeepRecursionGenerator gen(options);
  size_t with_spire = 0, with_bedrock = 0;
  for (DocId d = 0; d < 100; ++d) {
    const std::string doc = gen.Generate(d);
    if (doc.find("spire") != std::string::npos) ++with_spire;
    if (doc.find("bedrock") != std::string::npos) ++with_bedrock;
  }
  // doc probabilities: spire 0.80, bedrock 0.04 (loose binomial bands).
  EXPECT_GT(with_spire, 60u);
  EXPECT_LT(with_bedrock, 20u);
  EXPECT_GT(with_spire, with_bedrock * 3);
}

// ---------------------------------------------------------------------
// Huge fan-out.

TEST(WideFanoutGenerator, SiblingCountStaysWithinDeclaredBounds) {
  WideFanoutOptions options;
  options.num_documents = 10;
  options.min_children = 50;
  options.max_children = 150;
  WideFanoutGenerator gen(options);
  size_t max_seen = 0, min_seen = SIZE_MAX;
  for (DocId d = 0; d < 10; ++d) {
    auto doc = ParseXmlDocument(gen.Generate(d));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    const XmlNode* list = doc.value()->FindChild("list");
    ASSERT_NE(list, nullptr);
    size_t items = 0;
    for (const auto& c : list->children()) {
      if (c->is_element()) {
        EXPECT_EQ(c->tag(), "item");
        ++items;
      }
    }
    EXPECT_GE(items, options.min_children);
    EXPECT_LE(items, options.max_children);
    min_seen = std::min(min_seen, items);
    max_seen = std::max(max_seen, items);
  }
  EXPECT_GT(max_seen, min_seen);
}

TEST(WideFanoutGenerator, DeterministicAndSeedSensitive) {
  WideFanoutOptions options;
  options.num_documents = 3;
  options.min_children = 20;
  options.max_children = 40;
  WideFanoutGenerator a(options), b(options);
  for (DocId d = 0; d < 3; ++d) EXPECT_EQ(a.Generate(d), b.Generate(d));
  options.seed = 999;
  WideFanoutGenerator c(options);
  EXPECT_NE(a.Generate(0), c.Generate(0));
}

// ---------------------------------------------------------------------
// Skewed tag/term Zipf.

TEST(ZipfSkewGenerator, TagAndTermDistributionsAreSkewed) {
  ZipfSkewOptions options;
  options.num_documents = 80;
  ZipfSkewGenerator gen(options);
  std::map<std::string, size_t> tag_counts;
  size_t with_magma = 0, with_fumarole = 0;
  for (DocId d = 0; d < 80; ++d) {
    const std::string raw = gen.Generate(d);
    auto doc = ParseXmlDocument(raw);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    for (const auto& c : doc.value()->children()) {
      if (c->is_element()) ++tag_counts[c->tag()];
    }
    if (raw.find("magma") != std::string::npos) ++with_magma;
    if (raw.find("fumarole") != std::string::npos) ++with_fumarole;
  }
  // Zipf over tags: t0 owns several times the extents of the tail.
  EXPECT_GT(tag_counts["t0"], 0u);
  EXPECT_GT(tag_counts["t0"], tag_counts["t5"] * 3);
  // Hot term in ~90% of documents, cold term in ~2%.
  EXPECT_GT(with_magma, 56u);
  EXPECT_LT(with_fumarole, 16u);
  EXPECT_GT(with_magma, with_fumarole * 3);
}

TEST(ZipfSkewGenerator, DeterministicAndSeedSensitive) {
  ZipfSkewOptions options;
  options.num_documents = 3;
  ZipfSkewGenerator a(options), b(options);
  for (DocId d = 0; d < 3; ++d) EXPECT_EQ(a.Generate(d), b.Generate(d));
  options.seed = 999;
  ZipfSkewGenerator c(options);
  EXPECT_NE(a.Generate(0), c.Generate(0));
}

// ---------------------------------------------------------------------
// Near-duplicate documents.

// Fraction of positions where the two token vectors agree.
double TokenOverlap(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  size_t same = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(n);
}

TEST(NearDuplicateGenerator, ClonesOfOnePrototypeNearlyCoincide) {
  NearDuplicateOptions options;
  options.num_documents = 30;
  options.num_prototypes = 6;
  NearDuplicateGenerator gen(options);
  for (DocId d = 0; d < 6; ++d) {
    ASSERT_EQ(gen.PrototypeFor(d), gen.PrototypeFor(d + 6));
    auto doc_a = ParseXmlDocument(gen.Generate(d));
    auto doc_b = ParseXmlDocument(gen.Generate(d + 6));
    ASSERT_TRUE(doc_a.ok());
    ASSERT_TRUE(doc_b.ok());
    const double same_proto =
        TokenOverlap(TextTokens(*doc_a.value()), TextTokens(*doc_b.value()));
    // Both clones mutate ~2% of tokens independently: >= ~96% overlap
    // expected; 0.90 leaves room for unlucky draws.
    EXPECT_GT(same_proto, 0.90) << "docids " << d << " vs " << d + 6;

    auto doc_c = ParseXmlDocument(gen.Generate(d + 1));  // Other prototype.
    ASSERT_TRUE(doc_c.ok());
    const double cross_proto =
        TokenOverlap(TextTokens(*doc_a.value()), TextTokens(*doc_c.value()));
    EXPECT_LT(cross_proto, 0.60) << "docids " << d << " vs " << d + 1;
    EXPECT_GT(same_proto, cross_proto);
  }
}

TEST(NearDuplicateGenerator, DeterministicAndSeedSensitive) {
  NearDuplicateOptions options;
  options.num_documents = 4;
  NearDuplicateGenerator a(options), b(options);
  for (DocId d = 0; d < 4; ++d) EXPECT_EQ(a.Generate(d), b.Generate(d));
  options.seed = 999;
  NearDuplicateGenerator c(options);
  EXPECT_NE(a.Generate(0), c.Generate(0));
}

TEST(NearDuplicateGenerator, MutationRateZeroMakesExactClones) {
  NearDuplicateOptions options;
  options.num_documents = 8;
  options.num_prototypes = 2;
  options.mutation_rate = 0.0;
  NearDuplicateGenerator gen(options);
  // Same prototype, zero mutations: text coincides exactly (ids differ).
  auto a = ParseXmlDocument(gen.Generate(0));
  auto b = ParseXmlDocument(gen.Generate(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value()->TextContent(), b.value()->TextContent());
}

}  // namespace
}  // namespace trex
