// End-to-end tests of the TReX facade: build, query with every method,
// self-manage, persistence across reopen, strict result shaping.
#include <algorithm>
#include <filesystem>

#include "corpus/ieee_generator.h"
#include "gtest/gtest.h"
#include "trex/trex.h"

namespace trex {
namespace {

class TrexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/trex_e2e_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TrexOptions IeeeOptions() {
    TrexOptions options;
    options.index.aliases = IeeeAliasMap();
    return options;
  }

  std::unique_ptr<TReX> BuildIeee(size_t docs) {
    IeeeGeneratorOptions gen_options;
    gen_options.num_documents = docs;
    gen_options.size_factor = 0.5;
    IeeeGenerator gen(gen_options);
    auto trex = TReX::Build(dir_ + "/idx", gen, IeeeOptions());
    TREX_CHECK_OK(trex.status());
    return std::move(trex).value();
  }

  std::string dir_;
};

TEST_F(TrexTest, BuildQueryTopK) {
  auto trex = BuildIeee(50);
  auto answer =
      trex->Query("//article//sec[about(., ontologies case study)]", 10);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_LE(answer.value().result.elements.size(), 10u);
  EXPECT_GT(answer.value().result.elements.size(), 0u);
  // No redundant lists yet: strategy must fall back to ERA.
  EXPECT_EQ(answer.value().method, RetrievalMethod::kEra);
  // Ranked output.
  const auto& elems = answer.value().result.elements;
  for (size_t i = 1; i < elems.size(); ++i) {
    EXPECT_GE(elems[i - 1].score, elems[i].score);
  }
  // Translation exposed: Table-1-style counts.
  EXPECT_GT(answer.value().translation.flattened.sids.size(), 0u);
  EXPECT_EQ(answer.value().translation.flattened.terms.size(), 3u);
}

TEST_F(TrexTest, MaterializeThenAllMethodsAgree) {
  auto trex = BuildIeee(40);
  const std::string query = "//article[about(., xml query evaluation)]";
  MaterializeStats stats;
  TREX_CHECK_OK(trex->MaterializeFor(query, true, true, &stats));
  EXPECT_GT(stats.lists_written, 0u);

  auto era = trex->QueryWith(RetrievalMethod::kEra, query, 0);
  auto ta = trex->QueryWith(RetrievalMethod::kTa, query, 0);
  auto merge = trex->QueryWith(RetrievalMethod::kMerge, query, 0);
  ASSERT_TRUE(era.ok());
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(merge.ok());
  ASSERT_EQ(era.value().result.elements.size(),
            merge.value().result.elements.size());
  ASSERT_EQ(era.value().result.elements.size(),
            ta.value().result.elements.size());
  for (size_t i = 0; i < era.value().result.elements.size(); ++i) {
    EXPECT_EQ(era.value().result.elements[i].element,
              merge.value().result.elements[i].element);
    EXPECT_EQ(era.value().result.elements[i].score,
              ta.value().result.elements[i].score);
  }
}

TEST_F(TrexTest, IndexPersistsAcrossReopen) {
  std::vector<ScoredElement> before;
  const std::string query = "//article//sec[about(., information)]";
  {
    auto trex = BuildIeee(30);
    MaterializeStats stats;
    TREX_CHECK_OK(trex->MaterializeFor(query, true, true, &stats));
    auto answer = trex->Query(query, 5);
    ASSERT_TRUE(answer.ok());
    before = answer.value().result.elements;
    TREX_CHECK_OK(trex->index()->Flush());
  }
  auto reopened = TReX::Open(dir_ + "/idx", IeeeOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto answer = reopened.value()->Query(query, 5);
  ASSERT_TRUE(answer.ok());
  // Materialized lists survived: the selector picks TA or Merge now.
  EXPECT_NE(answer.value().method, RetrievalMethod::kEra);
  ASSERT_EQ(answer.value().result.elements.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].element, answer.value().result.elements[i].element);
    EXPECT_EQ(before[i].score, answer.value().result.elements[i].score);
  }
}

TEST_F(TrexTest, StrictModeRestrictsToTargetSids) {
  TrexOptions strict = IeeeOptions();
  strict.restrict_to_target_sids = true;
  IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 40;
  gen_options.size_factor = 0.5;
  IeeeGenerator gen(gen_options);
  auto trex = TReX::Build(dir_ + "/idx", gen, strict);
  ASSERT_TRUE(trex.ok());
  auto answer = trex.value()->Query(
      "//article[about(., xml)]//sec[about(., query evaluation)]", 20);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const auto& targets = answer.value().translation.target_sids;
  for (const auto& e : answer.value().result.elements) {
    EXPECT_TRUE(std::binary_search(targets.begin(), targets.end(),
                                   e.element.sid))
        << "element from sid " << e.element.sid
        << " is not a //article//sec target";
  }
  // Under the vague default the same query also returns article
  // elements.
  auto vague = TReX::Open(dir_ + "/idx", IeeeOptions());
  ASSERT_TRUE(vague.ok());
  auto vague_answer = vague.value()->Query(
      "//article[about(., xml)]//sec[about(., query evaluation)]", 0);
  ASSERT_TRUE(vague_answer.ok());
  EXPECT_GT(vague_answer.value().result.elements.size(),
            answer.value().result.elements.size());
}

TEST_F(TrexTest, SelfManageEndToEnd) {
  auto trex = BuildIeee(40);
  Workload workload;
  workload.Add("//article//sec[about(., ontologies)]", 0.5, 10);
  workload.Add("//article[about(., information retrieval)]", 0.3, 10);
  workload.Add("//sec[about(., model checking)]", 0.2, 10);
  TREX_CHECK_OK(workload.Validate());
  TREX_CHECK_OK(workload.Prepare(trex->index()));

  SelfManagerOptions options;
  options.costs = SelfManagerOptions::Costs::kMeasured;
  options.disk_budget_bytes = 256ull << 20;
  SelfManagerReport report;
  TREX_CHECK_OK(trex->SelfManage(workload, options, &report));
  ASSERT_EQ(report.queries.size(), 3u);
  // After self-management the promised strategies actually run.
  for (size_t i = 0; i < report.queries.size(); ++i) {
    auto answer = trex->Query(report.queries[i].nexi, 10);
    ASSERT_TRUE(answer.ok());
    if (report.queries[i].choice == IndexChoice::kErpl) {
      EXPECT_EQ(answer.value().method, RetrievalMethod::kMerge);
    } else if (report.queries[i].choice == IndexChoice::kRpl) {
      // The selector may still prefer TA or Merge by k; at minimum it
      // must not fall back to ERA.
      EXPECT_NE(answer.value().method, RetrievalMethod::kEra);
    }
  }
}

TEST_F(TrexTest, MetricsAndTraceAfterBuildAndQuery) {
  obs::MetricsSnapshot before = obs::Default().Snapshot();
  auto trex = BuildIeee(40);
  auto answer = trex->Query("//article[about(., xml information)]", 5);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  // Cumulative registry: the build + query must have exercised the
  // buffer pool and the posting lists.
  obs::MetricsSnapshot after = trex->Metrics();
  EXPECT_GT(after.counter("storage.bufpool.misses"),
            before.counter("storage.bufpool.misses"));
  EXPECT_GT(after.counter("storage.bufpool.hits"),
            before.counter("storage.bufpool.hits"));
  EXPECT_GT(after.counter("storage.pager.page_writes"),
            before.counter("storage.pager.page_writes"));
  EXPECT_GT(after.counter("index.postings.positions_read"),
            before.counter("index.postings.positions_read"));
  EXPECT_GT(after.counter("index.elements.extent_seeks"),
            before.counter("index.elements.extent_seeks"));
  EXPECT_GT(after.counter("retrieval.era.positions_scanned"),
            before.counter("retrieval.era.positions_scanned"));

  // Per-query EXPLAIN: one span per phase, with nanosecond durations.
  ASSERT_NE(answer.value().trace, nullptr);
  const obs::TraceNode& root = *answer.value().trace->root();
  EXPECT_EQ(root.name, "query");
  EXPECT_GT(root.duration_nanos, 0);
  std::vector<std::string> phases;
  for (const auto& child : root.children) phases.push_back(child->name);
  EXPECT_NE(std::find(phases.begin(), phases.end(), "translate"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "strategy"),
            phases.end());
  EXPECT_NE(std::find_if(phases.begin(), phases.end(),
                         [](const std::string& p) {
                           return p.rfind("evaluate:", 0) == 0;
                         }),
            phases.end());

  std::string json = answer.value().trace->ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"translate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"strategy\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"evaluate:"), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":"), std::string::npos);
}

TEST_F(TrexTest, QueryStrictProducesTrace) {
  auto trex = BuildIeee(30);
  auto answer = trex->QueryStrict("//article[about(., xml)]", 5);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_NE(answer.value().trace, nullptr);
  std::string json = answer.value().trace->ToJson();
  EXPECT_NE(json.find("\"name\":\"evaluate:strict\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"containment_join\""), std::string::npos);
}

TEST_F(TrexTest, RejectsBadQueries) {
  auto trex = BuildIeee(5);
  EXPECT_FALSE(trex->Query("not a query", 10).ok());
  EXPECT_FALSE(trex->Query("//article//sec", 10).ok());  // No about().
  EXPECT_FALSE(trex->Query("//article[about(., the of)]", 10).ok());
}

TEST_F(TrexTest, OpenMissingDirectoryFails) {
  auto trex = TReX::Open(dir_ + "/nope", TrexOptions{});
  EXPECT_FALSE(trex.ok());
}

}  // namespace
}  // namespace trex
