// Sampling profiler (obs/profiler.h): attribution accuracy (a hot
// function must dominate self-time samples), lifecycle (start/stop
// idempotence, thread churn), and signal safety — this binary runs
// under ASan/UBSan and TSan via scripts/check.sh, so a sampler that
// allocates in the handler or races the aggregator fails here.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "obs/profiler.h"

// extern "C" + noinline: one stable, unmangled symbol for the sampler
// to attribute. The long inner stretch per clock check keeps samples in
// this function rather than in clock_gettime.
extern "C" __attribute__((noinline)) void trex_profiler_test_hot_spin(
    int64_t nanos) {
  const int64_t start = trex::ThreadCpuNanos();
  volatile uint64_t sink = 0;
  while (trex::ThreadCpuNanos() - start < nanos) {
    for (uint64_t i = 0; i < 16384; ++i) sink = sink + i * 2654435761ULL;
  }
}

namespace trex {
namespace {

constexpr char kHotName[] = "trex_profiler_test_hot_spin";

#define SKIP_IF_UNSUPPORTED(status)                  \
  do {                                               \
    if ((status).IsNotSupported()) {                 \
      GTEST_SKIP() << (status).ToString();           \
    }                                                \
  } while (0)

// Splits collapsed-stack text into (leaf -> samples) and a total.
struct SelfTimes {
  std::map<std::string, uint64_t> by_leaf;
  uint64_t total = 0;
};

SelfTimes ParseCollapsed(const std::string& text) {
  SelfTimes out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const uint64_t count = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    const std::string stack = line.substr(0, space);
    const size_t semi = stack.rfind(';');
    const std::string leaf =
        semi == std::string::npos ? stack : stack.substr(semi + 1);
    out.by_leaf[leaf] += count;
    out.total += count;
  }
  return out;
}

TEST(ProfilerTest, StartStopLifecycle) {
  obs::Profiler& profiler = obs::Profiler::Default();
  profiler.Stop();  // Not running: no-op.
  Status s = profiler.Start();
  SKIP_IF_UNSUPPORTED(s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start().ok()) << "double start must fail";
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  profiler.Stop();  // Double stop: no-op.
}

TEST(ProfilerTest, RejectsNonPositivePeriods) {
  obs::ProfilerOptions options;
  options.sample_period_micros = 0;
  Status s = obs::Profiler::Default().Start(options);
  SKIP_IF_UNSUPPORTED(s);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// The core attribution claim: a function burning ~all the CPU between
// Start and Stop receives >= 80% of the self-time samples, under its
// own (unmangled) name, tagged with the registering thread's phase.
// This is also the ASan/UBSan signal-safety exercise: hundreds of
// handler invocations on this thread with sanitizers watching.
TEST(ProfilerTest, HotFunctionDominatesSelfTime) {
  obs::Profiler& profiler = obs::Profiler::Default();
  obs::ProfilerOptions options;
  options.sample_period_micros = 499;
  options.drain_period_millis = 20;
  Status s = profiler.Start(options);
  SKIP_IF_UNSUPPORTED(s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  {
    obs::ProfilerThreadScope thread_scope("test.hot");
    trex_profiler_test_hot_spin(300'000'000);  // 300ms of CPU.
  }
  profiler.Stop();

  const obs::ProfilerStats stats = profiler.stats();
  // 300ms at a 499us period is ~600 samples unloaded. Under CPU
  // contention SIGPROF coalesces to roughly one delivery per
  // reschedule (standard signals do not queue), so a busy ctest -j
  // machine legitimately sees far fewer — the floor only proves the
  // sampler fired repeatedly, the share assertion below carries the
  // accuracy claim.
  ASSERT_GE(stats.samples, 20u) << "sampler did not fire";
  EXPECT_EQ(stats.dropped, 0u);

  const std::string collapsed = profiler.CollapsedStacks();
  ASSERT_FALSE(collapsed.empty());
  EXPECT_NE(collapsed.find("test.hot;"), std::string::npos)
      << "phase tag missing in:\n"
      << collapsed;

  const SelfTimes self = ParseCollapsed(collapsed);
  ASSERT_GT(self.total, 0u);
  uint64_t hot = 0;
  for (const auto& [leaf, count] : self.by_leaf) {
    if (leaf.find(kHotName) != std::string::npos) hot += count;
  }
  EXPECT_GE(static_cast<double>(hot),
            0.8 * static_cast<double>(self.total))
      << "hot function got " << hot << "/" << self.total
      << " self-time samples:\n"
      << collapsed;
}

TEST(ProfilerTest, JsonExportCarriesSchemaAndSamples) {
  obs::Profiler& profiler = obs::Profiler::Default();
  // Short drain period: threads registering after Start are armed on
  // the next aggregator tick, and this scope must be armed well within
  // the spin below.
  obs::ProfilerOptions options;
  options.drain_period_millis = 10;
  Status s = profiler.Start(options);
  SKIP_IF_UNSUPPORTED(s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  {
    obs::ProfilerThreadScope thread_scope("test.json");
    trex_profiler_test_hot_spin(150'000'000);
  }
  profiler.Stop();
  const std::string json = profiler.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"cpu_profile\""), std::string::npos) << json;
  EXPECT_NE(json.find(kHotName), std::string::npos)
      << "hot function missing from JSON export";
}

// Four worker threads running hot under the sampler while the main
// thread cycles Start/Stop: the TSan stage proves timer arming,
// sample draining, phase push/pop and trie folding are race-free.
TEST(ProfilerConcurrencyTest, StartStopUnderConcurrentThreads) {
  {
    Status s = obs::Profiler::Default().Start();
    SKIP_IF_UNSUPPORTED(s);
    obs::Profiler::Default().Stop();
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&stop, i] {
      const std::string label = "test.worker." + std::to_string(i);
      obs::ProfilerThreadScope scope(label.c_str());
      while (!stop.load(std::memory_order_relaxed)) {
        trex_profiler_test_hot_spin(1'000'000);
        obs::ProfilePhaseScope phase("test.inner");
        trex_profiler_test_hot_spin(1'000'000);
      }
    });
  }
  obs::Profiler& profiler = obs::Profiler::Default();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(profiler.Start().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    profiler.Stop();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
}

// Threads that register and exit while the profiler keeps running:
// the retired-state handoff to the aggregator must neither leak nor
// double-free, and a timer must never fire into a dead thread state.
TEST(ProfilerConcurrencyTest, ThreadChurnWhileProfiling) {
  obs::Profiler& profiler = obs::Profiler::Default();
  Status s = profiler.Start();
  SKIP_IF_UNSUPPORTED(s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> burst;
    for (int i = 0; i < 4; ++i) {
      burst.emplace_back([] {
        obs::ProfilerThreadScope scope("test.churn");
        trex_profiler_test_hot_spin(3'000'000);
      });
    }
    for (std::thread& t : burst) t.join();
  }
  profiler.Stop();
  EXPECT_GT(profiler.stats().threads, 0u);
}

}  // namespace
}  // namespace trex
