// Quickstart: build a tiny index from inline XML documents, run one NEXI
// query with each retrieval strategy, and print the top-10 answers.
//
//   ./examples/quickstart [workdir]
#include <cstdio>
#include <string>
#include <vector>

#include "trex/trex.h"

namespace {

// A miniature IEEE-flavoured collection (three "articles").
const char* kDocuments[] = {
    "<books><journal><article><fm><atl>XML retrieval in practice</atl></fm>"
    "<bdy><sec><st>Introduction</st><p>XML retrieval combines structure and"
    " content. Query evaluation over XML documents needs indexes.</p></sec>"
    "<sec><st>Evaluation</st><p>We study query evaluation strategies and"
    " rank answers by relevance.</p></sec></bdy></article></journal></books>",

    "<books><journal><article><fm><atl>Databases on solid ground</atl></fm>"
    "<bdy><sec><st>Storage</st><p>B-trees store tables on disk. Buffer"
    " management hides latency.</p></sec><ss1><st>Indexing</st><p>Inverted"
    " lists map keywords to positions; XML summaries map paths to"
    " extents.</p></ss1></bdy></article></journal></books>",

    "<books><journal><article><fm><atl>Top-k everywhere</atl></fm>"
    "<bdy><sec><st>Threshold algorithms</st><p>The threshold algorithm"
    " reads score-sorted lists and stops early for top-k query"
    " evaluation.</p></sec></bdy></article></journal></books>",
};

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "quickstart_index";

  // 1. Build the index (Elements + PostingLists + alias incoming summary).
  trex::TrexOptions options;
  options.index.aliases = trex::IeeeAliasMap();
  std::vector<std::string> docs(std::begin(kDocuments), std::end(kDocuments));
  auto built = trex::TReX::BuildFromDocuments(dir, docs, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<trex::TReX> trex = std::move(built).value();
  std::printf("indexed %llu documents, %llu elements\n",
              static_cast<unsigned long long>(
                  trex->index()->stats().num_documents),
              static_cast<unsigned long long>(
                  trex->index()->stats().num_elements));

  const std::string query =
      "//article[about(., xml)]//sec[about(., query evaluation)]";
  std::printf("\nNEXI query: %s\n", query.c_str());

  // 2. Evaluate with ERA (always available).
  auto answer = trex->Query(query, 10);
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nstrategy chosen: %s\n",
              trex::RetrievalMethodName(answer.value().method));
  std::printf("%-4s %-8s %-40s %s\n", "rank", "score", "path",
              "(doc, endpos)");
  const trex::Summary& summary = trex->index()->summary();
  for (size_t i = 0; i < answer.value().result.elements.size(); ++i) {
    const auto& e = answer.value().result.elements[i];
    std::printf("%-4zu %-8.4f %-40s (%u, %llu)\n", i + 1, e.score,
                summary.PathOf(e.element.sid).c_str(), e.element.docid,
                static_cast<unsigned long long>(e.element.endpos));
  }

  // 3. Materialize the redundant top-k lists and re-run with TA & Merge.
  trex::MaterializeStats stats;
  TREX_CHECK_OK(trex->MaterializeFor(query, /*rpls=*/true, /*erpls=*/true,
                                     &stats));
  std::printf("\nmaterialized %zu redundant lists (%llu bytes)\n",
              stats.lists_written,
              static_cast<unsigned long long>(stats.bytes_written));
  for (trex::RetrievalMethod method :
       {trex::RetrievalMethod::kTa, trex::RetrievalMethod::kMerge}) {
    auto again = trex->QueryWith(method, query, 3);
    TREX_CHECK_OK(again.status());
    std::printf("%s top-1: score %.4f at %s\n",
                trex::RetrievalMethodName(method),
                again.value().result.elements[0].score,
                summary.PathOf(again.value().result.elements[0].element.sid)
                    .c_str());
  }
  return 0;
}
