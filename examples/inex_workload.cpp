// The §4 story end-to-end: generate an INEX-like collection, define a
// workload of top-k queries with frequencies, let the self-manager choose
// which redundant indexes (RPLs / ERPLs) to materialize under a disk
// budget — with both the greedy 2-approximation and the exact ILP — and
// show the per-query strategy and measured speedup.
//
//   ./examples/inex_workload [workdir] [budget_bytes] [workload.txt]
//
// The optional workload file uses the text format of
// Workload::ParseFromText: one "<frequency> <k> <nexi>" per line.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "corpus/ieee_generator.h"
#include "storage/env.h"
#include "trex/trex.h"

namespace {

const char* ChoiceName(trex::IndexChoice choice) {
  switch (choice) {
    case trex::IndexChoice::kNone:
      return "none (ERA)";
    case trex::IndexChoice::kErpl:
      return "ERPLs (Merge)";
    case trex::IndexChoice::kRpl:
      return "RPLs (TA)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "inex_workload_index";
  uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                             : (2ull << 20);  // 2 MiB default.

  trex::TrexOptions options;
  options.index.aliases = trex::IeeeAliasMap();
  trex::IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 800;
  trex::IeeeGenerator generator(gen_options);
  std::printf("building an IEEE-like index (%zu documents)...\n",
              generator.num_documents());
  auto built = trex::TReX::Build(dir, generator, options);
  TREX_CHECK_OK(built.status());
  auto trex = std::move(built).value();

  // A workload in the sense of Definition 4.1 — from a file when given,
  // otherwise a built-in INEX-flavoured default.
  trex::Workload workload;
  if (argc > 3) {
    auto text = trex::Env::ReadFileToString(argv[3]);
    TREX_CHECK_OK(text.status());
    auto parsed = trex::Workload::ParseFromText(text.value());
    TREX_CHECK_OK(parsed.status());
    workload = std::move(parsed).value();
    std::printf("loaded %zu queries from %s\n", workload.size(), argv[3]);
  } else {
    workload.Add("//article[about(., ontologies)]//sec[about(., ontologies "
                 "case study)]",
                 0.40, 10);
    workload.Add("//sec[about(., code signing verification)]", 0.25, 10);
    workload.Add("//article//sec[about(., introduction information "
                 "retrieval)]",
                 0.20, 100);
    workload.Add("//article[about(.//bdy, synthesizers) and about(.//bdy, "
                 "music)]",
                 0.15, 10);
  }
  TREX_CHECK_OK(workload.Validate());
  TREX_CHECK_OK(workload.Prepare(trex->index()));

  for (auto solver : {trex::SelfManagerOptions::Solver::kGreedy,
                      trex::SelfManagerOptions::Solver::kIlp}) {
    trex::SelfManagerOptions manager_options;
    manager_options.solver = solver;
    manager_options.costs = trex::SelfManagerOptions::Costs::kMeasured;
    manager_options.disk_budget_bytes = budget;
    manager_options.drop_unchosen = true;  // Re-plan from scratch.

    std::printf("\n=== self-manager (%s, budget %llu bytes) ===\n",
                solver == trex::SelfManagerOptions::Solver::kGreedy
                    ? "greedy 2-approximation"
                    : "exact ILP branch-and-bound",
                static_cast<unsigned long long>(budget));
    trex::SelfManagerReport report;
    TREX_CHECK_OK(trex->SelfManage(workload, manager_options, &report));
    std::printf("materialized %llu of %llu budget bytes; expected weighted "
                "saving %.4f s/query\n",
                static_cast<unsigned long long>(report.bytes_materialized),
                static_cast<unsigned long long>(report.bytes_budget),
                report.total_weighted_saving);

    std::printf("%-14s %-22s %-10s %-14s\n", "choice", "method-used",
                "time(s)", "query");
    for (const auto& pq : report.queries) {
      auto answer = trex->Query(pq.nexi, 10);
      TREX_CHECK_OK(answer.status());
      std::printf("%-14s %-22s %-10.4f %.48s...\n", ChoiceName(pq.choice),
                  trex::RetrievalMethodName(answer.value().method),
                  answer.value().result.metrics.wall_seconds,
                  pq.nexi.c_str());
    }
  }
  return 0;
}
