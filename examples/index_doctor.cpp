// index_doctor: open an index directory, print its statistics, verify
// every structural invariant (Elements ordering and extent
// disjointness, posting-list order and m-pos sentinels, RPL/ERPL block
// order, catalog consistency), and report the result.
//
//   ./examples/index_doctor <index-dir>
//   ./examples/index_doctor --demo <workdir>    # Build a demo index first.
#include <cstdio>
#include <string>

#include "corpus/ieee_generator.h"
#include "obs/metrics.h"
#include "retrieval/materializer.h"
#include "trex/trex.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s (<index-dir> | --demo <workdir>)\n",
                 argv[0]);
    return 2;
  }
  std::string dir;
  if (std::string(argv[1]) == "--demo") {
    if (argc < 3) {
      std::fprintf(stderr, "--demo needs a workdir\n");
      return 2;
    }
    dir = std::string(argv[2]) + "/index";
    trex::TrexOptions options;
    options.index.aliases = trex::IeeeAliasMap();
    trex::IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 120;
    trex::IeeeGenerator gen(gen_options);
    std::printf("building a demo index in %s ...\n", dir.c_str());
    auto built = trex::TReX::Build(dir, gen, options);
    TREX_CHECK_OK(built.status());
    // Materialize a couple of lists so the catalog is non-trivial.
    trex::MaterializeStats stats;
    TREX_CHECK_OK(built.value()->MaterializeFor(
        "//article//sec[about(., ontologies)]", true, true, &stats));
    TREX_CHECK_OK(built.value()->index()->Flush());
  } else {
    dir = argv[1];
  }

  auto index = trex::Index::Open(dir);
  if (!index.ok()) {
    std::fprintf(stderr, "cannot open index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", index.value()->DebugStats().c_str());

  // B+-tree shape of the two base tables.
  struct Named {
    const char* name;
    trex::BPTree* tree;
  };
  Named trees[] = {
      {"Elements", index.value()->elements()->table()->tree()},
      {"PostingLists", index.value()->postings()->postings_table()->tree()},
  };
  for (const Named& t : trees) {
    trex::BPTree::TreeStats stats;
    TREX_CHECK_OK(t.tree->Analyze(&stats));
    std::printf(
        "%-14s height %u, %llu internal + %llu leaf nodes, fill %.2f\n",
        t.name, stats.height,
        static_cast<unsigned long long>(stats.internal_nodes),
        static_cast<unsigned long long>(stats.leaf_nodes),
        stats.leaf_fill_factor);
  }
  std::printf("\n");

  std::printf("verifying invariants ... ");
  std::fflush(stdout);
  trex::Status s = index.value()->Verify();
  if (s.ok()) {
    std::printf("OK\n");
  } else {
    std::printf("FAILED\n  %s\n", s.ToString().c_str());
  }

  // Cumulative process metrics — the storage I/O that the checks above
  // cost is itself a useful smoke signal (e.g. a zero hit rate points at
  // an undersized buffer pool).
  std::printf("\nmetrics: %s\n",
              trex::obs::Default().Snapshot().ToJson().c_str());
  return s.ok() ? 0 : 1;
}
