// index_doctor: open an index directory, print its statistics, verify
// its invariants, and optionally repair it after a crash.
//
//   ./examples/index_doctor <index-dir>            # Stats + logical Verify().
//   ./examples/index_doctor <index-dir> --verify   # + page-level DeepVerify.
//   ./examples/index_doctor <index-dir> --repair   # RecoverIndex + reverify.
//   ./examples/index_doctor <index-dir> --events   # + flight-recorder dump.
//   ./examples/index_doctor <index-dir> --events --kind=retry  # One kind.
//   ./examples/index_doctor --demo <workdir>       # Build a demo index first.
//
// --inject <spec> installs a deterministic fault-injecting Env before
// anything touches disk, for exercising the failure paths by hand. The
// spec is comma-separated kind=N pairs counting I/O operations from
// process start:
//   fail_write=N   Nth write fails with IOError
//   torn=N[:B]     Nth write persists only its first B bytes (default 512)
//                  and the process "loses power" (later writes dropped)
//   flip_read=N    one bit of the Nth read is flipped
//   fail_sync=N    Nth sync fails with IOError
//   crash=N        power loss after N writes (later writes dropped)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "corpus/ieee_generator.h"
#include "index/recovery.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "retrieval/materializer.h"
#include "storage/fault_env.h"
#include "trex/trex.h"

namespace {

bool ParseFaultSpec(const std::string& spec, trex::FaultPlan* plan) {
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    std::string kind = item.substr(0, eq);
    std::string arg = item.substr(eq + 1);
    char* end = nullptr;
    long n = std::strtol(arg.c_str(), &end, 10);
    if (end == arg.c_str() || n < 0) return false;
    if (kind == "fail_write") {
      plan->fail_write_at = n;
    } else if (kind == "torn") {
      plan->torn_write_at = n;
      if (*end == ':') plan->torn_bytes = std::strtoul(end + 1, nullptr, 10);
    } else if (kind == "flip_read") {
      plan->flip_read_bit_at = n;
    } else if (kind == "fail_sync") {
      plan->fail_sync_at = n;
    } else if (kind == "crash") {
      plan->crash_after_writes = n;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool demo = false;
  bool deep = false;
  bool repair = false;
  bool events = false;
  std::string events_kind;
  trex::FaultPlan plan;
  bool inject = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--verify") {
      deep = true;
    } else if (arg == "--repair") {
      repair = true;
    } else if (arg == "--events") {
      events = true;
    } else if (arg.rfind("--kind=", 0) == 0) {
      events_kind = arg.substr(7);
    } else if (arg == "--inject") {
      if (++i >= argc || !ParseFaultSpec(argv[i], &plan)) {
        std::fprintf(stderr, "--inject needs a spec like crash=150,torn=40\n");
        return 2;
      }
      inject = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      dir = arg;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--inject spec] [--events [--kind=<k>]] "
                 "(<index-dir> [--verify|--repair] | --demo <workdir>)\n",
                 argv[0]);
    return 2;
  }

  std::unique_ptr<trex::FaultInjectingEnv> fault_env;
  if (inject) {
    fault_env = std::make_unique<trex::FaultInjectingEnv>();
    fault_env->plan() = plan;
    trex::Env::Swap(fault_env.get());
    std::printf("fault injection armed\n");
  }

  if (demo) {
    std::string workdir = dir;
    dir = workdir + "/index";
    trex::TrexOptions options;
    options.index.aliases = trex::IeeeAliasMap();
    trex::IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 120;
    trex::IeeeGenerator gen(gen_options);
    std::printf("building a demo index in %s ...\n", dir.c_str());
    auto built = trex::TReX::Build(dir, gen, options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      if (fault_env != nullptr && fault_env->crashed()) {
        std::fprintf(stderr, "(injected crash after %llu writes)\n",
                     static_cast<unsigned long long>(fault_env->writes()));
      }
      trex::Env::Swap(nullptr);
      return 1;
    }
    // Materialize a couple of lists so the catalog is non-trivial.
    trex::MaterializeStats stats;
    TREX_CHECK_OK(built.value()->MaterializeFor(
        "//article//sec[about(., ontologies)]", true, true, &stats));
    TREX_CHECK_OK(built.value()->index()->Flush());
  }

  if (repair) {
    trex::RecoveryReport report;
    trex::Status s = trex::RecoverIndex(dir, &report);
    if (!s.ok()) {
      std::fprintf(stderr, "repair failed: %s\n", s.ToString().c_str());
      trex::Env::Swap(nullptr);
      return 1;
    }
    std::printf("%s\n", report.ToString().c_str());
  }

  auto index = trex::Index::Open(dir);
  if (!index.ok()) {
    std::fprintf(stderr, "cannot open index: %s\n",
                 index.status().ToString().c_str());
    std::fprintf(stderr, "hint: rerun with --repair\n");
    trex::Env::Swap(nullptr);
    return 1;
  }
  std::printf("%s\n", index.value()->DebugStats().c_str());

  // B+-tree shape of the two base tables.
  struct Named {
    const char* name;
    trex::BPTree* tree;
  };
  Named trees[] = {
      {"Elements", index.value()->elements()->table()->tree()},
      {"PostingLists", index.value()->postings()->postings_table()->tree()},
  };
  for (const Named& t : trees) {
    trex::BPTree::TreeStats stats;
    trex::Status as = t.tree->Analyze(&stats);
    if (!as.ok()) {
      // Keep going: the whole point of the doctor is reporting on damaged
      // indexes, and the verify pass below gives the full diagnosis.
      std::printf("%-14s unreadable: %s\n", t.name, as.ToString().c_str());
      continue;
    }
    std::printf(
        "%-14s height %u, %llu internal + %llu leaf nodes, fill %.2f\n",
        t.name, stats.height,
        static_cast<unsigned long long>(stats.internal_nodes),
        static_cast<unsigned long long>(stats.leaf_nodes),
        stats.leaf_fill_factor);
  }
  std::printf("\n");

  trex::Status s;
  if (deep || repair) {
    std::printf("deep-verifying pages + invariants ... ");
    std::fflush(stdout);
    s = index.value()->DeepVerify();
  } else {
    std::printf("verifying invariants ... ");
    std::fflush(stdout);
    s = index.value()->Verify();
  }
  if (s.ok()) {
    std::printf("OK\n");
  } else {
    std::printf("FAILED\n  %s\n", s.ToString().c_str());
    if (!repair) std::printf("hint: rerun with --repair\n");
  }

  // Cumulative process metrics — the storage I/O that the checks above
  // cost is itself a useful smoke signal (e.g. a zero hit rate points at
  // an undersized buffer pool).
  std::printf("\nmetrics: %s\n",
              trex::obs::Default().Snapshot().ToJson().c_str());

  if (events) {
    // Everything this process recorded: repairs, catalog changes from the
    // demo build, degradations, retries, sheds. One JSON object per line,
    // oldest first; --kind=<k> keeps only one event kind.
    std::string dump = trex::obs::FlightRecorder::Default().DumpJsonl();
    if (!events_kind.empty()) {
      const std::string needle = "\"kind\":\"" + events_kind + "\"";
      std::string filtered;
      size_t pos = 0;
      while (pos < dump.size()) {
        size_t eol = dump.find('\n', pos);
        if (eol == std::string::npos) eol = dump.size();
        std::string line = dump.substr(pos, eol - pos);
        if (line.find(needle) != std::string::npos) filtered += line + "\n";
        pos = eol + 1;
      }
      dump = std::move(filtered);
    }
    const std::string label =
        events_kind.empty() ? "" : ", kind=" + events_kind;
    std::printf("\nflight events (%llu recorded%s):\n%s",
                static_cast<unsigned long long>(
                    trex::obs::FlightRecorder::Default().recorded()),
                label.c_str(), dump.c_str());
  }
  trex::Env::Swap(nullptr);
  return s.ok() ? 0 : 1;
}
