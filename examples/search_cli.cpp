// search_cli: index a directory of XML documents and answer NEXI queries
// end-to-end, printing matched element paths and text snippets.
//
//   # Generate a demo corpus, index it, and run queries:
//   ./examples/search_cli --demo workdir "//article[about(., xml)]"
//
//   # Or index your own directory of .xml files:
//   ./examples/search_cli /path/to/xml-dir workdir "//sec[about(., x)]"
//
//   # Append --explain to print the per-query trace (EXPLAIN) as JSON;
//   # --threads N answers through an N-worker QueryExecutor over a
//   # shared read-only handle:
//   ./examples/search_cli --demo workdir "//article[about(., xml)]" 10 \
//       --explain --threads 4
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/ieee_generator.h"
#include "index/index_builder.h"
#include "trex/query_executor.h"
#include "trex/trex.h"

namespace {

// Extracts a short snippet around the element span from the raw document.
std::string Snippet(const std::string& doc, const trex::ElementInfo& e) {
  size_t start = static_cast<size_t>(e.start());
  size_t len = std::min<size_t>(e.length, 120);
  if (start >= doc.size()) return "";
  std::string out = doc.substr(start, std::min(len, doc.size() - start));
  for (char& c : out) {
    if (c == '\n' || c == '\t') c = ' ';
  }
  if (e.length > len) out += "...";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  size_t threads = 1;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoll(argv[++i]));
      if (threads == 0) threads = 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 3) {
    std::fprintf(stderr,
                 "usage: %s (--demo | <xml-dir>) <workdir> <nexi-query> "
                 "[k] [--explain] [--threads N]\n",
                 argv[0]);
    return 2;
  }
  std::string source = args[0];
  std::string workdir = args[1];
  std::string query = args[2];
  size_t k = args.size() > 3 ? static_cast<size_t>(std::atoll(args[3])) : 10;

  std::string corpus_dir = workdir + "/corpus";
  if (source == "--demo") {
    trex::IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 150;
    trex::IeeeGenerator generator(gen_options);
    TREX_CHECK_OK(trex::WriteCorpusToDir(generator, corpus_dir));
  } else {
    // Import the user's .xml files into corpus layout.
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(source)) {
      if (entry.path().extension() == ".xml") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "no .xml files in %s\n", source.c_str());
      return 1;
    }
    TREX_CHECK_OK(trex::Env::CreateDir(corpus_dir));
    for (size_t i = 0; i < files.size(); ++i) {
      auto contents = trex::Env::ReadFileToString(files[i]);
      TREX_CHECK_OK(contents.status());
      TREX_CHECK_OK(trex::Env::WriteStringToFile(
          corpus_dir + "/" +
              trex::Corpus::DocumentFileName(static_cast<trex::DocId>(i)),
          contents.value()));
    }
    TREX_CHECK_OK(trex::Env::WriteStringToFile(
        corpus_dir + "/corpus.txt",
        "documents " + std::to_string(files.size()) + "\n"));
  }

  auto corpus = trex::Corpus::Open(corpus_dir);
  TREX_CHECK_OK(corpus.status());

  // Build (or reuse) the index.
  std::string index_dir = workdir + "/index";
  trex::TrexOptions options;
  options.index.aliases = trex::IeeeAliasMap();
  std::unique_ptr<trex::TReX> trex;
  if (trex::Env::FileExists(index_dir + "/manifest.txt")) {
    auto opened = trex::TReX::Open(index_dir, options);
    TREX_CHECK_OK(opened.status());
    trex = std::move(opened).value();
  } else {
    trex::IndexBuilder builder(index_dir, options.index);
    for (size_t i = 0; i < corpus.value().num_documents(); ++i) {
      auto doc = corpus.value().ReadDocument(static_cast<trex::DocId>(i));
      TREX_CHECK_OK(doc.status());
      trex::Status s = builder.AddDocument(static_cast<trex::DocId>(i),
                                           doc.value());
      if (!s.ok()) {
        std::fprintf(stderr, "skipping document %zu: %s\n", i,
                     s.ToString().c_str());
        return 1;
      }
    }
    TREX_CHECK_OK(builder.Finish());
    auto opened = trex::TReX::Open(index_dir, options);
    TREX_CHECK_OK(opened.status());
    trex = std::move(opened).value();
  }

  trex::Result<trex::QueryAnswer> answer = trex::Status::Aborted("unset");
  if (threads > 1) {
    // Serve through an N-worker pool over a shared read-only handle —
    // the same query runs once per worker and all copies must agree.
    trex.reset();
    auto shared = trex::TReX::Open(index_dir, options,
                                   trex::OpenMode::kReadShared);
    TREX_CHECK_OK(shared.status());
    trex = std::move(shared).value();
    trex::QueryExecutor executor(trex.get(), threads);
    std::vector<std::future<trex::Result<trex::QueryAnswer>>> futures;
    for (size_t i = 0; i < threads; ++i) {
      futures.push_back(executor.Submit(query, k));
    }
    answer = futures[0].get();
    for (size_t i = 1; i < threads; ++i) {
      auto copy = futures[i].get();
      if (answer.ok() && copy.ok() &&
          copy.value().result.elements.size() !=
              answer.value().result.elements.size()) {
        std::fprintf(stderr, "thread %zu disagreed with thread 0\n", i);
        return 1;
      }
    }
    std::printf("[%zu worker threads, QueryExecutor, read-shared handle]\n",
                threads);
  } else {
    answer = trex->Query(query, k);
  }
  if (!answer.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\nstrategy: %s; %zu sids, %zu terms; %.4f s\n\n",
              query.c_str(),
              trex::RetrievalMethodName(answer.value().method),
              answer.value().translation.flattened.sids.size(),
              answer.value().translation.flattened.terms.size(),
              answer.value().result.metrics.wall_seconds);
  const trex::Summary& summary = trex->index()->summary();
  for (size_t i = 0; i < answer.value().result.elements.size(); ++i) {
    const auto& e = answer.value().result.elements[i];
    auto doc = corpus.value().ReadDocument(e.element.docid);
    TREX_CHECK_OK(doc.status());
    std::printf("%2zu. score %-8.4f doc%06u %s\n    %s\n", i + 1, e.score,
                e.element.docid, summary.PathOf(e.element.sid).c_str(),
                Snippet(doc.value(), e.element).c_str());
  }
  if (answer.value().result.elements.empty()) {
    std::printf("(no answers)\n");
  }
  if (explain && answer.value().trace != nullptr) {
    std::printf("\nexplain: %s\n", answer.value().trace->ToJson().c_str());
  }
  return 0;
}
