// search_cli: index a directory of XML documents and answer NEXI queries
// end-to-end, printing matched element paths and text snippets.
//
//   # Generate a demo corpus, index it, and run queries:
//   ./examples/search_cli --demo workdir "//article[about(., xml)]"
//
//   # Or index your own directory of .xml files:
//   ./examples/search_cli /path/to/xml-dir workdir "//sec[about(., x)]"
//
//   # Append --explain to print the per-query trace (EXPLAIN) as JSON;
//   # --threads N answers through an N-worker QueryExecutor over a
//   # shared read-only handle (with --explain this also prints the
//   # per-worker trex.executor.* metrics and an aggregate footer):
//   ./examples/search_cli --demo workdir "//article[about(., xml)]" 10 \
//       --explain --threads 4
//
//   # Performance plumbing:
//   #   --trace-out=x.json   write the query trace(s) in Chrome
//   #                        trace_event format (chrome://tracing)
//   #   --budget-pages=N     fail the query with ResourceExhausted
//   #                        after N buffer-pool page accesses
//   #   --slow-log=PATH      append queries over the --slow-ms
//   #                        threshold (default 50) to PATH as JSONL
//
//   # Online self-management: record the served queries into the
//   # workload sketch, run an advisor tick, and show the query being
//   # re-served from the freshly materialized lists (the background
//   # loop keeps ticking every --advisor-interval=MS, default 2000):
//   ./examples/search_cli --demo workdir "//article[about(., xml)]" 10
//       --self-manage
//
//   # Observability plumbing:
//   #   --explain-advisor    print the advisor's decision audit and the
//   #                        cost-model calibration metrics (implies
//   #                        --self-manage)
//   #   --stats-prom=PATH    keep a Prometheus text exposition rewritten
//   #                        periodically (and once at exit)
//   #   --post-mortem=PATH   install fatal-signal handlers that append
//   #                        the flight-recorder ring to PATH as JSONL
//   #   --profile-out=PATH   sample CPU for the whole serve, write a
//   #                        collapsed-stack profile (flamegraph.pl
//   #                        input) at exit
//   #   --repeat=N           re-serve the query N times (load for the
//   #                        crash-dump and contention smoke tests)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "advisor/decision_log.h"
#include "corpus/corpus.h"
#include "corpus/ieee_generator.h"
#include "index/index_builder.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/prom.h"
#include "obs/slow_query_log.h"
#include "obs/snapshotter.h"
#include "trex/query_executor.h"
#include "trex/trex.h"

namespace {

// Extracts a short snippet around the element span from the raw document.
std::string Snippet(const std::string& doc, const trex::ElementInfo& e) {
  size_t start = static_cast<size_t>(e.start());
  size_t len = std::min<size_t>(e.length, 120);
  if (start >= doc.size()) return "";
  std::string out = doc.substr(start, std::min(len, doc.size() - start));
  for (char& c : out) {
    if (c == '\n' || c == '\t') c = ' ';
  }
  if (e.length > len) out += "...";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  bool explain_advisor = false;
  bool self_manage = false;
  int64_t advisor_interval_ms = 2000;
  size_t threads = 1;
  std::string trace_out;
  std::string slow_log_path;
  std::string prom_path;
  std::string post_mortem_path;
  std::string profile_out;
  uint64_t repeat = 1;
  double slow_ms = 50.0;
  uint64_t budget_pages = 0;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--explain-advisor") == 0) {
      explain_advisor = true;
    } else if (std::strncmp(argv[i], "--stats-prom=", 13) == 0) {
      prom_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--post-mortem=", 14) == 0) {
      post_mortem_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--profile-out=", 14) == 0) {
      profile_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = static_cast<uint64_t>(std::atoll(argv[i] + 9));
      if (repeat == 0) repeat = 1;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoll(argv[++i]));
      if (threads == 0) threads = 1;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--slow-log=", 11) == 0) {
      slow_log_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--slow-ms=", 10) == 0) {
      slow_ms = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--budget-pages=", 15) == 0) {
      budget_pages = static_cast<uint64_t>(std::atoll(argv[i] + 15));
    } else if (std::strcmp(argv[i], "--self-manage") == 0) {
      self_manage = true;
    } else if (std::strncmp(argv[i], "--advisor-interval=", 19) == 0) {
      advisor_interval_ms = std::atoll(argv[i] + 19);
      if (advisor_interval_ms <= 0) advisor_interval_ms = 2000;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 3) {
    std::fprintf(stderr,
                 "usage: %s (--demo | <xml-dir>) <workdir> <nexi-query> "
                 "[k] [--explain] [--explain-advisor] [--threads N] "
                 "[--trace-out=PATH] [--budget-pages=N] [--slow-log=PATH] "
                 "[--slow-ms=MS] [--self-manage] [--advisor-interval=MS] "
                 "[--stats-prom=PATH] [--post-mortem=PATH] "
                 "[--profile-out=PATH] [--repeat=N]\n",
                 argv[0]);
    return 2;
  }
  if (explain_advisor) self_manage = true;
  // --profile-out: sample this process' CPU for the whole serve and
  // write a collapsed-stack (flamegraph-ready) profile on any exit
  // path. The main thread registers here; executor workers, race
  // contestants and the advisor loop register themselves.
  trex::obs::ProfilerThreadScope profiler_thread("cli.main");
  struct ProfileWriter {
    std::string path;
    ~ProfileWriter() {
      if (path.empty()) return;
      trex::obs::Profiler& profiler = trex::obs::Profiler::Default();
      profiler.Stop();
      const trex::obs::ProfilerStats stats = profiler.stats();
      trex::Status s = profiler.WriteCollapsed(path);
      if (!s.ok()) {
        std::fprintf(stderr, "cannot write profile %s: %s\n", path.c_str(),
                     s.ToString().c_str());
        return;
      }
      std::fprintf(stderr,
                   "profile: %llu samples (%llu dropped) over %llu "
                   "threads written to %s\n",
                   static_cast<unsigned long long>(stats.samples),
                   static_cast<unsigned long long>(stats.dropped),
                   static_cast<unsigned long long>(stats.threads),
                   path.c_str());
    }
  } profile_writer;
  if (!profile_out.empty()) {
    trex::Status s = trex::obs::Profiler::Default().Start();
    if (s.ok()) {
      profile_writer.path = profile_out;
    } else {
      std::fprintf(stderr, "profiler disabled: %s\n", s.ToString().c_str());
    }
  }
  if (!post_mortem_path.empty() &&
      !trex::obs::InstallPostMortemDump(post_mortem_path)) {
    std::fprintf(stderr, "cannot install post-mortem dump to %s\n",
                 post_mortem_path.c_str());
    return 1;
  }
  std::unique_ptr<trex::obs::MetricsSnapshotter> snapshotter;
  if (!prom_path.empty()) {
    trex::obs::MetricsSnapshotter::Options snap_options;
    snap_options.prom_path = prom_path;
    snap_options.period_millis = 250;
    snapshotter =
        std::make_unique<trex::obs::MetricsSnapshotter>(snap_options);
    if (!snapshotter->Start()) {
      std::fprintf(stderr, "cannot start metrics snapshotter\n");
      return 1;
    }
  }
  std::string source = args[0];
  std::string workdir = args[1];
  std::string query = args[2];
  size_t k = args.size() > 3 ? static_cast<size_t>(std::atoll(args[3])) : 10;

  std::string corpus_dir = workdir + "/corpus";
  if (source == "--demo") {
    trex::IeeeGeneratorOptions gen_options;
    gen_options.num_documents = 150;
    trex::IeeeGenerator generator(gen_options);
    TREX_CHECK_OK(trex::WriteCorpusToDir(generator, corpus_dir));
  } else {
    // Import the user's .xml files into corpus layout.
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(source)) {
      if (entry.path().extension() == ".xml") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "no .xml files in %s\n", source.c_str());
      return 1;
    }
    TREX_CHECK_OK(trex::Env::CreateDir(corpus_dir));
    for (size_t i = 0; i < files.size(); ++i) {
      auto contents = trex::Env::ReadFileToString(files[i]);
      TREX_CHECK_OK(contents.status());
      TREX_CHECK_OK(trex::Env::WriteStringToFile(
          corpus_dir + "/" +
              trex::Corpus::DocumentFileName(static_cast<trex::DocId>(i)),
          contents.value()));
    }
    TREX_CHECK_OK(trex::Env::WriteStringToFile(
        corpus_dir + "/corpus.txt",
        "documents " + std::to_string(files.size()) + "\n"));
  }

  auto corpus = trex::Corpus::Open(corpus_dir);
  TREX_CHECK_OK(corpus.status());

  // Build (or reuse) the index.
  std::string index_dir = workdir + "/index";
  trex::TrexOptions options;
  options.index.aliases = trex::IeeeAliasMap();
  std::unique_ptr<trex::TReX> trex;
  if (trex::Env::FileExists(index_dir + "/manifest.txt")) {
    auto opened = trex::TReX::Open(index_dir, options);
    TREX_CHECK_OK(opened.status());
    trex = std::move(opened).value();
  } else {
    trex::IndexBuilder builder(index_dir, options.index);
    for (size_t i = 0; i < corpus.value().num_documents(); ++i) {
      auto doc = corpus.value().ReadDocument(static_cast<trex::DocId>(i));
      TREX_CHECK_OK(doc.status());
      trex::Status s = builder.AddDocument(static_cast<trex::DocId>(i),
                                           doc.value());
      if (!s.ok()) {
        std::fprintf(stderr, "skipping document %zu: %s\n", i,
                     s.ToString().c_str());
        return 1;
      }
    }
    TREX_CHECK_OK(builder.Finish());
    auto opened = trex::TReX::Open(index_dir, options);
    TREX_CHECK_OK(opened.status());
    trex = std::move(opened).value();
  }

  if (self_manage && threads > 1) {
    std::fprintf(stderr,
                 "--self-manage needs a writable handle; it cannot be "
                 "combined with --threads (read-shared serving)\n");
    return 1;
  }
  if (self_manage) {
    // Record every served query into the persisted workload sketch and
    // let the background advisor adapt the materialized lists.
    trex::TReX::SelfManagementOptions sm;
    sm.loop.interval_millis = advisor_interval_ms;
    TREX_CHECK_OK(trex->EnableSelfManagement(std::move(sm)));
  }

  trex::QueryOptions query_options;
  query_options.budget.max_pages = budget_pages;

  std::unique_ptr<trex::obs::SlowQueryLog> slow_log;
  if (!slow_log_path.empty()) {
    trex::obs::SlowQueryLog::Options log_options;
    log_options.jsonl_path = slow_log_path;
    log_options.threshold_nanos = static_cast<int64_t>(slow_ms * 1e6);
    slow_log =
        std::make_unique<trex::obs::SlowQueryLog>(std::move(log_options));
    if (slow_log->sink_failed()) {
      std::fprintf(stderr, "cannot open slow log %s\n",
                   slow_log_path.c_str());
      return 1;
    }
  }

  trex::Result<trex::QueryAnswer> answer = trex::Status::Aborted("unset");
  std::vector<trex::QueryAnswer> all_answers;  // One per worker thread.
  if (threads > 1) {
    // Serve through an N-worker pool over a shared read-only handle —
    // the same query runs once per worker and all copies must agree.
    trex.reset();
    auto shared = trex::TReX::Open(index_dir, options,
                                   trex::OpenMode::kReadShared);
    TREX_CHECK_OK(shared.status());
    trex = std::move(shared).value();
    trex::QueryExecutor executor(trex.get(), threads);
    executor.set_slow_query_log(slow_log.get());
    std::vector<std::future<trex::Result<trex::QueryAnswer>>> futures;
    for (size_t i = 0; i < threads; ++i) {
      futures.push_back(executor.Submit(query, k, query_options));
    }
    answer = futures[0].get();
    if (answer.ok()) all_answers.push_back(answer.value());
    for (size_t i = 1; i < threads; ++i) {
      auto copy = futures[i].get();
      if (answer.ok() && copy.ok() &&
          copy.value().result.elements.size() !=
              answer.value().result.elements.size()) {
        std::fprintf(stderr, "thread %zu disagreed with thread 0\n", i);
        return 1;
      }
      if (copy.ok()) all_answers.push_back(std::move(copy).value());
    }
    std::printf("[%zu worker threads, QueryExecutor, read-shared handle]\n",
                threads);
  } else {
    answer = trex->Query(query, k, query_options);
    if (answer.ok()) {
      all_answers.push_back(answer.value());
      if (slow_log != nullptr) {
        const trex::QueryAnswer& a = answer.value();
        trex::obs::SlowQueryRecord record;
        record.query = query;
        record.method = trex::RetrievalMethodName(a.method);
        record.duration_nanos = a.trace->root()->duration_nanos;
        record.resources = a.resources;
        record.trace_json = a.trace->ToJson();
        slow_log->Observe(std::move(record));
      }
    }
  }
  // --repeat: keep re-serving the same query on the same handle — load
  // generation for the crash-dump and contention smoke tests.
  for (uint64_t r = 1; r < repeat && answer.ok(); ++r) {
    trex::Result<trex::QueryAnswer> again =
        trex->Query(query, k, query_options);
    if (!again.ok()) answer = std::move(again);
  }
  if (!answer.ok()) {
    if (answer.status().IsResourceExhausted()) {
      std::fprintf(stderr,
                   "query aborted by resource budget: %s\n"
                   "(retrieval.budget.exceeded = %llu)\n",
                   answer.status().ToString().c_str(),
                   static_cast<unsigned long long>(
                       trex::obs::Default().Snapshot().counter(
                           "retrieval.budget.exceeded")));
    } else {
      std::fprintf(stderr, "query error: %s\n",
                   answer.status().ToString().c_str());
    }
    return 1;
  }
  std::printf("query: %s\nstrategy: %s; %zu sids, %zu terms; %.4f s\n\n",
              query.c_str(),
              trex::RetrievalMethodName(answer.value().method),
              answer.value().translation.flattened.sids.size(),
              answer.value().translation.flattened.terms.size(),
              answer.value().result.metrics.wall_seconds);
  const trex::Summary& summary = trex->index()->summary();
  for (size_t i = 0; i < answer.value().result.elements.size(); ++i) {
    const auto& e = answer.value().result.elements[i];
    auto doc = corpus.value().ReadDocument(e.element.docid);
    TREX_CHECK_OK(doc.status());
    std::printf("%2zu. score %-8.4f doc%06u %s\n    %s\n", i + 1, e.score,
                e.element.docid, summary.PathOf(e.element.sid).c_str(),
                Snippet(doc.value(), e.element).c_str());
  }
  if (answer.value().result.elements.empty()) {
    std::printf("(no answers)\n");
  }
  if (explain && answer.value().trace != nullptr) {
    std::printf("\nexplain: %s\n", answer.value().trace->ToJson().c_str());
  }
  if (explain) {
    // Per-worker executor metrics (cumulative registry values; with one
    // executor run per process they read as this run's numbers), then
    // an aggregate footer over every answer produced.
    trex::obs::MetricsSnapshot snap = trex::obs::Default().Snapshot();
    if (threads > 1) {
      std::printf("\nexecutor: submitted=%llu completed=%llu failed=%llu\n",
                  static_cast<unsigned long long>(
                      snap.counter("trex.executor.submitted")),
                  static_cast<unsigned long long>(
                      snap.counter("trex.executor.completed")),
                  static_cast<unsigned long long>(
                      snap.counter("trex.executor.failed")));
      for (size_t i = 0; i < threads; ++i) {
        std::string prefix =
            "trex.executor.worker." + std::to_string(i);
        std::printf(
            "  worker %zu: completed=%llu failed=%llu busy=%.3fms\n", i,
            static_cast<unsigned long long>(
                snap.counter(prefix + ".completed")),
            static_cast<unsigned long long>(
                snap.counter(prefix + ".failed")),
            static_cast<double>(snap.counter(prefix + ".busy_nanos")) *
                1e-6);
      }
    }
    trex::obs::ResourceUsage total;
    int64_t total_nanos = 0;
    for (const trex::QueryAnswer& a : all_answers) {
      const trex::obs::ResourceUsage& u = a.resources;
      total.pages_fetched += u.pages_fetched;
      total.pages_faulted += u.pages_faulted;
      total.bytes_read += u.bytes_read;
      total.bytes_decoded += u.bytes_decoded;
      total.list_fragments += u.list_fragments;
      total.blocks_decoded += u.blocks_decoded;
      total.blocks_skipped += u.blocks_skipped;
      total.postings_scanned += u.postings_scanned;
      total.sorted_accesses += u.sorted_accesses;
      total.random_accesses += u.random_accesses;
      total.elements_scanned += u.elements_scanned;
      total.heap_operations += u.heap_operations;
      total.cpu_nanos += u.cpu_nanos;
      if (a.trace != nullptr) total_nanos += a.trace->root()->duration_nanos;
    }
    std::printf("aggregate over %zu answer(s): %.3fms evaluated, "
                "resources %s\n",
                all_answers.size(), static_cast<double>(total_nanos) * 1e-6,
                total.ToJson().c_str());
    // Derived hit-ratio gauges (the same values the Prometheus
    // exposition carries, see obs/prom.h).
    for (const trex::obs::DerivedGauge& g : trex::obs::DerivedGauges(snap)) {
      std::printf("%s = %.3f\n", g.name.c_str(), g.value);
    }
  }
  if (!trace_out.empty()) {
    // One lane per worker answer: lay the traces side by side on a
    // shared timeline (each trace's spans are relative to its own
    // start, so without real start offsets the lanes simply align).
    trex::obs::ChromeTraceWriter writer;
    for (size_t i = 0; i < all_answers.size(); ++i) {
      if (all_answers[i].trace != nullptr) {
        writer.AddTrace(*all_answers[i].trace, /*pid=*/1,
                        /*tid=*/static_cast<uint64_t>(i + 1));
      }
    }
    TREX_CHECK_OK(trex::Env::WriteStringToFile(trace_out, writer.Json()));
    std::printf("\ntrace (%zu events) written to %s — load in "
                "chrome://tracing or https://ui.perfetto.dev\n",
                writer.event_count(), trace_out.c_str());
  }
  if (slow_log != nullptr) {
    std::printf("slow-log: %llu of %llu queries over %.1fms -> %s\n",
                static_cast<unsigned long long>(slow_log->recorded()),
                static_cast<unsigned long long>(slow_log->observed()),
                slow_ms, slow_log_path.c_str());
  }
  if (self_manage) {
    // Show the loop closing: re-serve the (now recorded) query a few
    // more times so its sketch weight dominates, force one advisor tick
    // instead of waiting out --advisor-interval, then serve once more
    // from whatever the tick materialized.
    for (int i = 0; i < 9; ++i) {
      TREX_CHECK_OK(trex->Query(query, k, query_options).status());
    }
    trex::AdvisorTickReport report;
    TREX_CHECK_OK(trex->advisor_loop()->TickNow(&report));
    auto adapted = trex->Query(query, k, query_options);
    TREX_CHECK_OK(adapted.status());
    std::printf(
        "\nself-manage: tick %llu planned=%d applied=%d "
        "workload=%zu +%zu/-%zu lists, %llu/%llu bytes\n"
        "self-manage: %s (%llu pages) -> %s (%llu pages)\n",
        static_cast<unsigned long long>(report.tick), report.planned ? 1 : 0,
        report.applied ? 1 : 0, report.workload_queries,
        report.lists_materialized, report.lists_dropped,
        static_cast<unsigned long long>(report.bytes_materialized),
        static_cast<unsigned long long>(report.bytes_budget),
        trex::RetrievalMethodName(answer.value().method),
        static_cast<unsigned long long>(
            answer.value().resources.pages_fetched),
        trex::RetrievalMethodName(adapted.value().method),
        static_cast<unsigned long long>(
            adapted.value().resources.pages_fetched));
    TREX_CHECK_OK(trex->DisableSelfManagement());
  }
  if (explain_advisor) {
    trex::obs::MetricsSnapshot snap = trex::obs::Default().Snapshot();
    std::printf(
        "\nadvisor: ticks=%llu plans=%llu applied=%llu gated=%llu "
        "materialized=%llu dropped=%llu\n",
        static_cast<unsigned long long>(snap.counter("advisor.loop.ticks")),
        static_cast<unsigned long long>(snap.counter("advisor.loop.plans")),
        static_cast<unsigned long long>(
            snap.counter("advisor.loop.plans_applied")),
        static_cast<unsigned long long>(
            snap.counter("advisor.loop.plans_gated")),
        static_cast<unsigned long long>(
            snap.counter("advisor.loop.lists_materialized")),
        static_cast<unsigned long long>(
            snap.counter("advisor.loop.lists_dropped")));
    long long drift = 0;
    auto drift_it = snap.gauges.find("advisor.calibration.mean_abs_drift_pct");
    if (drift_it != snap.gauges.end()) drift = drift_it->second;
    unsigned long long ratio_p50 = 0;
    auto ratio_it = snap.histograms.find("advisor.calibration.ratio_pct");
    if (ratio_it != snap.histograms.end()) ratio_p50 = ratio_it->second.p50;
    std::printf(
        "advisor: calibration samples=%llu overestimates=%llu "
        "underestimates=%llu mean_abs_drift=%lld%% ratio_p50=%llu%%\n",
        static_cast<unsigned long long>(
            snap.counter("advisor.calibration.samples")),
        static_cast<unsigned long long>(
            snap.counter("advisor.calibration.overestimates")),
        static_cast<unsigned long long>(
            snap.counter("advisor.calibration.underestimates")),
        drift, ratio_p50);
    const std::string audit_path = trex::AuditLogPath(index_dir);
    auto audit_text = trex::Env::ReadFileToString(audit_path);
    if (audit_text.ok()) {
      auto replay = trex::ReplayAuditLog(audit_text.value());
      std::vector<std::string> lines;
      size_t start = 0;
      const std::string& text = audit_text.value();
      while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        if (end > start) lines.push_back(text.substr(start, end - start));
        start = end + 1;
      }
      if (replay.ok()) {
        std::printf(
            "advisor: decision audit %s (%zu records; replay: %zu applies, "
            "%zu rollbacks, %zu units live)\n",
            audit_path.c_str(), lines.size(), replay.value().applies,
            replay.value().rollbacks, replay.value().catalog.size());
      }
      const size_t tail = lines.size() > 5 ? lines.size() - 5 : 0;
      for (size_t i = tail; i < lines.size(); ++i) {
        std::printf("  %s\n", lines[i].c_str());
      }
    } else {
      std::printf("advisor: no decision audit at %s\n", audit_path.c_str());
    }
  }
  if (snapshotter != nullptr) {
    snapshotter->Stop();  // Writes one final exposition.
    std::printf("stats-prom: %llu tick(s) -> %s\n",
                static_cast<unsigned long long>(snapshotter->ticks()),
                prom_path.c_str());
  }
  return 0;
}
