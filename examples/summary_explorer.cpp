// The §2/§3.1 walk-through: build all four structural summaries (tag,
// incoming, and their alias variants) over an IEEE-like collection, print
// the summary trees with extent sizes (Figure 1), and translate a path
// expression to its sid set (the translation phase of query evaluation).
//
//   ./examples/summary_explorer [path-expression]
// e.g.
//   ./examples/summary_explorer "//article//sec"
#include <cstdio>
#include <string>

#include "corpus/ieee_generator.h"
#include "summary/builder.h"
#include "summary/path_matcher.h"

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "//article//sec";

  trex::IeeeGeneratorOptions gen_options;
  gen_options.num_documents = 200;
  trex::IeeeGenerator generator(gen_options);
  trex::AliasMap aliases = trex::IeeeAliasMap();

  struct Config {
    const char* name;
    trex::SummaryKind kind;
    const trex::AliasMap* aliases;
  };
  const Config configs[] = {
      {"incoming", trex::SummaryKind::kIncoming, nullptr},
      {"alias incoming", trex::SummaryKind::kIncoming, &aliases},
      {"tag", trex::SummaryKind::kTag, nullptr},
      {"alias tag", trex::SummaryKind::kTag, &aliases},
  };

  std::printf("summary sizes over %zu IEEE-like documents (cf. paper "
              "Section 2.1):\n",
              generator.num_documents());
  std::unique_ptr<trex::Summary> alias_incoming;
  for (const Config& config : configs) {
    trex::SummaryBuilder builder(config.kind, config.aliases);
    for (size_t d = 0; d < generator.num_documents(); ++d) {
      TREX_CHECK_OK(
          builder.AddDocument(generator.Generate(static_cast<trex::DocId>(d))));
    }
    trex::Summary summary = builder.Take();
    std::printf("  %-16s %6zu nodes, %llu ancestor-violations\n", config.name,
                summary.num_label_nodes(),
                static_cast<unsigned long long>(
                    summary.ancestor_violations()));
    if (config.kind == trex::SummaryKind::kIncoming && config.aliases) {
      alias_incoming = std::make_unique<trex::Summary>(std::move(summary));
    }
  }

  std::printf("\nalias incoming summary tree (cf. Figure 1, right):\n%s\n",
              alias_incoming->ToTreeString(40).c_str());

  auto steps = trex::ParsePathExpression(path);
  if (!steps.ok()) {
    std::fprintf(stderr, "bad path: %s\n",
                 steps.status().ToString().c_str());
    return 1;
  }
  std::vector<trex::Sid> sids =
      trex::MatchPath(*alias_incoming, steps.value(), &aliases);
  std::printf("translation of %s -> %zu sids:\n", path.c_str(), sids.size());
  for (trex::Sid sid : sids) {
    std::printf("  sid %-5u extent %-8llu %s\n", sid,
                static_cast<unsigned long long>(
                    alias_incoming->node(sid).extent_size),
                alias_incoming->PathOf(sid).c_str());
  }
  return 0;
}
