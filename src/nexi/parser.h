// Recursive-descent parser for NEXI queries.
//
// Grammar (CO+S fragment):
//   query      := step+
//   step       := ("//" | "/") test predicate?
//   test       := NAME | "*"
//   predicate  := "[" or_expr "]"
//   or_expr    := and_expr ("or" and_expr)*
//   and_expr   := primary ("and" primary)*
//   primary    := about | "(" or_expr ")"
//   about      := "about" "(" rel_path "," keywords ")"
//   rel_path   := "." (("//" | "/") test)*
//   keywords   := (("+"|"-")? (WORD | QUOTED))+
#ifndef TREX_NEXI_PARSER_H_
#define TREX_NEXI_PARSER_H_

#include <string>

#include "common/status.h"
#include "nexi/ast.h"

namespace trex {

// Parses `query`, returning the AST or InvalidArgument with a message
// that points at the offending token.
Result<NexiQuery> ParseNexi(const std::string& query);

}  // namespace trex

#endif  // TREX_NEXI_PARSER_H_
