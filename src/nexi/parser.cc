#include "nexi/parser.h"

#include "nexi/lexer.h"

namespace trex {

namespace {

// Predicate parens are the grammar's only unbounded recursion (and the
// parsed tree is torn down recursively too); a hostile "((((..." query
// must become InvalidArgument, not a stack overflow.
constexpr int kMaxPredicateDepth = 64;

class Parser {
 public:
  explicit Parser(std::vector<NexiToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<NexiQuery> Parse() {
    NexiQuery query;
    while (Peek().type == NexiTokenType::kSlash ||
           Peek().type == NexiTokenType::kDoubleSlash) {
      NexiStep step;
      TREX_RETURN_IF_ERROR(ParseStep(&step));
      query.steps.push_back(std::move(step));
    }
    if (query.steps.empty()) {
      return Error("a NEXI query must start with '/' or '//'");
    }
    if (Peek().type != NexiTokenType::kEnd) {
      return Error("trailing input after the last step");
    }
    return query;
  }

 private:
  const NexiToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const NexiToken& Advance() { return tokens_[pos_++]; }
  bool Accept(NexiTokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(NexiTokenType type) {
    if (!Accept(type)) {
      return Error(std::string("expected ") + NexiTokenTypeName(type) +
                   ", found " + NexiTokenTypeName(Peek().type));
    }
    return Status::OK();
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("NEXI parse error at offset " +
                                   std::to_string(Peek().offset) + ": " +
                                   what);
  }

  Status ParseAxisAndTest(PathStep* step) {
    if (Accept(NexiTokenType::kDoubleSlash)) {
      step->axis = Axis::kDescendant;
    } else if (Accept(NexiTokenType::kSlash)) {
      step->axis = Axis::kChild;
    } else {
      return Error("expected '/' or '//'");
    }
    if (Accept(NexiTokenType::kStar)) {
      step->label = "*";
      return Status::OK();
    }
    if (Peek().type == NexiTokenType::kWord) {
      step->label = Advance().value;
      return Status::OK();
    }
    if (Accept(NexiTokenType::kLParen)) {
      // NEXI tag alternation: //(sec|abs|p).
      std::string label;
      while (true) {
        if (Peek().type != NexiTokenType::kWord) {
          return Error("expected a tag name in the alternation");
        }
        if (!label.empty()) label.push_back('|');
        label += Advance().value;
        if (Accept(NexiTokenType::kPipe)) continue;
        break;
      }
      TREX_RETURN_IF_ERROR(Expect(NexiTokenType::kRParen));
      step->label = std::move(label);
      return Status::OK();
    }
    return Error("expected a tag name, '*', or '(tag|tag|...)'");
  }

  Status ParseStep(NexiStep* step) {
    TREX_RETURN_IF_ERROR(ParseAxisAndTest(&step->path_step));
    if (Peek().type == NexiTokenType::kLBracket) {
      Advance();
      auto pred = ParseOrExpr();
      if (!pred.ok()) return pred.status();
      step->predicate = std::move(pred).value();
      TREX_RETURN_IF_ERROR(Expect(NexiTokenType::kRBracket));
    }
    return Status::OK();
  }

  Result<std::unique_ptr<PredicateExpr>> ParseOrExpr() {
    auto lhs = ParseAndExpr();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (Peek().type == NexiTokenType::kWord && Peek().value == "or") {
      Advance();
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs.status();
      auto parent = std::make_unique<PredicateExpr>();
      parent->kind = PredicateExpr::Kind::kOr;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      node = std::move(parent);
    }
    return node;
  }

  Result<std::unique_ptr<PredicateExpr>> ParseAndExpr() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (Peek().type == NexiTokenType::kWord && Peek().value == "and") {
      Advance();
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs.status();
      auto parent = std::make_unique<PredicateExpr>();
      parent->kind = PredicateExpr::Kind::kAnd;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      node = std::move(parent);
    }
    return node;
  }

  Result<std::unique_ptr<PredicateExpr>> ParsePrimary() {
    if (Accept(NexiTokenType::kLParen)) {
      if (++depth_ > kMaxPredicateDepth) {
        return Error("predicate nesting exceeds " +
                     std::to_string(kMaxPredicateDepth) + " levels");
      }
      auto inner = ParseOrExpr();
      --depth_;
      if (!inner.ok()) return inner.status();
      TREX_RETURN_IF_ERROR(Expect(NexiTokenType::kRParen));
      return inner;
    }
    if (Peek().type == NexiTokenType::kWord && Peek().value == "about") {
      Advance();
      auto node = std::make_unique<PredicateExpr>();
      node->kind = PredicateExpr::Kind::kAbout;
      TREX_RETURN_IF_ERROR(ParseAbout(&node->about));
      return node;
    }
    return Error("expected about(...) or a parenthesized expression");
  }

  Status ParseAbout(AboutClause* about) {
    TREX_RETURN_IF_ERROR(Expect(NexiTokenType::kLParen));
    TREX_RETURN_IF_ERROR(Expect(NexiTokenType::kDot));
    while (Peek().type == NexiTokenType::kSlash ||
           Peek().type == NexiTokenType::kDoubleSlash) {
      PathStep step;
      TREX_RETURN_IF_ERROR(ParseAxisAndTest(&step));
      about->relative_path.push_back(std::move(step));
    }
    TREX_RETURN_IF_ERROR(Expect(NexiTokenType::kComma));
    // Keywords until the closing ')'.
    while (Peek().type != NexiTokenType::kRParen) {
      QueryTerm term;
      if (Accept(NexiTokenType::kPlus)) {
        term.modifier = QueryTerm::Modifier::kRequired;
      } else if (Accept(NexiTokenType::kMinus)) {
        term.modifier = QueryTerm::Modifier::kExcluded;
      }
      if (Peek().type == NexiTokenType::kWord) {
        term.text = Advance().value;
      } else if (Peek().type == NexiTokenType::kQuoted) {
        term.text = Advance().value;
        term.is_phrase = true;
      } else {
        return Error("expected a keyword, phrase, or ')' in about()");
      }
      about->terms.push_back(std::move(term));
    }
    if (about->terms.empty()) {
      return Error("about() requires at least one keyword");
    }
    return Expect(NexiTokenType::kRParen);
  }

  std::vector<NexiToken> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  // Open predicate parens.
};

}  // namespace

void PredicateExpr::CollectAboutClauses(
    std::vector<const AboutClause*>* out) const {
  if (kind == Kind::kAbout) {
    out->push_back(&about);
    return;
  }
  if (lhs) lhs->CollectAboutClauses(out);
  if (rhs) rhs->CollectAboutClauses(out);
}

std::vector<PathStep> NexiQuery::Skeleton() const {
  std::vector<PathStep> steps;
  steps.reserve(this->steps.size());
  for (const NexiStep& s : this->steps) steps.push_back(s.path_step);
  return steps;
}

Result<NexiQuery> ParseNexi(const std::string& query) {
  auto tokens = LexNexi(query);
  if (!tokens.ok()) return tokens.status();
  auto parsed = Parser(std::move(tokens).value()).Parse();
  if (!parsed.ok()) return parsed.status();
  NexiQuery q = std::move(parsed).value();
  q.source = query;
  return q;
}

}  // namespace trex
