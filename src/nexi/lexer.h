// Lexer for NEXI query strings.
#ifndef TREX_NEXI_LEXER_H_
#define TREX_NEXI_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace trex {

enum class NexiTokenType {
  kSlash,        // /
  kDoubleSlash,  // //
  kLBracket,     // [
  kRBracket,     // ]
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kDot,          // .
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kPipe,         // |
  kWord,         // name / keyword (alnum and _)
  kQuoted,       // "phrase" (value holds the unquoted content)
  kEnd,
};

struct NexiToken {
  NexiTokenType type = NexiTokenType::kEnd;
  std::string value;
  size_t offset = 0;  // Byte offset in the query string.
};

// Tokenizes the whole query up front. Fails on unterminated quotes or
// characters outside the NEXI alphabet.
Result<std::vector<NexiToken>> LexNexi(const std::string& query);

const char* NexiTokenTypeName(NexiTokenType type);

}  // namespace trex

#endif  // TREX_NEXI_LEXER_H_
