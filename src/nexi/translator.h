// Query translation (§3.1): "each path p in the query from the root to an
// about() function is translated to a set of sids and a set of terms".
//
// For every about() clause, the context path (the steps up to and
// including the step carrying the predicate) concatenated with the
// clause's relative path is matched against the structural summary,
// producing the clause's sid set; the clause's keywords are normalized by
// the same tokenizer pipeline the index used, producing its term set.
//
// Under the vague interpretation the paper evaluates (and whose sid/term
// counts Table 1 reports), the per-clause sets are unioned into one
// flattened (sids, terms) retrieval task.
#ifndef TREX_NEXI_TRANSLATOR_H_
#define TREX_NEXI_TRANSLATOR_H_

#include <string>
#include <vector>

#include "nexi/ast.h"
#include "summary/alias.h"
#include "summary/summary.h"
#include "text/tokenizer.h"

namespace trex {

// One weighted search term after normalization.
struct WeightedTerm {
  std::string term;
  float weight = 1.0f;  // Negative for '-' excluded terms.

  friend bool operator==(const WeightedTerm& a, const WeightedTerm& b) {
    return a.term == b.term && a.weight == b.weight;
  }
};

// A flattened retrieval task: the input to ERA / TA / Merge.
struct TranslatedClause {
  std::vector<Sid> sids;            // Ascending, unique.
  std::vector<WeightedTerm> terms;  // Unique by term text.

  // Optional docid allow-list (ascending, unique; not owned — the
  // setter keeps it alive for the evaluation). The strict path installs
  // the first clause's support documents here before evaluating the
  // remaining clauses: a qualifying answer needs same-document support
  // from every clause, so documents outside the list can never matter.
  // Purely an optimization hint — evaluators may ignore it, and Merge
  // uses it only to skip whole ERPL blocks with no docid in the list;
  // results may still contain other documents.
  const std::vector<uint32_t>* docid_filter = nullptr;
};

struct TranslatedQuery {
  // One entry per about() clause, in document order.
  std::vector<TranslatedClause> clauses;
  // Union of all clauses — the vague-interpretation task (Table 1).
  TranslatedClause flattened;
  // Sids of the whole-query skeleton (the elements a strict answer
  // must come from).
  std::vector<Sid> target_sids;
};

Result<TranslatedQuery> TranslateQuery(const NexiQuery& query,
                                       const Summary& summary,
                                       const AliasMap* aliases,
                                       const Tokenizer& tokenizer);

// Convenience: parse + translate.
Result<TranslatedQuery> TranslateNexi(const std::string& nexi,
                                      const Summary& summary,
                                      const AliasMap* aliases,
                                      const Tokenizer& tokenizer);

}  // namespace trex

#endif  // TREX_NEXI_TRANSLATOR_H_
