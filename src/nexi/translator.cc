#include "nexi/translator.h"

#include <algorithm>
#include <set>

#include "nexi/parser.h"

namespace trex {

namespace {

// Normalizes one clause's keywords into weighted terms. Phrases are
// decomposed into their words (unigram scoring, the common INEX-era
// simplification); duplicate terms keep the first weight.
void NormalizeTerms(const std::vector<QueryTerm>& raw,
                    const Tokenizer& tokenizer,
                    std::vector<WeightedTerm>* out) {
  auto add = [&](const std::string& word, float weight) {
    auto normalized = tokenizer.NormalizeTerm(word);
    if (!normalized.has_value()) return;
    for (const WeightedTerm& t : *out) {
      if (t.term == *normalized) return;
    }
    out->push_back(WeightedTerm{*normalized, weight});
  };
  std::vector<std::string> words;
  for (const QueryTerm& qt : raw) {
    words.clear();
    Tokenizer word_splitter{TokenizerOptions{.remove_stopwords = false,
                                             .stem = false}};
    word_splitter.Tokenize(qt.text, &words);
    for (const std::string& w : words) add(w, qt.weight());
  }
}

void MergeClauseInto(const TranslatedClause& clause, TranslatedClause* out) {
  for (Sid sid : clause.sids) {
    if (!std::binary_search(out->sids.begin(), out->sids.end(), sid)) {
      out->sids.insert(
          std::upper_bound(out->sids.begin(), out->sids.end(), sid), sid);
    }
  }
  for (const WeightedTerm& t : clause.terms) {
    bool present = false;
    for (const WeightedTerm& u : out->terms) {
      if (u.term == t.term) {
        present = true;
        break;
      }
    }
    if (!present) out->terms.push_back(t);
  }
}

}  // namespace

Result<TranslatedQuery> TranslateQuery(const NexiQuery& query,
                                       const Summary& summary,
                                       const AliasMap* aliases,
                                       const Tokenizer& tokenizer) {
  // Incoming summaries support full path matching; tag summaries only
  // key extents by label, so translation degrades to matching the final
  // step's label (a coarser vague interpretation).
  const bool label_only = summary.kind() == SummaryKind::kTag;
  TranslatedQuery out;
  std::vector<PathStep> context;
  for (const NexiStep& step : query.steps) {
    context.push_back(step.path_step);
    if (step.predicate == nullptr) continue;
    std::vector<const AboutClause*> abouts;
    step.predicate->CollectAboutClauses(&abouts);
    for (const AboutClause* about : abouts) {
      std::vector<PathStep> full = context;
      full.insert(full.end(), about->relative_path.begin(),
                  about->relative_path.end());
      TranslatedClause clause;
      clause.sids = label_only
                        ? MatchLabel(summary, full.back().label, aliases)
                        : MatchPath(summary, full, aliases);
      NormalizeTerms(about->terms, tokenizer, &clause.terms);
      if (clause.terms.empty()) {
        return Status::InvalidArgument(
            "about() keywords vanish after normalization in query: " +
            query.source);
      }
      out.clauses.push_back(std::move(clause));
    }
  }
  if (out.clauses.empty()) {
    return Status::InvalidArgument(
        "query has no about() clause (pure structural queries are not "
        "retrieval queries): " +
        query.source);
  }
  for (const TranslatedClause& c : out.clauses) {
    MergeClauseInto(c, &out.flattened);
  }
  out.target_sids =
      label_only
          ? MatchLabel(summary, query.Skeleton().back().label, aliases)
          : MatchPath(summary, query.Skeleton(), aliases);
  return out;
}

Result<TranslatedQuery> TranslateNexi(const std::string& nexi,
                                      const Summary& summary,
                                      const AliasMap* aliases,
                                      const Tokenizer& tokenizer) {
  auto parsed = ParseNexi(nexi);
  if (!parsed.ok()) return parsed.status();
  return TranslateQuery(parsed.value(), summary, aliases, tokenizer);
}

}  // namespace trex
