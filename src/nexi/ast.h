// NEXI abstract syntax (Narrowed Extended XPath I, Trotman &
// Sigurbjornsson 2004; §1 of the paper).
//
// The supported fragment is the CO+S retrieval subset the paper
// evaluates: descendant/child steps with tag tests or *, and predicates
// built from about(path, keywords) clauses combined with `and` / `or`.
// Keywords may be bare words, quoted phrases, and '+'/'-' modified terms.
#ifndef TREX_NEXI_AST_H_
#define TREX_NEXI_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "summary/path_matcher.h"

namespace trex {

struct QueryTerm {
  enum class Modifier {
    kPlain,     // word
    kRequired,  // +word (emphasized)
    kExcluded,  // -word (penalized)
  };
  std::string text;   // Raw keyword or full phrase text.
  Modifier modifier = Modifier::kPlain;
  bool is_phrase = false;  // True for "quoted phrases".

  // Scoring weight: excluded terms contribute negatively.
  float weight() const {
    return modifier == Modifier::kExcluded ? -1.0f : 1.0f;
  }
};

struct AboutClause {
  // Path relative to the predicate's context element; empty means
  // about(., ...). Steps are child/descendant like outer steps.
  std::vector<PathStep> relative_path;
  std::vector<QueryTerm> terms;
};

// Boolean predicate tree.
struct PredicateExpr {
  enum class Kind { kAbout, kAnd, kOr };
  Kind kind = Kind::kAbout;
  AboutClause about;                              // kAbout
  std::unique_ptr<PredicateExpr> lhs;             // kAnd / kOr
  std::unique_ptr<PredicateExpr> rhs;

  // Collects every about() clause in the subtree, in left-to-right
  // order. The vague interpretation (and Table 1's sid/term counts)
  // treats the boolean structure as a flat union.
  void CollectAboutClauses(std::vector<const AboutClause*>* out) const;
};

struct NexiStep {
  PathStep path_step;
  std::unique_ptr<PredicateExpr> predicate;  // May be null.
};

struct NexiQuery {
  std::vector<NexiStep> steps;

  // The raw query text (kept for diagnostics and workload files).
  std::string source;

  // The structural skeleton //a//b of all steps (predicates stripped).
  std::vector<PathStep> Skeleton() const;
};

}  // namespace trex

#endif  // TREX_NEXI_AST_H_
