#include "nexi/lexer.h"

#include <cctype>

namespace trex {

const char* NexiTokenTypeName(NexiTokenType type) {
  switch (type) {
    case NexiTokenType::kSlash:
      return "'/'";
    case NexiTokenType::kDoubleSlash:
      return "'//'";
    case NexiTokenType::kLBracket:
      return "'['";
    case NexiTokenType::kRBracket:
      return "']'";
    case NexiTokenType::kLParen:
      return "'('";
    case NexiTokenType::kRParen:
      return "')'";
    case NexiTokenType::kComma:
      return "','";
    case NexiTokenType::kDot:
      return "'.'";
    case NexiTokenType::kStar:
      return "'*'";
    case NexiTokenType::kPlus:
      return "'+'";
    case NexiTokenType::kMinus:
      return "'-'";
    case NexiTokenType::kPipe:
      return "'|'";
    case NexiTokenType::kWord:
      return "word";
    case NexiTokenType::kQuoted:
      return "quoted phrase";
    case NexiTokenType::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<NexiToken>> LexNexi(const std::string& query) {
  std::vector<NexiToken> tokens;
  size_t i = 0;
  auto push = [&](NexiTokenType type, std::string value, size_t offset) {
    tokens.push_back(NexiToken{type, std::move(value), offset});
  };
  while (i < query.size()) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '/':
        if (i + 1 < query.size() && query[i + 1] == '/') {
          push(NexiTokenType::kDoubleSlash, "//", start);
          i += 2;
        } else {
          push(NexiTokenType::kSlash, "/", start);
          ++i;
        }
        continue;
      case '[':
        push(NexiTokenType::kLBracket, "[", start);
        ++i;
        continue;
      case ']':
        push(NexiTokenType::kRBracket, "]", start);
        ++i;
        continue;
      case '(':
        push(NexiTokenType::kLParen, "(", start);
        ++i;
        continue;
      case ')':
        push(NexiTokenType::kRParen, ")", start);
        ++i;
        continue;
      case ',':
        push(NexiTokenType::kComma, ",", start);
        ++i;
        continue;
      case '.':
        push(NexiTokenType::kDot, ".", start);
        ++i;
        continue;
      case '*':
        push(NexiTokenType::kStar, "*", start);
        ++i;
        continue;
      case '+':
        push(NexiTokenType::kPlus, "+", start);
        ++i;
        continue;
      case '-':
        push(NexiTokenType::kMinus, "-", start);
        ++i;
        continue;
      case '|':
        push(NexiTokenType::kPipe, "|", start);
        ++i;
        continue;
      case '"': {
        ++i;
        std::string content;
        while (i < query.size() && query[i] != '"') {
          content.push_back(query[i]);
          ++i;
        }
        if (i >= query.size()) {
          return Status::InvalidArgument(
              "unterminated quoted phrase at offset " +
              std::to_string(start));
        }
        ++i;  // Closing quote.
        push(NexiTokenType::kQuoted, std::move(content), start);
        continue;
      }
      default:
        break;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < query.size() &&
             (std::isalnum(static_cast<unsigned char>(query[i])) ||
              query[i] == '_')) {
        word.push_back(query[i]);
        ++i;
      }
      push(NexiTokenType::kWord, std::move(word), start);
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  tokens.push_back(NexiToken{NexiTokenType::kEnd, "", query.size()});
  return tokens;
}

}  // namespace trex
