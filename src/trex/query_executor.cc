#include "trex/query_executor.h"

#include "common/clock.h"

namespace trex {

QueryExecutor::QueryExecutor(TReX* trex, size_t num_threads) : trex_(trex) {
  if (num_threads == 0) num_threads = 1;
  obs::MetricsRegistry& reg = obs::Default();
  m_submitted_ = reg.GetCounter("trex.executor.submitted");
  m_completed_ = reg.GetCounter("trex.executor.completed");
  m_failed_ = reg.GetCounter("trex.executor.failed");
  m_in_flight_ = reg.GetGauge("trex.executor.in_flight");
  m_queue_nanos_ = reg.GetHistogram("trex.executor.queue_nanos");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<Result<QueryAnswer>> QueryExecutor::Submit(std::string nexi,
                                                       size_t k) {
  Job job;
  job.nexi = std::move(nexi);
  job.k = k;
  return Enqueue(std::move(job));
}

std::future<Result<QueryAnswer>> QueryExecutor::SubmitWith(
    RetrievalMethod method, std::string nexi, size_t k) {
  Job job;
  job.nexi = std::move(nexi);
  job.k = k;
  job.forced = method;
  return Enqueue(std::move(job));
}

std::future<Result<QueryAnswer>> QueryExecutor::Enqueue(Job job) {
  job.enqueued_nanos = static_cast<uint64_t>(NowNanos());
  std::future<Result<QueryAnswer>> future = job.promise.get_future();
  m_submitted_->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

void QueryExecutor::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain pending jobs even when stopping: a Submit()ed future must
      // always resolve.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    m_queue_nanos_->Record(static_cast<uint64_t>(NowNanos()) -
                           job.enqueued_nanos);
    m_in_flight_->Add(1);
    Result<QueryAnswer> answer =
        job.forced.has_value()
            ? trex_->QueryWith(*job.forced, job.nexi, job.k)
            : trex_->Query(job.nexi, job.k);
    m_in_flight_->Add(-1);
    (answer.ok() ? m_completed_ : m_failed_)->Add();
    job.promise.set_value(std::move(answer));
  }
}

}  // namespace trex
