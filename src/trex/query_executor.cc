#include "trex/query_executor.h"

#include "common/clock.h"
#include "retrieval/strategy.h"

namespace trex {

QueryExecutor::QueryExecutor(TReX* trex, size_t num_threads) : trex_(trex) {
  if (num_threads == 0) num_threads = 1;
  obs::MetricsRegistry& reg = obs::Default();
  m_submitted_ = reg.GetCounter("trex.executor.submitted");
  m_completed_ = reg.GetCounter("trex.executor.completed");
  m_failed_ = reg.GetCounter("trex.executor.failed");
  m_in_flight_ = reg.GetGauge("trex.executor.in_flight");
  m_queue_nanos_ = reg.GetHistogram("trex.executor.queue_nanos");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<Result<QueryAnswer>> QueryExecutor::Submit(
    std::string nexi, size_t k, QueryOptions query_options) {
  Job job;
  job.nexi = std::move(nexi);
  job.k = k;
  job.query_options = query_options;
  return Enqueue(std::move(job));
}

std::future<Result<QueryAnswer>> QueryExecutor::SubmitWith(
    RetrievalMethod method, std::string nexi, size_t k,
    QueryOptions query_options) {
  Job job;
  job.nexi = std::move(nexi);
  job.k = k;
  job.forced = method;
  job.query_options = query_options;
  return Enqueue(std::move(job));
}

std::future<Result<QueryAnswer>> QueryExecutor::Enqueue(Job job) {
  job.enqueued_nanos = static_cast<uint64_t>(NowNanos());
  std::future<Result<QueryAnswer>> future = job.promise.get_future();
  m_submitted_->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

void QueryExecutor::WorkerLoop(size_t worker_index) {
  // Per-worker instruments, interned once per worker lifetime.
  obs::MetricsRegistry& reg = obs::Default();
  const std::string prefix =
      "trex.executor.worker." + std::to_string(worker_index);
  obs::Counter* w_completed = reg.GetCounter(prefix + ".completed");
  obs::Counter* w_failed = reg.GetCounter(prefix + ".failed");
  obs::Counter* w_busy_nanos = reg.GetCounter(prefix + ".busy_nanos");
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain pending jobs even when stopping: a Submit()ed future must
      // always resolve.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    m_queue_nanos_->Record(static_cast<uint64_t>(NowNanos()) -
                           job.enqueued_nanos);
    m_in_flight_->Add(1);
    Stopwatch watch;
    Result<QueryAnswer> answer =
        job.forced.has_value()
            ? trex_->QueryWith(*job.forced, job.nexi, job.k,
                               job.query_options)
            : trex_->Query(job.nexi, job.k, job.query_options);
    const int64_t elapsed = watch.ElapsedNanos();
    m_in_flight_->Add(-1);
    (answer.ok() ? m_completed_ : m_failed_)->Add();
    (answer.ok() ? w_completed : w_failed)->Add();
    w_busy_nanos->Add(static_cast<uint64_t>(elapsed));
    if (slow_log_ != nullptr && answer.ok()) {
      const QueryAnswer& a = answer.value();
      obs::SlowQueryRecord record;
      record.query = job.nexi;
      record.method = RetrievalMethodName(a.method);
      record.duration_nanos = elapsed;
      record.resources = a.resources;
      if (a.trace != nullptr) record.trace_json = a.trace->ToJson();
      slow_log_->Observe(std::move(record));
    }
    job.promise.set_value(std::move(answer));
  }
}

}  // namespace trex
