#include "trex/query_executor.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "retrieval/strategy.h"

namespace trex {

QueryExecutor::QueryExecutor(TReX* trex, size_t num_threads)
    : QueryExecutor(trex, num_threads, QueryExecutorOptions{}) {}

QueryExecutor::QueryExecutor(TReX* trex, size_t num_threads,
                             QueryExecutorOptions options)
    : trex_(trex), options_(options) {
  if (num_threads == 0) num_threads = 1;
  obs::MetricsRegistry& reg = obs::Default();
  m_submitted_ = reg.GetCounter("trex.executor.submitted");
  m_completed_ = reg.GetCounter("trex.executor.completed");
  m_failed_ = reg.GetCounter("trex.executor.failed");
  m_shed_ = reg.GetCounter("trex.executor.shed");
  m_in_flight_ = reg.GetGauge("trex.executor.in_flight");
  m_queue_nanos_ = reg.GetHistogram("trex.executor.queue_nanos");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool QueryExecutor::saturated() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_queue_depth > 0 &&
      QueuedLocked() >= options_.max_queue_depth) {
    return true;
  }
  if (options_.max_in_flight_cost > 0 &&
      in_flight_cost_ >= options_.max_in_flight_cost) {
    return true;
  }
  return false;
}

std::future<Result<QueryAnswer>> QueryExecutor::Submit(
    std::string nexi, size_t k, QueryOptions query_options) {
  Job job;
  job.nexi = std::move(nexi);
  job.k = k;
  job.query_options = query_options;
  return Enqueue(std::move(job));
}

std::future<Result<QueryAnswer>> QueryExecutor::SubmitWith(
    RetrievalMethod method, std::string nexi, size_t k,
    QueryOptions query_options) {
  Job job;
  job.nexi = std::move(nexi);
  job.k = k;
  job.forced = method;
  job.query_options = query_options;
  return Enqueue(std::move(job));
}

std::future<Result<QueryAnswer>> QueryExecutor::Enqueue(Job job) {
  job.enqueued_nanos = static_cast<uint64_t>(NowNanos());
  job.cost = std::max<uint64_t>(1, job.query_options.admission_cost);
  std::future<Result<QueryAnswer>> future = job.promise.get_future();
  m_submitted_->Add();
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Admission control, all under the one queue lock so the decision is
    // consistent with what the workers see. Submitting into a stopping
    // executor also sheds: the destructor's drain guarantee covers jobs
    // accepted before shutdown, and a shed future still resolves.
    if (stopping_) {
      shed = true;
    } else if (options_.max_queue_depth > 0 &&
               QueuedLocked() >= options_.max_queue_depth) {
      shed = true;
    } else if (options_.max_in_flight_cost > 0 &&
               in_flight_cost_ + job.cost > options_.max_in_flight_cost) {
      shed = true;
    }
    if (!shed) {
      in_flight_cost_ += job.cost;
      if (job.query_options.priority == QueryPriority::kBackground) {
        background_.push_back(std::move(job));
      } else {
        interactive_.push_back(std::move(job));
      }
    }
  }
  if (shed) {
    m_shed_->Add();
    obs::FlightRecorder::Default().Record(
        obs::FlightKind::kShed, "query_shed",
        "\"k\":" + std::to_string(job.k) +
            ",\"cost\":" + std::to_string(job.cost));
    job.promise.set_value(
        Status::Overloaded("query shed: executor at admission limit"));
    return future;
  }
  cv_.notify_one();
  return future;
}

QueryExecutor::Job QueryExecutor::PopLocked() {
  std::deque<Job>& lane = interactive_.empty() ? background_ : interactive_;
  Job job = std::move(lane.front());
  lane.pop_front();
  return job;
}

void QueryExecutor::WorkerLoop(size_t worker_index) {
  // Per-worker instruments, interned once per worker lifetime.
  obs::MetricsRegistry& reg = obs::Default();
  const std::string prefix =
      "trex.executor.worker." + std::to_string(worker_index);
  // Sampling-profiler registration: the worker's base phase label tags
  // idle/dispatch time; per-phase trace spans opened by the query
  // override it for the duration of the span, so samples attribute to
  // "translate"/"evaluate:ta"/... while a query runs on this worker.
  const std::string phase = "executor.worker." + std::to_string(worker_index);
  obs::ProfilerThreadScope profiler_scope(phase.c_str());
  obs::Counter* w_completed = reg.GetCounter(prefix + ".completed");
  obs::Counter* w_failed = reg.GetCounter(prefix + ".failed");
  obs::Counter* w_busy_nanos = reg.GetCounter(prefix + ".busy_nanos");
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || QueuedLocked() > 0; });
      // Drain pending jobs even when stopping: a Submit()ed future must
      // always resolve.
      if (QueuedLocked() == 0) return;
      job = PopLocked();
    }
    m_queue_nanos_->Record(static_cast<uint64_t>(NowNanos()) -
                           job.enqueued_nanos);
    m_in_flight_->Add(1);
    Stopwatch watch;
    Result<QueryAnswer> answer =
        job.forced.has_value()
            ? trex_->QueryWith(*job.forced, job.nexi, job.k,
                               job.query_options)
            : trex_->Query(job.nexi, job.k, job.query_options);
    const int64_t elapsed = watch.ElapsedNanos();
    m_in_flight_->Add(-1);
    {
      // Release the admission weight only now: a running query holds its
      // cost, so max_in_flight_cost bounds work actually in the system,
      // not just queue length.
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_cost_ -= job.cost;
    }
    (answer.ok() ? m_completed_ : m_failed_)->Add();
    (answer.ok() ? w_completed : w_failed)->Add();
    w_busy_nanos->Add(static_cast<uint64_t>(elapsed));
    if (slow_log_ != nullptr && answer.ok()) {
      const QueryAnswer& a = answer.value();
      obs::SlowQueryRecord record;
      record.query = job.nexi;
      record.method = RetrievalMethodName(a.method);
      record.duration_nanos = elapsed;
      record.resources = a.resources;
      if (a.trace != nullptr) record.trace_json = a.trace->ToJson();
      slow_log_->Observe(std::move(record));
    }
    job.promise.set_value(std::move(answer));
  }
}

}  // namespace trex
