// TReX — the public facade.
//
// "TReX, an XML retrieval system that can exploit multiple structural
// summaries ... and can also self-manage small, redundant indexes to
// speed up the evaluation of workloads of top-k queries."
//
// Typical use:
//
//   trex::TrexOptions options;                  // Alias map, tokenizer...
//   auto trex = trex::TReX::Build(index_dir, docs, options);   // Ingest.
//   auto result = trex->Query("//article[about(., xml)]", 10);  // Top-10.
//   trex->SelfManage(workload, budget);          // Materialize RPL/ERPLs.
//
// Build() ingests documents; Open() reopens an existing index directory.
#ifndef TREX_TREX_TREX_H_
#define TREX_TREX_TREX_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/advisor_loop.h"
#include "advisor/workload_recorder.h"
#include "corpus/corpus.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "index/recovery.h"
#include "nexi/translator.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "retrieval/strategy.h"

namespace trex {

struct TrexOptions {
  IndexOptions index;
  // Evaluate answers only from the query skeleton's target sids
  // (strict-flavoured result shaping); the default vague mode returns
  // elements from every about() clause's sids, as in the paper's
  // experiments.
  bool restrict_to_target_sids = false;
};

// How an opened handle may be used across threads.
enum class OpenMode {
  // Queries may run from any number of threads; mutations (AddDocument,
  // SelfManage, MaterializeFor) are allowed but must come from one
  // logical updater at a time. Readers and the updater synchronize via
  // the index's snapshot lock.
  kReadWrite,
  // A read-only handle safe to share across N query threads with no
  // updater: every mutating API fails with NotSupported. This is the
  // mode the thread-pool QueryExecutor and the throughput bench use.
  kReadShared,
};

// Scheduling class for queries submitted through the QueryExecutor.
// Interactive queries are dispatched before background work (advisor
// ticks, batch re-scoring) whenever both lanes have entries waiting.
enum class QueryPriority {
  kInteractive,
  kBackground,
};

// Per-query knobs, orthogonal to the handle-level TrexOptions.
struct QueryOptions {
  // Work limits for this one query; the zero default is unlimited. A
  // query that exceeds its budget fails with Status::ResourceExhausted
  // (and `retrieval.budget.exceeded` ticks) instead of running on.
  obs::ResourceBudget budget;
  // Wall-clock deadline for this one query; the default never expires.
  // The evaluator polls it at the same checkpoints as cancellation (TA
  // round heads, Merge iterations, buffer-pool page faults) and a query
  // past it fails with Status::DeadlineExceeded, partial work accounted.
  Deadline deadline;
  // Scheduling lane when the query goes through a QueryExecutor.
  QueryPriority priority = QueryPriority::kInteractive;
  // Abstract admission weight when the executor bounds in-flight cost;
  // heavier analytical queries should declare a larger cost.
  uint64_t admission_cost = 1;
};

struct QueryAnswer {
  RetrievalResult result;
  RetrievalMethod method = RetrievalMethod::kEra;
  TranslatedQuery translation;
  // Per-query EXPLAIN: one span per phase (translate, strategy,
  // evaluate:<method>, shape), serializable with trace->ToJson().
  // shared_ptr keeps QueryAnswer copyable (Trace itself is move-only).
  std::shared_ptr<obs::Trace> trace;
  // What the query cost, in the paper's work units: pages, bytes,
  // sorted/random accesses, postings, heap operations. Also folded into
  // the trace root's attributes (and thus EXPLAIN / the slow-query log).
  obs::ResourceUsage resources;
};

class TReX {
 public:
  // Builds a fresh index in `dir` from a document generator.
  static Result<std::unique_ptr<TReX>> Build(
      const std::string& dir, const DocumentGenerator& documents,
      TrexOptions options = {});
  // Builds a fresh index in `dir` from explicit documents.
  static Result<std::unique_ptr<TReX>> BuildFromDocuments(
      const std::string& dir, const std::vector<std::string>& documents,
      TrexOptions options = {});
  // Opens an existing index.
  static Result<std::unique_ptr<TReX>> Open(const std::string& dir,
                                            TrexOptions options = {});
  // Opens an existing index in an explicit concurrency mode. With
  // OpenMode::kReadShared the returned handle is usable from N threads
  // concurrently (Query/QueryWith/QueryStrict) and rejects mutations.
  static Result<std::unique_ptr<TReX>> Open(const std::string& dir,
                                            TrexOptions options,
                                            OpenMode mode);
  // Opens an existing index with crash recovery: in RecoveryMode::kRepair
  // a failed open or failed deep verification triggers RecoverIndex
  // (rolling every table back to the manifest's commit point and
  // quarantining corrupt derived tables) followed by a re-open and
  // re-verification. `report` (optional) receives what was repaired.
  static Result<std::unique_ptr<TReX>> Open(const std::string& dir,
                                            TrexOptions options,
                                            RecoveryMode mode,
                                            RecoveryReport* report = nullptr);

  // Evaluates a NEXI query; k == 0 returns all answers. The method is
  // chosen by the strategy selector unless `force` is set.
  Result<QueryAnswer> Query(const std::string& nexi, size_t k,
                            const QueryOptions& query_options = {});
  Result<QueryAnswer> QueryWith(RetrievalMethod method,
                                const std::string& nexi, size_t k,
                                const QueryOptions& query_options = {});
  // Strict-interpretation evaluation (§1): structural constraints are
  // satisfied precisely via per-clause evaluation and a containment join
  // (see retrieval/strict.h).
  Result<QueryAnswer> QueryStrict(const std::string& nexi, size_t k,
                                  const QueryOptions& query_options = {});

  // Runs the §4 self-manager over a workload.
  Status SelfManage(const Workload& workload,
                    const SelfManagerOptions& options,
                    SelfManagerReport* report);

  // Online self-management: every served query is recorded into a
  // bounded workload sketch, and an AdvisorLoop re-plans against it.
  struct SelfManagementOptions {
    WorkloadRecorderOptions recorder;  // persist_path defaults to
                                       // <dir>/workload_sketch.txt.
    AdvisorLoopOptions loop;
    // Reload a previously persisted sketch before serving (warm
    // restart: the first tick plans from yesterday's traffic).
    bool load_persisted = true;
    // Start the background tick thread. With false the loop only runs
    // when the caller invokes advisor_loop()->TickNow() — the mode the
    // deterministic tests use.
    bool start_background = true;
  };

  // Attaches the recorder to the serving path (Query/QueryWith/
  // QueryStrict record their NEXI + k on success), recovers any
  // half-applied plan from a previous run, and — unless
  // start_background is false — starts the advisor thread. Fails on a
  // kReadShared handle and when already enabled.
  Status EnableSelfManagement(SelfManagementOptions options);
  Status EnableSelfManagement() {
    return EnableSelfManagement(SelfManagementOptions{});
  }
  // Stops the loop and detaches the recorder (persisting its sketch
  // first when it has a persist path). In-flight queries may still be
  // holding the recorder; it stays alive until the handle is destroyed
  // or self-management is re-enabled.
  Status DisableSelfManagement();
  // Null unless self-management is enabled.
  WorkloadRecorder* workload_recorder() { return recorder_.get(); }
  AdvisorLoop* advisor_loop() { return advisor_loop_.get(); }

  // Materializes RPLs and/or ERPLs for one query (manual tuning path).
  Status MaterializeFor(const std::string& nexi, bool rpls, bool erpls,
                        MaterializeStats* stats);

  // Incrementally inserts a document (docid = max_docid + 1). Redundant
  // lists of terms occurring in the document are dropped; see
  // index/updater.h for the scoring-snapshot semantics.
  Result<DocId> AddDocument(const std::string& xml);

  // Cumulative snapshot of the process-wide metrics registry (buffer
  // pool, pager, B+-tree, posting/RPL/ERPL access, retrieval, advisor).
  obs::MetricsSnapshot Metrics() const { return obs::Default().Snapshot(); }

  Index* index() { return index_.get(); }
  OpenMode mode() const { return mode_; }

 private:
  TReX(std::unique_ptr<Index> index, TrexOptions options,
       OpenMode mode = OpenMode::kReadWrite)
      : index_(std::move(index)),
        options_(std::move(options)),
        mode_(mode) {}

  Result<QueryAnswer> RunQuery(const std::string& nexi, size_t k,
                               const RetrievalMethod* forced,
                               const QueryOptions& query_options);
  Result<QueryAnswer> RunQueryLocked(const std::string& nexi, size_t k,
                                     const RetrievalMethod* forced);
  Status CheckWritable(const char* op) const;

  std::unique_ptr<Index> index_;
  TrexOptions options_;
  OpenMode mode_ = OpenMode::kReadWrite;

  // Online self-management state. The serving path reads only
  // recorder_hook_ (an acquire load per query): null means recording is
  // off. Disable parks the old recorder in retired_recorders_ instead
  // of freeing it so queries that loaded the hook just before it was
  // cleared never dangle.
  std::unique_ptr<WorkloadRecorder> recorder_;
  std::unique_ptr<AdvisorLoop> advisor_loop_;
  std::vector<std::unique_ptr<WorkloadRecorder>> retired_recorders_;
  std::atomic<WorkloadRecorder*> recorder_hook_{nullptr};
};

}  // namespace trex

#endif  // TREX_TREX_TREX_H_
