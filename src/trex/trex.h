// TReX — the public facade.
//
// "TReX, an XML retrieval system that can exploit multiple structural
// summaries ... and can also self-manage small, redundant indexes to
// speed up the evaluation of workloads of top-k queries."
//
// Typical use:
//
//   trex::TrexOptions options;                  // Alias map, tokenizer...
//   auto trex = trex::TReX::Build(index_dir, docs, options);   // Ingest.
//   auto result = trex->Query("//article[about(., xml)]", 10);  // Top-10.
//   trex->SelfManage(workload, budget);          // Materialize RPL/ERPLs.
//
// Build() ingests documents; Open() reopens an existing index directory.
#ifndef TREX_TREX_TREX_H_
#define TREX_TREX_TREX_H_

#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "corpus/corpus.h"
#include "index/index.h"
#include "index/index_builder.h"
#include "index/recovery.h"
#include "nexi/translator.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "retrieval/strategy.h"

namespace trex {

struct TrexOptions {
  IndexOptions index;
  // Evaluate answers only from the query skeleton's target sids
  // (strict-flavoured result shaping); the default vague mode returns
  // elements from every about() clause's sids, as in the paper's
  // experiments.
  bool restrict_to_target_sids = false;
};

// How an opened handle may be used across threads.
enum class OpenMode {
  // Queries may run from any number of threads; mutations (AddDocument,
  // SelfManage, MaterializeFor) are allowed but must come from one
  // logical updater at a time. Readers and the updater synchronize via
  // the index's snapshot lock.
  kReadWrite,
  // A read-only handle safe to share across N query threads with no
  // updater: every mutating API fails with NotSupported. This is the
  // mode the thread-pool QueryExecutor and the throughput bench use.
  kReadShared,
};

// Per-query knobs, orthogonal to the handle-level TrexOptions.
struct QueryOptions {
  // Work limits for this one query; the zero default is unlimited. A
  // query that exceeds its budget fails with Status::ResourceExhausted
  // (and `retrieval.budget.exceeded` ticks) instead of running on.
  obs::ResourceBudget budget;
};

struct QueryAnswer {
  RetrievalResult result;
  RetrievalMethod method = RetrievalMethod::kEra;
  TranslatedQuery translation;
  // Per-query EXPLAIN: one span per phase (translate, strategy,
  // evaluate:<method>, shape), serializable with trace->ToJson().
  // shared_ptr keeps QueryAnswer copyable (Trace itself is move-only).
  std::shared_ptr<obs::Trace> trace;
  // What the query cost, in the paper's work units: pages, bytes,
  // sorted/random accesses, postings, heap operations. Also folded into
  // the trace root's attributes (and thus EXPLAIN / the slow-query log).
  obs::ResourceUsage resources;
};

class TReX {
 public:
  // Builds a fresh index in `dir` from a document generator.
  static Result<std::unique_ptr<TReX>> Build(
      const std::string& dir, const DocumentGenerator& documents,
      TrexOptions options = {});
  // Builds a fresh index in `dir` from explicit documents.
  static Result<std::unique_ptr<TReX>> BuildFromDocuments(
      const std::string& dir, const std::vector<std::string>& documents,
      TrexOptions options = {});
  // Opens an existing index.
  static Result<std::unique_ptr<TReX>> Open(const std::string& dir,
                                            TrexOptions options = {});
  // Opens an existing index in an explicit concurrency mode. With
  // OpenMode::kReadShared the returned handle is usable from N threads
  // concurrently (Query/QueryWith/QueryStrict) and rejects mutations.
  static Result<std::unique_ptr<TReX>> Open(const std::string& dir,
                                            TrexOptions options,
                                            OpenMode mode);
  // Opens an existing index with crash recovery: in RecoveryMode::kRepair
  // a failed open or failed deep verification triggers RecoverIndex
  // (rolling every table back to the manifest's commit point and
  // quarantining corrupt derived tables) followed by a re-open and
  // re-verification. `report` (optional) receives what was repaired.
  static Result<std::unique_ptr<TReX>> Open(const std::string& dir,
                                            TrexOptions options,
                                            RecoveryMode mode,
                                            RecoveryReport* report = nullptr);

  // Evaluates a NEXI query; k == 0 returns all answers. The method is
  // chosen by the strategy selector unless `force` is set.
  Result<QueryAnswer> Query(const std::string& nexi, size_t k,
                            const QueryOptions& query_options = {});
  Result<QueryAnswer> QueryWith(RetrievalMethod method,
                                const std::string& nexi, size_t k,
                                const QueryOptions& query_options = {});
  // Strict-interpretation evaluation (§1): structural constraints are
  // satisfied precisely via per-clause evaluation and a containment join
  // (see retrieval/strict.h).
  Result<QueryAnswer> QueryStrict(const std::string& nexi, size_t k,
                                  const QueryOptions& query_options = {});

  // Runs the §4 self-manager over a workload.
  Status SelfManage(const Workload& workload,
                    const SelfManagerOptions& options,
                    SelfManagerReport* report);

  // Materializes RPLs and/or ERPLs for one query (manual tuning path).
  Status MaterializeFor(const std::string& nexi, bool rpls, bool erpls,
                        MaterializeStats* stats);

  // Incrementally inserts a document (docid = max_docid + 1). Redundant
  // lists of terms occurring in the document are dropped; see
  // index/updater.h for the scoring-snapshot semantics.
  Result<DocId> AddDocument(const std::string& xml);

  // Cumulative snapshot of the process-wide metrics registry (buffer
  // pool, pager, B+-tree, posting/RPL/ERPL access, retrieval, advisor).
  obs::MetricsSnapshot Metrics() const { return obs::Default().Snapshot(); }

  Index* index() { return index_.get(); }
  OpenMode mode() const { return mode_; }

 private:
  TReX(std::unique_ptr<Index> index, TrexOptions options,
       OpenMode mode = OpenMode::kReadWrite)
      : index_(std::move(index)),
        options_(std::move(options)),
        mode_(mode) {}

  Result<QueryAnswer> RunQuery(const std::string& nexi, size_t k,
                               const RetrievalMethod* forced,
                               const QueryOptions& query_options);
  Result<QueryAnswer> RunQueryLocked(const std::string& nexi, size_t k,
                                     const RetrievalMethod* forced);
  Status CheckWritable(const char* op) const;

  std::unique_ptr<Index> index_;
  TrexOptions options_;
  OpenMode mode_ = OpenMode::kReadWrite;
};

}  // namespace trex

#endif  // TREX_TREX_TREX_H_
