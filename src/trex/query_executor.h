// QueryExecutor: a fixed-size thread pool serving NEXI queries from one
// shared TReX handle.
//
// The pool owns N worker threads; Submit() enqueues a query and returns
// a future for its answer. Each query runs TReX::Query (or QueryWith /
// QueryStrict) on a worker thread, so it gets its own obs::Trace with
// the usual per-phase spans (translate, strategy, evaluate:<method>,
// shape) in QueryAnswer::trace. The executor itself contributes
// trex.executor.* metrics: submitted/completed/failed counters, a queue
// wait-time histogram, an in-flight gauge, and per-worker
// trex.executor.worker.<i>.{completed,failed,busy_nanos} so a skewed
// pool shows up in `search_cli --threads N --explain`.
//
// An optional SlowQueryLog observes every finished query with its
// duration, resource vector and full span tree; queries over the log's
// threshold are retained (ring + JSONL).
//
// Overload behavior. With QueryExecutorOptions bounds set, Submit()
// applies admission control: a query that would push the queue past
// max_queue_depth or the summed admission cost past max_in_flight_cost
// is shed — its future resolves immediately with Status::Overloaded
// (`trex.executor.shed` ticks, a `shed` flight event records it). Shed
// or run, every Submit()ed future resolves exactly once; Submit() after
// (or during) destruction-triggered shutdown sheds rather than hangs.
// Two lanes order the queue: QueryPriority::kInteractive jobs always
// dispatch before kBackground ones.
//
// The handle is typically opened with OpenMode::kReadShared; the
// executor never mutates the index. One executor per handle is the
// expected shape, but nothing prevents several (they would just share
// the same snapshot lock).
#ifndef TREX_TREX_QUERY_EXECUTOR_H_
#define TREX_TREX_QUERY_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "trex/trex.h"

namespace trex {

// Admission-control bounds for a QueryExecutor. Zero means unbounded —
// the executor behaves exactly as it did without admission control.
struct QueryExecutorOptions {
  // Maximum queries waiting (both lanes together). A Submit() that would
  // push past this resolves immediately with Status::Overloaded.
  size_t max_queue_depth = 0;
  // Maximum summed QueryOptions::admission_cost across queued + running
  // queries. A Submit() whose cost would push past this is shed the same
  // way. Cost is held until the query finishes, so a slow query keeps
  // its weight reserved for its whole lifetime.
  uint64_t max_in_flight_cost = 0;
};

class QueryExecutor {
 public:
  // Spawns `num_threads` workers (clamped to >= 1) over `trex`, which
  // must outlive the executor.
  QueryExecutor(TReX* trex, size_t num_threads);
  QueryExecutor(TReX* trex, size_t num_threads,
                QueryExecutorOptions options);
  // Drains the queue (pending queries still run) and joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  // Enqueues a query; the future resolves with the answer (or the error
  // status) once a worker has run it — or immediately with
  // Status::Overloaded when admission control sheds it. Thread-safe.
  // `query_options` rides along to TReX::Query — per-query budgets and
  // deadlines work through the pool exactly as they do on the direct
  // path; its priority and admission_cost drive the executor's lanes
  // and bounds.
  std::future<Result<QueryAnswer>> Submit(std::string nexi, size_t k,
                                          QueryOptions query_options = {});
  // As Submit, but forces the retrieval method (TReX::QueryWith).
  std::future<Result<QueryAnswer>> SubmitWith(RetrievalMethod method,
                                              std::string nexi, size_t k,
                                              QueryOptions query_options = {});

  // Attaches a slow-query log (nullptr detaches). Not owned; must
  // outlive the executor or be detached first. Call before submitting —
  // the pointer is read by worker threads without synchronization.
  void set_slow_query_log(obs::SlowQueryLog* log) { slow_log_ = log; }

  size_t num_threads() const { return workers_.size(); }

  // True while an admission bound is at (or past) its limit — the probe
  // the advisor's background loop uses to skip ticks under load. Always
  // false for an unbounded executor.
  bool saturated() const;

 private:
  struct Job {
    std::string nexi;
    size_t k = 0;
    std::optional<RetrievalMethod> forced;
    QueryOptions query_options;
    uint64_t enqueued_nanos = 0;
    uint64_t cost = 1;  // Clamped admission weight, held until done.
    std::promise<Result<QueryAnswer>> promise;
  };

  std::future<Result<QueryAnswer>> Enqueue(Job job);
  void WorkerLoop(size_t worker_index);
  // Pops the next job, interactive lane first. Pre: a lane is non-empty.
  Job PopLocked();
  size_t QueuedLocked() const {
    return interactive_.size() + background_.size();
  }

  TReX* trex_;
  obs::SlowQueryLog* slow_log_ = nullptr;
  QueryExecutorOptions options_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Two-lane priority queue: workers drain interactive_ before
  // background_, so advisor ticks and batch work never delay a user
  // query that is already waiting.
  std::deque<Job> interactive_;
  std::deque<Job> background_;
  // Summed cost of queued + running jobs; guarded by mu_.
  uint64_t in_flight_cost_ = 0;
  bool stopping_ = false;
  // trex.executor.* metrics.
  obs::Counter* m_submitted_;
  obs::Counter* m_completed_;
  obs::Counter* m_failed_;
  obs::Counter* m_shed_;
  obs::Gauge* m_in_flight_;
  obs::Histogram* m_queue_nanos_;
};

}  // namespace trex

#endif  // TREX_TREX_QUERY_EXECUTOR_H_
