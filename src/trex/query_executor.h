// QueryExecutor: a fixed-size thread pool serving NEXI queries from one
// shared TReX handle.
//
// The pool owns N worker threads; Submit() enqueues a query and returns
// a future for its answer. Each query runs TReX::Query (or QueryWith /
// QueryStrict) on a worker thread, so it gets its own obs::Trace with
// the usual per-phase spans (translate, strategy, evaluate:<method>,
// shape) in QueryAnswer::trace. The executor itself contributes
// trex.executor.* metrics: submitted/completed/failed counters, a queue
// wait-time histogram, an in-flight gauge, and per-worker
// trex.executor.worker.<i>.{completed,failed,busy_nanos} so a skewed
// pool shows up in `search_cli --threads N --explain`.
//
// An optional SlowQueryLog observes every finished query with its
// duration, resource vector and full span tree; queries over the log's
// threshold are retained (ring + JSONL).
//
// The handle is typically opened with OpenMode::kReadShared; the
// executor never mutates the index. One executor per handle is the
// expected shape, but nothing prevents several (they would just share
// the same snapshot lock).
#ifndef TREX_TREX_QUERY_EXECUTOR_H_
#define TREX_TREX_QUERY_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "trex/trex.h"

namespace trex {

class QueryExecutor {
 public:
  // Spawns `num_threads` workers (clamped to >= 1) over `trex`, which
  // must outlive the executor.
  QueryExecutor(TReX* trex, size_t num_threads);
  // Drains the queue (pending queries still run) and joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  // Enqueues a query; the future resolves with the answer (or the error
  // status) once a worker has run it. Thread-safe. `query_options`
  // rides along to TReX::Query — per-query budgets work through the
  // pool exactly as they do on the direct path.
  std::future<Result<QueryAnswer>> Submit(std::string nexi, size_t k,
                                          QueryOptions query_options = {});
  // As Submit, but forces the retrieval method (TReX::QueryWith).
  std::future<Result<QueryAnswer>> SubmitWith(RetrievalMethod method,
                                              std::string nexi, size_t k,
                                              QueryOptions query_options = {});

  // Attaches a slow-query log (nullptr detaches). Not owned; must
  // outlive the executor or be detached first. Call before submitting —
  // the pointer is read by worker threads without synchronization.
  void set_slow_query_log(obs::SlowQueryLog* log) { slow_log_ = log; }

  size_t num_threads() const { return workers_.size(); }

 private:
  struct Job {
    std::string nexi;
    size_t k = 0;
    std::optional<RetrievalMethod> forced;
    QueryOptions query_options;
    uint64_t enqueued_nanos = 0;
    std::promise<Result<QueryAnswer>> promise;
  };

  std::future<Result<QueryAnswer>> Enqueue(Job job);
  void WorkerLoop(size_t worker_index);

  TReX* trex_;
  obs::SlowQueryLog* slow_log_ = nullptr;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  // trex.executor.* metrics.
  obs::Counter* m_submitted_;
  obs::Counter* m_completed_;
  obs::Counter* m_failed_;
  obs::Gauge* m_in_flight_;
  obs::Histogram* m_queue_nanos_;
};

}  // namespace trex

#endif  // TREX_TREX_QUERY_EXECUTOR_H_
