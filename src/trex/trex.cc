#include "trex/trex.h"

#include <algorithm>

#include "index/updater.h"
#include "obs/flight_recorder.h"
#include "retrieval/strict.h"

namespace trex {

namespace {

// Folds a finished query's accounting into its answer: the resource
// vector lands on QueryAnswer::resources and, as root-span attributes,
// in the EXPLAIN trace. A failed query only ticks the budget counter
// (when that is what killed it).
void FoldAccounting(const obs::ResourceAccounting& accounting,
                    Result<QueryAnswer>* answer) {
  if (!answer->ok()) {
    if (answer->status().IsResourceExhausted()) {
      static obs::Counter* exceeded =
          obs::Default().GetCounter("retrieval.budget.exceeded");
      exceeded->Add();
      const obs::ResourceUsage usage = accounting.Usage();
      obs::FlightRecorder::Default().Record(
          obs::FlightKind::kBudget, "query_abort",
          "\"pages\":" + std::to_string(usage.pages_fetched) +
              ",\"bytes\":" + std::to_string(usage.bytes_read));
    } else if (answer->status().IsDeadlineExceeded()) {
      static obs::Counter* exceeded =
          obs::Default().GetCounter("retrieval.deadline.exceeded");
      exceeded->Add();
      const obs::ResourceUsage usage = accounting.Usage();
      obs::FlightRecorder::Default().Record(
          obs::FlightKind::kDeadline, "query_abort",
          "\"pages\":" + std::to_string(usage.pages_fetched) +
              ",\"bytes\":" + std::to_string(usage.bytes_read));
    }
    return;
  }
  QueryAnswer& a = answer->value();
  a.resources = accounting.Usage();
  if (a.trace != nullptr) {
    const obs::ResourceUsage& u = a.resources;
    obs::Trace* t = a.trace.get();
    t->AddRootAttr("pages_fetched", u.pages_fetched);
    t->AddRootAttr("pages_faulted", u.pages_faulted);
    t->AddRootAttr("bytes_read", u.bytes_read);
    t->AddRootAttr("bytes_decoded", u.bytes_decoded);
    t->AddRootAttr("list_fragments", u.list_fragments);
    t->AddRootAttr("blocks_decoded", u.blocks_decoded);
    t->AddRootAttr("blocks_skipped", u.blocks_skipped);
    t->AddRootAttr("postings_scanned", u.postings_scanned);
    t->AddRootAttr("sorted_accesses", u.sorted_accesses);
    t->AddRootAttr("random_accesses", u.random_accesses);
    t->AddRootAttr("elements_scanned", u.elements_scanned);
    t->AddRootAttr("heap_operations", u.heap_operations);
    t->AddRootAttr("cpu_nanos", u.cpu_nanos);
  }
}

}  // namespace

Result<std::unique_ptr<TReX>> TReX::Build(const std::string& dir,
                                          const DocumentGenerator& documents,
                                          TrexOptions options) {
  IndexBuilder builder(dir, options.index);
  const size_t n = documents.num_documents();
  for (size_t i = 0; i < n; ++i) {
    DocId docid = static_cast<DocId>(i);
    std::string doc = documents.Generate(docid);
    TREX_RETURN_IF_ERROR(builder.AddDocument(docid, doc));
  }
  TREX_RETURN_IF_ERROR(builder.Finish());
  return Open(dir, std::move(options));
}

Result<std::unique_ptr<TReX>> TReX::BuildFromDocuments(
    const std::string& dir, const std::vector<std::string>& documents,
    TrexOptions options) {
  IndexBuilder builder(dir, options.index);
  for (size_t i = 0; i < documents.size(); ++i) {
    TREX_RETURN_IF_ERROR(
        builder.AddDocument(static_cast<DocId>(i), documents[i]));
  }
  TREX_RETURN_IF_ERROR(builder.Finish());
  return Open(dir, std::move(options));
}

Result<std::unique_ptr<TReX>> TReX::Open(const std::string& dir,
                                         TrexOptions options) {
  return Open(dir, std::move(options), OpenMode::kReadWrite);
}

Result<std::unique_ptr<TReX>> TReX::Open(const std::string& dir,
                                         TrexOptions options, OpenMode mode) {
  auto index = Index::Open(dir, options.index.cache_pages);
  if (!index.ok()) return index.status();
  return std::unique_ptr<TReX>(
      new TReX(std::move(index).value(), std::move(options), mode));
}

Status TReX::CheckWritable(const char* op) const {
  if (mode_ == OpenMode::kReadShared) {
    return Status::NotSupported(std::string(op) +
                                " on a handle opened with "
                                "OpenMode::kReadShared (read-only)");
  }
  return Status::OK();
}

Result<std::unique_ptr<TReX>> TReX::Open(const std::string& dir,
                                         TrexOptions options,
                                         RecoveryMode mode,
                                         RecoveryReport* report) {
  if (report != nullptr) *report = RecoveryReport{};
  if (mode == RecoveryMode::kOff) return Open(dir, std::move(options));

  // Fast path: a cleanly shut-down index opens and verifies untouched.
  {
    auto index = Index::Open(dir, options.index.cache_pages);
    if (index.ok() && index.value()->DeepVerify().ok()) {
      return std::unique_ptr<TReX>(
          new TReX(std::move(index).value(), std::move(options)));
    }
  }

  // Repair path: roll back to the manifest's commit point, quarantine
  // corrupt derived tables, then the index must open and verify cleanly.
  TREX_RETURN_IF_ERROR(
      RecoverIndex(dir, report, options.index.cache_pages));
  auto index = Index::Open(dir, options.index.cache_pages);
  if (!index.ok()) return index.status();
  TREX_RETURN_IF_ERROR(index.value()->DeepVerify());
  return std::unique_ptr<TReX>(
      new TReX(std::move(index).value(), std::move(options)));
}

Result<QueryAnswer> TReX::RunQuery(const std::string& nexi, size_t k,
                                   const RetrievalMethod* forced,
                                   const QueryOptions& query_options) {
  // Accounting wraps the whole evaluation (snapshot lock included):
  // every layer below charges into it via the thread-local scope; the
  // budget — if any — is enforced at the buffer pool, and the deadline
  // at the cancellation checkpoints and page-fault sites.
  obs::ResourceAccounting accounting(query_options.budget,
                                     query_options.deadline);
  Result<QueryAnswer> answer = [&] {
    // The scope closes before the fold below so the CPU delta it
    // charges at destruction is part of the reported usage.
    obs::ResourceScope scope(&accounting);
    return RunQueryLocked(nexi, k, forced);
  }();
  FoldAccounting(accounting, &answer);
  // Feed the self-management sketch. The acquire load pairs with the
  // release store in EnableSelfManagement; a null hook (the common
  // case) costs one load + branch.
  if (answer.ok()) {
    if (WorkloadRecorder* rec =
            recorder_hook_.load(std::memory_order_acquire)) {
      rec->Record(nexi, k);
    }
  }
  return answer;
}

Result<QueryAnswer> TReX::RunQueryLocked(const std::string& nexi, size_t k,
                                         const RetrievalMethod* forced) {
  // One shared snapshot acquisition for the whole query: translation
  // reads the summary (which an updater replaces) and evaluation walks
  // the tables with multi-operation iterators.
  auto read_lock = index_->ReaderLock();
  QueryAnswer answer;
  answer.trace = std::make_shared<obs::Trace>("query");
  obs::Trace* trace = answer.trace.get();

  {
    obs::TraceSpan span(trace, "translate");
    auto translated = TranslateNexi(nexi, index_->summary(),
                                    &index_->aliases(), index_->tokenizer());
    if (!translated.ok()) return translated.status();
    answer.translation = std::move(translated).value();
    span.AddAttr("terms", static_cast<uint64_t>(
                              answer.translation.flattened.terms.size()));
    span.AddAttr("sids", static_cast<uint64_t>(
                             answer.translation.flattened.sids.size()));
  }
  const TranslatedClause& clause = answer.translation.flattened;

  Evaluator evaluator(index_.get());
  evaluator.set_trace(trace);
  // When restricting to target sids, evaluate unrestricted first (the
  // methods need the clause's own sids), then filter.
  size_t effective_k = options_.restrict_to_target_sids ? 0 : k;
  Status s;
  if (forced != nullptr) {
    answer.method = *forced;
    s = evaluator.EvaluateWith(*forced, clause, effective_k, &answer.result);
  } else {
    s = evaluator.Evaluate(clause, effective_k, &answer.result,
                           &answer.method);
  }
  if (!s.ok()) return s;

  if (options_.restrict_to_target_sids) {
    obs::TraceSpan span(trace, "shape");
    const std::vector<Sid>& targets = answer.translation.target_sids;
    auto& elems = answer.result.elements;
    span.AddAttr("unrestricted", static_cast<uint64_t>(elems.size()));
    elems.erase(std::remove_if(elems.begin(), elems.end(),
                               [&](const ScoredElement& e) {
                                 return !std::binary_search(
                                     targets.begin(), targets.end(),
                                     e.element.sid);
                               }),
                elems.end());
    if (k > 0 && elems.size() > k) elems.resize(k);
    span.AddAttr("kept", static_cast<uint64_t>(elems.size()));
  }
  answer.trace->Finish();
  return answer;
}

Result<QueryAnswer> TReX::Query(const std::string& nexi, size_t k,
                                const QueryOptions& query_options) {
  return RunQuery(nexi, k, nullptr, query_options);
}

Result<QueryAnswer> TReX::QueryStrict(const std::string& nexi, size_t k,
                                      const QueryOptions& query_options) {
  obs::ResourceAccounting accounting(query_options.budget,
                                     query_options.deadline);
  Result<QueryAnswer> result = [&]() -> Result<QueryAnswer> {
    obs::ResourceScope scope(&accounting);
    auto read_lock = index_->ReaderLock();
    QueryAnswer answer;
    answer.trace = std::make_shared<obs::Trace>("query");
    obs::Trace* trace = answer.trace.get();
    {
      obs::TraceSpan span(trace, "translate");
      auto translated = TranslateNexi(nexi, index_->summary(),
                                      &index_->aliases(),
                                      index_->tokenizer());
      if (!translated.ok()) return translated.status();
      answer.translation = std::move(translated).value();
    }
    answer.method = RetrievalMethod::kEra;  // Per-clause methods vary.
    StrictEvaluator strict(index_.get());
    strict.set_trace(trace);
    {
      obs::TraceSpan span(trace, "evaluate:strict");
      TREX_RETURN_IF_ERROR(strict.Evaluate(answer.translation, k,
                                           &answer.result));
      span.AddAttr("results",
                   static_cast<uint64_t>(answer.result.elements.size()));
    }
    answer.trace->Finish();
    return answer;
  }();
  FoldAccounting(accounting, &result);
  if (result.ok()) {
    if (WorkloadRecorder* rec =
            recorder_hook_.load(std::memory_order_acquire)) {
      rec->Record(nexi, k);
    }
  }
  return result;
}

Result<QueryAnswer> TReX::QueryWith(RetrievalMethod method,
                                    const std::string& nexi, size_t k,
                                    const QueryOptions& query_options) {
  return RunQuery(nexi, k, &method, query_options);
}

Status TReX::SelfManage(const Workload& workload,
                        const SelfManagerOptions& options,
                        SelfManagerReport* report) {
  TREX_RETURN_IF_ERROR(CheckWritable("SelfManage"));
  // No snapshot lock here: the materializer takes the exclusive side
  // itself around each burst of list writes, so concurrent queries slot
  // in between the advisor's steps.
  SelfManager manager(index_.get(), options);
  return manager.Run(workload, report);
}

Status TReX::EnableSelfManagement(SelfManagementOptions options) {
  TREX_RETURN_IF_ERROR(CheckWritable("EnableSelfManagement"));
  if (advisor_loop_ != nullptr) {
    return Status::InvalidArgument("self-management is already enabled");
  }
  if (options.recorder.persist_path.empty()) {
    options.recorder.persist_path = index_->dir() + "/workload_sketch.txt";
  }
  // Re-enabling: queries in flight during the previous Disable may
  // still hold the old recorder, so it is parked, not freed.
  if (recorder_ != nullptr) {
    retired_recorders_.push_back(std::move(recorder_));
  }
  recorder_ = std::make_unique<WorkloadRecorder>(options.recorder);
  if (options.load_persisted) {
    TREX_RETURN_IF_ERROR(recorder_->Load());
  }
  advisor_loop_ = std::make_unique<AdvisorLoop>(index_.get(),
                                                recorder_.get(),
                                                options.loop);
  if (options.start_background) {
    TREX_RETURN_IF_ERROR(advisor_loop_->Start());
  } else {
    // No background thread, but a half-applied plan from a previous
    // run must still be quarantined before the first manual tick.
    // The instance entry point also writes the rollback audit record.
    TREX_RETURN_IF_ERROR(advisor_loop_->RecoverPending());
  }
  recorder_hook_.store(recorder_.get(), std::memory_order_release);
  return Status::OK();
}

Status TReX::DisableSelfManagement() {
  if (advisor_loop_ == nullptr) return Status::OK();
  recorder_hook_.store(nullptr, std::memory_order_release);
  advisor_loop_->Stop();
  advisor_loop_.reset();
  if (!recorder_->options().persist_path.empty()) {
    TREX_RETURN_IF_ERROR(recorder_->Save());
  }
  return Status::OK();
}

Result<DocId> TReX::AddDocument(const std::string& xml) {
  TREX_RETURN_IF_ERROR(CheckWritable("AddDocument"));
  // Exclusive snapshot lock: readers observe the index either entirely
  // before or entirely after this document (commit included).
  auto write_lock = index_->WriterLock();
  DocId docid = index_->max_docid() + 1;
  IndexUpdater updater(index_.get());
  TREX_RETURN_IF_ERROR(updater.AddDocument(docid, xml));
  return docid;
}

Status TReX::MaterializeFor(const std::string& nexi, bool rpls, bool erpls,
                            MaterializeStats* stats) {
  TREX_RETURN_IF_ERROR(CheckWritable("MaterializeFor"));
  TranslatedClause clause;
  {
    auto read_lock = index_->ReaderLock();
    auto translated = TranslateNexi(nexi, index_->summary(),
                                    &index_->aliases(), index_->tokenizer());
    if (!translated.ok()) return translated.status();
    clause = std::move(translated).value().flattened;
  }
  // MaterializeForClause manages its own read/write locking.
  return MaterializeForClause(index_.get(), clause, rpls, erpls, stats);
}

}  // namespace trex
