#include "advisor/cost_model.h"

#include "obs/metrics.h"
#include "retrieval/era.h"
#include "retrieval/merge.h"
#include "retrieval/ta.h"

namespace trex {

Result<QueryCosts> CostModel::Measure(Index* index,
                                      const TranslatedClause& clause,
                                      size_t k,
                                      const MeasureOptions& options) {
  static obs::Counter* const measurements =
      obs::Default().GetCounter("advisor.cost_model.measurements");
  measurements->Add();
  QueryCosts costs;

  // Record which units already exist so we can drop only what we add.
  std::vector<ListUnit> all_units = UnitsForClause(clause, true, true);
  std::vector<ListUnit> to_drop;
  for (const ListUnit& u : all_units) {
    if (!index->catalog()->Has(u.kind, u.term, u.sid)) to_drop.push_back(u);
  }
  MaterializeStats mat;
  TREX_RETURN_IF_ERROR(MaterializeUnits(index, all_units, &mat));

  // Sizes from the catalog (exact bytes written per unit).
  auto entries = index->catalog()->List();
  if (!entries.ok()) return entries.status();
  for (const CatalogEntry& e : entries.value()) {
    for (const ListUnit& u : all_units) {
      if (u.kind == e.kind && u.term == e.term && u.sid == e.sid) {
        if (e.kind == ListKind::kRpl) {
          costs.s_rpl += e.size_bytes;
        } else {
          costs.s_erpl += e.size_bytes;
        }
      }
    }
  }

  // Time the three methods on this query: an untimed warmup pass per
  // method (absorbing buffer-pool cold-start faults), then best of
  // `runs` timed passes per method.
  const int timed_runs = std::max(1, options.runs);
  auto best_of = [&](auto&& evaluate) -> Result<double> {
    RetrievalResult result;
    if (options.warmup) TREX_RETURN_IF_ERROR(evaluate(&result));
    double best = 0.0;
    for (int run = 0; run < timed_runs; ++run) {
      TREX_RETURN_IF_ERROR(evaluate(&result));
      if (run == 0 || result.metrics.wall_seconds < best) {
        best = result.metrics.wall_seconds;
      }
    }
    return best;
  };

  Era era(index);
  auto t_era = best_of(
      [&](RetrievalResult* r) { return era.Evaluate(clause, r); });
  if (!t_era.ok()) return t_era.status();
  costs.t_era = t_era.value();

  Merge merge(index);
  auto t_merge = best_of(
      [&](RetrievalResult* r) { return merge.Evaluate(clause, r); });
  if (!t_merge.ok()) return t_merge.status();
  costs.t_merge = t_merge.value();

  Ta ta(index);
  auto t_ta = best_of(
      [&](RetrievalResult* r) { return ta.Evaluate(clause, k, r); });
  if (!t_ta.ok()) return t_ta.status();
  costs.t_ta = t_ta.value();

  TREX_RETURN_IF_ERROR(DropUnits(index, to_drop));
  return costs;
}

Result<QueryCosts> CostModel::Estimate(Index* index,
                                       const TranslatedClause& clause,
                                       size_t k) {
  static obs::Counter* const estimates =
      obs::Default().GetCounter("advisor.cost_model.estimates");
  estimates->Add();
  // Volume drivers: total positions of the query's terms (ERA scan) and
  // the number of (element, term) pairs (RPL/ERPL entries). We estimate
  // entries as collection_freq (every occurrence contributes to at most
  // a handful of nested elements whose sids are in the query; a constant
  // factor cancels out of all comparisons).
  uint64_t total_positions = 0;
  for (const WeightedTerm& t : clause.terms) {
    TermStats stats;
    Status s = index->postings()->GetTermStats(t.term, &stats);
    if (s.IsNotFound()) continue;
    TREX_RETURN_IF_ERROR(s);
    total_positions += stats.collection_freq;
  }
  const double m = static_cast<double>(clause.sids.size());
  const double entries = static_cast<double>(total_positions);

  // Calibration constants (seconds per unit), fitted against
  // bench_ablation's measured-vs-estimated table on the reference
  // machine; only the ratios matter to the advisor.
  constexpr double kEraPerPositionPerSid = 1.2e-7;  // The m-row inner loop.
  constexpr double kEraPerPosition = 3e-8;
  constexpr double kMergePerEntry = 1.1e-7;
  constexpr double kTaPerEntry = 4e-7;  // Candidate + heap bookkeeping.

  QueryCosts costs;
  costs.t_era = entries * (kEraPerPosition + kEraPerPositionPerSid * m);
  costs.t_merge = entries * kMergePerEntry;
  // TA's read depth: §5 observes that TA reads essentially the whole
  // RPLs already for k >= 10, so the depth fraction has a high floor and
  // saturates quickly with k.
  double depth_fraction = std::min(
      1.0,
      std::max(0.35, static_cast<double>(k) * 50.0 / std::max(1.0, entries)));
  costs.t_ta = entries * depth_fraction * kTaPerEntry;

  // Raw blocks run ~26 bytes per entry plus B+-tree overhead; the
  // delta+varint block codec compresses the payload to roughly 40% of
  // that on the bench corpora (see index.codec.bytes_encoded /
  // bytes_raw), so size estimates follow the index's configured codec.
  const double bytes_per_entry =
      index->list_codec() == ListCodec::kRaw ? 34.0 : 14.0;
  costs.s_rpl = static_cast<uint64_t>(entries * bytes_per_entry);
  costs.s_erpl = static_cast<uint64_t>(entries * bytes_per_entry);
  return costs;
}

}  // namespace trex
