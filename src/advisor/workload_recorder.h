// WorkloadRecorder: live capture of the serving-path query stream.
//
// The paper's self-manager (§4) consumes a Workload — queries with
// frequencies summing to 1 — but says nothing about where it comes from.
// This recorder closes that gap: TReX::Query feeds every successfully
// translated query into a bounded, thread-safe sketch, and the advisor
// loop periodically snapshots it back into a Definition 4.1 workload.
//
// The sketch is a space-saving-style top-k summary with exponential
// decay:
//   * at most `capacity` distinct (nexi, k) entries are tracked; when a
//     new query arrives at capacity, the lightest entry is evicted and
//     the newcomer inherits its weight + 1 (the classic space-saving
//     overestimate, which keeps heavy hitters in the sketch);
//   * every `decay_every` observations all weights are multiplied by
//     `decay`, so a workload shift drains stale entries instead of
//     letting history pin yesterday's hot queries forever;
//   * entries whose decayed weight falls below `min_weight` are dropped.
//
// Persistence is crash-safe: SerializeToText() is a deterministic text
// format (sorted, round-trippable doubles) written with
// Env::WriteAtomically, so the file always holds a complete sketch —
// never a torn one — and a reloaded sketch yields byte-identical
// snapshots (the workload-replay determinism test depends on this).
#ifndef TREX_ADVISOR_WORKLOAD_RECORDER_H_
#define TREX_ADVISOR_WORKLOAD_RECORDER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "advisor/workload.h"
#include "common/status.h"

namespace trex {

struct WorkloadRecorderOptions {
  size_t capacity = 256;       // Max distinct (nexi, k) entries tracked.
  double decay = 0.5;          // Weight multiplier per decay sweep.
  uint64_t decay_every = 1024; // Observations between sweeps (0 = never).
  double min_weight = 0.01;    // Entries below this are dropped on sweep.
  // Sketch file for Save()/Load(); empty disables persistence.
  std::string persist_path;
};

class WorkloadRecorder {
 public:
  explicit WorkloadRecorder(WorkloadRecorderOptions options = {});

  // Records one served query. Thread-safe; queries with k == 0 ("all
  // answers") are ignored — Definition 4.1 requires a positive k.
  void Record(const std::string& nexi, size_t k);

  // The sketch as a Definition 4.1 workload: the heaviest entries
  // (all of them, or the `max_queries` heaviest when non-zero), with
  // frequencies normalized to sum 1. Deterministic: ties order by
  // (nexi, k). The result still needs Prepare() before planning.
  Workload Snapshot(size_t max_queries = 0) const;

  uint64_t observed() const;  // Total Record() calls accepted.
  size_t distinct() const;    // Entries currently in the sketch.
  uint64_t evictions() const;
  // Bumps on every accepted Record(); the advisor loop uses it to skip
  // ticks when no new traffic arrived.
  uint64_t version() const;

  // Deterministic text format:
  //   # trex workload sketch v1
  //   observed <n>
  //   <weight> <k> <nexi to end of line>     (sorted by (nexi, k))
  std::string SerializeToText() const;
  Status ParseFromText(const std::string& text);  // Replaces the sketch.

  // Crash-safe persistence via Env::WriteAtomically. Save() / Load()
  // use options.persist_path; Load() of a missing file is OK (empty
  // sketch) so first boot needs no special case.
  Status Save() const;
  Status SaveTo(const std::string& path) const;
  Status Load();
  Status LoadFrom(const std::string& path);

  void Clear();

  const WorkloadRecorderOptions& options() const { return options_; }

 private:
  struct Key {
    std::string nexi;
    size_t k = 0;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.nexi != b.nexi) return a.nexi < b.nexi;
      return a.k < b.k;
    }
  };

  void DecayLocked();

  const WorkloadRecorderOptions options_;
  mutable std::mutex mu_;
  std::map<Key, double> entries_;
  uint64_t observed_ = 0;
  uint64_t since_decay_ = 0;
  uint64_t evictions_ = 0;
  uint64_t version_ = 0;
};

}  // namespace trex

#endif  // TREX_ADVISOR_WORKLOAD_RECORDER_H_
