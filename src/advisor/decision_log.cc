#include "advisor/decision_log.h"

#include <cinttypes>
#include <cstdlib>

namespace trex {

namespace {

// Extracts the quoted-string elements of `"key":[...]` from one JSONL
// record. Works because unit tokens never contain quotes or escapes
// (terms are tokenizer output). Returns false when the key is absent.
bool ExtractTokenArray(std::string_view line, std::string_view key,
                       std::vector<std::string>* out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":[";
  size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  pos += needle.size();
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == '"') {
      size_t end = line.find('"', pos + 1);
      if (end == std::string_view::npos) return false;
      out->emplace_back(line.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    } else {
      ++pos;
    }
  }
  return pos < line.size();
}

// The string value of `"key":"..."`, or empty when absent.
std::string_view ExtractString(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return {};
  pos += needle.size();
  size_t end = line.find('"', pos);
  if (end == std::string_view::npos) return {};
  return line.substr(pos, end - pos);
}

uint64_t ExtractU64(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return 0;
  pos += needle.size();
  uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(line[pos] - '0');
    ++pos;
  }
  return value;
}

}  // namespace

std::string AuditLogPath(const std::string& index_dir) {
  return index_dir + "/advisor_decisions.jsonl";
}

std::string FormatUnitToken(const ListUnit& unit) {
  std::string out = unit.kind == ListKind::kRpl ? "R:" : "E:";
  out += std::to_string(unit.sid);
  out.push_back(':');
  out += unit.term;
  return out;
}

Result<ListUnit> ParseUnitToken(std::string_view token) {
  if (token.size() < 4 || (token[0] != 'R' && token[0] != 'E') ||
      token[1] != ':') {
    return Status::Corruption("bad unit token: " + std::string(token));
  }
  size_t colon = token.find(':', 2);
  if (colon == std::string_view::npos || colon == 2 ||
      colon + 1 >= token.size()) {
    return Status::Corruption("bad unit token: " + std::string(token));
  }
  uint64_t sid = 0;
  for (size_t i = 2; i < colon; ++i) {
    if (token[i] < '0' || token[i] > '9') {
      return Status::Corruption("bad unit token sid: " + std::string(token));
    }
    sid = sid * 10 + static_cast<uint64_t>(token[i] - '0');
  }
  ListUnit unit;
  unit.kind = token[0] == 'R' ? ListKind::kRpl : ListKind::kErpl;
  unit.sid = static_cast<Sid>(sid);
  unit.term = std::string(token.substr(colon + 1));
  return unit;
}

std::string JoinUnitTokens(const std::vector<ListUnit>& units) {
  std::string out;
  for (const ListUnit& u : units) {
    if (!out.empty()) out.push_back(',');
    out.push_back('"');
    out += FormatUnitToken(u);
    out.push_back('"');
  }
  return out;
}

AdvisorAuditLog::AdvisorAuditLog(const std::string& path) {
  sink_ = std::fopen(path.c_str(), "a");
}

AdvisorAuditLog::~AdvisorAuditLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

uint64_t AdvisorAuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void AdvisorAuditLog::Append(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  ++records_;
  if (sink_ == nullptr) return;
  std::fwrite(json_line.data(), 1, json_line.size(), sink_);
  std::fputc('\n', sink_);
  std::fflush(sink_);
}

Result<AuditReplay> ReplayAuditLog(const std::string& text,
                                   std::set<ListUnit> initial) {
  AuditReplay replay;
  replay.catalog = std::move(initial);

  auto fold = [&replay](const std::vector<std::string>& tokens,
                        bool insert) -> Status {
    for (const std::string& token : tokens) {
      auto unit = ParseUnitToken(token);
      if (!unit.ok()) return unit.status();
      if (insert) {
        replay.catalog.insert(std::move(unit).value());
      } else {
        replay.catalog.erase(unit.value());
      }
    }
    return Status::OK();
  };

  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    std::string_view type = ExtractString(line, "type");
    replay.last_tick = std::max(replay.last_tick, ExtractU64(line, "tick"));
    if (type == "apply") {
      ++replay.applies;
      std::vector<std::string> add, drop, trimmed;
      ExtractTokenArray(line, "add", &add);
      ExtractTokenArray(line, "drop", &drop);
      ExtractTokenArray(line, "trimmed", &trimmed);
      TREX_RETURN_IF_ERROR(fold(add, /*insert=*/true));
      TREX_RETURN_IF_ERROR(fold(drop, /*insert=*/false));
      TREX_RETURN_IF_ERROR(fold(trimmed, /*insert=*/false));
    } else if (type == "rollback") {
      ++replay.rollbacks;
      std::vector<std::string> dropped;
      ExtractTokenArray(line, "dropped", &dropped);
      TREX_RETURN_IF_ERROR(fold(dropped, /*insert=*/false));
    }
    // decision / plan / calibration records carry no catalog deltas.
  }
  return replay;
}

}  // namespace trex
