// Cost-model calibration: estimated vs measured query times.
//
// The online advisor plans with CostModel::Estimate — cheap analytic
// numbers derived from term statistics. Whether those numbers can be
// trusted is an empirical question, and the paper answers it by
// experiment ("the actual time savings ... should be measured
// experimentally"). CalibrationTracker closes that loop in production:
// after an applied tick the AdvisorLoop re-runs a few of the tick's
// queries with the method the plan chose, and feeds (estimated seconds,
// measured seconds) pairs here. The tracker exposes the drift as
// metrics —
//
//   advisor.calibration.samples          counter
//   advisor.calibration.overestimates    counter (measured < estimated)
//   advisor.calibration.underestimates   counter (measured > estimated)
//   advisor.calibration.ratio_pct        histogram of 100*measured/est
//   advisor.calibration.mean_abs_drift_pct  gauge, running mean |ratio-100|
//
// — so `search_cli --explain-advisor` and the Prometheus exposition can
// say not just what the advisor decided but how honest its cost model
// currently is.
#ifndef TREX_ADVISOR_CALIBRATION_H_
#define TREX_ADVISOR_CALIBRATION_H_

#include <cstdint>
#include <mutex>

#include "obs/metrics.h"

namespace trex {

class CalibrationTracker {
 public:
  // Instruments are registered in `registry` (nullptr = the default
  // registry) at construction, so the metric families exist even before
  // the first sample.
  explicit CalibrationTracker(obs::MetricsRegistry* registry = nullptr);

  CalibrationTracker(const CalibrationTracker&) = delete;
  CalibrationTracker& operator=(const CalibrationTracker&) = delete;

  // One estimate-vs-measurement pair, both in seconds. Samples with a
  // non-positive estimate are ignored (no ratio to take).
  void Observe(double estimated_seconds, double measured_seconds);

  uint64_t samples() const;
  // Running mean of |100*measured/estimated - 100| over all samples.
  double mean_abs_drift_pct() const;

 private:
  obs::Counter* const samples_;
  obs::Counter* const overestimates_;
  obs::Counter* const underestimates_;
  obs::Histogram* const ratio_pct_;
  obs::Gauge* const mean_abs_drift_pct_gauge_;

  mutable std::mutex mu_;
  uint64_t count_ = 0;
  double abs_drift_sum_pct_ = 0.0;
};

}  // namespace trex

#endif  // TREX_ADVISOR_CALIBRATION_H_
