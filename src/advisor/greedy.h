// The greedy 2-approximation (§4.2).
//
// "In the greedy approach, we iteratively add indexes. Each time we add
// the index that seems to provide the largest improvement, i.e., the
// highest ratio of the reduction in time to the addition of space."
//
// This implementation is sharing-aware, as the paper describes: the cost
// of supporting Q_i with Merge is |I_m|, the size of the MINIMAL ADDITION
// of ERPL units given the currently materialized set I — units another
// query already paid for are free. Theorem 4.2 guarantees the outcome is
// within a factor 2 of optimal.
#ifndef TREX_ADVISOR_GREEDY_H_
#define TREX_ADVISOR_GREEDY_H_

#include "advisor/selection.h"

namespace trex {

struct GreedyStats {
  size_t iterations = 0;
};

SelectionResult SolveGreedy(const SelectionInstance& instance,
                            GreedyStats* stats = nullptr);

}  // namespace trex

#endif  // TREX_ADVISOR_GREEDY_H_
