#include "advisor/workload.h"

#include <cmath>
#include <sstream>

namespace trex {

Status Workload::Validate() const {
  if (queries_.empty()) {
    return Status::InvalidArgument("workload is empty");
  }
  double sum = 0;
  for (const WorkloadQuery& q : queries_) {
    if (q.frequency <= 0.0 || q.frequency > 1.0) {
      return Status::InvalidArgument(
          "query frequency must be in (0, 1]: " + q.nexi);
    }
    if (q.k == 0) {
      return Status::InvalidArgument("query k must be positive: " + q.nexi);
    }
    sum += q.frequency;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "workload frequencies must sum to 1 (got " + std::to_string(sum) +
        ")");
  }
  return Status::OK();
}

Result<Workload> Workload::ParseFromText(const std::string& text) {
  Workload workload;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    double frequency = 0.0;
    size_t k = 0;
    if (!(fields >> frequency >> k)) {
      return Status::InvalidArgument(
          "workload line " + std::to_string(lineno) +
          ": expected '<frequency> <k> <nexi>'");
    }
    std::string nexi;
    std::getline(fields, nexi);
    size_t start = nexi.find_first_not_of(" \t");
    if (start == std::string::npos) {
      return Status::InvalidArgument("workload line " +
                                     std::to_string(lineno) +
                                     ": missing NEXI expression");
    }
    workload.Add(nexi.substr(start), frequency, k);
  }
  return workload;
}

std::string Workload::SerializeToText() const {
  std::ostringstream out;
  out << "# frequency k nexi\n";
  for (const WorkloadQuery& q : queries_) {
    out << q.frequency << ' ' << q.k << ' ' << q.nexi << '\n';
  }
  return out.str();
}

Status Workload::Prepare(Index* index) {
  for (WorkloadQuery& q : queries_) {
    auto translated = TranslateNexi(q.nexi, index->summary(),
                                    &index->aliases(), index->tokenizer());
    if (!translated.ok()) return translated.status();
    q.clause = std::move(translated).value().flattened;
  }
  return Status::OK();
}

}  // namespace trex
