#include "advisor/calibration.h"

#include <cmath>

namespace trex {

CalibrationTracker::CalibrationTracker(obs::MetricsRegistry* registry)
    : samples_((registry != nullptr ? registry : &obs::Default())
                   ->GetCounter("advisor.calibration.samples")),
      overestimates_((registry != nullptr ? registry : &obs::Default())
                         ->GetCounter("advisor.calibration.overestimates")),
      underestimates_((registry != nullptr ? registry : &obs::Default())
                          ->GetCounter("advisor.calibration.underestimates")),
      ratio_pct_((registry != nullptr ? registry : &obs::Default())
                     ->GetHistogram("advisor.calibration.ratio_pct")),
      mean_abs_drift_pct_gauge_(
          (registry != nullptr ? registry : &obs::Default())
              ->GetGauge("advisor.calibration.mean_abs_drift_pct")) {}

void CalibrationTracker::Observe(double estimated_seconds,
                                 double measured_seconds) {
  if (!(estimated_seconds > 0.0) || measured_seconds < 0.0) return;
  const double ratio_pct = 100.0 * measured_seconds / estimated_seconds;
  samples_->Add();
  if (ratio_pct < 100.0) {
    overestimates_->Add();
  } else if (ratio_pct > 100.0) {
    underestimates_->Add();
  }
  ratio_pct_->Record(static_cast<uint64_t>(std::llround(ratio_pct)));

  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  abs_drift_sum_pct_ += std::fabs(ratio_pct - 100.0);
  mean_abs_drift_pct_gauge_->Set(static_cast<int64_t>(
      std::llround(abs_drift_sum_pct_ / static_cast<double>(count_))));
}

uint64_t CalibrationTracker::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double CalibrationTracker::mean_abs_drift_pct() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0
                     : abs_drift_sum_pct_ / static_cast<double>(count_);
}

}  // namespace trex
