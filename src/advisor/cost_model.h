// Per-query costs for the self-manager (§4).
//
// For query Q_i the advisor needs: T_e, T_m, T_ta (ERA / Merge / TA
// evaluation times), and S_ERPL(Q_i) / S_RPL(Q_i) (disk space of the
// lists each method requires). The paper: "The actual time savings and
// disk space for typical queries should be measured experimentally and
// assigned in the formulas" — Measure() does exactly that (temporarily
// materializing missing lists, timing all three methods, then dropping
// what it created). Estimate() is a cheap analytic fallback driven by
// term statistics, for workloads too large to measure.
#ifndef TREX_ADVISOR_COST_MODEL_H_
#define TREX_ADVISOR_COST_MODEL_H_

#include <algorithm>

#include "advisor/workload.h"
#include "index/index.h"
#include "retrieval/materializer.h"

namespace trex {

struct QueryCosts {
  double t_era = 0.0;
  double t_merge = 0.0;
  double t_ta = 0.0;
  uint64_t s_rpl = 0;   // Bytes of the query's RPL units.
  uint64_t s_erpl = 0;  // Bytes of the query's ERPL units.

  // The paper's savings: Delta_m = max(T_e - T_m, 0),
  // Delta_ta = max(T_e - T_ta, 0).
  double merge_saving() const { return std::max(t_era - t_merge, 0.0); }
  double ta_saving() const { return std::max(t_era - t_ta, 0.0); }
};

struct MeasureOptions {
  // Timed repetitions per method; the reported time is the minimum (the
  // run least disturbed by scheduling noise).
  int runs = 3;
  // One untimed pass per method first, so the buffer pool's cold-start
  // faults land in the warmup instead of skewing the first timed run —
  // without it T_e (measured first) absorbs all the faults and the
  // savings Delta = T_e - T_m/T_ta are systematically inflated.
  bool warmup = true;
};

class CostModel {
 public:
  // Measures by running all three methods (materializing missing lists
  // temporarily; lists that already existed are left untouched).
  static Result<QueryCosts> Measure(Index* index,
                                    const TranslatedClause& clause, size_t k,
                                    const MeasureOptions& options = {});

  // Analytic estimate from term statistics; no I/O beyond stat lookups.
  static Result<QueryCosts> Estimate(Index* index,
                                     const TranslatedClause& clause,
                                     size_t k);
};

}  // namespace trex

#endif  // TREX_ADVISOR_COST_MODEL_H_
