#include "advisor/workload_recorder.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "storage/env.h"

namespace trex {

WorkloadRecorder::WorkloadRecorder(WorkloadRecorderOptions options)
    : options_(std::move(options)) {}

void WorkloadRecorder::Record(const std::string& nexi, size_t k) {
  if (k == 0 || nexi.empty()) return;
  static obs::Counter* const recorded =
      obs::Default().GetCounter("advisor.recorder.recorded");
  std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  ++version_;
  if (options_.decay_every != 0 && ++since_decay_ >= options_.decay_every) {
    since_decay_ = 0;
    DecayLocked();
  }
  Key key{nexi, k};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second += 1.0;
  } else if (entries_.size() < options_.capacity) {
    entries_.emplace(std::move(key), 1.0);
  } else {
    // Space-saving eviction: replace the lightest entry (ties broken by
    // the map's key order, so eviction is deterministic) and let the
    // newcomer inherit its weight — heavy hitters can be displaced only
    // by sustained new traffic, not by one stray query.
    auto lightest = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e) {
      if (e->second < lightest->second) lightest = e;
    }
    double inherited = lightest->second;
    entries_.erase(lightest);
    entries_.emplace(std::move(key), inherited + 1.0);
    ++evictions_;
    obs::Default().GetCounter("advisor.recorder.evictions")->Add();
  }
  recorded->Add();
}

void WorkloadRecorder::DecayLocked() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second *= options_.decay;
    if (it->second < options_.min_weight) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

Workload WorkloadRecorder::Snapshot(size_t max_queries) const {
  std::vector<std::pair<Key, double>> picked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    picked.assign(entries_.begin(), entries_.end());
  }
  // Heaviest first; ties by (nexi, k) so the snapshot is a pure
  // function of the sketch contents.
  std::stable_sort(picked.begin(), picked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  if (max_queries != 0 && picked.size() > max_queries) {
    picked.resize(max_queries);
  }
  double total = 0.0;
  for (const auto& [key, weight] : picked) total += weight;
  Workload workload;
  if (total <= 0.0) return workload;
  for (auto& [key, weight] : picked) {
    workload.Add(key.nexi, weight / total, key.k);
  }
  return workload;
}

uint64_t WorkloadRecorder::observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

size_t WorkloadRecorder::distinct() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t WorkloadRecorder::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t WorkloadRecorder::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::string WorkloadRecorder::SerializeToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "# trex workload sketch v1\n";
  out += "observed " + std::to_string(observed_) + "\n";
  for (const auto& [key, weight] : entries_) {
    // %.17g round-trips every double exactly, so a save/load cycle
    // reproduces the sketch (and thus the plan) bit for bit.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g %zu ", weight, key.k);
    out += buf;
    out += key.nexi;
    out += '\n';
  }
  return out;
}

Status WorkloadRecorder::ParseFromText(const std::string& text) {
  std::map<Key, double> parsed;
  uint64_t observed = 0;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') {
      if (line.find("trex workload sketch v1") != std::string::npos) {
        saw_header = true;
      }
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    if (line.rfind("observed", first) == first) {
      fields >> tag >> observed;
      continue;
    }
    double weight = 0.0;
    size_t k = 0;
    if (!(fields >> weight >> k) || weight <= 0.0 || k == 0) {
      return Status::InvalidArgument(
          "workload sketch line " + std::to_string(lineno) +
          ": expected '<weight> <k> <nexi>'");
    }
    std::string nexi;
    std::getline(fields, nexi);
    size_t start = nexi.find_first_not_of(" \t");
    if (start == std::string::npos) {
      return Status::InvalidArgument("workload sketch line " +
                                     std::to_string(lineno) +
                                     ": missing NEXI expression");
    }
    parsed[Key{nexi.substr(start), k}] = weight;
  }
  if (!saw_header) {
    return Status::InvalidArgument("not a trex workload sketch (no header)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(parsed);
  observed_ = observed;
  since_decay_ = 0;
  ++version_;
  return Status::OK();
}

Status WorkloadRecorder::Save() const {
  if (options_.persist_path.empty()) {
    return Status::InvalidArgument("recorder has no persist_path");
  }
  return SaveTo(options_.persist_path);
}

Status WorkloadRecorder::SaveTo(const std::string& path) const {
  return Env::Default()->WriteAtomically(path, SerializeToText());
}

Status WorkloadRecorder::Load() {
  if (options_.persist_path.empty()) {
    return Status::InvalidArgument("recorder has no persist_path");
  }
  return LoadFrom(options_.persist_path);
}

Status WorkloadRecorder::LoadFrom(const std::string& path) {
  if (!Env::Default()->Exists(path)) return Status::OK();  // First boot.
  auto contents = Env::Default()->ReadToString(path);
  if (!contents.ok()) return contents.status();
  return ParseFromText(contents.value());
}

void WorkloadRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  observed_ = 0;
  since_decay_ = 0;
  ++version_;
}

}  // namespace trex
