// The advisor's decision audit log (observability for §4's self-manager).
//
// Every tick the AdvisorLoop takes decisions an operator may later have
// to explain: which queries drove the plan, which candidate got which
// index (or none), why a plan was gated, what was actually applied and
// what a crash rolled back. The audit log records them as JSONL, one
// object per record, appended to `advisor_decisions.jsonl` next to the
// apply journal. Record types:
//
//   decision     one per workload query per planned tick: frequency, k,
//                the chosen index (erpl/rpl/none), the raw estimated
//                costs (t_era/t_merge/t_ta/s_rpl/s_erpl) and the
//                weighted saving the choice contributes.
//   plan         one per planned tick: aggregate saving/gain, whether
//                the anti-thrash gate fired, over-budget flag, and the
//                drops deferred by min-age hysteresis.
//   apply        one per catalog change: units added / dropped /
//                trimmed, plus the resulting catalog bytes.
//   rollback     written by crash recovery: the units quarantined.
//   calibration  estimate-vs-measured sample (see advisor/calibration.h).
//
// The log is an append-only plain-stdio file on purpose: audit writes
// must not flow through trex::Env, whose fault-injection wrapper counts
// writes to schedule crashes — telemetry must never perturb the fault
// schedule it exists to explain.
//
// ReplayAuditLog folds apply/rollback records over an initial catalog
// set and returns the reconstructed catalog — the invariant (enforced
// by tests and bench_workload_shift) is that the replayed set equals
// the live catalog, i.e. every advisor action is reconstructible from
// the audit log alone. Units cross the log as compact tokens
// ("R:<sid>:<term>", see FormatUnitToken) so replay needs no JSON
// parser: terms are tokenizer output and never contain quotes, colons
// or backslashes.
#ifndef TREX_ADVISOR_DECISION_LOG_H_
#define TREX_ADVISOR_DECISION_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "retrieval/materializer.h"

namespace trex {

// `<index_dir>/advisor_decisions.jsonl`.
std::string AuditLogPath(const std::string& index_dir);

// "R:4:xml" / "E:7:ontologies" — kind tag, summary id, term.
std::string FormatUnitToken(const ListUnit& unit);
Result<ListUnit> ParseUnitToken(std::string_view token);
// `"R:1:a","E:2:b"` — ready to splice into a JSON array.
std::string JoinUnitTokens(const std::vector<ListUnit>& units);

// Append-only JSONL sink. Thread-safe; each Append writes one line and
// flushes, so records survive the process dying right after the apply
// they describe.
class AdvisorAuditLog {
 public:
  explicit AdvisorAuditLog(const std::string& path);
  ~AdvisorAuditLog();

  AdvisorAuditLog(const AdvisorAuditLog&) = delete;
  AdvisorAuditLog& operator=(const AdvisorAuditLog&) = delete;

  bool ok() const { return sink_ != nullptr; }
  uint64_t records() const;

  // `json_line` is one complete JSON object without the trailing
  // newline. No-op (but counted as a drop) when the sink failed to open.
  void Append(const std::string& json_line);

 private:
  std::FILE* sink_ = nullptr;
  mutable std::mutex mu_;
  uint64_t records_ = 0;
};

// The catalog state reconstructed by folding the audit log.
struct AuditReplay {
  size_t applies = 0;
  size_t rollbacks = 0;
  uint64_t last_tick = 0;  // Highest "tick" seen on any record.
  std::set<ListUnit> catalog;
};

// Folds every apply ("add" minus "drop"/"trimmed") and rollback
// ("dropped") record in `text` over `initial`. Unknown record types are
// skipped (the log is designed to grow new types); a malformed unit
// token is a Corruption error.
Result<AuditReplay> ReplayAuditLog(const std::string& text,
                                   std::set<ListUnit> initial = {});

}  // namespace trex

#endif  // TREX_ADVISOR_DECISION_LOG_H_
