#include "advisor/advisor.h"

#include <set>

namespace trex {

Status SelfManager::BuildInstance(const Workload& workload,
                                  SelectionInstance* instance) {
  instance->queries.clear();
  instance->unit_sizes.clear();
  instance->disk_budget = options_.disk_budget_bytes;

  for (const WorkloadQuery& wq : workload.queries()) {
    SelectionQuery sq;
    sq.frequency = wq.frequency;
    QueryCosts costs;
    if (options_.costs == SelfManagerOptions::Costs::kMeasured) {
      auto measured = CostModel::Measure(index_, wq.clause, wq.k);
      if (!measured.ok()) return measured.status();
      costs = measured.value();
    } else {
      auto estimated = CostModel::Estimate(index_, wq.clause, wq.k);
      if (!estimated.ok()) return estimated.status();
      costs = estimated.value();
    }
    sq.costs = costs;
    sq.merge_saving = costs.merge_saving();
    sq.ta_saving = costs.ta_saving();
    sq.s_erpl = costs.s_erpl;
    sq.s_rpl = costs.s_rpl;
    sq.erpl_units = UnitsForClause(wq.clause, /*rpls=*/false, /*erpls=*/true);
    sq.rpl_units = UnitsForClause(wq.clause, /*rpls=*/true, /*erpls=*/false);

    // Per-unit sizes for the sharing-aware greedy. The per-query totals
    // are exact (measured) or estimated; an even split over the query's
    // units keeps the budget constraint on totals intact while letting
    // overlapping queries share unit costs.
    if (!sq.erpl_units.empty()) {
      uint64_t per = sq.s_erpl / sq.erpl_units.size();
      for (const ListUnit& u : sq.erpl_units) {
        instance->unit_sizes.emplace(u, per);
      }
    }
    if (!sq.rpl_units.empty()) {
      uint64_t per = sq.s_rpl / sq.rpl_units.size();
      for (const ListUnit& u : sq.rpl_units) {
        instance->unit_sizes.emplace(u, per);
      }
    }
    instance->queries.push_back(std::move(sq));
  }
  return Status::OK();
}

Status SelfManager::Plan(const Workload& workload,
                         SelectionInstance* instance,
                         SelectionResult* result) {
  TREX_RETURN_IF_ERROR(workload.Validate());
  TREX_RETURN_IF_ERROR(BuildInstance(workload, instance));
  if (options_.solver == SelfManagerOptions::Solver::kIlp) {
    *result = SolveIlp(*instance);
  } else {
    *result = SolveGreedy(*instance);
  }
  return Status::OK();
}

std::vector<ListUnit> ChosenUnits(const SelectionInstance& instance,
                                  const SelectionResult& result) {
  std::set<ListUnit> wanted;
  for (size_t i = 0; i < instance.queries.size(); ++i) {
    const SelectionQuery& sq = instance.queries[i];
    if (result.choice[i] == IndexChoice::kErpl) {
      wanted.insert(sq.erpl_units.begin(), sq.erpl_units.end());
    } else if (result.choice[i] == IndexChoice::kRpl) {
      wanted.insert(sq.rpl_units.begin(), sq.rpl_units.end());
    }
  }
  return std::vector<ListUnit>(wanted.begin(), wanted.end());
}

Status SelfManager::Run(const Workload& workload, SelfManagerReport* report) {
  SelectionInstance instance;
  SelectionResult result;
  TREX_RETURN_IF_ERROR(Plan(workload, &instance, &result));

  // Materialize the chosen units.
  std::vector<ListUnit> wanted_units = ChosenUnits(instance, result);
  std::set<ListUnit> wanted(wanted_units.begin(), wanted_units.end());
  MaterializeStats mat;
  TREX_RETURN_IF_ERROR(MaterializeUnits(index_, wanted_units, &mat));

  if (options_.drop_unchosen) {
    auto existing = index_->catalog()->List();
    if (!existing.ok()) return existing.status();
    std::vector<ListUnit> to_drop;
    for (const CatalogEntry& e : existing.value()) {
      ListUnit u{e.kind, e.term, e.sid};
      if (wanted.find(u) == wanted.end()) to_drop.push_back(u);
    }
    TREX_RETURN_IF_ERROR(DropUnits(index_, to_drop));
  }

  // Report.
  report->queries.clear();
  report->total_weighted_saving = result.total_saving;
  report->bytes_budget = options_.disk_budget_bytes;
  auto total = index_->catalog()->TotalSizeBytes();
  if (!total.ok()) return total.status();
  report->bytes_materialized = total.value();
  for (size_t i = 0; i < workload.size(); ++i) {
    SelfManagerReport::PerQuery pq;
    pq.nexi = workload.queries()[i].nexi;
    pq.choice = result.choice[i];
    switch (result.choice[i]) {
      case IndexChoice::kErpl:
        pq.expected_method = RetrievalMethod::kMerge;
        pq.weighted_saving = instance.queries[i].frequency *
                             instance.queries[i].merge_saving;
        break;
      case IndexChoice::kRpl:
        pq.expected_method = RetrievalMethod::kTa;
        pq.weighted_saving =
            instance.queries[i].frequency * instance.queries[i].ta_saving;
        break;
      case IndexChoice::kNone:
        pq.expected_method = RetrievalMethod::kEra;
        break;
    }
    report->queries.push_back(std::move(pq));
  }
  return Status::OK();
}

}  // namespace trex
