// Exact 0/1 solver for the index-selection ILP (§4.1).
//
// "This linear-programming problem can be solved using known techniques
// such as the branch-and-cut or branch-and-bound algorithms." This is a
// branch-and-bound: depth-first over the three per-query decisions
// (none / ERPL / RPL), queries pre-ordered by best gain-cost ratio, with
// a fractional-knapsack upper bound over all remaining options (a valid
// relaxation: it drops the x_i1 + x_i2 <= 1 coupling and allows
// fractional items, both of which only increase the optimum).
#ifndef TREX_ADVISOR_ILP_H_
#define TREX_ADVISOR_ILP_H_

#include "advisor/selection.h"

namespace trex {

struct IlpStats {
  uint64_t nodes_explored = 0;
  uint64_t nodes_pruned = 0;
};

// Exact optimum of the selection instance.
SelectionResult SolveIlp(const SelectionInstance& instance,
                         IlpStats* stats = nullptr);

}  // namespace trex

#endif  // TREX_ADVISOR_ILP_H_
