#include "advisor/advisor_loop.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/clock.h"
#include "nexi/translator.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "retrieval/materializer.h"
#include "retrieval/strategy.h"
#include "storage/env.h"

namespace trex {

namespace {

struct LoopMetrics {
  obs::Counter* ticks;
  obs::Counter* plans;
  obs::Counter* plans_applied;
  obs::Counter* plans_gated;  // Hysteresis kept the current set.
  obs::Counter* lists_materialized;
  obs::Counter* lists_dropped;
  obs::Counter* drops_deferred;
  obs::Counter* budget_trims;
  obs::Counter* budget_aborts;
  obs::Counter* errors;
  obs::Counter* recovered_units;
  obs::Counter* ticks_skipped_overload;
  obs::Gauge* bytes_materialized;
  obs::Histogram* tick_nanos;
};

LoopMetrics& Metrics() {
  static LoopMetrics m = {
      obs::Default().GetCounter("advisor.loop.ticks"),
      obs::Default().GetCounter("advisor.loop.plans"),
      obs::Default().GetCounter("advisor.loop.plans_applied"),
      obs::Default().GetCounter("advisor.loop.plans_gated"),
      obs::Default().GetCounter("advisor.loop.lists_materialized"),
      obs::Default().GetCounter("advisor.loop.lists_dropped"),
      obs::Default().GetCounter("advisor.loop.drops_deferred"),
      obs::Default().GetCounter("advisor.loop.budget_trims"),
      obs::Default().GetCounter("advisor.loop.budget_aborts"),
      obs::Default().GetCounter("advisor.loop.errors"),
      obs::Default().GetCounter("advisor.loop.recovered_units"),
      obs::Default().GetCounter("advisor.loop.ticks_skipped_overload"),
      obs::Default().GetGauge("advisor.loop.bytes_materialized"),
      obs::Default().GetHistogram("advisor.loop.tick_nanos"),
  };
  return m;
}

const char* KindTag(ListKind kind) {
  return kind == ListKind::kRpl ? "R" : "E";
}

// Shortest round-trippable rendering for audit records.
std::string Dbl(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

const char* ChoiceName(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kErpl:
      return "erpl";
    case IndexChoice::kRpl:
      return "rpl";
    case IndexChoice::kNone:
      return "none";
  }
  return "?";
}

}  // namespace

AdvisorLoop::AdvisorLoop(Index* index, WorkloadRecorder* recorder,
                         AdvisorLoopOptions options)
    : index_(index), recorder_(recorder), options_(std::move(options)) {
  if (options_.audit) {
    audit_ = std::make_unique<AdvisorAuditLog>(AuditLogPath(index_->dir()));
  }
}

AdvisorLoop::~AdvisorLoop() { Stop(); }

std::string AdvisorLoop::ApplyJournalPath(const std::string& index_dir) {
  return index_dir + "/advisor_apply.txt";
}

Status AdvisorLoop::RecoverPendingApply(Index* index, size_t* recovered_units,
                                        std::vector<ListUnit>* recovered) {
  if (recovered_units != nullptr) *recovered_units = 0;
  if (recovered != nullptr) recovered->clear();
  const std::string path = ApplyJournalPath(index->dir());
  if (!Env::Default()->Exists(path)) return Status::OK();
  auto contents = Env::Default()->ReadToString(path);
  if (!contents.ok()) return contents.status();

  // Quarantine: every unit the interrupted apply touched (or meant to
  // touch) is dropped if present. RPL/ERPLs are rebuildable caches, so
  // rollback is always safe; the next tick re-materializes whatever the
  // then-current plan wants.
  std::vector<ListUnit> units;
  std::istringstream in(contents.value());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string op, kind;
    Sid sid = kInvalidSid;
    std::string term;
    if (!(fields >> op >> kind >> sid >> term)) continue;
    if (op != "add" && op != "drop") continue;
    units.push_back(ListUnit{kind == "R" ? ListKind::kRpl : ListKind::kErpl,
                             term, sid});
  }
  std::vector<ListUnit> present;
  {
    auto read_lock = index->ReaderLock();
    for (const ListUnit& u : units) {
      if (index->catalog()->Has(u.kind, u.term, u.sid)) present.push_back(u);
    }
  }
  TREX_RETURN_IF_ERROR(DropUnits(index, present));
  TREX_RETURN_IF_ERROR(index->Flush());
  TREX_RETURN_IF_ERROR(Env::Default()->Remove(path));
  Metrics().recovered_units->Add(present.size());
  if (recovered_units != nullptr) *recovered_units = present.size();
  if (recovered != nullptr) *recovered = std::move(present);
  return Status::OK();
}

Status AdvisorLoop::RecoverPending() {
  std::vector<ListUnit> dropped;
  TREX_RETURN_IF_ERROR(RecoverPendingApply(index_, nullptr, &dropped));
  if (!dropped.empty()) {
    if (audit_ != nullptr) {
      audit_->Append("{\"type\":\"rollback\",\"dropped\":[" +
                     JoinUnitTokens(dropped) + "]}");
    }
    obs::FlightRecorder::Default().Record(
        obs::FlightKind::kAdvisor, "rollback",
        "\"units\":" + std::to_string(dropped.size()));
  }
  return Status::OK();
}

Status AdvisorLoop::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::OK();
  }
  TREX_RETURN_IF_ERROR(RecoverPending());
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&AdvisorLoop::ThreadMain, this);
  return Status::OK();
}

void AdvisorLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool AdvisorLoop::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void AdvisorLoop::ThreadMain() {
  // Register with the sampling profiler: a profile taken while the
  // advisor re-plans shows its ticks under the "advisor.tick" phase
  // (the base label below tags time between ticks).
  obs::ProfilerThreadScope profiler_scope("advisor.loop");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_millis),
                 [&] { return stop_; });
    if (stop_) break;
    lock.unlock();
    // Overload yield: while the serving side is saturated (the probe is
    // typically QueryExecutor::saturated()), background re-planning only
    // adds I/O to the storm — skip the tick and re-probe next interval.
    if (options_.load_probe && options_.load_probe()) {
      Metrics().ticks_skipped_overload->Add();
      obs::FlightRecorder::Default().Record(
          obs::FlightKind::kShed, "advisor_tick_skipped",
          "\"reason\":\"executor_saturated\"");
    } else {
      Status s = TickNow();
      (void)s;  // Already counted in advisor.loop.errors.
    }
    lock.lock();
  }
}

uint64_t AdvisorLoop::ticks() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return ticks_;
}

AdvisorTickReport AdvisorLoop::last_report() const {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return last_report_;
}

double AdvisorLoop::SavingOfCurrentCatalog(const SelectionInstance& instance) {
  auto supported = [&](const std::vector<ListUnit>& units) {
    if (units.empty()) return false;
    for (const ListUnit& u : units) {
      if (!index_->catalog()->Has(u.kind, u.term, u.sid)) return false;
    }
    return true;
  };
  double saving = 0.0;
  auto read_lock = index_->ReaderLock();
  for (const SelectionQuery& q : instance.queries) {
    double best = 0.0;
    if (supported(q.erpl_units)) {
      best = std::max(best, q.frequency * q.merge_saving);
    }
    if (supported(q.rpl_units)) {
      best = std::max(best, q.frequency * q.ta_saving);
    }
    saving += best;
  }
  return saving;
}

Status AdvisorLoop::TickNow(AdvisorTickReport* report) {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  Stopwatch watch;
  AdvisorTickReport tick;
  tick.tick = ++ticks_;
  tick.bytes_budget = options_.manager.disk_budget_bytes;
  Metrics().ticks->Add();

  obs::ResourceAccounting accounting(options_.tick_budget);
  Status s;
  {
    // The whole tick is one synthetic "advisor" query: every page the
    // planner or the materializer touches is charged here (CPU
    // included, via the scope's thread-cputime delta), and the tick
    // budget (if any) aborts runaway applies at the buffer pool.
    obs::ProfilePhaseScope phase("advisor.tick");
    obs::ResourceScope scope(&accounting);
    s = RunTick(&tick);
  }
  tick.resources = accounting.Usage();
  if (!s.ok()) {
    Metrics().errors->Add();
    if (s.IsResourceExhausted()) Metrics().budget_aborts->Add();
    // A failed apply may leave the journal behind with some units
    // half-materialized. Roll it back now, outside the tick's budget
    // scope, so the catalog never carries half-applied bytes.
    Status recover = RecoverPending();
    (void)recover;  // Best-effort; Start() retries it too.
  }
  if (options_.persist_recorder) {
    Status persisted = recorder_->Save();
    if (!persisted.ok() && !persisted.IsInvalidArgument()) {
      Metrics().errors->Add();
    }
  }
  Metrics().tick_nanos->Record(static_cast<uint64_t>(watch.ElapsedNanos()));
  last_report_ = tick;
  if (report != nullptr) *report = tick;
  return s;
}

Status AdvisorLoop::RunTick(AdvisorTickReport* tick) {
  obs::Trace trace("advisor.tick");

  // No new traffic since the last successfully applied plan and no
  // drops waiting out their minimum age: the plan cannot change, so
  // skip the planning work entirely (matters at short intervals).
  const uint64_t version = recorder_->version();
  if (version == last_planned_version_ && last_report_.applied &&
      last_report_.drops_deferred == 0) {
    tick->applied = last_report_.applied;
    tick->bytes_materialized = last_report_.bytes_materialized;
    trace.Finish();
    tick->trace_json = trace.ToJson();
    return Status::OK();
  }

  // Phase 1 (shared snapshot lock): sketch snapshot and translation.
  Workload workload;
  {
    obs::TraceSpan span(&trace, "snapshot");
    auto read_lock = index_->ReaderLock();
    Workload snap = recorder_->Snapshot(options_.max_workload_queries);
    span.AddAttr("distinct", static_cast<uint64_t>(snap.size()));
    if (snap.size() < options_.min_queries) {
      trace.Finish();
      tick->trace_json = trace.ToJson();
      return Status::OK();  // Not enough signal yet; planned stays false.
    }
    // Keep only queries that still translate against the live summary
    // (a recorded query can stop matching after alias/summary changes),
    // renormalizing frequencies over the survivors.
    std::vector<const WorkloadQuery*> kept;
    double total = 0.0;
    for (const WorkloadQuery& q : snap.queries()) {
      auto translated = TranslateNexi(q.nexi, index_->summary(),
                                      &index_->aliases(),
                                      index_->tokenizer());
      if (!translated.ok()) continue;
      kept.push_back(&q);
      total += q.frequency;
    }
    if (kept.size() < options_.min_queries || total <= 0.0) {
      trace.Finish();
      tick->trace_json = trace.ToJson();
      return Status::OK();
    }
    for (const WorkloadQuery* q : kept) {
      workload.Add(q->nexi, q->frequency / total, q->k);
    }
    TREX_RETURN_IF_ERROR(workload.Validate());
    TREX_RETURN_IF_ERROR(workload.Prepare(index_));
  }
  tick->planned = true;
  tick->workload_queries = workload.size();
  last_planned_version_ = version;
  Metrics().plans->Add();

  // Phase 2: plan. With estimated costs this is read-only stat probing
  // and runs under the shared lock; with measured costs SelfManager
  // materializes/drops temporary lists itself (taking the exclusive
  // lock internally), so it must run unlocked at this level.
  SelfManager manager(index_, options_.manager);
  SelectionInstance instance;
  SelectionResult result;
  {
    obs::TraceSpan span(&trace, "plan");
    if (options_.manager.costs == SelfManagerOptions::Costs::kEstimated) {
      auto read_lock = index_->ReaderLock();
      TREX_RETURN_IF_ERROR(manager.Plan(workload, &instance, &result));
    } else {
      TREX_RETURN_IF_ERROR(manager.Plan(workload, &instance, &result));
    }
    span.AddAttr("queries", static_cast<uint64_t>(workload.size()));
    span.AddAttr("planned_saving", result.total_saving);
  }
  tick->planned_saving = result.total_saving;

  // Audit: one decision record per candidate query, carrying the raw
  // costs the plan was built from — enough to re-derive (and later
  // calibrate) every choice without re-running the planner.
  if (audit_ != nullptr) {
    const auto& wqs = workload.queries();
    for (size_t i = 0; i < instance.queries.size() && i < wqs.size() &&
                       i < result.choice.size();
         ++i) {
      const SelectionQuery& sq = instance.queries[i];
      const IndexChoice choice = result.choice[i];
      double weighted = 0.0;
      if (choice == IndexChoice::kErpl) {
        weighted = sq.frequency * sq.merge_saving;
      } else if (choice == IndexChoice::kRpl) {
        weighted = sq.frequency * sq.ta_saving;
      }
      std::string rec = "{\"type\":\"decision\",\"tick\":" +
                        std::to_string(tick->tick) + ",\"query\":\"";
      obs::JsonEscape(wqs[i].nexi, &rec);
      rec += "\",\"f\":" + Dbl(sq.frequency) +
             ",\"k\":" + std::to_string(wqs[i].k) + ",\"choice\":\"" +
             ChoiceName(choice) +
             "\",\"est\":{\"t_era\":" + Dbl(sq.costs.t_era) +
             ",\"t_merge\":" + Dbl(sq.costs.t_merge) +
             ",\"t_ta\":" + Dbl(sq.costs.t_ta) +
             ",\"s_rpl\":" + std::to_string(sq.costs.s_rpl) +
             ",\"s_erpl\":" + std::to_string(sq.costs.s_erpl) +
             "},\"weighted_saving\":" + Dbl(weighted) + "}";
      audit_->Append(rec);
    }
  }

  // Phase 3: diff the plan against the live catalog.
  std::vector<ListUnit> wanted_units = ChosenUnits(instance, result);
  std::set<ListUnit> wanted(wanted_units.begin(), wanted_units.end());
  std::vector<ListUnit> to_add;
  std::vector<ListUnit> unwanted;
  uint64_t current_bytes = 0;
  {
    auto read_lock = index_->ReaderLock();
    for (const ListUnit& u : wanted_units) {
      if (!index_->catalog()->Has(u.kind, u.term, u.sid)) to_add.push_back(u);
    }
    auto existing = index_->catalog()->List();
    if (!existing.ok()) return existing.status();
    for (const CatalogEntry& e : existing.value()) {
      ListUnit u{e.kind, e.term, e.sid};
      current_bytes += e.size_bytes;
      // Age bookkeeping: units that predate the loop are first observed
      // now and start aging from this tick.
      created_tick_.emplace(u, tick->tick);
      if (wanted.find(u) == wanted.end()) unwanted.push_back(u);
    }
  }
  tick->current_saving = SavingOfCurrentCatalog(instance);

  const uint64_t budget = options_.manager.disk_budget_bytes;
  const bool over_budget = current_bytes > budget;
  const double gain = tick->planned_saving - tick->current_saving;

  // Anti-thrash gate on ADDS: materialize new lists only when the plan
  // is genuinely better than what is already on disk (or the catalog
  // has outgrown the budget and must change regardless). Drops are
  // governed separately by the min-age gate below — a gated plan must
  // not pin matured, unwanted lists forever.
  bool gated = false;
  if (!to_add.empty() && gain <= options_.min_saving_delta && !over_budget) {
    gated = true;
    to_add.clear();
    Metrics().plans_gated->Add();
  }

  // Min-age hysteresis on drops (waived when over budget: staying
  // within d is a hard constraint, freshness is not).
  std::vector<ListUnit> to_drop;
  std::vector<ListUnit> deferred;
  for (const ListUnit& u : unwanted) {
    auto it = created_tick_.find(u);
    uint64_t age = it == created_tick_.end()
                       ? options_.min_list_age_ticks
                       : tick->tick - it->second;
    if (over_budget || age >= options_.min_list_age_ticks) {
      to_drop.push_back(u);
    } else {
      deferred.push_back(u);
      ++tick->drops_deferred;
    }
  }
  Metrics().drops_deferred->Add(tick->drops_deferred);

  // Audit + flight event: what this tick's plan amounted to, and why it
  // will (or will not) change the catalog.
  if (audit_ != nullptr) {
    audit_->Append(
        "{\"type\":\"plan\",\"tick\":" + std::to_string(tick->tick) +
        ",\"queries\":" + std::to_string(tick->workload_queries) +
        ",\"planned_saving\":" + Dbl(tick->planned_saving) +
        ",\"current_saving\":" + Dbl(tick->current_saving) +
        ",\"gain\":" + Dbl(gain) +
        ",\"gated\":" + (gated ? "true" : "false") +
        ",\"over_budget\":" + (over_budget ? "true" : "false") +
        ",\"to_add\":" + std::to_string(to_add.size()) +
        ",\"to_drop\":" + std::to_string(to_drop.size()) +
        ",\"deferred\":[" + JoinUnitTokens(deferred) + "]}");
  }
  obs::FlightRecorder::Default().Record(
      obs::FlightKind::kAdvisor, "plan",
      "\"tick\":" + std::to_string(tick->tick) +
          ",\"gated\":" + (gated ? "true" : "false") +
          ",\"to_add\":" + std::to_string(to_add.size()) +
          ",\"to_drop\":" + std::to_string(to_drop.size()));

  if (to_add.empty() && to_drop.empty()) {
    // Nothing to do this tick: converged unless changes were merely
    // gated or deferred.
    tick->applied = !gated && tick->drops_deferred == 0;
    tick->bytes_materialized = current_bytes;
    Metrics().bytes_materialized->Set(static_cast<int64_t>(current_bytes));
    trace.Finish();
    tick->trace_json = trace.ToJson();
    return Status::OK();
  }

  // Phase 4: apply, guarded by the crash journal. Journal first (atomic
  // write), mutate, flush durably, then retire the journal — a crash at
  // any point leaves either a consistent catalog or a journal that
  // RecoverPendingApply rolls back.
  std::vector<ListUnit> trimmed;
  {
    obs::TraceSpan span(&trace, "apply");
    std::string journal = "# trex advisor apply journal v1\n";
    for (const ListUnit& u : to_add) {
      journal += std::string("add ") + KindTag(u.kind) + " " +
                 std::to_string(u.sid) + " " + u.term + "\n";
    }
    for (const ListUnit& u : to_drop) {
      journal += std::string("drop ") + KindTag(u.kind) + " " +
                 std::to_string(u.sid) + " " + u.term + "\n";
    }
    TREX_RETURN_IF_ERROR(Env::Default()->WriteAtomically(
        ApplyJournalPath(index_->dir()), journal));

    MaterializeStats mat;
    TREX_RETURN_IF_ERROR(MaterializeUnits(index_, to_add, &mat));
    tick->lists_materialized = mat.lists_written;
    TREX_RETURN_IF_ERROR(DropUnits(index_, to_drop));
    tick->lists_dropped = to_drop.size();

    // The plan kept the *estimated* sizes within d; the bytes actually
    // written are authoritative. If they overshoot, trim unwanted
    // stragglers first, then the cheapest-loss chosen units, until the
    // catalog fits again.
    auto total = index_->catalog()->TotalSizeBytes();
    if (!total.ok()) return total.status();
    uint64_t bytes = total.value();
    if (bytes > budget) {
      Metrics().budget_trims->Add();
      auto entries = index_->catalog()->List();
      if (!entries.ok()) return entries.status();
      // Deterministic trim order: non-wanted entries first, then wanted
      // ones largest-first (shedding the fewest lists to get under d).
      std::vector<CatalogEntry> trim = entries.value();
      std::stable_sort(trim.begin(), trim.end(),
                       [&](const CatalogEntry& a, const CatalogEntry& b) {
                         bool wa = wanted.count(ListUnit{a.kind, a.term,
                                                         a.sid}) != 0;
                         bool wb = wanted.count(ListUnit{b.kind, b.term,
                                                         b.sid}) != 0;
                         if (wa != wb) return !wa;
                         return a.size_bytes > b.size_bytes;
                       });
      for (const CatalogEntry& e : trim) {
        if (bytes <= budget) break;
        TREX_RETURN_IF_ERROR(
            DropUnits(index_, {ListUnit{e.kind, e.term, e.sid}}));
        trimmed.push_back(ListUnit{e.kind, e.term, e.sid});
        bytes -= e.size_bytes;
        ++tick->lists_dropped;
      }
    }
    tick->bytes_materialized = bytes;

    TREX_RETURN_IF_ERROR(index_->Flush());
    TREX_RETURN_IF_ERROR(
        Env::Default()->Remove(ApplyJournalPath(index_->dir())));
    span.AddAttr("materialized", static_cast<uint64_t>(
                                     tick->lists_materialized));
    span.AddAttr("dropped", static_cast<uint64_t>(tick->lists_dropped));
    span.AddAttr("bytes", tick->bytes_materialized);
  }
  tick->applied = true;
  Metrics().plans_applied->Add();
  Metrics().lists_materialized->Add(tick->lists_materialized);
  Metrics().lists_dropped->Add(tick->lists_dropped);
  Metrics().bytes_materialized->Set(
      static_cast<int64_t>(tick->bytes_materialized));

  // Audit: the apply record is written only after the journal retired,
  // so the log never claims a change a crash rolled back (recovery
  // appends a rollback record instead). Folding apply/rollback records
  // over the starting catalog must reconstruct the live catalog — the
  // invariant ReplayAuditLog and bench_workload_shift check.
  if (audit_ != nullptr) {
    audit_->Append(
        "{\"type\":\"apply\",\"tick\":" + std::to_string(tick->tick) +
        ",\"add\":[" + JoinUnitTokens(to_add) + "],\"drop\":[" +
        JoinUnitTokens(to_drop) + "],\"trimmed\":[" +
        JoinUnitTokens(trimmed) + "],\"bytes\":" +
        std::to_string(tick->bytes_materialized) + "}");
  }
  obs::FlightRecorder::Default().Record(
      obs::FlightKind::kAdvisor, "apply",
      "\"tick\":" + std::to_string(tick->tick) +
          ",\"added\":" + std::to_string(tick->lists_materialized) +
          ",\"dropped\":" + std::to_string(tick->lists_dropped) +
          ",\"bytes\":" + std::to_string(tick->bytes_materialized));

  // Refresh age bookkeeping to the post-apply catalog.
  for (const ListUnit& u : to_add) created_tick_[u] = tick->tick;
  for (auto it = created_tick_.begin(); it != created_tick_.end();) {
    bool alive;
    {
      auto read_lock = index_->ReaderLock();
      alive = index_->catalog()->Has(it->first.kind, it->first.term,
                                     it->first.sid);
    }
    it = alive ? std::next(it) : created_tick_.erase(it);
  }

  // Calibration: re-run a few of the tick's chosen queries with the
  // method the plan picked and compare wall-clock seconds against the
  // estimates the plan was built from. Runs inside the tick's budget
  // scope; exhausting the budget stops sampling but must not fail a
  // tick whose apply already succeeded.
  if (options_.max_calibration_queries > 0) {
    obs::TraceSpan span(&trace, "calibrate");
    Evaluator evaluator(index_);
    const auto& wqs = workload.queries();
    auto read_lock = index_->ReaderLock();
    for (size_t i = 0; i < instance.queries.size() && i < wqs.size() &&
                       i < result.choice.size() &&
                       tick->calibration_samples <
                           options_.max_calibration_queries;
         ++i) {
      const IndexChoice choice = result.choice[i];
      if (choice == IndexChoice::kNone) continue;
      const bool merge = choice == IndexChoice::kErpl;
      const double est = merge ? instance.queries[i].costs.t_merge
                               : instance.queries[i].costs.t_ta;
      if (est <= 0.0) continue;
      RetrievalResult out;
      Stopwatch query_watch;
      Status s = evaluator.EvaluateWith(
          merge ? RetrievalMethod::kMerge : RetrievalMethod::kTa,
          wqs[i].clause, wqs[i].k, &out);
      if (s.IsResourceExhausted()) break;  // Tick budget spent.
      if (!s.ok()) continue;  // E.g. the unit was trimmed away again.
      const double measured =
          static_cast<double>(query_watch.ElapsedNanos()) * 1e-9;
      calibration_.Observe(est, measured);
      if (audit_ != nullptr) {
        std::string rec = "{\"type\":\"calibration\",\"tick\":" +
                          std::to_string(tick->tick) + ",\"query\":\"";
        obs::JsonEscape(wqs[i].nexi, &rec);
        rec += std::string("\",\"method\":\"") + (merge ? "Merge" : "TA") +
               "\",\"est_s\":" + Dbl(est) + ",\"meas_s\":" + Dbl(measured) +
               "}";
        audit_->Append(rec);
      }
      ++tick->calibration_samples;
    }
    span.AddAttr("samples",
                 static_cast<uint64_t>(tick->calibration_samples));
  }

  trace.Finish();
  tick->trace_json = trace.ToJson();
  return Status::OK();
}

}  // namespace trex
