#include "advisor/greedy.h"

#include <array>
#include <limits>
#include <map>

#include "obs/metrics.h"

namespace trex {

namespace {

// Internal view: each (query, method) needs a set of integer unit ids;
// units may be shared across queries (when the instance provides unit
// sizes) or private per (query, method) block.
struct MethodNeed {
  std::vector<int> units;
  double gain = 0.0;
  IndexChoice choice = IndexChoice::kNone;
};

}  // namespace

SelectionResult SolveGreedy(const SelectionInstance& instance,
                            GreedyStats* stats) {
  const size_t l = instance.queries.size();
  SelectionResult result;
  result.choice.assign(l, IndexChoice::kNone);

  // Build the unit universe.
  std::vector<uint64_t> unit_size;
  std::map<ListUnit, int> unit_id;
  auto id_for = [&](const ListUnit& u, uint64_t size) {
    auto it = unit_id.find(u);
    if (it != unit_id.end()) return it->second;
    int id = static_cast<int>(unit_size.size());
    unit_id.emplace(u, id);
    unit_size.push_back(size);
    return id;
  };

  std::vector<std::array<MethodNeed, 2>> needs(l);
  const bool shared = !instance.unit_sizes.empty();
  for (size_t i = 0; i < l; ++i) {
    const SelectionQuery& q = instance.queries[i];
    needs[i][0].choice = IndexChoice::kErpl;
    needs[i][0].gain = q.frequency * q.merge_saving;
    needs[i][1].choice = IndexChoice::kRpl;
    needs[i][1].gain = q.frequency * q.ta_saving;
    if (shared) {
      for (const ListUnit& u : q.erpl_units) {
        auto it = instance.unit_sizes.find(u);
        uint64_t sz = it == instance.unit_sizes.end() ? 0 : it->second;
        needs[i][0].units.push_back(id_for(u, sz));
      }
      for (const ListUnit& u : q.rpl_units) {
        auto it = instance.unit_sizes.find(u);
        uint64_t sz = it == instance.unit_sizes.end() ? 0 : it->second;
        needs[i][1].units.push_back(id_for(u, sz));
      }
    } else {
      // Indivisible per-query blocks.
      unit_size.push_back(q.s_erpl);
      needs[i][0].units.push_back(static_cast<int>(unit_size.size()) - 1);
      unit_size.push_back(q.s_rpl);
      needs[i][1].units.push_back(static_cast<int>(unit_size.size()) - 1);
    }
  }

  std::vector<bool> materialized(unit_size.size(), false);
  uint64_t budget = instance.disk_budget;

  auto addition_cost = [&](const MethodNeed& need) {
    uint64_t cost = 0;
    for (int u : need.units) {
      if (!materialized[u]) cost += unit_size[u];
    }
    return cost;
  };

  std::vector<bool> supported(l, false);
  uint64_t iterations = 0;
  while (true) {
    ++iterations;
    if (stats != nullptr) ++stats->iterations;
    // Find the (query, method) with the highest non-zero gain-cost
    // ratio among those whose minimal addition fits the budget.
    double best_ratio = 0.0;
    int best_query = -1;
    int best_method = -1;
    uint64_t best_cost = 0;
    for (size_t i = 0; i < l; ++i) {
      if (supported[i]) continue;
      for (int m = 0; m < 2; ++m) {
        const MethodNeed& need = needs[i][m];
        if (need.gain <= 0.0) continue;
        uint64_t cost = addition_cost(need);
        if (cost > budget) continue;  // Gain-cost ratio is 0 (paper §4.2).
        double ratio = cost == 0
                           ? std::numeric_limits<double>::infinity()
                           : need.gain / static_cast<double>(cost);
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_query = static_cast<int>(i);
          best_method = m;
          best_cost = cost;
        }
      }
    }
    if (best_query < 0) break;  // All ratios zero or everything supported.

    const MethodNeed& need = needs[best_query][best_method];
    for (int u : need.units) {
      if (!materialized[u]) {
        materialized[u] = true;
        result.total_size += unit_size[u];
      }
    }
    budget -= best_cost;
    supported[best_query] = true;
    result.choice[best_query] = need.choice;
    result.total_saving += need.gain;
  }
  obs::Default().GetCounter("advisor.greedy.iterations")->Add(iterations);

  // Standard augmentation that makes the Theorem 4.2 bound hold: the
  // plain ratio rule alone can be arbitrarily bad (a cheap tiny-gain
  // index can block a huge one), but max(ratio-greedy, best single
  // index) is a 2-approximation.
  double best_single_gain = 0.0;
  int single_query = -1, single_method = -1;
  for (size_t i = 0; i < l; ++i) {
    for (int m = 0; m < 2; ++m) {
      const MethodNeed& need = needs[i][m];
      if (need.gain <= best_single_gain) continue;
      uint64_t cost = 0;
      for (int u : need.units) cost += unit_size[u];
      if (cost > instance.disk_budget) continue;
      best_single_gain = need.gain;
      single_query = static_cast<int>(i);
      single_method = m;
    }
  }
  if (single_query >= 0 && best_single_gain > result.total_saving) {
    SelectionResult single;
    single.choice.assign(l, IndexChoice::kNone);
    const MethodNeed& need = needs[single_query][single_method];
    single.choice[single_query] = need.choice;
    single.total_saving = need.gain;
    for (int u : need.units) single.total_size += unit_size[u];
    return single;
  }
  return result;
}

}  // namespace trex
