// The index-selection problem instance shared by the greedy and ILP
// solvers (§4).
//
// Per query Q_i the advisor may create the ERPLs that enable Merge
// (decision x_i1) or the RPLs that enable TA (x_i2), but not both
// (constraint x_i1 + x_i2 <= 1), subject to the total disk budget d.
// The objective is the frequency-weighted time saving
//   sum_i (x_i1 f_i Delta_m(Q_i) + x_i2 f_i Delta_ta(Q_i)).
//
// (The paper's constraint (2) pairs x_i1 with S_RPL and x_i2 with
// S_ERPL; since x_i1 selects ERPLs, that is read as a typo and the
// consistent pairing is used here.)
#ifndef TREX_ADVISOR_SELECTION_H_
#define TREX_ADVISOR_SELECTION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "advisor/cost_model.h"
#include "retrieval/materializer.h"

namespace trex {

// Per-query choice: which redundant index (if any) to build.
enum class IndexChoice : int {
  kNone = 0,
  kErpl = 1,  // x_i1: enable Merge.
  kRpl = 2,   // x_i2: enable TA.
};

struct SelectionQuery {
  double frequency = 0.0;       // f_i
  double merge_saving = 0.0;    // Delta_m(Q_i), seconds.
  double ta_saving = 0.0;       // Delta_ta(Q_i), seconds.
  uint64_t s_erpl = 0;          // Bytes to support Merge.
  uint64_t s_rpl = 0;           // Bytes to support TA.
  // Concrete list units behind the sizes (used by the sharing-aware
  // greedy and by materialization).
  std::vector<ListUnit> erpl_units;
  std::vector<ListUnit> rpl_units;
  // The raw per-method costs the savings were derived from (kept for
  // the advisor's decision audit and cost-model calibration).
  QueryCosts costs;
};

struct SelectionInstance {
  std::vector<SelectionQuery> queries;
  uint64_t disk_budget = 0;  // d
  // Exact size of each individual list unit. When present, the greedy
  // solver prices a query's support as the MINIMAL ADDITION over the
  // units already chosen (sharing-aware, §4.2); when empty, each query's
  // lists are treated as one indivisible block of s_erpl / s_rpl bytes
  // (the paper's ILP model, and the setting of Theorem 4.2).
  std::map<ListUnit, uint64_t> unit_sizes;
};

struct SelectionResult {
  std::vector<IndexChoice> choice;  // One per query.
  double total_saving = 0.0;        // Weighted objective value.
  uint64_t total_size = 0;          // Bytes (per the instance's S fields).
};

// Objective/feasibility helpers (shared by solvers and tests).
double SelectionObjective(const SelectionInstance& instance,
                          const std::vector<IndexChoice>& choice);
uint64_t SelectionSize(const SelectionInstance& instance,
                       const std::vector<IndexChoice>& choice);

// Exhaustive 3^l reference solver (tests; l <= ~12).
SelectionResult SolveBruteForce(const SelectionInstance& instance);

}  // namespace trex

#endif  // TREX_ADVISOR_SELECTION_H_
