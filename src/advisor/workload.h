// Workload (Definition 4.1): "a list of top-k retrieval queries
// Q_1..Q_l, where each query Q_i is associated with a frequency
// 0 < f_i <= 1, such that sum f_i = 1".
#ifndef TREX_ADVISOR_WORKLOAD_H_
#define TREX_ADVISOR_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "nexi/translator.h"

namespace trex {

struct WorkloadQuery {
  std::string nexi;        // Query text.
  double frequency = 0.0;  // f_i.
  size_t k = 10;           // The query's top-k.
  // Filled by Workload::Prepare().
  TranslatedClause clause;
};

class Workload {
 public:
  Workload() = default;

  void Add(std::string nexi, double frequency, size_t k) {
    queries_.push_back(WorkloadQuery{std::move(nexi), frequency, k, {}});
  }

  // Definition 4.1's constraints: frequencies in (0, 1], summing to 1.
  Status Validate() const;

  // Translates every query against the index's summary. Must be called
  // (after Validate) before handing the workload to the advisor.
  Status Prepare(Index* index);

  const std::vector<WorkloadQuery>& queries() const { return queries_; }
  size_t size() const { return queries_.size(); }

  // Text format, one query per line:
  //   <frequency> <k> <nexi expression to end of line>
  // '#' lines and blank lines are skipped. The parsed workload still
  // needs Validate() + Prepare().
  static Result<Workload> ParseFromText(const std::string& text);
  std::string SerializeToText() const;

 private:
  std::vector<WorkloadQuery> queries_;
};

}  // namespace trex

#endif  // TREX_ADVISOR_WORKLOAD_H_
