// AdvisorLoop: the online half of the §4 self-manager.
//
// SelfManager::Run is a one-shot offline pass over a hand-prepared
// workload. The loop turns it into the paper's actual contribution — a
// *self managing* index: a background thread periodically snapshots the
// serving path's WorkloadRecorder, plans with SelfManager::Plan
// (estimated costs by default; measured on demand), and applies the
// plan incrementally against the live catalog:
//
//   * newly chosen lists are materialized (resource-accounted as a
//     synthetic "advisor" query, so their cost shows up in the same
//     work units as real queries);
//   * lists the plan no longer wants are dropped — but only with
//     hysteresis: a list younger than `min_list_age_ticks` is kept
//     (deferred), and a changed plan is applied at all only when its
//     estimated saving beats what the currently materialized set
//     already provides by `min_saving_delta` seconds. Plans therefore
//     converge instead of thrashing when the workload oscillates.
//
// Crash-apply protocol: before touching the catalog the loop writes an
// apply journal (`advisor_apply.txt` in the index dir, via
// Env::WriteAtomically) naming every unit it is about to add or drop,
// flushes the index after applying, and only then removes the journal.
// A journal found at startup means a previous apply may be half done:
// RecoverPendingApply quarantines it by dropping every journaled unit
// still in the catalog (RPL/ERPLs are rebuildable caches — the next
// tick re-materializes whatever the then-current plan wants), so no
// half-applied bytes are ever counted against the budget.
//
// Locking: the snapshot/translate phase holds the index's shared
// snapshot lock; planning with estimated costs holds it too (stat
// probes only). Apply runs unlocked at this level — MaterializeUnits /
// DropUnits take the single-flight leases and the exclusive snapshot
// lock themselves, so concurrent queries slot in between steps exactly
// as they do around the offline self-manager.
#ifndef TREX_ADVISOR_ADVISOR_LOOP_H_
#define TREX_ADVISOR_ADVISOR_LOOP_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/calibration.h"
#include "advisor/decision_log.h"
#include "advisor/workload_recorder.h"
#include "obs/resource.h"

namespace trex {

struct AdvisorLoopOptions {
  AdvisorLoopOptions() {
    // Online default: cheap analytic estimates. Measured costs run real
    // evaluations per tick — set it back explicitly for workloads small
    // enough to afford that.
    manager.costs = SelfManagerOptions::Costs::kEstimated;
  }

  SelfManagerOptions manager;    // Solver, costs, disk budget.
  int64_t interval_millis = 2000;
  // Don't plan until the snapshot has at least this many distinct
  // queries (a near-empty sketch plans noise).
  size_t min_queries = 1;
  // Cap on snapshot size handed to the planner (heaviest first).
  size_t max_workload_queries = 64;
  // Hysteresis: a list materialized at tick T may not be dropped before
  // tick T + min_list_age_ticks ...
  uint64_t min_list_age_ticks = 2;
  // ... and a plan that changes the materialized set is applied only if
  // its estimated weighted saving exceeds the saving the current set
  // already achieves by this many seconds.
  double min_saving_delta = 0.0;
  // Work limit for one tick (the synthetic advisor query's budget);
  // exceeding it aborts the tick cleanly with ResourceExhausted.
  obs::ResourceBudget tick_budget;
  // Persist the recorder sketch (recorder->Save()) after each tick.
  bool persist_recorder = true;
  // Decision audit: append decision / plan / apply / rollback records
  // to advisor_decisions.jsonl in the index dir (advisor/decision_log.h).
  bool audit = true;
  // Cost-model calibration: after an applied tick, re-run up to this
  // many of the tick's chosen queries with the planned method and feed
  // estimate-vs-measured samples to advisor.calibration.*. 0 disables.
  size_t max_calibration_queries = 4;
  // Overload probe: when set and returning true at a tick boundary, the
  // background thread skips that tick (advisor.loop.ticks_skipped_overload
  // ticks, a `shed` flight event records it) so self-management yields
  // to saturated serving. Wire it to QueryExecutor::saturated(). An
  // explicit TickNow() always runs regardless — the caller asked.
  std::function<bool()> load_probe;
};

// What one tick did; last_report() returns the most recent one.
struct AdvisorTickReport {
  uint64_t tick = 0;
  bool planned = false;  // Snapshot was big enough to run the planner.
  bool applied = false;  // The catalog was changed (or re-confirmed).
  size_t workload_queries = 0;
  size_t lists_materialized = 0;
  size_t lists_dropped = 0;
  size_t drops_deferred = 0;  // Hysteresis kept them this tick.
  uint64_t bytes_materialized = 0;  // Catalog total after the tick.
  uint64_t bytes_budget = 0;
  double planned_saving = 0.0;  // Plan's weighted saving, seconds.
  double current_saving = 0.0;  // Saving of the pre-tick catalog.
  size_t calibration_samples = 0;  // Estimate-vs-measured pairs taken.
  obs::ResourceUsage resources;  // The tick's own (advisor) work.
  std::string trace_json;        // advisor.tick span tree.
};

class AdvisorLoop {
 public:
  // `index` and `recorder` must outlive the loop.
  AdvisorLoop(Index* index, WorkloadRecorder* recorder,
              AdvisorLoopOptions options);
  ~AdvisorLoop();  // Stop()s.

  AdvisorLoop(const AdvisorLoop&) = delete;
  AdvisorLoop& operator=(const AdvisorLoop&) = delete;

  // Recovers any half-applied plan, then starts the background thread.
  // Idempotent while running.
  Status Start();
  // Stops and joins the thread (no-op when not running). A tick in
  // progress finishes first.
  void Stop();
  bool running() const;

  // Runs exactly one tick synchronously on the caller's thread (the
  // test and CLI entry point; the background thread calls it too).
  // Returns the tick's status; the report (optional) is also retained
  // as last_report().
  Status TickNow(AdvisorTickReport* report = nullptr);

  uint64_t ticks() const;
  AdvisorTickReport last_report() const;

  // If an apply journal exists in the index dir, drops every journaled
  // unit still present in the catalog (quarantining the half-applied
  // plan), flushes, and removes the journal. `recovered_units`
  // (optional) counts the units dropped; `recovered` (optional) lists
  // them. Safe to call when no journal exists. Also run by Start().
  static Status RecoverPendingApply(Index* index,
                                    size_t* recovered_units = nullptr,
                                    std::vector<ListUnit>* recovered =
                                        nullptr);

  // The instance-level recovery entry point: RecoverPendingApply plus a
  // rollback record in the decision audit log and a flight-recorder
  // event when anything was quarantined. Run by Start(); hosts doing
  // manual ticks (start_background=false) should call this instead of
  // the static method so recoveries stay auditable.
  Status RecoverPending();

  // The journal path used by the crash-apply protocol.
  static std::string ApplyJournalPath(const std::string& index_dir);

 private:
  void ThreadMain();
  Status RunTick(AdvisorTickReport* report);
  // The weighted saving the currently materialized catalog already
  // yields for `instance` (each query scored with the best method its
  // lists fully support).
  double SavingOfCurrentCatalog(const SelectionInstance& instance);

  Index* const index_;
  WorkloadRecorder* const recorder_;
  const AdvisorLoopOptions options_;
  // Opened at construction (when options_.audit) so every record of the
  // loop's lifetime — including Start()'s recovery — lands in one file.
  std::unique_ptr<AdvisorAuditLog> audit_;
  CalibrationTracker calibration_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;

  // Tick state (guarded by tick_mu_: one tick at a time, whether from
  // the thread or TickNow).
  mutable std::mutex tick_mu_;
  uint64_t ticks_ = 0;
  uint64_t last_planned_version_ = 0;
  AdvisorTickReport last_report_;
  // Hysteresis bookkeeping: the tick at which each unit entered the
  // catalog (in-memory only; after a restart ages restart from the
  // tick the unit is first observed).
  std::map<ListUnit, uint64_t> created_tick_;
};

}  // namespace trex

#endif  // TREX_ADVISOR_ADVISOR_LOOP_H_
