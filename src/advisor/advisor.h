// SelfManager: the end-to-end self-managing loop of §4.
//
// Given a prepared workload and a disk budget d, the manager
//   1. obtains per-query costs (measured or estimated),
//   2. builds the selection instance,
//   3. solves it (exact ILP or the greedy 2-approximation),
//   4. materializes exactly the chosen lists (dropping previously
//      materialized lists that the new plan no longer wants), and
//   5. reports per-query decisions and the expected weighted saving.
#ifndef TREX_ADVISOR_ADVISOR_H_
#define TREX_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "advisor/cost_model.h"
#include "advisor/greedy.h"
#include "advisor/ilp.h"
#include "advisor/selection.h"
#include "advisor/workload.h"
#include "retrieval/strategy.h"

namespace trex {

struct SelfManagerOptions {
  enum class Solver { kGreedy, kIlp };
  enum class Costs { kMeasured, kEstimated };
  Solver solver = Solver::kGreedy;
  Costs costs = Costs::kMeasured;
  uint64_t disk_budget_bytes = 64ull << 20;
  // Drop previously materialized lists that the new plan does not use.
  bool drop_unchosen = false;
};

struct SelfManagerReport {
  struct PerQuery {
    std::string nexi;
    IndexChoice choice = IndexChoice::kNone;
    RetrievalMethod expected_method = RetrievalMethod::kEra;
    double weighted_saving = 0.0;  // f_i * Delta, seconds.
    QueryCosts costs;
  };
  std::vector<PerQuery> queries;
  double total_weighted_saving = 0.0;
  uint64_t bytes_materialized = 0;
  uint64_t bytes_budget = 0;
};

class SelfManager {
 public:
  SelfManager(Index* index, SelfManagerOptions options)
      : index_(index), options_(options) {}

  // Runs steps 1-5. The workload must be Validated and Prepared.
  Status Run(const Workload& workload, SelfManagerReport* report);

  // Steps 1-3 only (no materialization) — used by the advisor benches.
  Status Plan(const Workload& workload, SelectionInstance* instance,
              SelectionResult* result);

 private:
  Status BuildInstance(const Workload& workload, SelectionInstance* instance);

  Index* index_;
  SelfManagerOptions options_;
};

// The deduplicated union of list units a solved plan wants materialized
// (ERPL units of queries assigned Merge, RPL units of queries assigned
// TA). Shared by SelfManager::Run and the online advisor loop's
// incremental apply.
std::vector<ListUnit> ChosenUnits(const SelectionInstance& instance,
                                  const SelectionResult& result);

}  // namespace trex

#endif  // TREX_ADVISOR_ADVISOR_H_
