#include "advisor/ilp.h"

#include <algorithm>

#include "obs/metrics.h"

namespace trex {

double SelectionObjective(const SelectionInstance& instance,
                          const std::vector<IndexChoice>& choice) {
  double total = 0.0;
  for (size_t i = 0; i < instance.queries.size(); ++i) {
    const SelectionQuery& q = instance.queries[i];
    if (choice[i] == IndexChoice::kErpl) total += q.frequency * q.merge_saving;
    if (choice[i] == IndexChoice::kRpl) total += q.frequency * q.ta_saving;
  }
  return total;
}

uint64_t SelectionSize(const SelectionInstance& instance,
                       const std::vector<IndexChoice>& choice) {
  uint64_t total = 0;
  for (size_t i = 0; i < instance.queries.size(); ++i) {
    const SelectionQuery& q = instance.queries[i];
    if (choice[i] == IndexChoice::kErpl) total += q.s_erpl;
    if (choice[i] == IndexChoice::kRpl) total += q.s_rpl;
  }
  return total;
}

SelectionResult SolveBruteForce(const SelectionInstance& instance) {
  const size_t l = instance.queries.size();
  SelectionResult best;
  best.choice.assign(l, IndexChoice::kNone);
  std::vector<IndexChoice> current(l, IndexChoice::kNone);

  // Odometer over 3^l assignments.
  while (true) {
    if (SelectionSize(instance, current) <= instance.disk_budget) {
      double obj = SelectionObjective(instance, current);
      if (obj > best.total_saving) {
        best.total_saving = obj;
        best.choice = current;
      }
    }
    size_t i = 0;
    while (i < l) {
      int next = static_cast<int>(current[i]) + 1;
      if (next <= 2) {
        current[i] = static_cast<IndexChoice>(next);
        break;
      }
      current[i] = IndexChoice::kNone;
      ++i;
    }
    if (i == l) break;
  }
  best.total_size = SelectionSize(instance, best.choice);
  return best;
}

namespace {

struct Option {
  size_t query;
  IndexChoice choice;
  double gain;     // f_i * saving
  uint64_t size;
};

class BranchAndBound {
 public:
  BranchAndBound(const SelectionInstance& instance, IlpStats* stats)
      : instance_(instance), stats_(stats) {
    const size_t l = instance.queries.size();
    // Order queries by their best single-option gain-cost ratio, best
    // first — good incumbents early mean aggressive pruning.
    order_.resize(l);
    for (size_t i = 0; i < l; ++i) order_[i] = i;
    auto ratio = [&](size_t i) {
      const SelectionQuery& q = instance_.queries[i];
      double r1 = q.s_erpl > 0
                      ? q.frequency * q.merge_saving /
                            static_cast<double>(q.s_erpl)
                      : q.frequency * q.merge_saving * 1e18;
      double r2 = q.s_rpl > 0 ? q.frequency * q.ta_saving /
                                    static_cast<double>(q.s_rpl)
                              : q.frequency * q.ta_saving * 1e18;
      return std::max(r1, r2);
    };
    std::sort(order_.begin(), order_.end(),
              [&](size_t a, size_t b) { return ratio(a) > ratio(b); });

    // Per depth, the option list (for the relaxation bound), sorted by
    // ratio among options from this depth onward.
    options_by_depth_.resize(l + 1);
    for (size_t depth = 0; depth < l; ++depth) {
      for (size_t d = depth; d < l; ++d) {
        size_t qi = order_[d];
        const SelectionQuery& q = instance_.queries[qi];
        if (q.frequency * q.merge_saving > 0) {
          options_by_depth_[depth].push_back(
              Option{qi, IndexChoice::kErpl, q.frequency * q.merge_saving,
                     q.s_erpl});
        }
        if (q.frequency * q.ta_saving > 0) {
          options_by_depth_[depth].push_back(Option{
              qi, IndexChoice::kRpl, q.frequency * q.ta_saving, q.s_rpl});
        }
      }
      std::sort(options_by_depth_[depth].begin(),
                options_by_depth_[depth].end(),
                [](const Option& a, const Option& b) {
                  double ra = a.size > 0 ? a.gain / static_cast<double>(a.size)
                                         : 1e18 * a.gain;
                  double rb = b.size > 0 ? b.gain / static_cast<double>(b.size)
                                         : 1e18 * b.gain;
                  return ra > rb;
                });
    }
  }

  SelectionResult Solve() {
    const size_t l = instance_.queries.size();
    best_.choice.assign(l, IndexChoice::kNone);
    best_.total_saving = 0.0;
    current_.assign(l, IndexChoice::kNone);
    Recurse(0, 0.0, instance_.disk_budget);
    best_.total_size = SelectionSize(instance_, best_.choice);
    return best_;
  }

 private:
  // Fractional-knapsack bound on what depths >= `depth` can still add.
  double Bound(size_t depth, uint64_t remaining_budget) const {
    double bound = 0.0;
    uint64_t budget = remaining_budget;
    for (const Option& opt : options_by_depth_[depth]) {
      if (opt.size <= budget) {
        bound += opt.gain;
        budget -= opt.size;
      } else if (budget > 0 && opt.size > 0) {
        bound += opt.gain * static_cast<double>(budget) /
                 static_cast<double>(opt.size);
        budget = 0;
        break;
      }
    }
    return bound;
  }

  void Recurse(size_t depth, double gain_so_far, uint64_t remaining_budget) {
    if (stats_ != nullptr) ++stats_->nodes_explored;
    if (gain_so_far > best_.total_saving) {
      best_.total_saving = gain_so_far;
      best_.choice = current_;
    }
    if (depth >= order_.size()) return;
    if (gain_so_far + Bound(depth, remaining_budget) <=
        best_.total_saving + 1e-12) {
      if (stats_ != nullptr) ++stats_->nodes_pruned;
      return;
    }
    size_t qi = order_[depth];
    const SelectionQuery& q = instance_.queries[qi];

    // Branch on the more promising options first.
    struct Branch {
      IndexChoice choice;
      double gain;
      uint64_t size;
    };
    Branch branches[3] = {
        {IndexChoice::kErpl, q.frequency * q.merge_saving, q.s_erpl},
        {IndexChoice::kRpl, q.frequency * q.ta_saving, q.s_rpl},
        {IndexChoice::kNone, 0.0, 0},
    };
    if (branches[1].gain > branches[0].gain) {
      std::swap(branches[0], branches[1]);
    }
    for (const Branch& b : branches) {
      if (b.size > remaining_budget) continue;
      current_[qi] = b.choice;
      Recurse(depth + 1, gain_so_far + b.gain, remaining_budget - b.size);
      current_[qi] = IndexChoice::kNone;
    }
  }

  const SelectionInstance& instance_;
  IlpStats* stats_;
  std::vector<size_t> order_;
  std::vector<std::vector<Option>> options_by_depth_;
  SelectionResult best_;
  std::vector<IndexChoice> current_;
};

}  // namespace

SelectionResult SolveIlp(const SelectionInstance& instance, IlpStats* stats) {
  IlpStats local;
  if (stats == nullptr) stats = &local;
  const uint64_t explored0 = stats->nodes_explored;
  const uint64_t pruned0 = stats->nodes_pruned;
  SelectionResult result = BranchAndBound(instance, stats).Solve();
  obs::MetricsRegistry& reg = obs::Default();
  reg.GetCounter("advisor.ilp.nodes_explored")
      ->Add(stats->nodes_explored - explored0);
  reg.GetCounter("advisor.ilp.nodes_pruned")
      ->Add(stats->nodes_pruned - pruned0);
  return result;
}

}  // namespace trex
