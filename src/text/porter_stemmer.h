// Porter stemmer (M.F. Porter, "An algorithm for suffix stripping", 1980).
//
// Full five-step algorithm, used to normalize both indexed tokens and
// query keywords so that e.g. "evaluation" and "evaluating" meet in the
// same posting list — standard practice in the INEX systems the paper
// builds on (TopX, XRANK).
#ifndef TREX_TEXT_PORTER_STEMMER_H_
#define TREX_TEXT_PORTER_STEMMER_H_

#include <string>

namespace trex {

// Returns the stem of `word`. The input must be lowercase ASCII letters;
// other inputs are returned unchanged. Words of length <= 2 are returned
// unchanged, per the original algorithm.
std::string PorterStem(const std::string& word);

}  // namespace trex

#endif  // TREX_TEXT_PORTER_STEMMER_H_
