#include "text/tokenizer.h"

#include <cctype>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace trex {

namespace {
bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c));
}
}  // namespace

std::optional<std::string> Tokenizer::NormalizeTerm(
    const std::string& raw) const {
  std::string word;
  word.reserve(raw.size());
  for (char c : raw) {
    if (IsTokenChar(c)) {
      word.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (word.size() < options_.min_token_length ||
      word.size() > options_.max_token_length) {
    return std::nullopt;
  }
  if (options_.remove_stopwords && IsStopword(word)) return std::nullopt;
  if (options_.stem) word = PorterStem(word);
  return word;
}

void Tokenizer::Tokenize(Slice text, uint64_t base_offset,
                         std::vector<TokenOccurrence>* out) const {
  size_t i = 0;
  std::string word;
  while (i < text.size()) {
    // Skip separators.
    while (i < text.size() && !IsTokenChar(text[i])) ++i;
    if (i >= text.size()) break;
    size_t token_start = i;
    word.clear();
    while (i < text.size() && IsTokenChar(text[i])) {
      word.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text[i]))));
      ++i;
    }
    if (word.size() < options_.min_token_length ||
        word.size() > options_.max_token_length ||
        (options_.remove_stopwords && IsStopword(word))) {
      continue;
    }
    if (options_.stem) word = PorterStem(word);
    out->push_back(TokenOccurrence{word, base_offset + token_start});
  }
}

void Tokenizer::Tokenize(Slice text, std::vector<std::string>* terms) const {
  std::vector<TokenOccurrence> occ;
  Tokenize(text, 0, &occ);
  for (auto& t : occ) terms->push_back(std::move(t.term));
}

}  // namespace trex
