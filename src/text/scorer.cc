#include "text/scorer.h"

#include <algorithm>
#include <cmath>

namespace trex {

double Bm25Scorer::Idf(uint64_t doc_freq) const {
  double n = static_cast<double>(stats_.num_documents);
  double df = static_cast<double>(doc_freq);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

float Bm25Scorer::Score(uint32_t tf, uint64_t element_length,
                        uint64_t doc_freq) const {
  if (tf == 0) return 0.0f;
  double len_norm =
      (1.0 - params_.b) +
      params_.b * static_cast<double>(element_length) /
          std::max(1.0, stats_.avg_element_length);
  double score = Idf(doc_freq) * static_cast<double>(tf) /
                 (static_cast<double>(tf) + params_.k1 * len_norm);
  return static_cast<float>(std::max(0.0, score));
}

}  // namespace trex
