// Tokenizer: splits character data into index terms.
//
// The same pipeline (lowercase -> alnum runs -> stopword filter -> Porter
// stem) is applied to document text and to query keywords, so a query
// keyword matches a posting list iff both normalize to the same term.
// Tokens dropped by the filter still consume a position: the paper's
// element spans are measured in token positions, and keeping dropped
// tokens positional keeps spans stable under tokenizer-option changes.
#ifndef TREX_TEXT_TOKENIZER_H_
#define TREX_TEXT_TOKENIZER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"

namespace trex {

struct TokenizerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  size_t min_token_length = 1;
  size_t max_token_length = 64;
};

// One kept token and the byte offset (within the document) where it
// starts. Offsets are the paper's posting-list positions.
struct TokenOccurrence {
  std::string term;
  uint64_t offset = 0;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  // Splits `text` into lowercase alnum tokens, filters stopwords and
  // out-of-range lengths, stems, and emits each surviving token with
  // offset = base_offset + its byte position within `text`.
  void Tokenize(Slice text, uint64_t base_offset,
                std::vector<TokenOccurrence>* out) const;

  // Convenience for tests and examples: terms only.
  void Tokenize(Slice text, std::vector<std::string>* terms) const;

  // Normalizes one query keyword; nullopt if it is filtered out
  // (stopword / too short / too long).
  std::optional<std::string> NormalizeTerm(const std::string& raw) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace trex

#endif  // TREX_TEXT_TOKENIZER_H_
