// Element relevance scoring.
//
// The paper does not prescribe a scoring function ("each implementation of
// NEXI has its own ranking criteria, which generally use well-established
// IR techniques"); TReX uses the BM25-style element scoring common to the
// INEX systems it cites (TopX uses the same family). What matters for the
// reproduction is that *all three retrieval methods share one scorer*, so
// ERA, TA and Merge rank identically and differ only in evaluation cost.
//
// score(e, t) = idf(t) * tf / (tf + k1 * ((1 - b) + b * len(e) / avg_len))
// idf(t)      = ln(1 + (N - df + 0.5) / (df + 0.5))
// score(e, Q) = sum over t in Q of score(e, t)
#ifndef TREX_TEXT_SCORER_H_
#define TREX_TEXT_SCORER_H_

#include <cstdint>

namespace trex {

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.3;  // Mild length normalization; elements vary wildly.
};

// Corpus-level statistics needed by the scorer, computed by the index
// builder and persisted in the index manifest.
struct CorpusStats {
  uint64_t num_documents = 0;
  uint64_t num_elements = 0;
  double avg_element_length = 1.0;  // In token positions.
};

class Bm25Scorer {
 public:
  Bm25Scorer(const Bm25Params& params, const CorpusStats& stats)
      : params_(params), stats_(stats) {}

  // Score contribution of one term occurring `tf` times in an element of
  // `element_length` positions, where the term occurs in `doc_freq`
  // documents corpus-wide.
  float Score(uint32_t tf, uint64_t element_length,
              uint64_t doc_freq) const;

  const CorpusStats& stats() const { return stats_; }

 private:
  double Idf(uint64_t doc_freq) const;

  Bm25Params params_;
  CorpusStats stats_;
};

}  // namespace trex

#endif  // TREX_TEXT_SCORER_H_
