// English stopword list used by the tokenizer.
#ifndef TREX_TEXT_STOPWORDS_H_
#define TREX_TEXT_STOPWORDS_H_

#include <string>

namespace trex {

// True if `word` (lowercase) is a stopword. O(log n) over a static table.
bool IsStopword(const std::string& word);

}  // namespace trex

#endif  // TREX_TEXT_STOPWORDS_H_
