#include "text/porter_stemmer.h"

#include <cstring>

namespace trex {

namespace {

// Direct transcription of Porter's 1980 algorithm. `b` holds the word,
// `k` is the index of its last character, `j` marks the stem end during
// suffix checks.
class Stemmer {
 public:
  explicit Stemmer(const std::string& word)
      : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string Run() {
    if (b_.size() <= 2) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, k_ + 1);
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // b[i-1..i] is a double consonant.
  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b_[i] != b_[i - 1]) return false;
    return IsConsonant(i);
  }

  // b[i-2..i] is consonant-vowel-consonant and the last consonant is not
  // w, x or y — used to restore an 'e' (e.g. cav(e), lov(e)).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) ||
        !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[i];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool Ends(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_.data() + (k_ + 1 - len), s, len) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  void SetTo(const char* s) {
    int len = static_cast<int>(std::strlen(s));
    b_.replace(j_ + 1, b_.size() - j_ - 1, s, len);
    k_ = j_ + len;
  }

  void ReplaceIfMeasure(const char* s) {
    if (Measure() > 0) SetTo(s);
  }

  // Plurals and -ed / -ing.
  void Step1ab() {
    if (b_[k_] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char c = b_[k_];
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Turn terminal y to i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[k_] = 'i';
  }

  // Map double suffixes to single ones, e.g. -ization -> -ize.
  void Step2() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("ational")) {
          ReplaceIfMeasure("ate");
        } else if (Ends("tional")) {
          ReplaceIfMeasure("tion");
        }
        break;
      case 'c':
        if (Ends("enci")) {
          ReplaceIfMeasure("ence");
        } else if (Ends("anci")) {
          ReplaceIfMeasure("ance");
        }
        break;
      case 'e':
        if (Ends("izer")) ReplaceIfMeasure("ize");
        break;
      case 'l':
        if (Ends("bli")) {
          ReplaceIfMeasure("ble");
        } else if (Ends("alli")) {
          ReplaceIfMeasure("al");
        } else if (Ends("entli")) {
          ReplaceIfMeasure("ent");
        } else if (Ends("eli")) {
          ReplaceIfMeasure("e");
        } else if (Ends("ousli")) {
          ReplaceIfMeasure("ous");
        }
        break;
      case 'o':
        if (Ends("ization")) {
          ReplaceIfMeasure("ize");
        } else if (Ends("ation")) {
          ReplaceIfMeasure("ate");
        } else if (Ends("ator")) {
          ReplaceIfMeasure("ate");
        }
        break;
      case 's':
        if (Ends("alism")) {
          ReplaceIfMeasure("al");
        } else if (Ends("iveness")) {
          ReplaceIfMeasure("ive");
        } else if (Ends("fulness")) {
          ReplaceIfMeasure("ful");
        } else if (Ends("ousness")) {
          ReplaceIfMeasure("ous");
        }
        break;
      case 't':
        if (Ends("aliti")) {
          ReplaceIfMeasure("al");
        } else if (Ends("iviti")) {
          ReplaceIfMeasure("ive");
        } else if (Ends("biliti")) {
          ReplaceIfMeasure("ble");
        }
        break;
      case 'g':
        if (Ends("logi")) ReplaceIfMeasure("log");
        break;
      default:
        break;
    }
  }

  // -icate, -ative etc.
  void Step3() {
    switch (b_[k_]) {
      case 'e':
        if (Ends("icate")) {
          ReplaceIfMeasure("ic");
        } else if (Ends("ative")) {
          ReplaceIfMeasure("");
        } else if (Ends("alize")) {
          ReplaceIfMeasure("al");
        }
        break;
      case 'i':
        if (Ends("iciti")) ReplaceIfMeasure("ic");
        break;
      case 'l':
        if (Ends("ical")) {
          ReplaceIfMeasure("ic");
        } else if (Ends("ful")) {
          ReplaceIfMeasure("");
        }
        break;
      case 's':
        if (Ends("ness")) ReplaceIfMeasure("");
        break;
      default:
        break;
    }
  }

  // Drop -ant, -ence etc. when measure > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance") || Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able") || Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent")) {
          break;
        }
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (b_[j_] == 's' || b_[j_] == 't')) {
          break;
        }
        if (Ends("ou")) break;  // e.g. -ious
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate") || Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  // Remove a final -e and reduce -ll when the measure allows.
  void Step5() {
    j_ = k_;
    if (b_[k_] == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[k_] == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
  }

  std::string b_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(const std::string& word) {
  if (word.size() <= 2) return word;
  for (char c : word) {
    if (c < 'a' || c > 'z') return word;
  }
  return Stemmer(word).Run();
}

}  // namespace trex
