#include "obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace trex {
namespace obs {

namespace {

// Microseconds with three decimals: trace_event's ts/dur unit is µs,
// and the fraction keeps the tree's nanosecond resolution.
void AppendMicros(int64_t nanos, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nanos) / 1000.0);
  out->append(buf);
}

void AppendEvent(const TraceNode& node, uint64_t pid, uint64_t tid,
                 int64_t ts_offset_nanos, std::string* out,
                 size_t* event_count) {
  if (*event_count > 0) out->push_back(',');
  ++*event_count;
  out->append("{\"name\":\"");
  JsonEscape(node.name, out);
  out->append("\",\"ph\":\"X\",\"ts\":");
  AppendMicros(ts_offset_nanos + node.start_nanos, out);
  out->append(",\"dur\":");
  AppendMicros(node.duration_nanos, out);
  char buf[48];
  std::snprintf(buf, sizeof(buf),
                ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64, pid, tid);
  out->append(buf);
  if (!node.attrs.empty()) {
    out->append(",\"args\":{");
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      const TraceAttr& a = node.attrs[i];
      if (i > 0) out->push_back(',');
      out->push_back('"');
      JsonEscape(a.key, out);
      out->append("\":");
      switch (a.kind) {
        case TraceAttr::Kind::kUint:
          std::snprintf(buf, sizeof(buf), "%" PRIu64, a.u);
          out->append(buf);
          break;
        case TraceAttr::Kind::kDouble:
          std::snprintf(buf, sizeof(buf), "%.9g", a.d);
          out->append(buf);
          break;
        case TraceAttr::Kind::kString:
          out->push_back('"');
          JsonEscape(a.s, out);
          out->push_back('"');
          break;
      }
    }
    out->push_back('}');
  }
  out->push_back('}');
  for (const auto& child : node.children) {
    AppendEvent(*child, pid, tid, ts_offset_nanos, out, event_count);
  }
}

}  // namespace

void ChromeTraceWriter::AddTrace(const Trace& trace, uint64_t pid,
                                 uint64_t tid, int64_t ts_offset_nanos) {
  AppendEvent(trace.root(), pid, tid, ts_offset_nanos, &events_,
              &event_count_);
}

std::string ChromeTraceWriter::Json() const {
  std::string out = "{\"traceEvents\":[";
  out.append(events_);
  out.append("],\"displayTimeUnit\":\"ns\"}");
  return out;
}

std::string ChromeTraceJson(const Trace& trace, uint64_t pid, uint64_t tid) {
  ChromeTraceWriter writer;
  writer.AddTrace(trace, pid, tid);
  return writer.Json();
}

}  // namespace obs
}  // namespace trex
