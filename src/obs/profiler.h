// Observability: an in-process sampling CPU profiler.
//
// PR 4 measures *how long* a query took and PR 7 records *what* the
// process was doing when it died; this answers *where the CPU went*.
// The profiler arms one POSIX timer per registered thread on
// CLOCK_THREAD_CPUTIME_ID, so SIGPROF fires against threads in
// proportion to the CPU they actually burn (a blocked thread is never
// sampled). The signal handler is async-signal-safe by construction:
// it captures the interrupted PC (from the ucontext) plus a glibc
// backtrace and the innermost profile phase label into a lock-free
// single-producer/single-consumer per-thread ring — no allocation, no
// locks, no formatting. A background aggregator drains the rings,
// symbolizes frames once per unique PC (dladdr + demangle, cached),
// folds samples into a stack trie, and exports either collapsed-stack
// text (flamegraph.pl input: "phase;outer;...;leaf COUNT") or a
// schema-v1 JSON profile.
//
// Threads opt in with a ProfilerThreadScope (the query-executor
// workers, the advisor tick thread, bench drivers and CLI mains do);
// registration is valid before or after Start(), and sampling follows
// Start()/Stop() without re-registration. Phase labels ride a
// thread-local seqlock-style stack maintained by Trace::OpenSpan /
// CloseSpan, so samples carry the same phase names the trace tree
// uses ("evaluate:ta", "translate", ...). The whole facility is
// Linux-only; elsewhere Start() returns NotSupported and every other
// entry point is a cheap no-op.
#ifndef TREX_OBS_PROFILER_H_
#define TREX_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace trex {
namespace obs {

struct ProfilerOptions {
  // CPU-time between samples per thread. A prime default avoids
  // lockstep with millisecond-periodic work.
  int64_t sample_period_micros = 997;
  // How often the aggregator folds the per-thread rings.
  int64_t drain_period_millis = 50;
};

struct ProfilerStats {
  uint64_t samples = 0;     // Folded into the trie.
  uint64_t dropped = 0;     // Lost to a full ring.
  uint64_t truncated = 0;   // Stacks deeper than the capture limit.
  uint64_t threads = 0;     // Threads registered over the run.
};

// Process-wide singleton; all methods are thread-safe. Start/Stop may
// be cycled repeatedly; the aggregated trie survives Stop() (so a
// profile can be exported after the workload finishes) and clears on
// the next Start() or Reset().
class Profiler {
 public:
  static Profiler& Default();

  // Arms timers for all registered threads and launches the
  // aggregator. Clears any previously aggregated profile.
  Status Start(const ProfilerOptions& options = {});
  // Disarms, drains every ring one final time, stops the aggregator.
  // The folded profile stays available for export. Idempotent.
  void Stop();
  bool running() const;
  // Drops the aggregated profile and stats (not the registrations).
  void Reset();

  // "phase;frame;...;leaf COUNT" lines, deterministic order. Empty
  // string when no samples have been folded.
  std::string CollapsedStacks() const;
  // {"schema_version":1,"kind":"cpu_profile",...,"stacks":[...]}.
  std::string ToJson() const;
  // CollapsedStacks() to `path` (tmp + rename, atomic on POSIX).
  Status WriteCollapsed(const std::string& path) const;

  ProfilerStats stats() const;

 private:
  Profiler() = default;
};

// Registers the calling thread for sampling for the scope's lifetime.
// Cheap when the profiler never starts; nesting on one thread is a
// no-op for the inner scopes.
class ProfilerThreadScope {
 public:
  explicit ProfilerThreadScope(const char* name = nullptr);
  ~ProfilerThreadScope();

  ProfilerThreadScope(const ProfilerThreadScope&) = delete;
  ProfilerThreadScope& operator=(const ProfilerThreadScope&) = delete;

 private:
  bool registered_ = false;
  bool named_ = false;
};

// Thread-local phase-label stack read by the signal handler. Pushes
// and pops must balance; labels longer than kProfilePhaseBytes-1 are
// truncated. Safe (and nearly free) on unregistered threads and while
// the profiler is stopped. Trace::OpenSpan/CloseSpan call these, so
// span names double as sample tags.
inline constexpr size_t kProfilePhaseBytes = 48;
void PushProfilePhase(std::string_view label);
void PopProfilePhase();

class ProfilePhaseScope {
 public:
  explicit ProfilePhaseScope(std::string_view label) {
    PushProfilePhase(label);
  }
  ~ProfilePhaseScope() { PopProfilePhase(); }

  ProfilePhaseScope(const ProfilePhaseScope&) = delete;
  ProfilePhaseScope& operator=(const ProfilePhaseScope&) = delete;
};

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_PROFILER_H_
