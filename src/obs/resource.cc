#include "obs/resource.h"

#include <cinttypes>
#include <cstdio>

namespace trex {
namespace obs {

namespace {

thread_local ResourceAccounting* tls_current = nullptr;

void AppendField(std::string* out, const char* name, uint64_t v,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(name);
  out->append("\":");
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

}  // namespace

void ResourceUsage::AppendJson(std::string* out) const {
  out->push_back('{');
  bool first = true;
  AppendField(out, "pages_fetched", pages_fetched, &first);
  AppendField(out, "pages_faulted", pages_faulted, &first);
  AppendField(out, "bytes_read", bytes_read, &first);
  AppendField(out, "bytes_decoded", bytes_decoded, &first);
  AppendField(out, "list_fragments", list_fragments, &first);
  AppendField(out, "blocks_decoded", blocks_decoded, &first);
  AppendField(out, "blocks_skipped", blocks_skipped, &first);
  AppendField(out, "postings_scanned", postings_scanned, &first);
  AppendField(out, "sorted_accesses", sorted_accesses, &first);
  AppendField(out, "random_accesses", random_accesses, &first);
  AppendField(out, "elements_scanned", elements_scanned, &first);
  AppendField(out, "heap_operations", heap_operations, &first);
  AppendField(out, "cpu_nanos", cpu_nanos, &first);
  out->push_back('}');
}

std::string ResourceUsage::ToJson() const {
  std::string out;
  AppendJson(&out);
  return out;
}

ResourceAccounting* ResourceAccounting::Current() { return tls_current; }

ResourceUsage ResourceAccounting::Usage() const {
  ResourceUsage u;
  u.pages_fetched = pages_fetched_.load(std::memory_order_relaxed);
  u.pages_faulted = pages_faulted_.load(std::memory_order_relaxed);
  u.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  u.bytes_decoded = bytes_decoded_.load(std::memory_order_relaxed);
  u.list_fragments = list_fragments_.load(std::memory_order_relaxed);
  u.blocks_decoded = blocks_decoded_.load(std::memory_order_relaxed);
  u.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
  u.postings_scanned = postings_scanned_.load(std::memory_order_relaxed);
  u.sorted_accesses = sorted_accesses_.load(std::memory_order_relaxed);
  u.random_accesses = random_accesses_.load(std::memory_order_relaxed);
  u.elements_scanned = elements_scanned_.load(std::memory_order_relaxed);
  u.heap_operations = heap_operations_.load(std::memory_order_relaxed);
  u.cpu_nanos = cpu_nanos_.load(std::memory_order_relaxed);
  return u;
}

ResourceScope::ResourceScope(ResourceAccounting* acct)
    : previous_(tls_current),
      charged_(acct != nullptr && acct != tls_current ? acct : nullptr) {
  tls_current = acct;
  if (charged_ != nullptr) cpu_start_nanos_ = ThreadCpuNanos();
}

ResourceScope::~ResourceScope() {
  if (charged_ != nullptr) {
    int64_t delta = ThreadCpuNanos() - cpu_start_nanos_;
    if (delta > 0) charged_->ChargeCpuNanos(static_cast<uint64_t>(delta));
  }
  tls_current = previous_;
}

}  // namespace obs
}  // namespace trex
