#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace trex {
namespace obs {

namespace {

// Inclusive value range covered by bucket b (see class comment).
void BucketRange(int b, uint64_t* lo, uint64_t* hi) {
  if (b == 0) {
    *lo = *hi = 0;
    return;
  }
  *lo = uint64_t{1} << (b - 1);
  *hi = b == 64 ? UINT64_MAX : (uint64_t{1} << b) - 1;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

}  // namespace

void JsonEscape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::Record(uint64_t value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  int b = std::bit_width(value);  // 0 for 0, else floor(log2) + 1.
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Lossy min/max under contention is acceptable for reporting.
  uint64_t cur_min = min_.load(std::memory_order_relaxed);
  while (value < cur_min &&
         !min_.compare_exchange_weak(cur_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t cur_max = max_.load(std::memory_order_relaxed);
  while (value > cur_max &&
         !max_.compare_exchange_weak(cur_max, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSummary Histogram::Summary() const {
  HistogramSummary s;
  uint64_t counts[kBuckets];
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += counts[b];
  }
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = QuantileFromLogBuckets(counts, s.count, s.min, s.max, 0.50);
  s.p95 = QuantileFromLogBuckets(counts, s.count, s.min, s.max, 0.95);
  s.p99 = QuantileFromLogBuckets(counts, s.count, s.min, s.max, 0.99);
  return s;
}

double ExactQuantile(const std::vector<uint64_t>& sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  if (q <= 0.0) return static_cast<double>(sorted_samples.front());
  if (q >= 1.0) return static_cast<double>(sorted_samples.back());
  // Fractional index h = q * (n - 1); interpolate between floor and
  // ceil order statistics (numpy's default "linear"/type-7 estimator).
  double h = q * static_cast<double>(sorted_samples.size() - 1);
  size_t lo = static_cast<size_t>(h);
  double frac = h - static_cast<double>(lo);
  double a = static_cast<double>(sorted_samples[lo]);
  if (frac == 0.0) return a;
  double b = static_cast<double>(sorted_samples[lo + 1]);
  return a + frac * (b - a);
}

uint64_t QuantileFromLogBuckets(const uint64_t (&counts)[65], uint64_t total,
                                uint64_t min_value, uint64_t max_value,
                                double q) {
  if (total == 0) return 0;
  // 1-based nearest rank: the smallest sample with at least a q
  // fraction of the distribution at or below it. (Truncating here —
  // the old behavior — picked the rank *below* the quantile whenever
  // q * total was fractional, biasing p95/p99 low on small counts.)
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cum = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (cum + counts[b] >= rank) {
      uint64_t lo, hi;
      BucketRange(b, &lo, &hi);
      // Linear interpolation across the bucket's value range.
      double frac =
          static_cast<double>(rank - cum) / static_cast<double>(counts[b]);
      uint64_t span = hi - lo;
      uint64_t v =
          lo + static_cast<uint64_t>(frac * static_cast<double>(span));
      // Clamp into the recorded range for tight single-bucket data.
      if (v < min_value) v = min_value;
      if (v > max_value) v = max_value;
      return v;
    }
    cum += counts[b];
  }
  return max_value;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  auto* c = new Counter(&enabled_);
  counters_.emplace(std::string(name), std::unique_ptr<Counter>(c));
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  auto* g = new Gauge(&enabled_);
  gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(g));
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  auto* h = new Histogram(&enabled_);
  histograms_.emplace(std::string(name), std::unique_ptr<Histogram>(h));
  return h;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Summary();
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    JsonEscape(name, &out);
    out.append("\":");
    AppendU64(&out, value);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    JsonEscape(name, &out);
    out.append("\":");
    AppendI64(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    JsonEscape(name, &out);
    out.append("\":{\"count\":");
    AppendU64(&out, h.count);
    out.append(",\"sum\":");
    AppendU64(&out, h.sum);
    out.append(",\"min\":");
    AppendU64(&out, h.count == 0 ? 0 : h.min);
    out.append(",\"max\":");
    AppendU64(&out, h.max);
    out.append(",\"p50\":");
    AppendU64(&out, h.p50);
    out.append(",\"p95\":");
    AppendU64(&out, h.p95);
    out.append(",\"p99\":");
    AppendU64(&out, h.p99);
    out.append("}");
  }
  out.append("}}");
  return out;
}

MetricsRegistry& Default() {
  // Leaked singleton: instrument pointers handed to static-storage hot
  // paths must never dangle, not even during process teardown.
  static MetricsRegistry* const registry = [] {
    auto* r = new MetricsRegistry();
    const char* v = std::getenv("TREX_OBS_DISABLED");
    if (v != nullptr && v[0] != '\0' && v[0] != '0') r->set_enabled(false);
    return r;
  }();
  return *registry;
}

}  // namespace obs
}  // namespace trex
