// Observability: per-query trace trees (the EXPLAIN substrate).
//
// A Trace is a tree of named spans, each with a start offset and
// duration in nanoseconds plus typed attributes. The retrieval stack
// opens one span per phase (translate, strategy, evaluate:<method>,
// shape) and folds its RetrievalMetrics into span attributes, so
// `QueryAnswer::trace` answers "where did this query's time go" the
// way the paper's §5 instrumentation answers it for whole benchmarks.
//
// Spans are scoped: TraceSpan opens on construction and closes on
// destruction (or an explicit End()). A null Trace* makes every span
// operation a no-op, so call sites pay nothing when tracing is off.
// Traces are single-threaded by design — one per query evaluation.
#ifndef TREX_OBS_TRACE_H_
#define TREX_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace trex {
namespace obs {

// One typed span attribute. Kept as a tagged value so numeric
// attributes serialize as JSON numbers.
struct TraceAttr {
  enum class Kind { kUint, kDouble, kString };
  std::string key;
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  double d = 0.0;
  std::string s;
};

struct TraceNode {
  std::string name;
  int64_t start_nanos = 0;     // Relative to the trace epoch.
  int64_t duration_nanos = 0;  // 0 until the span is closed.
  std::vector<TraceAttr> attrs;
  std::vector<std::unique_ptr<TraceNode>> children;
};

class Trace {
 public:
  explicit Trace(std::string root_name = "query");

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Opens a child span under the innermost open span.
  TraceNode* OpenSpan(std::string_view name);
  // Closes `node`, stamping its duration. Must be the innermost open
  // span (spans close in LIFO order by construction of TraceSpan).
  void CloseSpan(TraceNode* node);

  // Closes the root span. Idempotent; ToJson() calls it implicitly.
  void Finish();

  TraceNode* root() { return &root_; }
  const TraceNode& root() const { return root_; }

  // Attaches a typed attribute to the root span — query-level rollups
  // (the resource vector, the chosen method) that belong to the whole
  // query rather than any one phase. Usable before or after Finish().
  void AddRootAttr(std::string_view key, uint64_t value);
  void AddRootAttr(std::string_view key, std::string_view value);

  // {"name":..., "start_ns":..., "duration_ns":..., "attrs":{...},
  //  "children":[...]} — recursively.
  std::string ToJson() const;

 private:
  int64_t epoch_nanos_;
  TraceNode root_;
  std::vector<TraceNode*> stack_;  // Innermost open span at the back.
  bool finished_ = false;
};

// RAII span over a (possibly null) Trace.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string_view name) {
    if (trace != nullptr) {
      trace_ = trace;
      node_ = trace->OpenSpan(name);
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void End() {
    if (trace_ != nullptr) {
      trace_->CloseSpan(node_);
      trace_ = nullptr;
      node_ = nullptr;
    }
  }

  void AddAttr(std::string_view key, uint64_t value);
  void AddAttr(std::string_view key, double value);
  void AddAttr(std::string_view key, std::string_view value);

 private:
  Trace* trace_ = nullptr;
  TraceNode* node_ = nullptr;
};

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_TRACE_H_
