// Observability: the slow-query log.
//
// A query that blows past a latency or page-read threshold is exactly
// the query whose EXPLAIN you want after the fact — so this module
// keeps it. Each offending query's full record (NEXI text, method,
// duration, resource vector, complete span tree) lands in
//
//   * a bounded in-memory ring (Recent() — for tests, the CLI, and
//     post-hoc inspection without touching disk), and
//   * optionally a JSONL file, one self-contained object per line,
//     flushed per record so a crash loses at most the line in flight.
//
// The log is owned by whoever runs queries (QueryExecutor wires one in;
// search_cli installs one behind --slow-log). It deliberately lives
// below the facade: it takes a plain SlowQueryRecord, not a
// QueryAnswer, so obs stays dependency-free. Thread-safe.
#ifndef TREX_OBS_SLOW_QUERY_LOG_H_
#define TREX_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/resource.h"

namespace trex {
namespace obs {

// Everything worth keeping about one slow query. `trace_json` is the
// span tree as emitted by Trace::ToJson() (already JSON; embedded raw).
struct SlowQueryRecord {
  uint64_t sequence = 0;  // Assigned by the log, monotonically.
  std::string query;      // NEXI text (or a caller-chosen label).
  std::string method;     // "era", "ta", "merge", "race", "strict".
  int64_t duration_nanos = 0;
  ResourceUsage resources;
  std::string trace_json;

  // One self-contained JSON object (one JSONL line, no newline).
  std::string ToJson() const;
};

class SlowQueryLog {
 public:
  struct Options {
    // A query is slow when duration >= threshold_nanos, or (if
    // threshold_pages > 0) when it fetched >= threshold_pages pages.
    int64_t threshold_nanos = 50'000'000;  // 50 ms.
    uint64_t threshold_pages = 0;          // 0 = latency criterion only.
    size_t ring_capacity = 128;
    // Empty = in-memory ring only. Otherwise records append to this
    // JSONL file (created if missing), flushed per record.
    std::string jsonl_path;
  };

  explicit SlowQueryLog(Options options);
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Records `record` if it crosses a threshold; returns whether it did.
  // The sequence field is assigned here (the caller's value is
  // ignored). Ticks obs.slowlog.observed / obs.slowlog.recorded.
  bool Observe(SlowQueryRecord record);

  // Ring contents, oldest first. Copies — safe to use while other
  // threads keep observing.
  std::vector<SlowQueryRecord> Recent() const;

  uint64_t observed() const;
  uint64_t recorded() const;
  const Options& options() const { return options_; }
  // True if the JSONL sink was requested but could not be opened.
  bool sink_failed() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::FILE* sink_ = nullptr;  // nullptr when no path / open failed.
  bool sink_failed_ = false;
  uint64_t observed_ = 0;
  uint64_t recorded_ = 0;
  uint64_t next_sequence_ = 1;
  std::vector<SlowQueryRecord> ring_;  // Circular, size <= ring_capacity.
  size_t ring_next_ = 0;               // Insertion cursor.
};

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_SLOW_QUERY_LOG_H_
