// Observability: Prometheus-style text exposition of a MetricsSnapshot.
//
// The snapshotter's JSONL time series is built for offline analysis;
// operators scraping a live process want the de-facto standard text
// format instead. PromText renders one snapshot as exposition text:
// counters and gauges become their namesake types, histograms become
// summaries (p50/p95/p99 quantile samples plus _sum/_count), and a
// small set of derived ratio gauges (buffer-pool hit rate,
// materializer reuse rate) is computed from the raw counters so
// dashboards do not have to divide by hand. Names are prefixed with
// "trex_" and dots become underscores ("storage.bufpool.hits" ->
// "trex_storage_bufpool_hits").
//
// WritePromFile writes the rendering atomically (tmp file + rename) so
// a scraper never reads a half-written exposition;
// MetricsSnapshotter::Options::prom_path wires it into the periodic
// snapshot loop, producing the live `trex_stats.prom` file.
#ifndef TREX_OBS_PROM_H_
#define TREX_OBS_PROM_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace trex {
namespace obs {

// A ratio computed from raw counters at snapshot time. The name uses
// the registry's dotted scheme under "derived." and the value is in
// [0, 1].
struct DerivedGauge {
  std::string name;
  double value = 0.0;
};

// Live process health, read from /proc and getrusage at call time (not
// from the snapshot). `ok` is false where the platform offers neither.
struct ProcessHealth {
  double rss_bytes = 0.0;          // Resident set size.
  double open_fds = 0.0;           // Open file descriptors.
  double cpu_seconds_total = 0.0;  // User+system CPU since start.
  bool ok = false;
};
ProcessHealth ReadProcessHealth();

// The derived ratios the snapshot supports (one entry per ratio whose
// denominator is non-zero):
//   derived.bufpool.hit_rate        hits / (hits + misses)
//   derived.materializer.reuse_rate units_reused / units_requested
// plus the live process health gauges (read at call time, so every
// exposition carries them even though they are not snapshot counters):
//   process.rss_bytes, process.open_fds, process.cpu_seconds_total
std::vector<DerivedGauge> DerivedGauges(const MetricsSnapshot& snapshot);

// The full exposition document (pure; unit-testable without files).
std::string PromText(const MetricsSnapshot& snapshot);

// "storage.bufpool.hits" -> "trex_storage_bufpool_hits". Characters
// outside [a-zA-Z0-9_] become '_'.
std::string PromName(const std::string& name);

// PromText to `path` via tmp + rename (atomic on POSIX). Returns false
// if the file cannot be written.
bool WritePromFile(const MetricsSnapshot& snapshot, const std::string& path);

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_PROM_H_
