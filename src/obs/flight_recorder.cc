#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"

namespace trex {
namespace obs {

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kAdvisor:
      return "advisor";
    case FlightKind::kCatalog:
      return "catalog";
    case FlightKind::kBufferPool:
      return "bufpool";
    case FlightKind::kRetrieval:
      return "retrieval";
    case FlightKind::kBudget:
      return "budget";
    case FlightKind::kRecovery:
      return "recovery";
    case FlightKind::kSignal:
      return "signal";
    case FlightKind::kShed:
      return "shed";
    case FlightKind::kDeadline:
      return "deadline";
    case FlightKind::kRetry:
      return "retry";
    case FlightKind::kOther:
      return "other";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity) {
  size_t per_shard = std::max<size_t>(1, capacity / kShards);
  capacity_ = per_shard * kShards;
  for (Shard& shard : shards_) {
    shard.slots = std::make_unique<Slot[]>(per_shard);
    shard.count = per_shard;
  }
}

void FlightRecorder::Record(FlightKind kind, std::string_view event,
                            std::string_view detail) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Format the whole line up front into a stack buffer; the slot only
  // ever holds a complete line, which is what makes the signal-handler
  // dump a plain write().
  char line[kLineBytes];
  const size_t event_len = std::min<size_t>(event.size(), 48);
  // Fixed skeleton (~80 bytes worst case) + event; a detail that cannot
  // fit is dropped whole, never cut mid-token.
  std::string_view d = detail;
  if (96 + event_len + d.size() > kLineBytes) d = std::string_view();
  int n = std::snprintf(
      line, sizeof(line),
      "{\"seq\":%" PRIu64 ",\"t_ns\":%" PRId64
      ",\"kind\":\"%s\",\"event\":\"%.*s\"%s%.*s}",
      seq, NowNanos(), FlightKindName(kind), static_cast<int>(event_len),
      event.data(), d.empty() ? "" : ",", static_cast<int>(d.size()),
      d.empty() ? "" : d.data());
  if (n <= 0) return;
  const uint32_t len = std::min<uint32_t>(static_cast<uint32_t>(n),
                                          kLineBytes - 1);

  // Shard by sequence number: a single hot thread still spreads over
  // every shard (so the ring keeps the newest `capacity_` events
  // globally), and concurrent writers rarely meet on one mutex.
  Shard& shard = shards_[seq % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Slot& slot = shard.slots[shard.next];
  shard.next = (shard.next + 1) % shard.count;
  const uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);  // Odd: mid-write.
  std::memcpy(slot.line, line, len);
  slot.len.store(len, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

std::string FlightRecorder::DumpJsonl() const {
  struct Entry {
    uint64_t seq;
    std::string line;
  };
  std::vector<Entry> entries;
  entries.reserve(capacity_);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i = 0; i < shard.count; ++i) {
      const Slot& slot = shard.slots[i];
      const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
      if (seq == 0) continue;
      const uint32_t len = slot.len.load(std::memory_order_relaxed);
      entries.push_back(Entry{seq, std::string(slot.line, len)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::string out;
  for (const Entry& e : entries) {
    out += e.line;
    out.push_back('\n');
  }
  return out;
}

bool FlightRecorder::WriteDump(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string dump = DumpJsonl();
  const bool ok = std::fwrite(dump.data(), 1, dump.size(), f) == dump.size();
  std::fclose(f);
  return ok;
}

void FlightRecorder::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t i = 0; i < shard.count; ++i) {
      shard.slots[i].seq.store(0, std::memory_order_relaxed);
      shard.slots[i].len.store(0, std::memory_order_relaxed);
    }
    shard.next = 0;
  }
}

int FlightRecorder::DumpToFd(int fd) const {
  int written = 0;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.count; ++i) {
      const Slot& slot = shard.slots[i];
      const uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 == 0 || (v1 & 1) != 0) continue;  // Empty or mid-write.
      if (slot.seq.load(std::memory_order_relaxed) == 0) continue;
      char buf[kLineBytes + 1];
      const uint32_t len =
          std::min<uint32_t>(slot.len.load(std::memory_order_relaxed),
                             kLineBytes);
      std::memcpy(buf, slot.line, len);
      if (slot.version.load(std::memory_order_acquire) != v1) continue;
      buf[len] = '\n';
      ssize_t n = ::write(fd, buf, len + 1);
      if (n != static_cast<ssize_t>(len) + 1) return written;
      ++written;
    }
  }
  return written;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = [] {
    size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("TREX_FLIGHT_EVENTS")) {
      long parsed = std::atol(env);
      if (parsed > 0) capacity = static_cast<size_t>(parsed);
    }
    auto* r = new FlightRecorder(capacity);  // Leaked by design.
    if (const char* env = std::getenv("TREX_OBS_DISABLED")) {
      if (env[0] == '1' && env[1] == '\0') r->set_enabled(false);
    }
    return r;
  }();
  return *recorder;
}

namespace {

// State for the post-mortem handler: everything it needs is prepared at
// install time so the handler itself is async-signal-safe (open, write,
// close, re-raise; no allocation, no formatting beyond integers).
char g_postmortem_path[512];
std::atomic<bool> g_postmortem_armed{false};

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS,
                                 SIGFPE,  SIGILL,  SIGTERM};

// Hand-rolled decimal append (snprintf is not on the async-signal-safe
// list; this is).
size_t AppendDecimal(char* buf, size_t cap, size_t pos, long long v) {
  char digits[24];
  size_t n = 0;
  if (v < 0) {
    if (pos < cap) buf[pos++] = '-';
    v = -v;
  }
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0 && n < sizeof(digits));
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

size_t AppendLiteral(char* buf, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

void PostMortemHandler(int signo) {
  // Restore default dispositions first: if anything below faults, the
  // process dies instead of looping through the handler.
  for (int s : kFatalSignals) ::signal(s, SIG_DFL);
  if (g_postmortem_armed.load(std::memory_order_acquire)) {
    int fd = ::open(g_postmortem_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      char header[96];
      size_t pos = 0;
      pos = AppendLiteral(header, sizeof(header), pos,
                          "{\"seq\":0,\"t_ns\":0,\"kind\":\"signal\","
                          "\"event\":\"fatal_signal\",\"signo\":");
      pos = AppendDecimal(header, sizeof(header), pos, signo);
      pos = AppendLiteral(header, sizeof(header), pos, "}\n");
      (void)!::write(fd, header, pos);
      FlightRecorder::Default().DumpToFd(fd);
      ::close(fd);
    }
  }
  ::raise(signo);
}

}  // namespace

bool InstallPostMortemDump(const std::string& path) {
  if (path.size() + 1 > sizeof(g_postmortem_path)) return false;
  std::memcpy(g_postmortem_path, path.c_str(), path.size() + 1);
  g_postmortem_armed.store(true, std::memory_order_release);
  // Force the recorder into existence now: Default()'s first-use
  // initialization allocates, which the handler must never do.
  FlightRecorder::Default();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = PostMortemHandler;
  sigemptyset(&action.sa_mask);
  for (int s : kFatalSignals) ::sigaction(s, &action, nullptr);
  return true;
}

}  // namespace obs
}  // namespace trex
