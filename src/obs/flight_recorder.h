// Observability: the flight recorder — an always-on, fixed-size ring of
// structured system events.
//
// Metrics answer "how much"; the flight recorder answers "what happened
// just now": advisor plans/applies/rollbacks, catalog adds and drops,
// buffer-pool evictions, degradation fallbacks, budget aborts and
// recovery actions are recorded as preformatted JSONL lines in a
// sharded ring. The ring can be dumped on demand (index_doctor
// --events, tests) and — crucially — from a fatal-signal handler: each
// Record() call fully formats its line into a fixed-size slot up front,
// so the post-mortem path only has to write() stable bytes and needs no
// allocation, no locks and no formatting while the process is dying.
//
// Costs: one snprintf + one shard mutex per event. Events are emitted
// at operational decision points (an eviction, an advisor apply), not
// per posting, so the recorder stays within the bench suite's noise.
//
// Concurrency: Record() takes one of kShards mutexes (chosen by
// sequence number, so writers spread out); every slot additionally
// carries a seqlock version so the signal-handler dump can skip slots
// that are mid-write without taking any lock. DumpJsonl()/WriteDump()
// take the shard mutexes and are safe against concurrent recorders;
// DumpToFd() is the async-signal-safe variant and tolerates (skips)
// torn slots instead of blocking.
#ifndef TREX_OBS_FLIGHT_RECORDER_H_
#define TREX_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace trex {
namespace obs {

// Event source, serialized as the "kind" field of every line.
enum class FlightKind : int {
  kAdvisor = 0,    // Plan / apply / rollback decisions.
  kCatalog,        // Redundant-list adds and drops.
  kBufferPool,     // Evictions and writebacks.
  kRetrieval,      // Degradation fallbacks.
  kBudget,         // Resource-budget aborts.
  kRecovery,       // Crash-recovery repairs and quarantines.
  kSignal,         // Post-mortem header (written by the handler).
  kShed,           // Admission-control load shedding (executor, advisor).
  kDeadline,       // Per-query deadline aborts.
  kRetry,          // Transient-fault retries in the storage layer.
  kOther,
};

const char* FlightKindName(FlightKind kind);

class FlightRecorder {
 public:
  // Every event is one fully formatted JSONL line of at most this many
  // bytes (longer details are dropped, never truncated mid-token).
  static constexpr size_t kLineBytes = 256;
  static constexpr size_t kShards = 8;
  static constexpr size_t kDefaultCapacity = 2048;

  // `capacity` is the total slot count, spread across the shards (at
  // least one slot per shard).
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one event. `event` is a short fixed name ("evict",
  // "apply"); `detail` is a comma-joined list of extra JSON members
  // (e.g. "\"sid\":4,\"bytes\":123") that is spliced into the line
  // object verbatim — callers must pre-escape string values (see
  // JsonEscape in obs/metrics.h). A detail too large for the slot is
  // dropped (the event itself is still recorded).
  void Record(FlightKind kind, std::string_view event,
              std::string_view detail = {});

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Total events ever recorded (not just those still in the ring).
  uint64_t recorded() const { return seq_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

  // Every live event, oldest first, one JSON object per line (trailing
  // newline included when non-empty). Takes the shard mutexes.
  std::string DumpJsonl() const;
  // DumpJsonl() to a file (truncating). Returns false if the file
  // cannot be written.
  bool WriteDump(const std::string& path) const;
  // Forgets all events (the sequence counter keeps counting up).
  void Reset();

  // Async-signal-safe dump: writes each stable slot's line to `fd`
  // with plain write(), skipping slots that are concurrently being
  // overwritten. Lines come out in shard order, not sequence order —
  // post-mortem consumers sort by "seq". Returns the number of events
  // written (best effort; short writes abort the dump).
  int DumpToFd(int fd) const;

  // The process-wide recorder every component reports into. Honors
  // TREX_OBS_DISABLED=1 and TREX_FLIGHT_EVENTS=<capacity> at first use.
  // Leaked, so pointers and references never dangle.
  static FlightRecorder& Default();

 private:
  struct Slot {
    // Seqlock: odd while a writer is copying into `line`. A reader
    // (the signal-handler dump) that sees an odd or changing version
    // skips the slot.
    std::atomic<uint64_t> version{0};
    std::atomic<uint32_t> len{0};
    std::atomic<uint64_t> seq{0};
    char line[kLineBytes];
  };
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<Slot[]> slots;
    size_t count = 0;
    size_t next = 0;
  };

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> seq_{0};
  size_t capacity_ = 0;
  Shard shards_[kShards];
};

// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
// SIGILL, SIGTERM) that append a post-mortem header line plus
// FlightRecorder::Default()'s ring to `path` as JSONL, then re-raise
// with the default disposition so the process still dies with the
// expected signal. Returns false if `path` does not fit the handler's
// static buffer. Installing twice just updates the path.
bool InstallPostMortemDump(const std::string& path);

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_FLIGHT_RECORDER_H_
