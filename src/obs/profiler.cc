#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"  // JsonEscape

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
// The signal handler symbol is extern "C" and non-static so that (with
// -rdynamic) dladdr resolves frames inside it exactly — the aggregator
// strips the handler prefix from captured stacks by comparing symbol
// addresses, not by guessing a fixed frame count (sanitizer runtimes
// insert wrapper frames of their own).
extern "C" void TrexProfilerSignalHandler(int, siginfo_t*, void*);
#endif  // defined(__linux__)

namespace trex {
namespace obs {

namespace {

constexpr uint32_t kMaxDepth = 64;        // Frames captured per sample.
constexpr uint32_t kRingSlots = 256;      // Per-thread ring (power of 2).
constexpr uint32_t kRingMask = kRingSlots - 1;
constexpr uint32_t kMaxPhaseDepth = 16;   // Nested phase labels tracked.

// ---------------------------------------------------------------------
// Phase-label stack: plain TLS, touched only by its owner thread (the
// handler runs *on* the owner, which is suspended meanwhile — there is
// no cross-thread access, so relaxed atomics + signal fences are all
// the ordering the interrupted/interrupting pair needs).

struct PhaseStack {
  std::atomic<uint32_t> depth{0};
  char labels[kMaxPhaseDepth][kProfilePhaseBytes];
};

thread_local PhaseStack tls_phases;

// One sample as the handler wrote it. `pcs[0]` is the interrupted PC
// from the ucontext (the true leaf); the remaining frames come from
// backtrace() and start inside the handler machinery — the aggregator
// strips that prefix at fold time. Deliberately no field initializers:
// the ring below stays uninitialized on allocation (the handler writes
// every field of a slot before publishing it via `head`), so acquiring
// a ThreadState never touches the ring's pages.
struct Sample {
  uint32_t depth;           // Valid entries in pcs.
  uint32_t backtrace_from;  // Index of the first backtrace() frame.
  char phase[kProfilePhaseBytes];
  void* pcs[kMaxDepth];
};

#if defined(__linux__)
struct ThreadState {
  pid_t tid = 0;
  // The thread's own CPU clock, captured at registration: timers are
  // armed by the *aggregator*, and CLOCK_THREAD_CPUTIME_ID names the
  // calling thread's clock, not the target's.
  clockid_t cpu_clock = CLOCK_THREAD_CPUTIME_ID;
  timer_t timer{};
  bool timer_armed = false;
  std::atomic<bool> retired{false};
  // SPSC ring: the signal handler (producer, owner thread only)
  // advances head with a release store after filling a slot; the
  // aggregator (single consumer) advances tail with a release store
  // after reading one. head/tail are free-running; (head - tail) is
  // the fill level.
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> truncated{0};
  Sample ring[kRingSlots];
};

thread_local ThreadState* tls_state = nullptr;

// ---------------------------------------------------------------------
// Global profiler state. g_mu guards the registry and lifecycle flags;
// g_trie_mu guards the folded profile (trie + symbol caches + stats).
// Lock order where both are held: g_mu then g_trie_mu. The signal
// handler takes neither.

struct TrieNode {
  std::unordered_map<const std::string*, std::unique_ptr<TrieNode>> kids;
  uint64_t self = 0;  // Samples whose stack ends at this node.
};

struct FrameEntry {
  const std::string* name = nullptr;
  bool skip = false;  // Handler/sanitizer/trampoline machinery.
};

std::mutex g_lifecycle_mu;  // Serializes Start/Stop (outermost).
std::mutex g_mu;
std::condition_variable g_cv;
std::vector<ThreadState*> g_threads;
// Reusable states, guarded by g_mu. Immortal (never destroyed): the
// vector's own destructor would free the backing buffer at static
// destruction, leaving the recycled states unreachable when LSan
// scans for leaks — and destruction order against late-exiting
// threads is a hazard anyway.
std::vector<ThreadState*>& g_free_states = *new std::vector<ThreadState*>();
std::atomic<bool> g_collecting{false};
bool g_running = false;
bool g_agg_stop = false;
bool g_handler_installed = false;
ProfilerOptions g_options;
std::thread g_agg_thread;

std::mutex g_trie_mu;
TrieNode g_root;
ProfilerStats g_stats;
uint64_t g_threads_total = 0;
std::unordered_set<std::string> g_interned;
std::unordered_map<void*, FrameEntry> g_frames;

const std::string* Intern(std::string s) {
  return &*g_interned.insert(std::move(s)).first;
}

// ThreadStates are recycled through a bounded freelist instead of
// new/delete per registration: race contestants register and retire on
// every query, and a fresh ~150KB allocation freed on a *different*
// thread (the aggregator) defeats the allocator's reuse — each
// registration would fault in freshly zeroed pages, which showed up as
// a multiple-x latency hit on race workloads. Reuse keeps the ring's
// pages resident and never re-zeroes them. Both require g_mu.
constexpr size_t kMaxFreeStates = 32;

ThreadState* AcquireStateLocked(pid_t tid, clockid_t cpu_clock) {
  ThreadState* ts;
  if (!g_free_states.empty()) {
    ts = g_free_states.back();
    g_free_states.pop_back();
    ts->retired.store(false, std::memory_order_relaxed);
    ts->head.store(0, std::memory_order_relaxed);
    ts->tail.store(0, std::memory_order_relaxed);
    ts->dropped.store(0, std::memory_order_relaxed);
    ts->truncated.store(0, std::memory_order_relaxed);
  } else {
    // Default-init (no parens): the Sample ring stays uninitialized.
    ts = new ThreadState;
  }
  ts->tid = tid;
  ts->cpu_clock = cpu_clock;
  ts->timer_armed = false;
  return ts;
}

void ReleaseStateLocked(ThreadState* ts) {
  if (g_free_states.size() < kMaxFreeStates) {
    g_free_states.push_back(ts);
  } else {
    delete ts;
  }
}

bool Contains(const char* haystack, const char* needle) {
  return haystack != nullptr && std::strstr(haystack, needle) != nullptr;
}

// Symbolizes one PC (cached). `return_address` PCs point one past the
// call, so they are bumped back a byte before lookup to land inside
// the calling function. Requires g_trie_mu.
const FrameEntry& SymbolizeLocked(void* pc, bool return_address) {
  auto it = g_frames.find(pc);
  if (it != g_frames.end()) return it->second;
  void* lookup = return_address
                     ? reinterpret_cast<void*>(
                           reinterpret_cast<uintptr_t>(pc) - 1)
                     : pc;
  FrameEntry entry;
  Dl_info info{};
  const bool resolved = dladdr(lookup, &info) != 0;
  std::string name;
  if (resolved && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled
                                                 : info.dli_sname;
    std::free(demangled);
    entry.skip =
        info.dli_saddr == reinterpret_cast<void*>(&TrexProfilerSignalHandler) ||
        Contains(info.dli_sname, "restore_rt") ||
        Contains(info.dli_sname, "sigreturn") ||
        Contains(info.dli_sname, "interceptor") ||
        Contains(info.dli_sname, "_sigtramp") ||
        Contains(name.c_str(), "CallUserSignalHandler");
  } else if (resolved && info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                  static_cast<size_t>(reinterpret_cast<uintptr_t>(lookup) -
                                      reinterpret_cast<uintptr_t>(
                                          info.dli_fbase)));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  static_cast<size_t>(reinterpret_cast<uintptr_t>(lookup)));
    name = buf;
  }
  if (resolved && info.dli_fname != nullptr &&
      (Contains(info.dli_fname, "libasan") ||
       Contains(info.dli_fname, "libtsan") ||
       Contains(info.dli_fname, "libubsan"))) {
    entry.skip = true;
  }
  // Collapsed-stack format: ';' separates frames, the final space
  // separates the count. Spaces inside frames are fine, ';' is not.
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  entry.name = Intern(std::move(name));
  return g_frames.emplace(pc, entry).first->second;
}

// Folds one drained sample into the trie. Requires g_trie_mu.
void FoldSampleLocked(const Sample& s) {
  if (s.depth == 0) return;
  // Strip the handler/trampoline prefix from the backtrace() portion.
  uint32_t first = s.backtrace_from;
  while (first < s.depth &&
         SymbolizeLocked(s.pcs[first], first > 0).skip) {
    ++first;
  }
  const std::string* phase =
      Intern(s.phase[0] != '\0' ? std::string(s.phase) : "(untagged)");
  TrieNode* node = &g_root;
  auto descend = [&node](const std::string* frame) {
    std::unique_ptr<TrieNode>& kid = node->kids[frame];
    if (kid == nullptr) kid = std::make_unique<TrieNode>();
    node = kid.get();
  };
  descend(phase);
  // Root-first: outermost backtrace frame down to the context leaf.
  for (uint32_t i = s.depth; i > first; --i) {
    descend(SymbolizeLocked(s.pcs[i - 1], i - 1 > 0).name);
  }
  if (s.backtrace_from > 0) {
    descend(SymbolizeLocked(s.pcs[0], false).name);
  }
  node->self += 1;
  g_stats.samples += 1;
}

bool ArmTimerLocked(ThreadState* ts);

// Drains every registered ring into the trie and recycles retired
// thread states. Also arms timers for threads that registered since
// the last tick: registration itself makes no syscalls — a thread
// living shorter than one drain period never gets a timer, and by
// construction such a thread also could not have reached one sampling
// period of thread-CPU worth of attention anyway. Requires g_mu.
void DrainAllLocked() {
  if (g_collecting.load(std::memory_order_relaxed)) {
    for (ThreadState* ts : g_threads) {
      if (!ts->timer_armed && !ts->retired.load(std::memory_order_acquire)) {
        ArmTimerLocked(ts);
      }
    }
  }
  std::lock_guard<std::mutex> trie_lock(g_trie_mu);
  for (auto it = g_threads.begin(); it != g_threads.end();) {
    ThreadState* ts = *it;
    uint64_t head = ts->head.load(std::memory_order_acquire);
    uint64_t tail = ts->tail.load(std::memory_order_relaxed);
    while (tail != head) {
      FoldSampleLocked(ts->ring[tail & kRingMask]);
      ++tail;
      ts->tail.store(tail, std::memory_order_release);
    }
    g_stats.dropped += ts->dropped.exchange(0, std::memory_order_relaxed);
    g_stats.truncated +=
        ts->truncated.exchange(0, std::memory_order_relaxed);
    if (ts->retired.load(std::memory_order_acquire)) {
      ReleaseStateLocked(ts);
      it = g_threads.erase(it);
    } else {
      ++it;
    }
  }
}

void AggregatorLoop() {
  std::unique_lock<std::mutex> lock(g_mu);
  for (;;) {
    g_cv.wait_for(lock,
                  std::chrono::milliseconds(g_options.drain_period_millis),
                  [] { return g_agg_stop; });
    DrainAllLocked();
    if (g_agg_stop) return;  // Final drain already done above.
  }
}

bool ArmTimerLocked(ThreadState* ts) {
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = ts->tid;
  if (timer_create(ts->cpu_clock, &sev, &ts->timer) != 0) {
    return false;
  }
  struct itimerspec spec {};
  spec.it_interval.tv_sec = g_options.sample_period_micros / 1000000;
  spec.it_interval.tv_nsec =
      (g_options.sample_period_micros % 1000000) * 1000;
  spec.it_value = spec.it_interval;
  if (timer_settime(ts->timer, 0, &spec, nullptr) != 0) {
    timer_delete(ts->timer);
    return false;
  }
  ts->timer_armed = true;
  return true;
}

void DisarmTimerLocked(ThreadState* ts) {
  if (!ts->timer_armed) return;
  timer_delete(ts->timer);
  ts->timer_armed = false;
}

void* ContextPc(void* ucontext_raw) {
  if (ucontext_raw == nullptr) return nullptr;
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(ucontext_raw);
  return reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
  auto* uc = static_cast<ucontext_t*>(ucontext_raw);
  return reinterpret_cast<void*>(uc->uc_mcontext.pc);
#else
  return nullptr;
#endif
}

// The async-signal-safe sampling path: plain TLS loads, a ucontext
// read, backtrace() (primed at Start so its lazy libgcc load already
// happened), byte copies, and relaxed/release atomics. No allocation,
// no locks, no formatting.
void HandleSample(void* ucontext_raw) {
  ThreadState* ts = tls_state;
  if (ts == nullptr || !g_collecting.load(std::memory_order_relaxed)) {
    return;
  }
  uint64_t head = ts->head.load(std::memory_order_relaxed);
  uint64_t tail = ts->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingSlots) {
    ts->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& s = ts->ring[head & kRingMask];
  uint32_t n = 0;
  void* leaf = ContextPc(ucontext_raw);
  if (leaf != nullptr) s.pcs[n++] = leaf;
  s.backtrace_from = n;
  int got = backtrace(s.pcs + n, static_cast<int>(kMaxDepth - n));
  if (got > 0) n += static_cast<uint32_t>(got);
  if (n >= kMaxDepth) ts->truncated.fetch_add(1, std::memory_order_relaxed);
  s.depth = n;
  // Phase label: owner-thread-only state, copied by hand to keep
  // library interceptors out of the signal path.
  const PhaseStack& ps = tls_phases;
  uint32_t d = ps.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (d == 0) {
    s.phase[0] = '\0';
  } else {
    if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;
    const char* src = ps.labels[d - 1];
    for (size_t i = 0; i < kProfilePhaseBytes; ++i) s.phase[i] = src[i];
  }
  ts->head.store(head + 1, std::memory_order_release);
}

void InstallHandlerLocked() {
  if (g_handler_installed) return;
  struct sigaction sa {};
  sa.sa_sigaction = &TrexProfilerSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGPROF, &sa, nullptr);
  g_handler_installed = true;
}

// ---------------------------------------------------------------------
// Export (shared by collapsed text and JSON). Deterministic: children
// sorted by frame text at every level.

struct StackLine {
  std::vector<const std::string*> frames;
  uint64_t count = 0;
};

void CollectLocked(const TrieNode& node,
                   std::vector<const std::string*>* path,
                   std::vector<StackLine>* out) {
  if (node.self > 0) {
    out->push_back(StackLine{*path, node.self});
  }
  std::vector<std::pair<const std::string*, const TrieNode*>> kids;
  kids.reserve(node.kids.size());
  for (const auto& [name, kid] : node.kids) {
    kids.emplace_back(name, kid.get());
  }
  std::sort(kids.begin(), kids.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  for (const auto& [name, kid] : kids) {
    path->push_back(name);
    CollectLocked(*kid, path, out);
    path->pop_back();
  }
}

std::vector<StackLine> SnapshotStacks() {
  std::lock_guard<std::mutex> lock(g_trie_mu);
  std::vector<StackLine> out;
  std::vector<const std::string*> path;
  CollectLocked(g_root, &path, &out);
  return out;
}
#endif  // defined(__linux__)

}  // namespace

void PushProfilePhase(std::string_view label) {
  PhaseStack& ps = tls_phases;
  uint32_t d = ps.depth.load(std::memory_order_relaxed);
  if (d < kMaxPhaseDepth) {
    size_t n = std::min(label.size(), kProfilePhaseBytes - 1);
    std::memcpy(ps.labels[d], label.data(), n);
    ps.labels[d][n] = '\0';
  }
  // Past the tracked depth the deepest tracked label keeps standing in;
  // the counter still moves so pops rebalance.
  std::atomic_signal_fence(std::memory_order_release);
  ps.depth.store(d + 1, std::memory_order_relaxed);
}

void PopProfilePhase() {
  PhaseStack& ps = tls_phases;
  uint32_t d = ps.depth.load(std::memory_order_relaxed);
  if (d > 0) ps.depth.store(d - 1, std::memory_order_relaxed);
}

Profiler& Profiler::Default() {
  static Profiler instance;
  return instance;
}

#if defined(__linux__)

ProfilerThreadScope::ProfilerThreadScope(const char* name) {
  if (name != nullptr) {
    PushProfilePhase(name);
    named_ = true;
  }
  if (tls_state != nullptr) return;  // Nested scope on this thread.
  const pid_t tid = static_cast<pid_t>(::syscall(SYS_gettid));
  clockid_t cpu_clock = CLOCK_THREAD_CPUTIME_ID;
  pthread_getcpuclockid(pthread_self(), &cpu_clock);  // No syscall.
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState* ts = AcquireStateLocked(tid, cpu_clock);
  // Publish before arming: once the timer exists the handler may fire
  // on this thread and must find its state. No other thread touches
  // tls_state, so a signal fence is the only ordering needed.
  tls_state = ts;
  std::atomic_signal_fence(std::memory_order_seq_cst);
  g_threads.push_back(ts);
  {
    std::lock_guard<std::mutex> trie_lock(g_trie_mu);
    ++g_threads_total;
  }
  // Deliberately no timer syscalls here: the aggregator arms this
  // thread on its next tick. Registration stays cheap enough for
  // per-query thread spawns (race contestants).
  registered_ = true;
}

ProfilerThreadScope::~ProfilerThreadScope() {
  if (named_) PopProfilePhase();
  if (!registered_) return;
  ThreadState* ts = tls_state;
  if (ts == nullptr) return;
  // From here no new samples land in this ring: the handler checks
  // tls_state, and the fence orders the clear before the disarm.
  tls_state = nullptr;
  std::atomic_signal_fence(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(g_mu);
  DisarmTimerLocked(ts);
  const bool empty =
      ts->head.load(std::memory_order_relaxed) ==
          ts->tail.load(std::memory_order_relaxed) &&
      ts->dropped.load(std::memory_order_relaxed) == 0 &&
      ts->truncated.load(std::memory_order_relaxed) == 0;
  if (g_running && !empty) {
    // The aggregator drains the remaining samples, then recycles.
    ts->retired.store(true, std::memory_order_release);
  } else {
    // Nothing pending (the common case for short-lived threads):
    // recycle right away so the freelist keeps up with per-query
    // registration rates instead of overflowing between drains.
    auto it = std::find(g_threads.begin(), g_threads.end(), ts);
    if (it != g_threads.end()) g_threads.erase(it);
    ReleaseStateLocked(ts);
  }
}

Status Profiler::Start(const ProfilerOptions& options) {
  std::lock_guard<std::mutex> lifecycle(g_lifecycle_mu);
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_running) {
      return Status::AlreadyExists("profiler already running");
    }
    if (options.sample_period_micros <= 0 ||
        options.drain_period_millis <= 0) {
      return Status::InvalidArgument("profiler periods must be positive");
    }
    InstallHandlerLocked();
    // Prime backtrace(): its first call dlopens libgcc and allocates;
    // all later calls (including in the signal handler) do not.
    void* primer[4];
    backtrace(primer, 4);
    {
      std::lock_guard<std::mutex> trie_lock(g_trie_mu);
      g_root.kids.clear();
      g_root.self = 0;
      g_stats = ProfilerStats{};
      g_stats.threads = g_threads_total;
    }
    g_options = options;
    g_agg_stop = false;
    g_collecting.store(true, std::memory_order_release);
    for (ThreadState* ts : g_threads) {
      if (!ts->retired.load(std::memory_order_acquire)) {
        ArmTimerLocked(ts);
      }
    }
    g_running = true;
  }
  g_agg_thread = std::thread(AggregatorLoop);
  return Status::OK();
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> lifecycle(g_lifecycle_mu);
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_running) return;
    g_collecting.store(false, std::memory_order_release);
    for (ThreadState* ts : g_threads) DisarmTimerLocked(ts);
    g_agg_stop = true;
  }
  g_cv.notify_all();
  g_agg_thread.join();
  std::lock_guard<std::mutex> lock(g_mu);
  g_running = false;
  g_agg_stop = false;
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_running;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(g_trie_mu);
  g_root.kids.clear();
  g_root.self = 0;
  g_stats = ProfilerStats{};
  g_stats.threads = g_threads_total;
}

ProfilerStats Profiler::stats() const {
  std::lock_guard<std::mutex> lock(g_trie_mu);
  ProfilerStats out = g_stats;
  out.threads = g_threads_total;
  return out;
}

std::string Profiler::CollapsedStacks() const {
  std::string out;
  for (const StackLine& line : SnapshotStacks()) {
    for (size_t i = 0; i < line.frames.size(); ++i) {
      if (i > 0) out.push_back(';');
      out.append(*line.frames[i]);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(line.count));
    out.append(buf);
  }
  return out;
}

std::string Profiler::ToJson() const {
  ProfilerStats st = stats();
  ProfilerOptions opts;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    opts = g_options;
  }
  std::string out = "{\"schema_version\":1,\"kind\":\"cpu_profile\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"period_micros\":%lld",
                static_cast<long long>(opts.sample_period_micros));
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                ",\"samples\":%llu,\"dropped\":%llu,\"truncated\":%llu,"
                "\"threads\":%llu",
                static_cast<unsigned long long>(st.samples),
                static_cast<unsigned long long>(st.dropped),
                static_cast<unsigned long long>(st.truncated),
                static_cast<unsigned long long>(st.threads));
  out.append(buf);
  out.append(",\"stacks\":[");
  bool first_line = true;
  for (const StackLine& line : SnapshotStacks()) {
    if (!first_line) out.push_back(',');
    first_line = false;
    out.append("{\"stack\":[");
    for (size_t i = 0; i < line.frames.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('"');
      JsonEscape(*line.frames[i], &out);
      out.push_back('"');
    }
    std::snprintf(buf, sizeof(buf), "],\"count\":%llu}",
                  static_cast<unsigned long long>(line.count));
    out.append(buf);
  }
  out.append("]}");
  return out;
}

#else  // !defined(__linux__)

ProfilerThreadScope::ProfilerThreadScope(const char* name) {
  if (name != nullptr) {
    PushProfilePhase(name);
    named_ = true;
  }
  registered_ = false;
}

ProfilerThreadScope::~ProfilerThreadScope() {
  if (named_) PopProfilePhase();
}

Status Profiler::Start(const ProfilerOptions&) {
  return Status::NotSupported("sampling profiler requires Linux");
}
void Profiler::Stop() {}
bool Profiler::running() const { return false; }
void Profiler::Reset() {}
ProfilerStats Profiler::stats() const { return ProfilerStats{}; }
std::string Profiler::CollapsedStacks() const { return std::string(); }
std::string Profiler::ToJson() const {
  return "{\"schema_version\":1,\"kind\":\"cpu_profile\",\"samples\":0,"
         "\"stacks\":[]}";
}

#endif  // defined(__linux__)

Status Profiler::WriteCollapsed(const std::string& path) const {
  // tmp + rename, like WritePromFile: a reader sees the previous or
  // the new profile, never a torn one. Plain stdio on purpose — obs
  // sits below the storage layer and cannot use trex::Env.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp);
  }
  const std::string text = CollapsedStacks();
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace trex

#if defined(__linux__)
extern "C" void TrexProfilerSignalHandler(int, siginfo_t*, void* ucontext) {
  // Nothing in here may allocate, lock, or format; errno is preserved
  // for the interrupted code.
  int saved_errno = errno;
  trex::obs::HandleSample(ucontext);
  errno = saved_errno;
}
#endif  // defined(__linux__)
