#include "obs/trace.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace trex {
namespace obs {

namespace {

void AppendNode(const TraceNode& node, std::string* out) {
  out->append("{\"name\":\"");
  JsonEscape(node.name, out);
  out->append("\",\"start_ns\":");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, node.start_nanos);
  out->append(buf);
  out->append(",\"duration_ns\":");
  std::snprintf(buf, sizeof(buf), "%" PRId64, node.duration_nanos);
  out->append(buf);
  if (!node.attrs.empty()) {
    out->append(",\"attrs\":{");
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      const TraceAttr& a = node.attrs[i];
      if (i > 0) out->push_back(',');
      out->push_back('"');
      JsonEscape(a.key, out);
      out->append("\":");
      switch (a.kind) {
        case TraceAttr::Kind::kUint:
          std::snprintf(buf, sizeof(buf), "%" PRIu64, a.u);
          out->append(buf);
          break;
        case TraceAttr::Kind::kDouble:
          std::snprintf(buf, sizeof(buf), "%.9g", a.d);
          out->append(buf);
          break;
        case TraceAttr::Kind::kString:
          out->push_back('"');
          JsonEscape(a.s, out);
          out->push_back('"');
          break;
      }
    }
    out->push_back('}');
  }
  if (!node.children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendNode(*node.children[i], out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

Trace::Trace(std::string root_name) : epoch_nanos_(NowNanos()) {
  root_.name = std::move(root_name);
  root_.start_nanos = 0;
  stack_.push_back(&root_);
}

TraceNode* Trace::OpenSpan(std::string_view name) {
  assert(!stack_.empty() && "trace already finished");
  // Span names double as CPU-sample tags: the sampling profiler's
  // handler reads the innermost label from a thread-local stack, so a
  // sample taken during this span carries this name.
  PushProfilePhase(name);
  auto node = std::make_unique<TraceNode>();
  node->name.assign(name.data(), name.size());
  node->start_nanos = NowNanos() - epoch_nanos_;
  TraceNode* raw = node.get();
  stack_.back()->children.push_back(std::move(node));
  stack_.push_back(raw);
  return raw;
}

void Trace::CloseSpan(TraceNode* node) {
  assert(!stack_.empty() && stack_.back() == node &&
         "spans must close in LIFO order");
  node->duration_nanos = NowNanos() - epoch_nanos_ - node->start_nanos;
  stack_.pop_back();
  PopProfilePhase();
}

void Trace::Finish() {
  if (finished_) return;
  finished_ = true;
  // Close any spans a caller leaked, then the root.
  while (stack_.size() > 1) CloseSpan(stack_.back());
  root_.duration_nanos = NowNanos() - epoch_nanos_;
  stack_.clear();
}

void Trace::AddRootAttr(std::string_view key, uint64_t value) {
  TraceAttr a;
  a.key.assign(key.data(), key.size());
  a.kind = TraceAttr::Kind::kUint;
  a.u = value;
  root_.attrs.push_back(std::move(a));
}

void Trace::AddRootAttr(std::string_view key, std::string_view value) {
  TraceAttr a;
  a.key.assign(key.data(), key.size());
  a.kind = TraceAttr::Kind::kString;
  a.s.assign(value.data(), value.size());
  root_.attrs.push_back(std::move(a));
}

std::string Trace::ToJson() const {
  std::string out;
  AppendNode(root_, &out);
  return out;
}

void TraceSpan::AddAttr(std::string_view key, uint64_t value) {
  if (node_ == nullptr) return;
  TraceAttr a;
  a.key.assign(key.data(), key.size());
  a.kind = TraceAttr::Kind::kUint;
  a.u = value;
  node_->attrs.push_back(std::move(a));
}

void TraceSpan::AddAttr(std::string_view key, double value) {
  if (node_ == nullptr) return;
  TraceAttr a;
  a.key.assign(key.data(), key.size());
  a.kind = TraceAttr::Kind::kDouble;
  a.d = value;
  node_->attrs.push_back(std::move(a));
}

void TraceSpan::AddAttr(std::string_view key, std::string_view value) {
  if (node_ == nullptr) return;
  TraceAttr a;
  a.key.assign(key.data(), key.size());
  a.kind = TraceAttr::Kind::kString;
  a.s.assign(value.data(), value.size());
  node_->attrs.push_back(std::move(a));
}

}  // namespace obs
}  // namespace trex
