// Observability: Chrome trace_event export of span trees.
//
// QueryAnswer::trace serializes to this repo's own span-tree JSON; this
// module re-serializes the same tree into the Trace Event Format that
// chrome://tracing and Perfetto load directly, so a query's EXPLAIN can
// be inspected on a real timeline (`search_cli --trace-out=x.json`).
//
// Every span becomes one "X" (complete) event: ts/dur in microseconds
// (fractional, so nanosecond precision survives), pid/tid for lane
// placement, and the span's typed attributes under "args". A writer
// collects events from any number of traces — one lane per executor
// thread, say — and renders the standard envelope
//   {"traceEvents":[...],"displayTimeUnit":"ns"}.
#ifndef TREX_OBS_CHROME_TRACE_H_
#define TREX_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace trex {
namespace obs {

// Accumulates trace_event entries from one or more Traces.
class ChromeTraceWriter {
 public:
  // Appends every span of `trace` as a complete event in lane
  // (pid, tid). `ts_offset_nanos` shifts the trace's epoch on the
  // shared timeline — traces record spans relative to their own start,
  // so concurrent queries are laid side by side by offsetting each
  // trace by its start time relative to the run's origin.
  void AddTrace(const Trace& trace, uint64_t pid = 1, uint64_t tid = 1,
                int64_t ts_offset_nanos = 0);

  // {"traceEvents":[...],"displayTimeUnit":"ns"} — valid with zero
  // traces added (an empty event array).
  std::string Json() const;

  size_t event_count() const { return event_count_; }

 private:
  std::string events_;  // Comma-joined serialized events.
  size_t event_count_ = 0;
};

// Convenience: one trace, one lane, standalone JSON document.
std::string ChromeTraceJson(const Trace& trace, uint64_t pid = 1,
                            uint64_t tid = 1);

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_CHROME_TRACE_H_
