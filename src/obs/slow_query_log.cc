#include "obs/slow_query_log.h"

#include <cinttypes>

#include "obs/metrics.h"

namespace trex {
namespace obs {

std::string SlowQueryRecord::ToJson() const {
  std::string out = "{\"seq\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, sequence);
  out.append(buf);
  out.append(",\"query\":\"");
  JsonEscape(query, &out);
  out.append("\",\"method\":\"");
  JsonEscape(method, &out);
  out.append("\",\"duration_ns\":");
  std::snprintf(buf, sizeof(buf), "%" PRId64, duration_nanos);
  out.append(buf);
  out.append(",\"resources\":");
  resources.AppendJson(&out);
  out.append(",\"trace\":");
  // Already-serialized span tree; an absent trace degrades to null.
  out.append(trace_json.empty() ? "null" : trace_json);
  out.push_back('}');
  return out;
}

SlowQueryLog::SlowQueryLog(Options options) : options_(std::move(options)) {
  if (!options_.jsonl_path.empty()) {
    sink_ = std::fopen(options_.jsonl_path.c_str(), "a");
    sink_failed_ = sink_ == nullptr;
  }
}

SlowQueryLog::~SlowQueryLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

bool SlowQueryLog::Observe(SlowQueryRecord record) {
  static Counter* m_observed = Default().GetCounter("obs.slowlog.observed");
  static Counter* m_recorded = Default().GetCounter("obs.slowlog.recorded");
  m_observed->Add();
  const bool slow =
      record.duration_nanos >= options_.threshold_nanos ||
      (options_.threshold_pages != 0 &&
       record.resources.pages_fetched >= options_.threshold_pages);
  std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  if (!slow) return false;
  m_recorded->Add();
  ++recorded_;
  record.sequence = next_sequence_++;
  if (sink_ != nullptr) {
    std::string line = record.ToJson();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
  }
  if (options_.ring_capacity > 0) {
    if (ring_.size() < options_.ring_capacity) {
      ring_.push_back(std::move(record));
      ring_next_ = ring_.size() % options_.ring_capacity;
    } else {
      ring_[ring_next_] = std::move(record);
      ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
    }
  }
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  // Oldest first: from the insertion cursor when the ring has wrapped.
  const size_t n = ring_.size();
  const size_t start =
      n < options_.ring_capacity ? 0 : ring_next_;
  for (size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

uint64_t SlowQueryLog::observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

bool SlowQueryLog::sink_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_failed_;
}

}  // namespace obs
}  // namespace trex
