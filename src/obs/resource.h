// Observability: per-query resource accounting (the cost side of §5).
//
// The paper measures retrieval cost in work units — sorted accesses,
// posting positions, page reads — not just seconds. ResourceAccounting
// makes that per-query: TReX installs an accounting scope around each
// evaluation and every layer below charges into it through a
// thread-local pointer, so call sites need no extra parameters:
//
//   * storage  — BufferPool::Fetch charges one page access per call and
//                a page fault (+ page bytes) per cache miss;
//   * index    — the RPL/ERPL iterators charge sorted accesses, list
//                fragments and decoded bytes; the posting-list iterator
//                charges scanned positions; fresh iterator seeks and
//                term-stat probes count as random accesses;
//   * retrieval— TA charges its heap operations, ERA its extent
//                advances.
//
// The counters are relaxed atomics so a TA-vs-Merge race can adopt the
// parent query's accounting on both contestant threads (see
// ResourceScope's adopting semantics); a query without a scope pays one
// thread-local load + branch per charge site.
//
// An accounting can carry a ResourceBudget. Budgets are enforced at the
// buffer pool: the first page access past the limit fails with
// Status::ResourceExhausted, which propagates out of the evaluator like
// any other storage error — the query dies cleanly, the index does not.
#ifndef TREX_OBS_RESOURCE_H_
#define TREX_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace trex {
namespace obs {

// Point-in-time copy of one query's resource vector. Field order is the
// canonical reporting order (QueryAnswer, EXPLAIN attrs, BENCH_*.json).
struct ResourceUsage {
  uint64_t pages_fetched = 0;    // Buffer-pool page accesses.
  uint64_t pages_faulted = 0;    // Accesses that missed and hit disk.
  uint64_t bytes_read = 0;       // Bytes brought in by faults.
  uint64_t bytes_decoded = 0;    // Encoded list bytes decoded.
  uint64_t list_fragments = 0;   // RPL/ERPL blocks + posting fragments.
  uint64_t blocks_decoded = 0;   // RPL/ERPL codec blocks decoded.
  uint64_t blocks_skipped = 0;   // Codec blocks skipped via block-max.
  uint64_t postings_scanned = 0; // Posting-list positions consumed.
  uint64_t sorted_accesses = 0;  // RPL/ERPL entries read in score order.
  uint64_t random_accesses = 0;  // Fresh list seeks + term-stat probes.
  uint64_t elements_scanned = 0; // Extent-iterator advances (ERA).
  uint64_t heap_operations = 0;  // Top-k heap pushes/pops (TA).
  uint64_t cpu_nanos = 0;        // Thread CPU burned inside the scope.

  // {"pages_fetched":...,...} in canonical field order.
  void AppendJson(std::string* out) const;
  std::string ToJson() const;
};

// Per-query work limits; 0 means unlimited. Enforced by the charge
// sites named in the field comments.
struct ResourceBudget {
  uint64_t max_pages = 0;  // Buffer-pool page accesses (ChargePageAccess).
  uint64_t max_bytes = 0;  // Fault bytes read from disk (ChargePageFault).

  bool unlimited() const { return max_pages == 0 && max_bytes == 0; }
};

// One query's accumulator. All charge methods are thread-safe (relaxed
// atomics): a race installs the same accounting on both contestant
// threads and the totals stay exact.
class ResourceAccounting {
 public:
  explicit ResourceAccounting(ResourceBudget budget = {},
                              Deadline deadline = {})
      : budget_(budget), deadline_(deadline) {}
  ResourceAccounting(const ResourceAccounting&) = delete;
  ResourceAccounting& operator=(const ResourceAccounting&) = delete;

  // The accounting installed on this thread, or nullptr outside any
  // query scope. Charge sites must tolerate nullptr.
  static ResourceAccounting* Current();

  // One buffer-pool access; fails once the page budget is exceeded.
  Status ChargePageAccess() {
    uint64_t n = pages_fetched_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (budget_.max_pages != 0 && n > budget_.max_pages) {
      return Status::ResourceExhausted(
          "page budget exceeded: " + std::to_string(n) + " accesses > " +
          std::to_string(budget_.max_pages) + " budgeted");
    }
    return Status::OK();
  }
  // A miss serviced from disk; fails once the byte budget is exceeded.
  Status ChargePageFault(uint64_t bytes) {
    pages_faulted_.fetch_add(1, std::memory_order_relaxed);
    uint64_t total =
        bytes_read_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (budget_.max_bytes != 0 && total > budget_.max_bytes) {
      return Status::ResourceExhausted(
          "byte budget exceeded: " + std::to_string(total) +
          " bytes read > " + std::to_string(budget_.max_bytes) +
          " budgeted");
    }
    return Status::OK();
  }
  // A posting fragment decoded (no codec block involved).
  void ChargeDecodedBlock(uint64_t encoded_bytes) {
    bytes_decoded_.fetch_add(encoded_bytes, std::memory_order_relaxed);
    list_fragments_.fetch_add(1, std::memory_order_relaxed);
  }
  // An RPL/ERPL codec block decoded by a list iterator.
  void ChargeBlockDecoded(uint64_t encoded_bytes) {
    bytes_decoded_.fetch_add(encoded_bytes, std::memory_order_relaxed);
    list_fragments_.fetch_add(1, std::memory_order_relaxed);
    blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  }
  // A codec block seeked past via its header, payload never decoded.
  void ChargeBlockSkipped() {
    blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
  }
  void ChargePostings(uint64_t n) {
    postings_scanned_.fetch_add(n, std::memory_order_relaxed);
  }
  void ChargeSortedAccesses(uint64_t n) {
    sorted_accesses_.fetch_add(n, std::memory_order_relaxed);
  }
  void ChargeRandomAccess() {
    random_accesses_.fetch_add(1, std::memory_order_relaxed);
  }
  void ChargeElementsScanned(uint64_t n) {
    elements_scanned_.fetch_add(n, std::memory_order_relaxed);
  }
  void ChargeHeapOperations(uint64_t n) {
    heap_operations_.fetch_add(n, std::memory_order_relaxed);
  }
  // CLOCK_THREAD_CPUTIME_ID delta measured by ResourceScope at its
  // boundaries. Race contestants install the parent accounting on
  // their own threads, so each contributes exactly the CPU it burned
  // and the parent total stays the query's true CPU cost.
  void ChargeCpuNanos(uint64_t n) {
    cpu_nanos_.fetch_add(n, std::memory_order_relaxed);
  }

  // Deadline enforcement, mirroring the budget path: checked where a
  // query can stall (buffer-pool page faults, pager retry backoff) and
  // at the TA/Merge cancellation checkpoints. An unset deadline costs
  // one branch; past it the query aborts with Status::DeadlineExceeded
  // and its partial work stays accounted.
  Status CheckDeadline() const {
    if (!deadline_.Expired()) return Status::OK();
    return Status::DeadlineExceeded(
        "query deadline exceeded (" +
        std::to_string(-deadline_.RemainingNanos() / 1000000) +
        " ms past due)");
  }

  ResourceUsage Usage() const;
  const ResourceBudget& budget() const { return budget_; }
  const Deadline& deadline() const { return deadline_; }

 private:
  friend class ResourceScope;

  ResourceBudget budget_;
  Deadline deadline_;
  std::atomic<uint64_t> pages_fetched_{0};
  std::atomic<uint64_t> pages_faulted_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_decoded_{0};
  std::atomic<uint64_t> list_fragments_{0};
  std::atomic<uint64_t> blocks_decoded_{0};
  std::atomic<uint64_t> blocks_skipped_{0};
  std::atomic<uint64_t> postings_scanned_{0};
  std::atomic<uint64_t> sorted_accesses_{0};
  std::atomic<uint64_t> random_accesses_{0};
  std::atomic<uint64_t> elements_scanned_{0};
  std::atomic<uint64_t> heap_operations_{0};
  std::atomic<uint64_t> cpu_nanos_{0};
};

// RAII installer: makes `acct` the thread's current accounting for the
// scope's lifetime, restoring the previous one on exit (scopes nest; an
// inner scope shadows the outer one, it does not merge into it). Does
// not own the accounting — the race evaluator installs the parent
// query's accounting on each contestant thread this way.
//
// The scope also measures the thread-CPU delta across its lifetime and
// charges it to `acct` (ChargeCpuNanos) on exit. Re-installing the
// accounting this thread already runs under charges nothing — the
// outer scope's delta covers the interval — so adoption never double
// counts. A scope shadowing a *different* outer accounting charges its
// own accounting only; the outer one still sees the wall of its own
// thread-CPU delta, mirroring how its thread did spend that CPU.
class ResourceScope {
 public:
  explicit ResourceScope(ResourceAccounting* acct);
  ~ResourceScope();

  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

 private:
  ResourceAccounting* previous_;
  ResourceAccounting* charged_;  // nullptr when this scope charges no CPU.
  int64_t cpu_start_nanos_ = 0;
};

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_RESOURCE_H_
