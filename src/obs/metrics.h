// Observability: a process-wide registry of named metrics.
//
// The paper's experiments (§5) attribute query time to individual
// components — sorted accesses, heap operations, posting-list scans —
// and every later performance PR is judged against those numbers. This
// module makes that accounting first-class:
//
//   * Counter    — monotonically increasing uint64 (relaxed atomics).
//   * Gauge      — last-write-wins int64 (e.g. catalog size, pool usage).
//   * Histogram  — log2-bucketed distribution of uint64 samples with
//                  p50/p95/p99 extraction (e.g. B+-tree seek depth,
//                  span latencies in nanoseconds).
//
// Instruments are created on first use, keyed by a dotted name
// ("storage.bufpool.hits"); pointers returned by the registry are valid
// for the registry's lifetime, so hot paths fetch once and then pay one
// predictable branch plus one relaxed atomic op per event. Disabling a
// registry (set_enabled(false), or TREX_OBS_DISABLED=1 for the default
// registry) turns every instrument into a cheap no-op without
// invalidating any cached pointer — the acceptance bar is that a
// disabled run of bench_micro is within noise of an uninstrumented one.
//
// Naming scheme (see DESIGN.md "Observability"):
//   <layer>.<component>.<event>   e.g. storage.bufpool.misses,
//   index.rpl.entries_read, retrieval.ta.sorted_accesses,
//   advisor.greedy.iterations.
#ifndef TREX_OBS_METRICS_H_
#define TREX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace trex {
namespace obs {

class MetricsRegistry;

// Monotonic event count. Thread-safe; Add() is one relaxed fetch_add
// behind an enabled check.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins level (can go up and down).
class Gauge {
 public:
  void Set(int64_t v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

// Point-in-time percentile summary of a histogram.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

// Log2-bucketed distribution: bucket b >= 1 covers [2^(b-1), 2^b - 1],
// bucket 0 holds exact zeros. Percentiles interpolate linearly within a
// bucket, so the relative error is bounded by the bucket width (a factor
// of two) and is much smaller for smooth distributions.
class Histogram {
 public:
  // 1 zero bucket + one bucket per possible bit width of a uint64.
  static constexpr int kBuckets = 65;

  void Record(uint64_t value);
  HistogramSummary Summary() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset();

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// A consistent-enough copy of every instrument's current value.
// (Individual reads are relaxed; cross-metric skew is acceptable for
// reporting.)
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  // 0 when absent — convenient for assertions.
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  // sum, min, max, p50, p95, p99}, ...}}
  std::string ToJson() const;
};

// Thread-safe instrument registry. Instruments are interned by name and
// never deallocated while the registry lives; Default() is a leaked
// process-wide singleton, so pointers from it are valid forever.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Disabling turns every instrument into a no-op; cached pointers stay
  // valid and re-enable transparently.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Zeroes every instrument (names and pointers survive).
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Exact q-quantile (0 <= q <= 1) of an ascending-sorted sample, by
// linear interpolation between the two closest order statistics (the
// "type 7" estimator numpy.percentile defaults to). This is the
// reference the histogram's bucketed estimate is tested against, and
// what the bench suite uses for its latency percentiles (it keeps the
// raw samples, so it owes the exact answer).
double ExactQuantile(const std::vector<uint64_t>& sorted_samples, double q);

// q-quantile estimate from log2 bucket counts (the Histogram layout:
// bucket 0 holds exact zeros, bucket b >= 1 covers [2^(b-1), 2^b - 1]).
// Selects the nearest-rank bucket (rank = ceil(q * total)), then
// interpolates linearly across its value range, clamped to
// [min_value, max_value]. `total` must equal the sum of `counts`.
uint64_t QuantileFromLogBuckets(const uint64_t (&counts)[65], uint64_t total,
                                uint64_t min_value, uint64_t max_value,
                                double q);

// The process-wide default registry every component reports into.
// Honors TREX_OBS_DISABLED=1 at first use.
MetricsRegistry& Default();

// Appends a JSON-escaped rendering of `s` (without quotes) to `out`.
// Shared by the metrics and trace serializers.
void JsonEscape(std::string_view s, std::string* out);

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_METRICS_H_
