#include "obs/prom.h"

#include <cinttypes>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <dirent.h>
#endif

namespace trex {
namespace obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendHeader(std::string* out, const std::string& prom_name,
                  const char* type) {
  out->append("# TYPE ");
  out->append(prom_name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string PromName(const std::string& name) {
  std::string out = "trex_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

ProcessHealth ReadProcessHealth() {
  ProcessHealth health;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    health.cpu_seconds_total =
        static_cast<double>(usage.ru_utime.tv_sec + usage.ru_stime.tv_sec) +
        static_cast<double>(usage.ru_utime.tv_usec +
                            usage.ru_stime.tv_usec) *
            1e-6;
    // ru_maxrss is the peak, not the current RSS; /proc (below)
    // overrides it with the live value where available.
    health.rss_bytes = static_cast<double>(usage.ru_maxrss) * 1024.0;
    health.ok = true;
  }
#endif
#if defined(__linux__)
  // Current RSS: second field of /proc/self/statm, in pages.
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long size = 0, resident = 0;
    if (std::fscanf(f, "%ld %ld", &size, &resident) == 2) {
      health.rss_bytes = static_cast<double>(resident) *
                         static_cast<double>(sysconf(_SC_PAGESIZE));
      health.ok = true;
    }
    std::fclose(f);
  }
  if (DIR* dir = opendir("/proc/self/fd")) {
    int fds = 0;
    while (readdir(dir) != nullptr) ++fds;
    closedir(dir);
    // Minus ".", "..", and the directory's own fd.
    health.open_fds = fds > 3 ? static_cast<double>(fds - 3) : 0.0;
  }
#endif
  return health;
}

std::vector<DerivedGauge> DerivedGauges(const MetricsSnapshot& snapshot) {
  std::vector<DerivedGauge> out;
  const uint64_t hits = snapshot.counter("storage.bufpool.hits");
  const uint64_t misses = snapshot.counter("storage.bufpool.misses");
  if (hits + misses > 0) {
    out.push_back(DerivedGauge{
        "derived.bufpool.hit_rate",
        static_cast<double>(hits) / static_cast<double>(hits + misses)});
  }
  const uint64_t requested =
      snapshot.counter("retrieval.materializer.units_requested");
  const uint64_t reused =
      snapshot.counter("retrieval.materializer.units_reused");
  if (requested > 0) {
    out.push_back(DerivedGauge{
        "derived.materializer.reuse_rate",
        static_cast<double>(reused) / static_cast<double>(requested)});
  }
  const ProcessHealth health = ReadProcessHealth();
  if (health.ok) {
    out.push_back(DerivedGauge{"process.rss_bytes", health.rss_bytes});
    out.push_back(DerivedGauge{"process.open_fds", health.open_fds});
    out.push_back(
        DerivedGauge{"process.cpu_seconds_total", health.cpu_seconds_total});
  }
  return out;
}

std::string PromText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    AppendHeader(&out, prom, "counter");
    out.append(prom);
    out.push_back(' ');
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    AppendHeader(&out, prom, "gauge");
    out.append(prom);
    out.push_back(' ');
    AppendI64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PromName(name);
    AppendHeader(&out, prom, "summary");
    const struct {
      const char* label;
      uint64_t value;
    } quantiles[] = {{"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}};
    for (const auto& q : quantiles) {
      out.append(prom);
      out.append("{quantile=\"");
      out.append(q.label);
      out.append("\"} ");
      AppendU64(&out, q.value);
      out.push_back('\n');
    }
    out.append(prom);
    out.append("_sum ");
    AppendU64(&out, h.sum);
    out.push_back('\n');
    out.append(prom);
    out.append("_count ");
    AppendU64(&out, h.count);
    out.push_back('\n');
  }
  for (const DerivedGauge& g : DerivedGauges(snapshot)) {
    const std::string prom = PromName(g.name);
    AppendHeader(&out, prom, "gauge");
    out.append(prom);
    out.push_back(' ');
    AppendDouble(&out, g.value);
    out.push_back('\n');
  }
  return out;
}

bool WritePromFile(const MetricsSnapshot& snapshot, const std::string& path) {
  // tmp + rename: a scraper reading `path` sees either the previous or
  // the new exposition, never a torn one. Plain stdio on purpose — obs
  // sits below the storage layer and cannot use trex::Env.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = PromText(snapshot);
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) ==
                     text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace trex
