// Observability: periodic metrics snapshots as a JSONL time series.
//
// The registry's counters are cumulative since process start; what a
// performance investigation wants is rates — what happened in *this*
// second. MetricsSnapshotter runs a background thread that samples the
// registry every period and appends one JSON line per tick to a file:
// counter and histogram count/sum fields as deltas against the
// previous tick, gauges and histogram percentiles as absolute values.
// Pointing a plotting script (or just jq) at the file gives the
// paper-§5 style time series without any scrape infrastructure.
//
// The delta math is exposed as a pure function (DeltaJson) so tests
// exercise it without threads or files.
//
// With Options::prom_path set the snapshotter additionally rewrites a
// Prometheus-style text exposition file (see obs/prom.h) on every tick
// — the live `trex_stats.prom` external tooling scrapes. Either sink
// may be used alone.
#ifndef TREX_OBS_SNAPSHOTTER_H_
#define TREX_OBS_SNAPSHOTTER_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace trex {
namespace obs {

class MetricsSnapshotter {
 public:
  struct Options {
    int64_t period_millis = 1000;
    std::string jsonl_path;  // Appended to, flushed per tick.
    // Prometheus text exposition, atomically rewritten per tick
    // (absolute values, not deltas). At least one of jsonl_path /
    // prom_path must be set.
    std::string prom_path;
    MetricsRegistry* registry = nullptr;  // nullptr = Default().
  };

  explicit MetricsSnapshotter(Options options);
  ~MetricsSnapshotter();  // Stops the thread if still running.

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  // Starts the sampling thread. Returns false if the sink could not be
  // opened (the snapshotter then stays inert).
  bool Start();
  // Stops promptly (does not wait out the period) and writes one final
  // tick so short runs still produce a complete series.
  void Stop();

  uint64_t ticks() const;

  // One JSONL line (no trailing newline) for the delta from `prev` to
  // `cur`: {"tick":T,"elapsed_ns":N,"counters":{deltas},
  // "gauges":{absolutes},"histograms":{name:{count,sum deltas +
  // absolute p50/p95/p99}}}. Pure — the unit-testable core.
  static std::string DeltaJson(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur, uint64_t tick,
                               int64_t elapsed_nanos);

 private:
  void Run();

  const Options options_;
  MetricsRegistry* registry_;
  std::FILE* sink_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  uint64_t ticks_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace trex

#endif  // TREX_OBS_SNAPSHOTTER_H_
