#include "obs/snapshotter.h"

#include <chrono>
#include <cinttypes>

#include "common/clock.h"
#include "obs/prom.h"

namespace trex {
namespace obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  JsonEscape(name, out);
  out->append("\":");
}

}  // namespace

std::string MetricsSnapshotter::DeltaJson(const MetricsSnapshot& prev,
                                          const MetricsSnapshot& cur,
                                          uint64_t tick,
                                          int64_t elapsed_nanos) {
  std::string out = "{\"tick\":";
  AppendU64(&out, tick);
  out.append(",\"elapsed_ns\":");
  AppendI64(&out, elapsed_nanos);
  out.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : cur.counters) {
    // A counter absent from `prev` was created this period: its whole
    // value is the delta. Counters never decrease (Reset() between
    // ticks would show as a spurious 0 — acceptable for reporting).
    uint64_t before = prev.counter(name);
    uint64_t delta = value >= before ? value - before : 0;
    AppendKey(&out, name, &first);
    AppendU64(&out, delta);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : cur.gauges) {
    AppendKey(&out, name, &first);
    AppendI64(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : cur.histograms) {
    uint64_t prev_count = 0, prev_sum = 0;
    auto it = prev.histograms.find(name);
    if (it != prev.histograms.end()) {
      prev_count = it->second.count;
      prev_sum = it->second.sum;
    }
    AppendKey(&out, name, &first);
    out.append("{\"count\":");
    AppendU64(&out, h.count >= prev_count ? h.count - prev_count : 0);
    out.append(",\"sum\":");
    AppendU64(&out, h.sum >= prev_sum ? h.sum - prev_sum : 0);
    // Percentiles are over the cumulative distribution (the buckets
    // are not differenced) — absolute, like gauges.
    out.append(",\"p50\":");
    AppendU64(&out, h.p50);
    out.append(",\"p95\":");
    AppendU64(&out, h.p95);
    out.append(",\"p99\":");
    AppendU64(&out, h.p99);
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

MetricsSnapshotter::MetricsSnapshotter(Options options)
    : options_(std::move(options)),
      registry_(options_.registry != nullptr ? options_.registry
                                             : &Default()) {}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

bool MetricsSnapshotter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return true;
  if (options_.jsonl_path.empty() && options_.prom_path.empty()) return false;
  if (!options_.jsonl_path.empty()) {
    sink_ = std::fopen(options_.jsonl_path.c_str(), "a");
    if (sink_ == nullptr) return false;
  }
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return true;
}

void MetricsSnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

uint64_t MetricsSnapshotter::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

void MetricsSnapshotter::Run() {
  MetricsSnapshot prev = registry_->Snapshot();
  int64_t prev_nanos = NowNanos();
  uint64_t tick = 0;
  bool done = false;
  while (!done) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      done = cv_.wait_for(lock, std::chrono::milliseconds(
                                    options_.period_millis),
                          [this] { return stop_; });
    }
    // On shutdown this writes one final (short) tick, so even a run
    // briefer than the period yields a line.
    MetricsSnapshot cur = registry_->Snapshot();
    int64_t now = NowNanos();
    if (sink_ != nullptr) {
      // Process health rides each JSONL tick as plain gauges
      // (absolute, like all gauges in the delta line) on a copy of the
      // snapshot: the prom file rendered below gets the same values
      // through DerivedGauges, so injecting into `cur` itself would
      // duplicate the trex_process_* families in the exposition.
      MetricsSnapshot augmented = cur;
      const ProcessHealth health = ReadProcessHealth();
      if (health.ok) {
        augmented.gauges["process.rss_bytes"] =
            static_cast<int64_t>(health.rss_bytes);
        augmented.gauges["process.open_fds"] =
            static_cast<int64_t>(health.open_fds);
        augmented.gauges["process.cpu_millis_total"] =
            static_cast<int64_t>(health.cpu_seconds_total * 1000.0);
      }
      std::string line = DeltaJson(prev, augmented, ++tick, now - prev_nanos);
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), sink_);
      std::fflush(sink_);
    } else {
      ++tick;
    }
    if (!options_.prom_path.empty()) {
      WritePromFile(cur, options_.prom_path);  // Best effort per tick.
    }
    prev = std::move(cur);
    prev_nanos = now;
    std::lock_guard<std::mutex> lock(mu_);
    ticks_ = tick;
  }
}

}  // namespace obs
}  // namespace trex
