#include "corpus/workload_zoo.h"

#include <cassert>
#include <utility>

#include "corpus/adversarial.h"
#include "corpus/vocabulary.h"

namespace trex {

namespace {

// Zoo streams derive their RNG from the same mixer as the generators,
// with their own tag space so corpus and workload draws never alias.
constexpr uint64_t kZooStreamTag = 0x200;

std::string Quote(const std::string& s) { return "\"" + s + "\""; }

const std::string& Pick(const std::vector<std::string>& v, Rng* rng) {
  assert(!v.empty());
  return v[rng->Uniform(v.size())];
}

std::string Background(const StreamProfile& profile, Rng* rng) {
  return Vocabulary::WordForRank(rng->Uniform(profile.background_ranks));
}

// One non-phrase keyword: hot term half the time, background otherwise.
std::string SimpleTerm(const StreamProfile& profile, Rng* rng) {
  if (!profile.hot_terms.empty() && rng->Bernoulli(0.5)) {
    return Pick(profile.hot_terms, rng);
  }
  return Background(profile, rng);
}

size_t SampleK(Rng* rng) {
  static const size_t kChoices[] = {5, 10, 20};
  return kChoices[rng->Uniform(3)];
}

// "//tag[about(., <terms>)]", optionally under a leading //doc step so
// some queries exercise multi-step paths.
std::string AboutQuery(const StreamProfile& profile, const std::string& terms,
                       Rng* rng) {
  std::string q;
  if (rng->Bernoulli(0.3)) q += "//doc";
  q += "//" + Pick(profile.tags, rng) + "[about(., " + terms + ")]";
  return q;
}

}  // namespace

StreamProfile DeepRecursionProfile() {
  StreamProfile p;
  p.tags = {"r0", "r1", "leaf"};
  p.hot_terms = {"spire", "ladder"};
  p.cold_terms = {"bedrock"};
  return p;
}

StreamProfile WideFanoutProfile() {
  StreamProfile p;
  p.tags = {"item", "title"};
  p.hot_terms = {"ribbon", "spoke"};
  p.cold_terms = {"cotter"};
  return p;
}

StreamProfile ZipfSkewProfile() {
  StreamProfile p;
  p.tags = {"t0", "t1", "head"};
  p.hot_terms = {"magma", "basalt"};
  p.cold_terms = {"geyser", "fumarole"};
  return p;
}

StreamProfile NearDuplicateProfile() {
  StreamProfile p;
  p.tags = {"sec", "doc"};
  p.hot_terms = {"stencil", "carbon"};
  p.cold_terms = {"vellum"};
  return p;
}

// ---------------------------------------------------------------------
// Phrase-heavy.

PhraseHeavyStream::PhraseHeavyStream(StreamProfile profile, uint64_t seed,
                                     PhraseHeavyOptions options)
    : profile_(std::move(profile)),
      options_(options),
      rng_(DocumentRng(seed, kZooStreamTag + 1, 0)) {
  assert(!profile_.tags.empty());
  if (options_.min_terms < 1) options_.min_terms = 1;
  if (options_.max_terms < options_.min_terms) {
    options_.max_terms = options_.min_terms;
  }
}

ZooQuery PhraseHeavyStream::Next() {
  const size_t terms =
      rng_.UniformRange(options_.min_terms, options_.max_terms);
  std::string body;
  for (size_t i = 0; i < terms; ++i) {
    if (i > 0) body.push_back(' ');
    if (rng_.Bernoulli(options_.phrase_fraction)) {
      // 2-3 word phrase anchored on a hot or background word; phrase
      // decomposition turns each into a multi-term conjunction.
      const size_t len = rng_.UniformRange(2, 3);
      std::string phrase = SimpleTerm(profile_, &rng_);
      for (size_t w = 1; w < len; ++w) {
        phrase += " " + Background(profile_, &rng_);
      }
      body += Quote(phrase);
    } else {
      body += SimpleTerm(profile_, &rng_);
    }
  }
  return {AboutQuery(profile_, body, &rng_), SampleK(&rng_)};
}

// ---------------------------------------------------------------------
// Negation-heavy.

NegationHeavyStream::NegationHeavyStream(StreamProfile profile, uint64_t seed,
                                         NegationHeavyOptions options)
    : profile_(std::move(profile)),
      options_(options),
      rng_(DocumentRng(seed, kZooStreamTag + 2, 0)) {
  assert(!profile_.tags.empty());
  if (options_.min_negated < 1) options_.min_negated = 1;
  if (options_.max_negated < options_.min_negated) {
    options_.max_negated = options_.min_negated;
  }
}

ZooQuery NegationHeavyStream::Next() {
  // One positive (often hot, so the candidate set is big) and several
  // '-' terms — the Q292 shape: big lists, few surviving answers.
  std::string body = "+" + SimpleTerm(profile_, &rng_);
  const size_t negated =
      rng_.UniformRange(options_.min_negated, options_.max_negated);
  for (size_t i = 0; i < negated; ++i) {
    body += " -" + Background(profile_, &rng_);
  }
  return {AboutQuery(profile_, body, &rng_), SampleK(&rng_)};
}

// ---------------------------------------------------------------------
// Hot-key.

HotKeyStream::HotKeyStream(StreamProfile profile, uint64_t seed,
                           HotKeyOptions options)
    : profile_(std::move(profile)),
      sampler_(options.pool_size < 1 ? 1 : options.pool_size, options.theta),
      rng_(DocumentRng(seed, kZooStreamTag + 3, 0)) {
  assert(!profile_.tags.empty());
  const size_t pool_size = options.pool_size < 1 ? 1 : options.pool_size;
  pool_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    std::string body = SimpleTerm(profile_, &rng_);
    if (rng_.Bernoulli(0.5)) body += " " + Background(profile_, &rng_);
    pool_.push_back({AboutQuery(profile_, body, &rng_), SampleK(&rng_)});
  }
}

ZooQuery HotKeyStream::Next() {
  // Zipf over a fixed pool: rank 0 dominates, so the stream repeats a
  // handful of (nexi, k) keys — the cacheable workload.
  return pool_[sampler_.Sample(&rng_)];
}

// ---------------------------------------------------------------------
// Shifting-topic.

ShiftingTopicStream::ShiftingTopicStream(StreamProfile profile, uint64_t seed,
                                         ShiftingTopicOptions options)
    : profile_(std::move(profile)),
      options_(options),
      rng_(DocumentRng(seed, kZooStreamTag + 4, 0)) {
  assert(!profile_.tags.empty());
  if (options_.pool_per_topic < 1) options_.pool_per_topic = 1;
  // Topic pools draw from disjoint term sets (hot vs cold planted
  // terms), so the flip retargets different (term, sid) lists.
  auto build = [&](const std::vector<std::string>& terms,
                   std::vector<ZooQuery>* pool) {
    for (size_t i = 0; i < options_.pool_per_topic; ++i) {
      std::string body = terms.empty() ? Background(profile_, &rng_)
                                       : terms[i % terms.size()];
      if (rng_.Bernoulli(0.5)) body += " " + Background(profile_, &rng_);
      pool->push_back({AboutQuery(profile_, body, &rng_), SampleK(&rng_)});
    }
  };
  build(profile_.hot_terms, &topic_a_);
  build(profile_.cold_terms, &topic_b_);
}

ZooQuery ShiftingTopicStream::Next() {
  const std::vector<ZooQuery>& pool =
      position_ < options_.changepoint ? topic_a_ : topic_b_;
  ++position_;
  return pool[rng_.Uniform(pool.size())];
}

// ---------------------------------------------------------------------
// Scenario table.

namespace {

template <typename Generator, typename Options>
std::function<std::unique_ptr<DocumentGenerator>(size_t)> CorpusFactory() {
  return [](size_t num_documents) -> std::unique_ptr<DocumentGenerator> {
    Options o;
    if (num_documents > 0) o.num_documents = num_documents;
    return std::make_unique<Generator>(std::move(o));
  };
}

template <typename Stream>
std::function<std::unique_ptr<QueryStream>(uint64_t)> StreamFactory(
    StreamProfile (*profile)()) {
  return [profile](uint64_t seed) -> std::unique_ptr<QueryStream> {
    return std::make_unique<Stream>(profile(), seed);
  };
}

std::vector<ScenarioSpec> BuildScenarioTable() {
  std::vector<ScenarioSpec> t;
  auto add = [&](const char* name, const char* corpus, const char* stream,
                 std::function<std::unique_ptr<DocumentGenerator>(size_t)> mc,
                 std::function<std::unique_ptr<QueryStream>(uint64_t)> ms) {
    t.push_back({name, corpus, stream, std::move(mc), std::move(ms)});
  };
  auto deep = CorpusFactory<DeepRecursionGenerator, DeepRecursionOptions>();
  auto fanout = CorpusFactory<WideFanoutGenerator, WideFanoutOptions>();
  auto skew = CorpusFactory<ZipfSkewGenerator, ZipfSkewOptions>();
  auto neardup = CorpusFactory<NearDuplicateGenerator, NearDuplicateOptions>();

  // Each corpus twice, each stream twice: the pairings put each stream
  // where it bites hardest (hot_key on the skewed-list corpus, phrases
  // on deep towers and wide sibling runs, negation where candidate sets
  // are big, shifting topics where the advisor has lists worth moving).
  add("deep_phrase", "deep_recursion", "phrase_heavy", deep,
      StreamFactory<PhraseHeavyStream>(&DeepRecursionProfile));
  add("deep_negation", "deep_recursion", "negation_heavy", deep,
      StreamFactory<NegationHeavyStream>(&DeepRecursionProfile));
  add("fanout_phrase", "wide_fanout", "phrase_heavy", fanout,
      StreamFactory<PhraseHeavyStream>(&WideFanoutProfile));
  add("fanout_hotkey", "wide_fanout", "hot_key", fanout,
      StreamFactory<HotKeyStream>(&WideFanoutProfile));
  add("skew_hotkey", "zipf_skew", "hot_key", skew,
      StreamFactory<HotKeyStream>(&ZipfSkewProfile));
  add("skew_shift", "zipf_skew", "shifting_topic", skew,
      StreamFactory<ShiftingTopicStream>(&ZipfSkewProfile));
  add("neardup_negation", "near_duplicate", "negation_heavy", neardup,
      StreamFactory<NegationHeavyStream>(&NearDuplicateProfile));
  add("neardup_shift", "near_duplicate", "shifting_topic", neardup,
      StreamFactory<ShiftingTopicStream>(&NearDuplicateProfile));
  return t;
}

}  // namespace

const std::vector<ScenarioSpec>& ScenarioTable() {
  static const std::vector<ScenarioSpec>* table =
      new std::vector<ScenarioSpec>(BuildScenarioTable());
  return *table;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& s : ScenarioTable()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace trex
