// Corpus: document generators and the on-disk document store.
#ifndef TREX_CORPUS_CORPUS_H_
#define TREX_CORPUS_CORPUS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "index/types.h"

namespace trex {

// A deterministic source of XML documents: Generate(docid) returns the
// same document for the same (generator options, docid) on every call,
// so corpora never need to be stored to be reproducible.
class DocumentGenerator {
 public:
  virtual ~DocumentGenerator() = default;
  virtual std::string Generate(DocId docid) const = 0;
  virtual size_t num_documents() const = 0;
};

// The one seed → per-document RNG derivation every generator uses.
// `stream_tag` separates generator families so two different generators
// with the same seed never replay each other's document streams; the
// splitmix64-style finalizer decorrelates adjacent docids. Purely
// integer arithmetic, so identical (seed, tag, docid) produce identical
// streams on every platform — the byte-for-byte reproducibility the
// corpus regression test asserts.
inline Rng DocumentRng(uint64_t seed, uint64_t stream_tag, DocId docid) {
  uint64_t z = seed * 0x9e3779b97f4a7c15ULL + stream_tag;
  z ^= docid + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

// Writes a generator's documents into `dir` as doc<id>.xml files plus a
// corpus.txt manifest (used by the search-CLI example; benchmarks feed
// the index builder straight from the generator).
Status WriteCorpusToDir(const DocumentGenerator& generator,
                        const std::string& dir);

// A directory of XML documents with a corpus.txt manifest.
class Corpus {
 public:
  static Result<Corpus> Open(const std::string& dir);

  size_t num_documents() const { return num_documents_; }
  Result<std::string> ReadDocument(DocId docid) const;
  static std::string DocumentFileName(DocId docid);

 private:
  Corpus(std::string dir, size_t n) : dir_(std::move(dir)), num_documents_(n) {}

  std::string dir_;
  size_t num_documents_ = 0;
};

}  // namespace trex

#endif  // TREX_CORPUS_CORPUS_H_
