// Wikipedia-like collection generator.
//
// Mimics the INEX 2006 Wikipedia collection's shape: flat articles with a
// body of sections (deeper nesting than IEEE via subsection recursion),
// templates, links, and figures with captions. The default planted terms
// are the keywords of the two Wikipedia queries in Table 1 (Q290, Q292),
// including the '-' excluded terms of Q292.
#ifndef TREX_CORPUS_WIKI_GENERATOR_H_
#define TREX_CORPUS_WIKI_GENERATOR_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/vocabulary.h"

namespace trex {

struct WikiGeneratorOptions {
  uint64_t seed = 43;
  size_t num_documents = 500;
  size_t vocabulary_size = 12000;
  double zipf_theta = 1.0;
  double size_factor = 1.0;
  std::vector<PlantedTerm> planted;  // Empty -> DefaultWikiPlantedTerms().
};

std::vector<PlantedTerm> DefaultWikiPlantedTerms();

// DocumentRng stream tag for the Wikipedia family (see corpus.h).
constexpr uint64_t kWikiStreamTag = 0x71c1;

class WikiGenerator : public DocumentGenerator {
 public:
  explicit WikiGenerator(WikiGeneratorOptions options);

  std::string Generate(DocId docid) const override;
  size_t num_documents() const override { return options_.num_documents; }

 private:
  void GenerateSection(class XmlWriter* w, Rng* rng,
                       const std::vector<const PlantedTerm*>& topics,
                       int depth) const;

  WikiGeneratorOptions options_;
  Vocabulary vocab_;
};

}  // namespace trex

#endif  // TREX_CORPUS_WIKI_GENERATOR_H_
