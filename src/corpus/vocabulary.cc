#include "corpus/vocabulary.h"

namespace trex {

namespace {
const char* const kSyllables[] = {"ba", "ce", "di", "fo", "gu", "ka", "le",
                                  "mi", "no", "pu", "ra", "se", "ti", "vo",
                                  "zu", "xa", "qe", "ji", "hy", "wo"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);
}  // namespace

std::string Vocabulary::WordForRank(size_t rank) {
  // Base-20 digit decomposition over syllables; a fixed leading syllable
  // per digit-count keeps words of different lengths distinct and at
  // least four letters long (so the Porter stemmer leaves most alone).
  std::string word;
  size_t r = rank;
  do {
    word = std::string(kSyllables[r % kNumSyllables]) + word;
    r /= kNumSyllables;
  } while (r > 0);
  if (word.size() < 4) word = "na" + word;
  return word;
}

Vocabulary::Vocabulary(size_t size, double zipf_theta)
    : sampler_(size, zipf_theta) {
  words_.reserve(size);
  for (size_t i = 0; i < size; ++i) words_.push_back(WordForRank(i));
}

const std::string& Vocabulary::SampleWord(Rng* rng) const {
  return words_[sampler_.Sample(rng)];
}

std::string GenerateText(const Vocabulary& vocab,
                         const std::vector<const PlantedTerm*>& active_terms,
                         size_t num_tokens, Rng* rng) {
  std::string out;
  out.reserve(num_tokens * 7);
  for (size_t i = 0; i < num_tokens; ++i) {
    if (i > 0) out.push_back(' ');
    const std::string* word = nullptr;
    for (const PlantedTerm* t : active_terms) {
      if (rng->Bernoulli(t->token_probability)) {
        word = &t->word;
        break;
      }
    }
    if (word == nullptr) word = &vocab.SampleWord(rng);
    out += *word;
  }
  return out;
}

}  // namespace trex
