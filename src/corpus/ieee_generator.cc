#include "corpus/ieee_generator.h"

#include <algorithm>

#include "xml/writer.h"

namespace trex {

std::vector<PlantedTerm> DefaultIeeePlantedTerms() {
  // Keywords of the five IEEE queries in Table 1. doc/token probabilities
  // shape posting-list volumes: Q233's "synthesizers" is rare (small
  // lists, TA & Merge both tiny); Q270's "introduction information
  // retrieval" is frequent (huge lists, TA heap costs explode).
  return {
      {"ontologies", 0.06, 0.015},    // Q202
      {"ontology", 0.06, 0.010},      // Q202 (stems with "ontologies")
      {"case", 0.20, 0.012},          // Q202
      {"study", 0.20, 0.012},         // Q202
      {"code", 0.12, 0.015},          // Q203
      {"signing", 0.015, 0.012},      // Q203 (rare)
      {"verification", 0.05, 0.012},  // Q203
      {"synthesizers", 0.010, 0.015}, // Q233 (very rare)
      {"music", 0.03, 0.015},         // Q233
      {"model", 0.22, 0.015},         // Q260
      {"checking", 0.10, 0.010},      // Q260
      {"state", 0.25, 0.012},         // Q260
      {"space", 0.18, 0.012},         // Q260
      {"explosion", 0.02, 0.010},     // Q260 (rare)
      {"introduction", 0.35, 0.015},  // Q270 (frequent)
      {"information", 0.40, 0.020},   // Q270 (frequent)
      {"retrieval", 0.10, 0.015},     // Q270
      {"xml", 0.08, 0.015},           // Example 1.1
      {"query", 0.12, 0.012},         // Example 1.1
      {"evaluation", 0.10, 0.012},    // Example 1.1
  };
}

IeeeGenerator::IeeeGenerator(IeeeGeneratorOptions options)
    : options_(std::move(options)),
      vocab_(options_.vocabulary_size, options_.zipf_theta) {
  if (options_.planted.empty()) {
    options_.planted = DefaultIeeePlantedTerms();
  }
}

std::string IeeeGenerator::Generate(DocId docid) const {
  // Independent deterministic stream per document (common derivation in
  // corpus.h; the stream tag keeps IEEE disjoint from the other
  // generator families at equal seeds).
  Rng rng = DocumentRng(options_.seed, kIeeeStreamTag, docid);

  // Document-level topics.
  std::vector<const PlantedTerm*> doc_topics;
  for (const PlantedTerm& t : options_.planted) {
    if (rng.Bernoulli(t.doc_probability)) doc_topics.push_back(&t);
  }
  // Sections keep a random ~70% subset of the document topics, which
  // creates the article-about-X / section-about-Y correlation the nested
  // about() queries rely on.
  auto section_topics = [&]() {
    std::vector<const PlantedTerm*> out;
    for (const PlantedTerm* t : doc_topics) {
      if (rng.Bernoulli(0.7)) out.push_back(t);
    }
    return out;
  };

  const double f = options_.size_factor;
  auto scaled = [&](uint64_t lo, uint64_t hi) {
    return static_cast<size_t>(
        static_cast<double>(rng.UniformRange(lo, hi)) * f + 0.5);
  };

  XmlWriter w;
  w.StartElement("books");
  w.StartElement("journal");
  w.StartElement("title");
  w.Text(GenerateText(vocab_, {}, 4, &rng));
  w.EndElement();  // title
  w.StartElement("article");
  w.Attribute("id", "a" + std::to_string(docid));

  // Front matter.
  w.StartElement("fm");
  w.StartElement("atl");  // Aliased to "title".
  w.Text(GenerateText(vocab_, doc_topics, 8, &rng));
  w.EndElement();
  w.StartElement("abs");
  w.Text(GenerateText(vocab_, doc_topics, scaled(20, 60), &rng));
  w.EndElement();
  w.StartElement("au");
  w.Text(GenerateText(vocab_, {}, 2, &rng));
  w.EndElement();
  w.EndElement();  // fm

  // Body.
  static const char* const kSectionTags[] = {"sec", "ss1", "ss2"};
  static const char* const kParaTags[] = {"p", "ip1"};
  w.StartElement("bdy");
  size_t num_sections = std::max<size_t>(1, scaled(3, 8));
  for (size_t s = 0; s < num_sections; ++s) {
    std::vector<const PlantedTerm*> topics = section_topics();
    const char* tag = kSectionTags[rng.Uniform(3)];
    w.StartElement(tag);
    w.StartElement("st");  // Section title; aliased to "title".
    w.Text(GenerateText(vocab_, topics, 5, &rng));
    w.EndElement();
    size_t num_paras = std::max<size_t>(1, scaled(2, 6));
    for (size_t p = 0; p < num_paras; ++p) {
      w.StartElement(kParaTags[rng.Uniform(2)]);
      w.Text(GenerateText(vocab_, topics, scaled(30, 90), &rng));
      w.EndElement();
    }
    if (rng.Bernoulli(0.3)) {
      w.StartElement("fig");
      w.StartElement("fgc");  // Aliased to "figure".
      w.Text(GenerateText(vocab_, topics, scaled(6, 15), &rng));
      w.EndElement();
      w.EndElement();
    }
    // Occasional nested subsections (recursive structure enriches the
    // incoming summary, as in the real collection, and multiplies the
    // sids of //article//sec and //bdy//* queries).
    if (rng.Bernoulli(0.4)) {
      std::vector<const PlantedTerm*> sub = section_topics();
      w.StartElement(kSectionTags[rng.Uniform(3)]);
      w.StartElement("st");
      w.Text(GenerateText(vocab_, sub, 4, &rng));
      w.EndElement();
      w.StartElement(kParaTags[rng.Uniform(2)]);
      w.Text(GenerateText(vocab_, sub, scaled(25, 70), &rng));
      w.EndElement();
      if (rng.Bernoulli(0.3)) {  // Second nesting level.
        w.StartElement(kSectionTags[rng.Uniform(3)]);
        w.StartElement("st");
        w.Text(GenerateText(vocab_, sub, 3, &rng));
        w.EndElement();
        w.StartElement(kParaTags[rng.Uniform(2)]);
        w.Text(GenerateText(vocab_, sub, scaled(20, 50), &rng));
        w.EndElement();
        if (rng.Bernoulli(0.25)) {
          w.StartElement("fig");
          w.StartElement("fgc");
          w.Text(GenerateText(vocab_, sub, scaled(5, 12), &rng));
          w.EndElement();
          w.EndElement();
        }
        w.EndElement();
      }
      w.EndElement();
    }
    // Occasional itemized list (more leaf-path diversity for //bdy//*).
    if (rng.Bernoulli(0.25)) {
      w.StartElement("list");
      size_t items = scaled(2, 5);
      for (size_t it = 0; it < std::max<size_t>(1, items); ++it) {
        w.StartElement("item");
        w.Text(GenerateText(vocab_, topics, scaled(8, 20), &rng));
        w.EndElement();
      }
      w.EndElement();
    }
    w.EndElement();  // section
  }
  w.EndElement();  // bdy

  // Back matter: bibliography.
  w.StartElement("bm");
  w.StartElement("bib");
  w.StartElement("bibl");
  size_t num_refs = scaled(3, 10);
  for (size_t r = 0; r < num_refs; ++r) {
    w.StartElement("bb");
    w.StartElement("au");
    w.Text(GenerateText(vocab_, {}, 2, &rng));
    w.EndElement();
    w.StartElement("atl");
    w.Text(GenerateText(vocab_, {}, 6, &rng));
    w.EndElement();
    w.EndElement();
  }
  w.EndElement();  // bibl
  w.EndElement();  // bib
  w.EndElement();  // bm

  w.EndElement();  // article
  w.EndElement();  // journal
  w.EndElement();  // books
  return w.Finish();
}

}  // namespace trex
