#include "corpus/wiki_generator.h"

#include <algorithm>

#include "xml/writer.h"

namespace trex {

std::vector<PlantedTerm> DefaultWikiPlantedTerms() {
  return {
      {"genetic", 0.04, 0.015},      // Q290
      {"algorithm", 0.10, 0.015},    // Q290
      {"renaissance", 0.015, 0.012}, // Q292 (rare: few answers)
      {"painting", 0.03, 0.012},     // Q292
      {"italian", 0.04, 0.010},      // Q292
      {"flemish", 0.006, 0.010},     // Q292 (very rare)
      {"french", 0.10, 0.012},       // Q292 (excluded term, frequent)
      {"german", 0.10, 0.012},       // Q292 (excluded term, frequent)
  };
}

WikiGenerator::WikiGenerator(WikiGeneratorOptions options)
    : options_(std::move(options)),
      vocab_(options_.vocabulary_size, options_.zipf_theta) {
  if (options_.planted.empty()) {
    options_.planted = DefaultWikiPlantedTerms();
  }
}

void WikiGenerator::GenerateSection(
    XmlWriter* w, Rng* rng, const std::vector<const PlantedTerm*>& topics,
    int depth) const {
  const double f = options_.size_factor;
  auto scaled = [&](uint64_t lo, uint64_t hi) {
    return static_cast<size_t>(
        static_cast<double>(rng->UniformRange(lo, hi)) * f + 0.5);
  };
  w->StartElement(depth == 0 ? "section" : "subsection");
  w->StartElement("title");
  w->Text(GenerateText(vocab_, topics, 4, rng));
  w->EndElement();
  size_t num_paras = std::max<size_t>(1, scaled(1, 5));
  for (size_t p = 0; p < num_paras; ++p) {
    w->StartElement("paragraph");
    w->Text(GenerateText(vocab_, topics, scaled(25, 80), rng));
    if (rng->Bernoulli(0.4)) {
      w->StartElement("link");
      w->Text(GenerateText(vocab_, topics, 2, rng));
      w->EndElement();
      w->Text(" " + GenerateText(vocab_, topics, scaled(5, 20), rng));
    }
    w->EndElement();
  }
  // Figures appear at several depths, so //article//figure matches many
  // summary nodes — Q292's "many sids, few answers" profile.
  if (rng->Bernoulli(0.35)) {
    w->StartElement("image");  // Aliased to "figure".
    w->StartElement("caption");
    w->Text(GenerateText(vocab_, topics, scaled(5, 14), rng));
    w->EndElement();
    w->EndElement();
  }
  if (depth < 3 && rng->Bernoulli(0.4)) {
    std::vector<const PlantedTerm*> sub;
    for (const PlantedTerm* t : topics) {
      if (rng->Bernoulli(0.7)) sub.push_back(t);
    }
    GenerateSection(w, rng, sub, depth + 1);
  }
  w->EndElement();  // section / subsection
}

std::string WikiGenerator::Generate(DocId docid) const {
  Rng rng = DocumentRng(options_.seed, kWikiStreamTag, docid);
  std::vector<const PlantedTerm*> doc_topics;
  for (const PlantedTerm& t : options_.planted) {
    if (rng.Bernoulli(t.doc_probability)) doc_topics.push_back(&t);
  }
  const double f = options_.size_factor;
  auto scaled = [&](uint64_t lo, uint64_t hi) {
    return static_cast<size_t>(
        static_cast<double>(rng.UniformRange(lo, hi)) * f + 0.5);
  };

  XmlWriter w;
  w.StartElement("article");
  w.Attribute("id", "w" + std::to_string(docid));
  w.StartElement("name");
  w.Text(GenerateText(vocab_, doc_topics, 3, &rng));
  w.EndElement();
  if (rng.Bernoulli(0.5)) {
    w.StartElement("template");
    w.Text(GenerateText(vocab_, {}, scaled(3, 10), &rng));
    w.EndElement();
  }
  w.StartElement("body");
  w.StartElement("paragraph");  // Lead paragraph.
  w.Text(GenerateText(vocab_, doc_topics, scaled(30, 70), &rng));
  w.EndElement();
  size_t num_sections = std::max<size_t>(1, scaled(2, 6));
  for (size_t s = 0; s < num_sections; ++s) {
    std::vector<const PlantedTerm*> topics;
    for (const PlantedTerm* t : doc_topics) {
      if (rng.Bernoulli(0.7)) topics.push_back(t);
    }
    GenerateSection(&w, &rng, topics, 0);
  }
  w.EndElement();  // body
  w.EndElement();  // article
  return w.Finish();
}

}  // namespace trex
