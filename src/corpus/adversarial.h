// Adversarial corpus generators (ROADMAP item 5).
//
// The IEEE-/Wiki-like generators are *friendly*: moderate nesting,
// modest fan-out, mild Zipf tails, and essentially no duplication. Each
// generator here isolates one hostile axis production XML corpora hit:
//
//  * DeepRecursionGenerator — pathological element nesting. Every
//    nesting level is a distinct label path, so the incoming summary
//    grows linearly with depth and every query answer sits under a
//    tower of ancestor extents (containment scoring, ERA scans and the
//    strict containment join all pay per level).
//  * WideFanoutGenerator — huge sibling lists. Thousands of same-tag
//    siblings share a single sid, so one (term, sid) ERPL packs
//    thousands of positions per document — the position-intersection
//    stress case for Merge and for block skipping later.
//  * ZipfSkewGenerator — heavily skewed tag/term distributions. A steep
//    Zipf theta plus always-on hot terms produce a few enormous posting
//    lists next to a dust of tiny ones: TA's threshold convergence and
//    the advisor's per-unit cost estimates both live or die on this
//    shape.
//  * NearDuplicateGenerator — clusters of near-identical documents. A
//    small set of prototypes is re-emitted with a low token mutation
//    rate; structure is shared exactly (summary dedup) and text almost
//    exactly (score ties, cache-ability of results).
//
// All four are deterministic from (options, docid) via DocumentRng —
// same contract as the friendly generators, asserted byte-for-byte in
// corpus_test/adversarial_corpus_test.
#ifndef TREX_CORPUS_ADVERSARIAL_H_
#define TREX_CORPUS_ADVERSARIAL_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/vocabulary.h"

namespace trex {

// ---------------------------------------------------------------------
// Deep recursion.

struct DeepRecursionOptions {
  uint64_t seed = 101;
  size_t num_documents = 120;
  // Nesting depth of the spine, drawn uniformly per document. Depths
  // are capped well below thread stack limits: ingestion is iterative,
  // but DOM teardown (unique_ptr chains) and the strict containment
  // join recurse per level.
  size_t min_depth = 48;
  size_t max_depth = 192;
  // The spine cycles through this many distinct tags (r0..r{n-1}), so
  // each depth level is a unique label path (one incoming-summary sid
  // per level) while tags repeat enough to defeat label-only pruning.
  size_t tag_cycle = 4;
  // Tokens of text emitted at every spine level.
  size_t tokens_per_level = 4;
  size_t vocabulary_size = 2000;
  double zipf_theta = 1.0;
  std::vector<PlantedTerm> planted;  // Empty -> defaults below.
};

// Hot terms planted along the spine so every level's extent scores.
std::vector<PlantedTerm> DefaultDeepPlantedTerms();

constexpr uint64_t kDeepStreamTag = 0xdee9;

class DeepRecursionGenerator : public DocumentGenerator {
 public:
  explicit DeepRecursionGenerator(DeepRecursionOptions options);

  std::string Generate(DocId docid) const override;
  size_t num_documents() const override { return options_.num_documents; }
  const DeepRecursionOptions& options() const { return options_; }

 private:
  DeepRecursionOptions options_;
  Vocabulary vocab_;
};

// ---------------------------------------------------------------------
// Huge fan-out.

struct WideFanoutOptions {
  uint64_t seed = 102;
  size_t num_documents = 60;
  // Sibling <item> count per document, drawn uniformly.
  size_t min_children = 400;
  size_t max_children = 1200;
  // Tokens per item (short, so the list length dominates).
  size_t tokens_per_item = 6;
  size_t vocabulary_size = 3000;
  double zipf_theta = 1.0;
  std::vector<PlantedTerm> planted;  // Empty -> defaults below.
};

std::vector<PlantedTerm> DefaultFanoutPlantedTerms();

constexpr uint64_t kFanoutStreamTag = 0xfa40;

class WideFanoutGenerator : public DocumentGenerator {
 public:
  explicit WideFanoutGenerator(WideFanoutOptions options);

  std::string Generate(DocId docid) const override;
  size_t num_documents() const override { return options_.num_documents; }
  const WideFanoutOptions& options() const { return options_; }

 private:
  WideFanoutOptions options_;
  Vocabulary vocab_;
};

// ---------------------------------------------------------------------
// Skewed tag/term Zipf.

struct ZipfSkewOptions {
  uint64_t seed = 103;
  size_t num_documents = 300;
  // Background term skew. theta ~1.0 is natural text; 1.4 concentrates
  // roughly half of all tokens on a handful of head words.
  double term_theta = 1.4;
  // Section tags are drawn from a Zipf over this many labels with the
  // same theta: a couple of tags own nearly all extents.
  size_t tag_alphabet = 24;
  size_t min_sections = 4;
  size_t max_sections = 12;
  size_t tokens_per_section_min = 20;
  size_t tokens_per_section_max = 60;
  size_t vocabulary_size = 4000;
  std::vector<PlantedTerm> planted;  // Empty -> defaults below.
};

// Hot terms with near-1.0 document probability (every list is huge)
// next to deliberately rare ones (TA threshold stress: a rare term in
// conjunction with a hot one).
std::vector<PlantedTerm> DefaultSkewPlantedTerms();

constexpr uint64_t kSkewStreamTag = 0x5e3f;

class ZipfSkewGenerator : public DocumentGenerator {
 public:
  explicit ZipfSkewGenerator(ZipfSkewOptions options);

  std::string Generate(DocId docid) const override;
  size_t num_documents() const override { return options_.num_documents; }
  const ZipfSkewOptions& options() const { return options_; }

 private:
  ZipfSkewOptions options_;
  Vocabulary vocab_;
  ZipfSampler tag_sampler_;
};

// ---------------------------------------------------------------------
// Near-duplicate documents.

struct NearDuplicateOptions {
  uint64_t seed = 104;
  size_t num_documents = 200;
  // Distinct prototype documents; docid d clones prototype d % n.
  size_t num_prototypes = 8;
  // Per-token probability that a clone replaces a prototype token with
  // a fresh background word. 0 would make clones byte-identical.
  double mutation_rate = 0.02;
  size_t sections_per_doc = 5;
  size_t tokens_per_section = 40;
  size_t vocabulary_size = 3000;
  double zipf_theta = 1.0;
  std::vector<PlantedTerm> planted;  // Empty -> defaults below.
};

std::vector<PlantedTerm> DefaultNearDupPlantedTerms();

constexpr uint64_t kNearDupStreamTag = 0xd09e;

class NearDuplicateGenerator : public DocumentGenerator {
 public:
  explicit NearDuplicateGenerator(NearDuplicateOptions options);

  std::string Generate(DocId docid) const override;
  size_t num_documents() const override { return options_.num_documents; }
  const NearDuplicateOptions& options() const { return options_; }

  // The prototype a docid clones (exposed so tests can measure
  // clone-vs-prototype token overlap).
  size_t PrototypeFor(DocId docid) const {
    return static_cast<size_t>(docid) % options_.num_prototypes;
  }

 private:
  // The prototype's token stream, regenerated deterministically.
  std::vector<std::string> PrototypeTokens(size_t prototype,
                                           size_t section) const;

  NearDuplicateOptions options_;
  Vocabulary vocab_;
};

}  // namespace trex

#endif  // TREX_CORPUS_ADVERSARIAL_H_
