// Query-workload zoo (ROADMAP item 5): named, seedable NEXI query
// streams paired with corpora into benchmark scenarios.
//
// Every future optimization is validated across this zoo rather than
// one friendly distribution: a stream is a deterministic sequence of
// (nexi, k) pairs whose *shape* stresses one subsystem —
//
//   phrase_heavy    mostly quoted phrases (multi-term conjunctions
//                   after phrase decomposition; wide TA frontiers);
//   negation_heavy  one positive term plus several '-' excluded terms
//                   (negative weights, Q292-style "few answers under
//                   big lists");
//   hot_key         a small query pool sampled with Zipf skew — the
//                   cacheable stream (hot (nexi, k) repeats dominate;
//                   the workload sketch and any result cache to come
//                   should converge on the head);
//   shifting_topic  topic A's pool before a changepoint, topic B's
//                   after — the adaptation stream bench_workload_shift
//                   drives the advisor with.
//
// A ScenarioSpec binds one adversarial corpus generator to one stream
// under a stable name ("skew_hotkey", ...); ScenarioTable() is the
// source of truth bench_suite --scenario=<name>, the committed
// bench/BENCH_baseline_<name>.json files and scripts/check.sh --zoo all
// key off. See DESIGN.md §13 for the naming scheme and how to add one.
#ifndef TREX_CORPUS_WORKLOAD_ZOO_H_
#define TREX_CORPUS_WORKLOAD_ZOO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/corpus.h"

namespace trex {

struct ZooQuery {
  std::string nexi;
  size_t k = 10;

  friend bool operator==(const ZooQuery& a, const ZooQuery& b) {
    return a.nexi == b.nexi && a.k == b.k;
  }
};

// A deterministic stream of queries: same (options, seed) -> same
// sequence, independent of how many are drawn.
class QueryStream {
 public:
  virtual ~QueryStream() = default;
  virtual ZooQuery Next() = 0;
  virtual const char* name() const = 0;

  // Convenience: the next n queries.
  std::vector<ZooQuery> Take(size_t n) {
    std::vector<ZooQuery> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }
};

// What a stream needs to know about the corpus it runs against: which
// tags exist and which planted terms are hot/cold. Background words are
// Vocabulary ranks (shared with the generators, so they really occur).
struct StreamProfile {
  std::vector<std::string> tags;        // Tag tests to target.
  std::vector<std::string> hot_terms;   // Frequent planted terms.
  std::vector<std::string> cold_terms;  // Rare planted terms.
  // Background words are WordForRank(r) for r in [0, background_ranks).
  size_t background_ranks = 40;
};

// Profiles matching the four adversarial generators' default options.
StreamProfile DeepRecursionProfile();
StreamProfile WideFanoutProfile();
StreamProfile ZipfSkewProfile();
StreamProfile NearDuplicateProfile();

// ---------------------------------------------------------------------
// Streams.

struct PhraseHeavyOptions {
  double phrase_fraction = 0.8;  // P(term is a quoted phrase).
  size_t min_terms = 1, max_terms = 3;
};

class PhraseHeavyStream : public QueryStream {
 public:
  PhraseHeavyStream(StreamProfile profile, uint64_t seed,
                    PhraseHeavyOptions options = {});
  ZooQuery Next() override;
  const char* name() const override { return "phrase_heavy"; }

 private:
  StreamProfile profile_;
  PhraseHeavyOptions options_;
  Rng rng_;
};

struct NegationHeavyOptions {
  size_t min_negated = 2, max_negated = 4;
};

class NegationHeavyStream : public QueryStream {
 public:
  NegationHeavyStream(StreamProfile profile, uint64_t seed,
                      NegationHeavyOptions options = {});
  ZooQuery Next() override;
  const char* name() const override { return "negation_heavy"; }

 private:
  StreamProfile profile_;
  NegationHeavyOptions options_;
  Rng rng_;
};

struct HotKeyOptions {
  size_t pool_size = 12;  // Distinct (nexi, k) pairs.
  double theta = 1.2;     // Zipf skew over the pool.
};

class HotKeyStream : public QueryStream {
 public:
  HotKeyStream(StreamProfile profile, uint64_t seed,
               HotKeyOptions options = {});
  ZooQuery Next() override;
  const char* name() const override { return "hot_key"; }

  // The fixed pool, rank 0 hottest (tests assert the observed top-1
  // frequency matches the Zipf head).
  const std::vector<ZooQuery>& pool() const { return pool_; }

 private:
  StreamProfile profile_;
  std::vector<ZooQuery> pool_;
  ZipfSampler sampler_;
  Rng rng_;
};

struct ShiftingTopicOptions {
  size_t changepoint = 64;   // Queries before the topic flips.
  size_t pool_per_topic = 4; // Distinct queries per topic.
};

class ShiftingTopicStream : public QueryStream {
 public:
  // Topic A draws from the profile's hot terms, topic B from its cold
  // terms, so the shift moves the workload onto different posting
  // lists (what the advisor has to chase).
  ShiftingTopicStream(StreamProfile profile, uint64_t seed,
                      ShiftingTopicOptions options = {});
  ZooQuery Next() override;
  const char* name() const override { return "shifting_topic"; }

  size_t changepoint() const { return options_.changepoint; }
  size_t position() const { return position_; }
  const std::vector<ZooQuery>& topic_a() const { return topic_a_; }
  const std::vector<ZooQuery>& topic_b() const { return topic_b_; }

 private:
  StreamProfile profile_;
  ShiftingTopicOptions options_;
  std::vector<ZooQuery> topic_a_, topic_b_;
  Rng rng_;
  size_t position_ = 0;
};

// ---------------------------------------------------------------------
// Scenario table.

struct ScenarioSpec {
  std::string name;    // "deep_phrase", "skew_hotkey", ...
  std::string corpus;  // Generator family name.
  std::string stream;  // Stream family name.
  // Builds the corpus generator (seed fixed by the scenario; docs
  // scales the corpus the way bench knobs do).
  std::function<std::unique_ptr<DocumentGenerator>(size_t num_documents)>
      make_corpus;
  std::function<std::unique_ptr<QueryStream>(uint64_t seed)> make_stream;
};

// All eight named scenarios: each adversarial corpus appears twice,
// each stream appears twice.
const std::vector<ScenarioSpec>& ScenarioTable();

// Null when `name` is not in the table.
const ScenarioSpec* FindScenario(const std::string& name);

}  // namespace trex

#endif  // TREX_CORPUS_WORKLOAD_ZOO_H_
