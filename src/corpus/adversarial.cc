#include "corpus/adversarial.h"

#include <algorithm>

#include "xml/writer.h"

namespace trex {

// ---------------------------------------------------------------------
// Deep recursion.

std::vector<PlantedTerm> DefaultDeepPlantedTerms() {
  // "spire" rides most documents so deep towers of extents all contain
  // it; "bedrock" is rare, forcing conjunctions to walk the tower.
  return {
      {"spire", 0.80, 0.05},
      {"ladder", 0.30, 0.03},
      {"bedrock", 0.04, 0.04},
  };
}

DeepRecursionGenerator::DeepRecursionGenerator(DeepRecursionOptions options)
    : options_(std::move(options)),
      vocab_(options_.vocabulary_size, options_.zipf_theta) {
  if (options_.planted.empty()) {
    options_.planted = DefaultDeepPlantedTerms();
  }
  if (options_.min_depth < 1) options_.min_depth = 1;
  if (options_.max_depth < options_.min_depth) {
    options_.max_depth = options_.min_depth;
  }
  if (options_.tag_cycle < 1) options_.tag_cycle = 1;
}

std::string DeepRecursionGenerator::Generate(DocId docid) const {
  Rng rng = DocumentRng(options_.seed, kDeepStreamTag, docid);
  std::vector<const PlantedTerm*> topics;
  for (const PlantedTerm& t : options_.planted) {
    if (rng.Bernoulli(t.doc_probability)) topics.push_back(&t);
  }
  const size_t depth = static_cast<size_t>(
      rng.UniformRange(options_.min_depth, options_.max_depth));

  XmlWriter w;
  w.StartElement("doc");
  w.Attribute("id", "d" + std::to_string(docid));
  // The spine: r0/r1/../r{c-1}/r0/.. — every level is a new label path
  // (new incoming-summary sid) even though only tag_cycle distinct tags
  // exist. Text at every level means every ancestor extent scores.
  for (size_t level = 0; level < depth; ++level) {
    w.StartElement("r" + std::to_string(level % options_.tag_cycle));
    w.Text(GenerateText(vocab_, topics, options_.tokens_per_level, &rng));
  }
  // A leaf marker at the bottom of the tower (queries can target it).
  w.StartElement("leaf");
  w.Text(GenerateText(vocab_, topics,
                      std::max<size_t>(options_.tokens_per_level, 8), &rng));
  w.EndElement();
  for (size_t level = 0; level < depth; ++level) w.EndElement();
  w.EndElement();  // doc
  return w.Finish();
}

// ---------------------------------------------------------------------
// Huge fan-out.

std::vector<PlantedTerm> DefaultFanoutPlantedTerms() {
  // "ribbon" appears in many items of many documents: the (ribbon,
  // item-sid) ERPL carries thousands of positions per document.
  return {
      {"ribbon", 0.70, 0.08},
      {"spoke", 0.40, 0.05},
      {"cotter", 0.05, 0.05},
  };
}

WideFanoutGenerator::WideFanoutGenerator(WideFanoutOptions options)
    : options_(std::move(options)),
      vocab_(options_.vocabulary_size, options_.zipf_theta) {
  if (options_.planted.empty()) {
    options_.planted = DefaultFanoutPlantedTerms();
  }
  if (options_.min_children < 1) options_.min_children = 1;
  if (options_.max_children < options_.min_children) {
    options_.max_children = options_.min_children;
  }
}

std::string WideFanoutGenerator::Generate(DocId docid) const {
  Rng rng = DocumentRng(options_.seed, kFanoutStreamTag, docid);
  std::vector<const PlantedTerm*> topics;
  for (const PlantedTerm& t : options_.planted) {
    if (rng.Bernoulli(t.doc_probability)) topics.push_back(&t);
  }
  const size_t children = static_cast<size_t>(
      rng.UniformRange(options_.min_children, options_.max_children));

  XmlWriter w;
  w.StartElement("doc");
  w.Attribute("id", "f" + std::to_string(docid));
  w.StartElement("title");
  w.Text(GenerateText(vocab_, topics, 4, &rng));
  w.EndElement();
  // One flat list: every <item> shares the same label path, i.e. one
  // sid owns `children` sibling extents per document.
  w.StartElement("list");
  for (size_t c = 0; c < children; ++c) {
    w.StartElement("item");
    w.Text(GenerateText(vocab_, topics, options_.tokens_per_item, &rng));
    w.EndElement();
  }
  w.EndElement();  // list
  w.EndElement();  // doc
  return w.Finish();
}

// ---------------------------------------------------------------------
// Skewed tag/term Zipf.

std::vector<PlantedTerm> DefaultSkewPlantedTerms() {
  return {
      {"magma", 0.90, 0.06},   // Hot: nearly every document, huge list.
      {"basalt", 0.85, 0.04},  // Hot.
      {"geyser", 0.25, 0.03},  // Warm.
      {"fumarole", 0.02, 0.05} // Cold: conjunction partner for TA.
  };
}

ZipfSkewGenerator::ZipfSkewGenerator(ZipfSkewOptions options)
    : options_(std::move(options)),
      vocab_(options_.vocabulary_size, options_.term_theta),
      tag_sampler_(std::max<size_t>(options_.tag_alphabet, 1),
                   options_.term_theta) {
  if (options_.planted.empty()) {
    options_.planted = DefaultSkewPlantedTerms();
  }
  if (options_.min_sections < 1) options_.min_sections = 1;
  if (options_.max_sections < options_.min_sections) {
    options_.max_sections = options_.min_sections;
  }
}

std::string ZipfSkewGenerator::Generate(DocId docid) const {
  Rng rng = DocumentRng(options_.seed, kSkewStreamTag, docid);
  std::vector<const PlantedTerm*> topics;
  for (const PlantedTerm& t : options_.planted) {
    if (rng.Bernoulli(t.doc_probability)) topics.push_back(&t);
  }
  const size_t sections = static_cast<size_t>(
      rng.UniformRange(options_.min_sections, options_.max_sections));

  XmlWriter w;
  w.StartElement("doc");
  w.Attribute("id", "s" + std::to_string(docid));
  w.StartElement("head");
  w.Text(GenerateText(vocab_, topics, 5, &rng));
  w.EndElement();
  for (size_t s = 0; s < sections; ++s) {
    // Zipf-ranked tag: t0 owns most extents, the tail almost none.
    const std::string tag = "t" + std::to_string(tag_sampler_.Sample(&rng));
    w.StartElement(tag);
    const size_t tokens = static_cast<size_t>(rng.UniformRange(
        options_.tokens_per_section_min, options_.tokens_per_section_max));
    w.Text(GenerateText(vocab_, topics, tokens, &rng));
    w.EndElement();
  }
  w.EndElement();  // doc
  return w.Finish();
}

// ---------------------------------------------------------------------
// Near-duplicate documents.

std::vector<PlantedTerm> DefaultNearDupPlantedTerms() {
  return {
      {"stencil", 0.60, 0.04},
      {"carbon", 0.40, 0.04},
      {"vellum", 0.08, 0.04},
  };
}

NearDuplicateGenerator::NearDuplicateGenerator(NearDuplicateOptions options)
    : options_(std::move(options)),
      vocab_(options_.vocabulary_size, options_.zipf_theta) {
  if (options_.planted.empty()) {
    options_.planted = DefaultNearDupPlantedTerms();
  }
  if (options_.num_prototypes < 1) options_.num_prototypes = 1;
  if (options_.sections_per_doc < 1) options_.sections_per_doc = 1;
}

std::vector<std::string> NearDuplicateGenerator::PrototypeTokens(
    size_t prototype, size_t section) const {
  // The prototype stream is its own RNG lineage, keyed by (prototype,
  // section) rather than docid, so every clone regenerates the exact
  // same base text without storing it.
  Rng rng = DocumentRng(options_.seed, kNearDupStreamTag + 1,
                        static_cast<DocId>(prototype * 1000 + section));
  std::vector<const PlantedTerm*> topics;
  for (const PlantedTerm& t : options_.planted) {
    if (rng.Bernoulli(t.doc_probability)) topics.push_back(&t);
  }
  std::vector<std::string> tokens;
  tokens.reserve(options_.tokens_per_section);
  for (size_t i = 0; i < options_.tokens_per_section; ++i) {
    const std::string* word = nullptr;
    for (const PlantedTerm* t : topics) {
      if (rng.Bernoulli(t->token_probability)) {
        word = &t->word;
        break;
      }
    }
    if (word == nullptr) word = &vocab_.SampleWord(&rng);
    tokens.push_back(*word);
  }
  return tokens;
}

std::string NearDuplicateGenerator::Generate(DocId docid) const {
  const size_t prototype = PrototypeFor(docid);
  // The clone's own stream only drives mutations, so two clones of one
  // prototype differ from it (and from each other) in ~mutation_rate of
  // their tokens and nothing else.
  Rng rng = DocumentRng(options_.seed, kNearDupStreamTag, docid);

  XmlWriter w;
  w.StartElement("doc");
  w.Attribute("id", "n" + std::to_string(docid));
  w.Attribute("proto", "p" + std::to_string(prototype));
  for (size_t s = 0; s < options_.sections_per_doc; ++s) {
    w.StartElement("sec");
    std::vector<std::string> tokens = PrototypeTokens(prototype, s);
    std::string text;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i > 0) text.push_back(' ');
      if (rng.Bernoulli(options_.mutation_rate)) {
        text += vocab_.SampleWord(&rng);
      } else {
        text += tokens[i];
      }
    }
    w.Text(text);
    w.EndElement();
  }
  w.EndElement();  // doc
  return w.Finish();
}

}  // namespace trex
