// Synthetic vocabulary with Zipfian term frequencies and planted topic
// terms.
//
// The INEX IEEE and Wikipedia collections are not redistributable, so the
// generators synthesize text whose *statistics* drive the same retrieval
// behaviour (see DESIGN.md, substitution 1): background words follow a
// Zipf distribution; a configurable set of planted terms (the paper's
// query keywords) appears in topic-coherent bursts with controlled
// document- and token-level probabilities, which controls posting-list
// and RPL/ERPL sizes — the quantities the §5 experiments pivot on.
#ifndef TREX_CORPUS_VOCABULARY_H_
#define TREX_CORPUS_VOCABULARY_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace trex {

// A topic keyword planted into generated text.
struct PlantedTerm {
  std::string word;
  // Probability that a given document is "about" this term's topic.
  double doc_probability = 0.05;
  // Within an on-topic document, probability that any generated token is
  // this word.
  double token_probability = 0.02;
};

class Vocabulary {
 public:
  Vocabulary(size_t size, double zipf_theta);

  // Deterministic pseudo-word for a frequency rank (distinct per rank,
  // pronounceable syllables, never a stopword).
  static std::string WordForRank(size_t rank);

  // Samples a background word with Zipfian rank frequency.
  const std::string& SampleWord(Rng* rng) const;

  size_t size() const { return words_.size(); }
  const std::string& word(size_t rank) const { return words_[rank]; }

 private:
  std::vector<std::string> words_;
  ZipfSampler sampler_;
};

// Generates one paragraph of `num_tokens` words: background Zipf words
// interleaved with the active planted terms.
std::string GenerateText(const Vocabulary& vocab,
                         const std::vector<const PlantedTerm*>& active_terms,
                         size_t num_tokens, Rng* rng);

}  // namespace trex

#endif  // TREX_CORPUS_VOCABULARY_H_
