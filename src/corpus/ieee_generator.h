// IEEE-like collection generator.
//
// Mimics the structural shape of the INEX IEEE collection the paper
// evaluates on: journals containing articles with front matter, a body of
// (possibly nested) sections under synonymous tags sec/ss1/ss2, paragraph
// tags p/ip1, figures, and back matter. With the IeeeAliasMap applied,
// the alias incoming summary collapses the section synonyms exactly as in
// Figure 1 of the paper.
//
// The default planted terms are the keywords of the five IEEE queries in
// Table 1 (Q202, Q203, Q233, Q260, Q270), with document/token
// probabilities chosen to reproduce the relative posting-list volumes
// those queries exhibit (rare "synthesizers" vs frequent "information").
#ifndef TREX_CORPUS_IEEE_GENERATOR_H_
#define TREX_CORPUS_IEEE_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/vocabulary.h"

namespace trex {

struct IeeeGeneratorOptions {
  uint64_t seed = 42;
  size_t num_documents = 300;
  size_t vocabulary_size = 8000;
  double zipf_theta = 1.0;
  // Scales every document's size (sections/paragraphs/words).
  double size_factor = 1.0;
  std::vector<PlantedTerm> planted;  // Empty -> DefaultIeeePlantedTerms().
};

std::vector<PlantedTerm> DefaultIeeePlantedTerms();

// DocumentRng stream tag for the IEEE family (see corpus.h).
constexpr uint64_t kIeeeStreamTag = 0x1ee3;

class IeeeGenerator : public DocumentGenerator {
 public:
  explicit IeeeGenerator(IeeeGeneratorOptions options);

  std::string Generate(DocId docid) const override;
  size_t num_documents() const override { return options_.num_documents; }

 private:
  IeeeGeneratorOptions options_;
  Vocabulary vocab_;
};

}  // namespace trex

#endif  // TREX_CORPUS_IEEE_GENERATOR_H_
