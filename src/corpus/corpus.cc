#include "corpus/corpus.h"

#include <cstdio>

#include "storage/env.h"

namespace trex {

std::string Corpus::DocumentFileName(DocId docid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "doc%06u.xml", docid);
  return buf;
}

Status WriteCorpusToDir(const DocumentGenerator& generator,
                        const std::string& dir) {
  TREX_RETURN_IF_ERROR(Env::CreateDir(dir));
  const size_t n = generator.num_documents();
  for (size_t i = 0; i < n; ++i) {
    DocId docid = static_cast<DocId>(i);
    TREX_RETURN_IF_ERROR(Env::WriteStringToFile(
        dir + "/" + Corpus::DocumentFileName(docid),
        generator.Generate(docid)));
  }
  return Env::WriteStringToFile(dir + "/corpus.txt",
                                "documents " + std::to_string(n) + "\n");
}

Result<Corpus> Corpus::Open(const std::string& dir) {
  auto manifest = Env::ReadFileToString(dir + "/corpus.txt");
  if (!manifest.ok()) return manifest.status();
  size_t n = 0;
  if (std::sscanf(manifest.value().c_str(), "documents %zu", &n) != 1) {
    return Status::Corruption(dir + "/corpus.txt is malformed");
  }
  return Corpus(dir, n);
}

Result<std::string> Corpus::ReadDocument(DocId docid) const {
  if (docid >= num_documents_) {
    return Status::InvalidArgument("docid out of range");
  }
  return Env::ReadFileToString(dir_ + "/" + DocumentFileName(docid));
}

}  // namespace trex
