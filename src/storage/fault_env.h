// Deterministic I/O fault injection for crash / corruption testing.
//
// FaultInjectingEnv wraps another Env (POSIX by default) and forwards
// every operation while counting it against a FaultPlan. All counters are
// global across the files opened through the env, so the Nth write of a
// whole index build is a well-defined, reproducible event regardless of
// which table file it lands in.
//
// Faults supported:
//   * fail_write_at      — the Nth write returns IOError, nothing written.
//   * torn_write_at      — only the first `torn_bytes` bytes of the Nth
//                          write reach disk; the simulated machine then
//                          loses power (all later mutations are dropped).
//   * flip_read_bit_at   — one bit of the Nth read's returned buffer is
//                          flipped (silent media corruption).
//   * fail_sync_at       — the Nth Sync() returns IOError.
//   * crash_after_writes — after K writes have been persisted, the
//                          simulated machine loses power: every later
//                          write / sync / rename / remove is silently
//                          dropped (returns OK, changes nothing on disk),
//                          which models a process that keeps running on a
//                          dead disk until the test "reboots" by swapping
//                          the real env back in.
//   * transient_read_at/_count — reads with global index in
//                          [at, at+count) fail with Status::Unavailable
//                          (a transient fault the pager retries); the
//                          data is untouched. `count` longer than the
//                          pager's retry cap exercises retry exhaustion.
//   * transient_read_every — every read whose global index is a multiple
//                          of N fails with Unavailable, but each distinct
//                          (file, offset) location fails at most once: a
//                          retry of the same read always succeeds. This
//                          is the chaos-schedule mode — with retry
//                          enabled, no query ever surfaces Unavailable.
//   * slow_read_every/_micros — every Nth read additionally stalls for
//                          `slow_read_micros` (a degraded device; drives
//                          the deadline-enforcement tests).
//
// Typical use (tests, index_doctor --inject):
//   FaultInjectingEnv fenv;               // wraps PosixEnv()
//   fenv.plan().crash_after_writes = 42;
//   Env* prev = Env::Swap(&fenv);
//   ... build / update an index; writes past #42 vanish ...
//   Env::Swap(prev);                      // "reboot"
//   ... reopen with recovery and check invariants ...
#ifndef TREX_STORAGE_FAULT_ENV_H_
#define TREX_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "storage/env.h"

namespace trex {

struct FaultPlan {
  static constexpr int64_t kNever = -1;

  int64_t fail_write_at = kNever;       // 0-based global write index.
  int64_t torn_write_at = kNever;       // 0-based global write index.
  size_t torn_bytes = 512;              // Prefix that survives a torn write.
  int64_t flip_read_bit_at = kNever;    // 0-based global read index.
  int64_t fail_sync_at = kNever;        // 0-based global sync index.
  int64_t crash_after_writes = kNever;  // Writes persisted before power loss.
  // Transient read faults (Status::Unavailable; the pager retries).
  int64_t transient_read_at = kNever;   // First failing global read index.
  int64_t transient_read_count = 1;     // Consecutive failures from there.
  int64_t transient_read_every = kNever;  // Every Nth read, once per location.
  // Slow I/O: every Nth read stalls for `slow_read_micros`.
  int64_t slow_read_every = kNever;
  int64_t slow_read_micros = 0;
};

// One intercepted operation, in global order. Tests use the log to assert
// ordering protocols (e.g. data writes sync before the header publishes).
struct FaultOp {
  enum class Kind { kWrite, kRead, kSync, kRename, kRemove };
  Kind kind;
  std::string path;
  uint64_t offset = 0;  // kWrite/kRead only.
  size_t length = 0;    // kWrite/kRead only.
  bool dropped = false; // True when the simulated crash swallowed it.
};

class FaultInjectingEnv : public Env {
 public:
  // Wraps `base` (PosixEnv() when null) with an initially empty plan.
  explicit FaultInjectingEnv(Env* base = nullptr);

  Result<std::unique_ptr<RandomAccessFile>> NewFile(
      const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status MakeDirs(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;

  FaultPlan& plan() { return plan_; }
  const FaultPlan& plan() const { return plan_; }

  uint64_t writes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_;
  }
  uint64_t reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_;
  }
  uint64_t syncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_;
  }
  // True once a torn write or crash point has "cut the power".
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }

  // Snapshot of the op log. (A copy: concurrent I/O may still be
  // appending; tests that inspect the log usually quiesce first anyway.)
  std::vector<FaultOp> log() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_;
  }
  // When false (default), operations are counted but not logged.
  void set_keep_log(bool keep) {
    std::lock_guard<std::mutex> lock(mu_);
    keep_log_ = keep;
  }

  // Clears counters, the op log and the crashed flag (plan unchanged).
  void Reset();

 private:
  friend class FaultInjectingFile;

  void Record(FaultOp::Kind kind, const std::string& path, uint64_t offset,
              size_t length, bool dropped);

  // Fault hooks used by FaultInjectingFile.
  Status OnWrite(RandomAccessFile* base, const std::string& path,
                 uint64_t offset, const char* data, size_t n);
  Status OnRead(RandomAccessFile* base, const std::string& path,
                uint64_t offset, size_t n, char* scratch);
  Status OnSync(RandomAccessFile* base, const std::string& path);

  Env* base_;
  FaultPlan plan_;
  // Serializes the fault hooks: op indexes stay globally ordered and the
  // log/counters are safe to use from concurrent reader threads.
  mutable std::mutex mu_;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
  uint64_t syncs_ = 0;
  bool crashed_ = false;
  bool keep_log_ = false;
  std::vector<FaultOp> log_;
  // Locations ("path:offset") that already served a transient failure;
  // transient_read_every never fails the same location twice.
  std::unordered_set<std::string> transient_failed_;
  // storage.fault.* metrics.
  obs::Counter* m_write_failures_;
  obs::Counter* m_torn_writes_;
  obs::Counter* m_bit_flips_;
  obs::Counter* m_sync_failures_;
  obs::Counter* m_dropped_ops_;
  obs::Counter* m_transient_failures_;
  obs::Counter* m_slow_reads_;
};

// File handle that routes every operation through its owning env's fault
// hooks. Size() is served from the base file (a crashed env still reports
// whatever actually reached disk).
class FaultInjectingFile : public RandomAccessFile {
 public:
  FaultInjectingFile(FaultInjectingEnv* env, std::string path,
                     std::unique_ptr<RandomAccessFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* scratch) override {
    return env_->OnRead(base_.get(), path_, offset, n, scratch);
  }
  Status Write(uint64_t offset, const char* data, size_t n) override {
    return env_->OnWrite(base_.get(), path_, offset, data, n);
  }
  Status Sync() override { return env_->OnSync(base_.get(), path_); }
  Status Size(uint64_t* size) override { return base_->Size(size); }

 private:
  FaultInjectingEnv* env_;
  std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

}  // namespace trex

#endif  // TREX_STORAGE_FAULT_ENV_H_
