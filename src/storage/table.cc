#include "storage/table.h"

#include <cstring>

#include "storage/env.h"

namespace trex {

Result<std::unique_ptr<Table>> Table::Open(const std::string& dir,
                                           const std::string& name,
                                           size_t cache_pages) {
  TREX_RETURN_IF_ERROR(Env::CreateDir(dir));
  auto tree = BPTree::Open(dir + "/" + name + ".tbl", cache_pages);
  if (!tree.ok()) return tree.status();
  return std::unique_ptr<Table>(new Table(name, std::move(tree).value()));
}

Status AppendTokenComponent(std::string* dst, const Slice& token) {
  if (std::memchr(token.data(), '\0', token.size()) != nullptr) {
    return Status::InvalidArgument("token contains a NUL byte");
  }
  dst->append(token.data(), token.size());
  dst->push_back('\0');
  return Status::OK();
}

bool GetTokenComponent(Slice* input, Slice* token) {
  const void* nul = std::memchr(input->data(), '\0', input->size());
  if (nul == nullptr) return false;
  size_t len = static_cast<const char*>(nul) - input->data();
  *token = Slice(input->data(), len);
  input->RemovePrefix(len + 1);
  return true;
}

}  // namespace trex
