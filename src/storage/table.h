// Table: a named B+-tree inside a database directory.
//
// TReX stores each of the paper's four tables (Elements, PostingLists,
// RPLs, ERPLs) as one Table = one B+-tree file, mirroring the paper's
// "indexed tables stored in BerkeleyDB" setup. The key codecs that give
// each table its primary-key order live with the table definitions in
// src/index; this layer only provides ordered byte-string storage plus a
// helper for embedding tokens into composite keys.
#ifndef TREX_STORAGE_TABLE_H_
#define TREX_STORAGE_TABLE_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/bptree.h"

namespace trex {

class Table {
 public:
  // Opens (creating if needed) table `name` in directory `dir`.
  static Result<std::unique_ptr<Table>> Open(const std::string& dir,
                                             const std::string& name,
                                             size_t cache_pages = 1024);

  const std::string& name() const { return name_; }
  BPTree* tree() { return tree_.get(); }

  Status Put(const Slice& key, const Slice& value) {
    return tree_->Put(key, value);
  }
  Status Get(const Slice& key, std::string* value) {
    return tree_->Get(key, value);
  }
  Status Delete(const Slice& key) { return tree_->Delete(key); }
  Status Flush() { return tree_->Flush(); }

  uint64_t row_count() const { return tree_->row_count(); }
  uint64_t SizeBytes() const { return tree_->SizeBytes(); }

  BPTree::Iterator NewIterator() { return BPTree::Iterator(tree_.get()); }

 private:
  Table(std::string name, std::unique_ptr<BPTree> tree)
      : name_(std::move(name)), tree_(std::move(tree)) {}

  std::string name_;
  std::unique_ptr<BPTree> tree_;
};

// Appends `token` + a 0x00 terminator to `dst`. The terminator keeps
// composite keys prefix-free, so lexicographic key order equals
// (token, rest-of-key) order. Fails if the token contains a 0x00 byte
// (the tokenizer never produces one).
Status AppendTokenComponent(std::string* dst, const Slice& token);

// Reads a token component (up to the 0x00) from `input`, advancing it.
bool GetTokenComponent(Slice* input, Slice* token);

}  // namespace trex

#endif  // TREX_STORAGE_TABLE_H_
