#include "storage/pager.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace trex {

namespace {
constexpr uint32_t kMagic = 0x54524558;  // "TREX"
constexpr size_t kHeaderMagicOff = 0;
constexpr size_t kHeaderPageCountOff = 4;
constexpr size_t kHeaderFreelistOff = 8;
constexpr size_t kHeaderRootOff = 12;
constexpr size_t kHeaderRowCountOff = 16;
}  // namespace

Pager::Pager(std::unique_ptr<RandomAccessFile> file)
    : file_(std::move(file)) {
  obs::MetricsRegistry& reg = obs::Default();
  m_page_reads_ = reg.GetCounter("storage.pager.page_reads");
  m_page_writes_ = reg.GetCounter("storage.pager.page_writes");
  m_bytes_read_ = reg.GetCounter("storage.pager.bytes_read");
  m_bytes_written_ = reg.GetCounter("storage.pager.bytes_written");
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  auto file = Env::OpenFile(path);
  if (!file.ok()) return file.status();
  std::unique_ptr<Pager> pager(new Pager(std::move(file).value()));

  uint64_t size = 0;
  TREX_RETURN_IF_ERROR(pager->file_->Size(&size));
  if (size == 0) {
    TREX_RETURN_IF_ERROR(pager->WriteHeader());
  } else {
    if (size % kPageSize != 0) {
      return Status::Corruption(path + ": size is not a multiple of the page size");
    }
    TREX_RETURN_IF_ERROR(pager->ReadHeader());
    if (pager->page_count_ * static_cast<uint64_t>(kPageSize) != size) {
      return Status::Corruption(path + ": header page count disagrees with file size");
    }
  }
  return pager;
}

Status Pager::WriteHeader() {
  std::vector<char> buf(kPageSize, 0);
  std::memcpy(buf.data() + kHeaderMagicOff, &kMagic, 4);
  std::memcpy(buf.data() + kHeaderPageCountOff, &page_count_, 4);
  std::memcpy(buf.data() + kHeaderFreelistOff, &freelist_head_, 4);
  std::memcpy(buf.data() + kHeaderRootOff, &root_page_, 4);
  std::memcpy(buf.data() + kHeaderRowCountOff, &row_count_, 8);
  StampPageChecksum(buf.data());
  m_page_writes_->Add();
  m_bytes_written_->Add(kPageSize);
  return file_->Write(0, buf.data(), kPageSize);
}

Status Pager::ReadHeader() {
  std::vector<char> buf(kPageSize);
  TREX_RETURN_IF_ERROR(file_->Read(0, kPageSize, buf.data()));
  if (!VerifyPageChecksum(buf.data())) {
    return Status::Corruption("header page checksum mismatch");
  }
  uint32_t magic;
  std::memcpy(&magic, buf.data() + kHeaderMagicOff, 4);
  if (magic != kMagic) {
    return Status::Corruption("bad magic; not a TReX table file");
  }
  std::memcpy(&page_count_, buf.data() + kHeaderPageCountOff, 4);
  std::memcpy(&freelist_head_, buf.data() + kHeaderFreelistOff, 4);
  std::memcpy(&root_page_, buf.data() + kHeaderRootOff, 4);
  std::memcpy(&row_count_, buf.data() + kHeaderRowCountOff, 8);
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("ReadPage: page id " + std::to_string(id) +
                                   " out of range");
  }
  TREX_RETURN_IF_ERROR(
      file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf));
  m_page_reads_->Add();
  m_bytes_read_->Add(kPageSize);
  if (!VerifyPageChecksum(buf)) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, char* buf) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("WritePage: page id " + std::to_string(id) +
                                   " out of range");
  }
  StampPageChecksum(buf);
  m_page_writes_->Add();
  m_bytes_written_->Add(kPageSize);
  return file_->Write(static_cast<uint64_t>(id) * kPageSize, buf, kPageSize);
}

Result<PageId> Pager::AllocatePage() {
  if (freelist_head_ != kInvalidPageId) {
    PageId id = freelist_head_;
    std::vector<char> buf(kPageSize);
    TREX_RETURN_IF_ERROR(ReadPage(id, buf.data()));
    std::memcpy(&freelist_head_, buf.data(), 4);
    TREX_RETURN_IF_ERROR(WriteHeader());
    return id;
  }
  PageId id = page_count_;
  ++page_count_;
  std::vector<char> zero(kPageSize, 0);
  StampPageChecksum(zero.data());
  TREX_RETURN_IF_ERROR(
      file_->Write(static_cast<uint64_t>(id) * kPageSize, zero.data(),
                   kPageSize));
  TREX_RETURN_IF_ERROR(WriteHeader());
  return id;
}

Status Pager::FreePage(PageId id) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("FreePage: page id out of range");
  }
  std::vector<char> buf(kPageSize, 0);
  std::memcpy(buf.data(), &freelist_head_, 4);
  TREX_RETURN_IF_ERROR(WritePage(id, buf.data()));
  freelist_head_ = id;
  return WriteHeader();
}

Status Pager::SetRootPage(PageId id) {
  root_page_ = id;
  return WriteHeader();
}

Status Pager::SetRowCount(uint64_t n) {
  row_count_ = n;
  return WriteHeader();
}

Status Pager::Sync() { return file_->Sync(); }

}  // namespace trex
