#include "storage/pager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "obs/flight_recorder.h"
#include "obs/resource.h"

namespace trex {

namespace {
constexpr uint32_t kMagic = 0x54524558;  // "TREX"
constexpr uint32_t kFormatVersion = 2;   // v2 = dual header slots + epoch.
constexpr size_t kHeaderMagicOff = 0;
constexpr size_t kHeaderVersionOff = 4;
constexpr size_t kHeaderEpochOff = 8;
constexpr size_t kHeaderPageCountOff = 16;
constexpr size_t kHeaderRootOff = 20;
constexpr size_t kHeaderRowCountOff = 24;

// Transient-read retry policy: up to kMaxReadAttempts tries with capped
// exponential backoff and +-50% jitter, so a burst of concurrent retries
// against a briefly unavailable device spreads out instead of stampeding.
constexpr int kMaxReadAttempts = 4;
constexpr int64_t kRetryBaseMicros = 100;
constexpr int64_t kRetryMaxMicros = 2000;

int64_t RetryBackoffMicros(int attempt) {
  int64_t delay = kRetryBaseMicros << attempt;
  if (delay > kRetryMaxMicros) delay = kRetryMaxMicros;
  // Cheap thread-local xorshift for the jitter: no shared state, no
  // <random> machinery on what is already a failure path.
  thread_local uint64_t state =
      static_cast<uint64_t>(NowNanos()) ^
      (std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1);
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  // Uniform in [delay/2, 3*delay/2].
  return delay / 2 + static_cast<int64_t>(state % static_cast<uint64_t>(delay));
}
}  // namespace

Pager::Pager(std::unique_ptr<RandomAccessFile> file)
    : file_(std::move(file)) {
  obs::MetricsRegistry& reg = obs::Default();
  m_page_reads_ = reg.GetCounter("storage.pager.page_reads");
  m_page_writes_ = reg.GetCounter("storage.pager.page_writes");
  m_bytes_read_ = reg.GetCounter("storage.pager.bytes_read");
  m_bytes_written_ = reg.GetCounter("storage.pager.bytes_written");
  m_commits_ = reg.GetCounter("storage.pager.commits");
  m_retry_attempts_ = reg.GetCounter("storage.retry.attempts");
  m_retry_successes_ = reg.GetCounter("storage.retry.successes");
  m_retry_exhausted_ = reg.GetCounter("storage.retry.exhausted");
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  auto file = Env::OpenFile(path);
  if (!file.ok()) return file.status();
  std::unique_ptr<Pager> pager(new Pager(std::move(file).value()));

  uint64_t size = 0;
  TREX_RETURN_IF_ERROR(pager->file_->Size(&size));
  if (size == 0) {
    // Fresh file: seed slot 0 with epoch 0 so the file reopens before the
    // first Commit(). Durability starts with the first Commit().
    TREX_RETURN_IF_ERROR(pager->WriteHeaderSlot(0));
  } else {
    TREX_RETURN_IF_ERROR(pager->ReadHeaders(path, size));
  }
  return pager;
}

Status Pager::WriteHeaderSlot(uint64_t epoch) {
  const uint32_t page_count = page_count_.load(std::memory_order_acquire);
  const PageId root_page = root_page_.load(std::memory_order_acquire);
  const uint64_t row_count = row_count_.load(std::memory_order_acquire);
  std::vector<char> buf(kPageSize, 0);
  std::memcpy(buf.data() + kHeaderMagicOff, &kMagic, 4);
  std::memcpy(buf.data() + kHeaderVersionOff, &kFormatVersion, 4);
  std::memcpy(buf.data() + kHeaderEpochOff, &epoch, 8);
  std::memcpy(buf.data() + kHeaderPageCountOff, &page_count, 4);
  std::memcpy(buf.data() + kHeaderRootOff, &root_page, 4);
  std::memcpy(buf.data() + kHeaderRowCountOff, &row_count, 8);
  StampPageChecksum(buf.data());
  m_page_writes_->Add();
  m_bytes_written_->Add(kPageSize);
  const PageId slot = static_cast<PageId>(epoch % 2);
  return file_->Write(static_cast<uint64_t>(slot) * kPageSize, buf.data(),
                      kPageSize);
}

Status Pager::ReadHeaders(const std::string& path, uint64_t file_size) {
  // A slot is a candidate if its checksum, magic and version check out and
  // its page count fits the file; the newest epoch wins. A torn header
  // write invalidates at most the slot being replaced, so a committed
  // file always keeps one valid slot.
  bool found = false;
  std::vector<char> buf(kPageSize);
  for (PageId slot = 0; slot < kFirstDataPage; ++slot) {
    const uint64_t off = static_cast<uint64_t>(slot) * kPageSize;
    if (off + kPageSize > file_size) break;
    TREX_RETURN_IF_ERROR(file_->Read(off, kPageSize, buf.data()));
    if (!VerifyPageChecksum(buf.data())) continue;
    uint32_t magic, version;
    std::memcpy(&magic, buf.data() + kHeaderMagicOff, 4);
    std::memcpy(&version, buf.data() + kHeaderVersionOff, 4);
    if (magic != kMagic || version != kFormatVersion) continue;
    uint64_t epoch;
    uint32_t page_count;
    std::memcpy(&epoch, buf.data() + kHeaderEpochOff, 8);
    std::memcpy(&page_count, buf.data() + kHeaderPageCountOff, 4);
    if (page_count < kFirstDataPage) continue;
    // Committed data pages must all exist; an uncommitted (torn or
    // unsynced) tail past them is fine and simply ignored.
    if (page_count > kFirstDataPage &&
        static_cast<uint64_t>(page_count) * kPageSize > file_size) {
      continue;
    }
    if (found && epoch <= epoch_.load(std::memory_order_relaxed)) continue;
    found = true;
    PageId root_page;
    uint64_t row_count;
    std::memcpy(&root_page, buf.data() + kHeaderRootOff, 4);
    std::memcpy(&row_count, buf.data() + kHeaderRowCountOff, 8);
    // Open() runs before the pager is shared; relaxed stores suffice.
    epoch_.store(epoch, std::memory_order_relaxed);
    page_count_.store(page_count, std::memory_order_relaxed);
    root_page_.store(root_page, std::memory_order_relaxed);
    row_count_.store(row_count, std::memory_order_relaxed);
  }
  if (!found) {
    return Status::Corruption(path +
                              ": no valid header slot (not a TReX v2 table "
                              "file, or both headers corrupt)");
  }
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) {
  if (id < kFirstDataPage || id >= page_count()) {
    return Status::InvalidArgument("ReadPage: page id " + std::to_string(id) +
                                   " out of range");
  }
  Status read;
  for (int attempt = 0;; ++attempt) {
    read = file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf);
    if (!read.IsUnavailable()) {
      // The fast path falls through here on attempt 0 with no retry
      // bookkeeping at all; IOError and other permanent failures
      // propagate unretried.
      if (attempt > 0 && read.ok()) m_retry_successes_->Add();
      break;
    }
    m_retry_attempts_->Add();
    obs::FlightRecorder::Default().Record(
        obs::FlightKind::kRetry, "read_retry",
        "\"page\":" + std::to_string(id) +
            ",\"attempt\":" + std::to_string(attempt + 1));
    if (attempt + 1 >= kMaxReadAttempts) {
      m_retry_exhausted_->Add();
      obs::FlightRecorder::Default().Record(
          obs::FlightKind::kRetry, "read_retry_exhausted",
          "\"page\":" + std::to_string(id));
      break;
    }
    // Never burn backoff time a deadlined query no longer has: abort
    // with DeadlineExceeded instead of sleeping past it.
    if (obs::ResourceAccounting* acct = obs::ResourceAccounting::Current()) {
      TREX_RETURN_IF_ERROR(acct->CheckDeadline());
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(RetryBackoffMicros(attempt)));
  }
  TREX_RETURN_IF_ERROR(read);
  m_page_reads_->Add();
  m_bytes_read_->Add(kPageSize);
  if (!VerifyPageChecksum(buf)) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, char* buf) {
  if (id < kFirstDataPage || id >= page_count()) {
    return Status::InvalidArgument("WritePage: page id " + std::to_string(id) +
                                   " out of range");
  }
  StampPageChecksum(buf);
  m_page_writes_->Add();
  m_bytes_written_->Add(kPageSize);
  dirty_.store(true, std::memory_order_release);
  return file_->Write(static_cast<uint64_t>(id) * kPageSize, buf, kPageSize);
}

Result<PageId> Pager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = page_count_.load(std::memory_order_relaxed);
    std::vector<char> zero(kPageSize, 0);
    StampPageChecksum(zero.data());
    TREX_RETURN_IF_ERROR(file_->Write(static_cast<uint64_t>(id) * kPageSize,
                                      zero.data(), kPageSize));
    // Publish the grown bound only after the page exists on disk, so a
    // concurrent reader's bounds check never admits a page the file does
    // not contain.
    page_count_.store(id + 1, std::memory_order_release);
  }
  shadowed_.insert(id);
  dirty_.store(true, std::memory_order_release);
  return id;
}

Status Pager::FreePage(PageId id) {
  if (id < kFirstDataPage || id >= page_count()) {
    return Status::InvalidArgument("FreePage: page id out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shadowed_.find(id);
  if (it != shadowed_.end()) {
    // Never committed: reusable right away.
    shadowed_.erase(it);
    free_.push_back(id);
  } else {
    // Referenced by the committed header; hold it back until the next
    // Commit() so a crash can still roll back to that state.
    pending_free_.push_back(id);
  }
  dirty_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Pager::SetRootPage(PageId id) {
  if (id != root_page_.load(std::memory_order_relaxed)) {
    dirty_.store(true, std::memory_order_release);
  }
  root_page_.store(id, std::memory_order_release);
  return Status::OK();
}

Status Pager::SetRowCount(uint64_t n) {
  if (n != row_count_.load(std::memory_order_relaxed)) {
    dirty_.store(true, std::memory_order_release);
  }
  row_count_.store(n, std::memory_order_release);
  return Status::OK();
}

Status Pager::Sync() { return file_->Sync(); }

Status Pager::Commit() {
  if (!dirty_.load(std::memory_order_acquire)) return Status::OK();
  // Exclusive header latch: readers holding ReadLatch() in shared mode
  // never observe the epoch mid-publish.
  std::unique_lock<std::shared_mutex> header_lock(header_mu_);
  // 1. Data pages durable before any header points at them.
  TREX_RETURN_IF_ERROR(file_->Sync());
  // 2. Publish into the slot the committed header does NOT occupy, so a
  //    torn header write can only damage the slot being replaced. The
  //    epoch advances only after the publish is durable; a failed attempt
  //    retries into the same (non-live) slot.
  const uint64_t next_epoch = epoch_.load(std::memory_order_relaxed) + 1;
  TREX_RETURN_IF_ERROR(WriteHeaderSlot(next_epoch));
  // 3. Header durable.
  TREX_RETURN_IF_ERROR(file_->Sync());
  epoch_.store(next_epoch, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.insert(free_.end(), pending_free_.begin(), pending_free_.end());
    pending_free_.clear();
    shadowed_.clear();
  }
  dirty_.store(false, std::memory_order_release);
  m_commits_->Add();
  return Status::OK();
}

std::vector<PageId> Pager::FreePages() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> out = free_;
  out.insert(out.end(), pending_free_.begin(), pending_free_.end());
  return out;
}

}  // namespace trex
